"""Setuptools shim.

The project metadata lives in ``pyproject.toml``; this file exists so that
``pip install -e .`` keeps working on offline machines whose setuptools/pip
cannot build PEP 660 editable wheels (the legacy ``setup.py develop`` path
needs no ``wheel`` package and no network).
"""

from setuptools import setup

setup()
