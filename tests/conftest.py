"""Shared fixtures for the test suite."""

from __future__ import annotations

import os
import sys

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

# Allow running the tests from a source checkout without installation.
_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:  # pragma: no cover - environment dependent
    sys.path.insert(0, _SRC)

from repro.tensor.random import random_factors, random_sparse_tensor  # noqa: E402
from repro.tensor.sparse import SparseTensor  # noqa: E402

# ---------------------------------------------------------------------- #
# Hypothesis profiles
#
# "default" keeps per-PR CI fast; "nightly" sweeps a much larger input
# space and is selected by the scheduled workflow via HYPOTHESIS_PROFILE.
# Property tests pick the active profile up through plain ``settings()``.
# ---------------------------------------------------------------------- #
_COMMON = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
settings.register_profile("default", max_examples=25, **_COMMON)
settings.register_profile("nightly", max_examples=300, **_COMMON)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))


@pytest.fixture
def small_tensor() -> SparseTensor:
    """A small third-order tensor that can be densified in tests."""
    return random_sparse_tensor((8, 9, 10), 150, seed=42)


@pytest.fixture
def small_factors(small_tensor) -> list:
    """Rank-4 factors matching ``small_tensor``."""
    return [np.asarray(f) for f in random_factors(small_tensor.shape, 4, seed=7)]


@pytest.fixture
def skewed_tensor() -> SparseTensor:
    """A power-law tensor with uneven fibers (stress for the baselines)."""
    return random_sparse_tensor(
        (30, 50, 40), 600, seed=11, distribution="power", concentration=1.2
    )


@pytest.fixture(scope="session")
def medium_tensor() -> SparseTensor:
    """A tensor large enough that GPU launch overheads are amortised.

    Timing-relationship tests (GPU vs CPU, unified vs baselines) use this
    instead of the tiny fixtures: on a few hundred non-zeros any GPU loses to
    any CPU simply because of launch overhead, which is realistic but not the
    regime the paper (or this library) targets.
    """
    return random_sparse_tensor(
        (60, 500, 40), 30_000, seed=17, distribution="power", concentration=0.9
    )


@pytest.fixture
def fourth_order_tensor() -> SparseTensor:
    """A fourth-order tensor to exercise the higher-order code paths."""
    return random_sparse_tensor((5, 6, 7, 4), 100, seed=13)


@pytest.fixture
def tiny_dense_tensor() -> SparseTensor:
    """The 2x2x2 tensor of the paper's Figure 1 (values 1..8)."""
    coords = []
    values = []
    value = 1.0
    # Figure 1 orders the values with i fastest, then j, then k.
    for k in range(2):
        for j in range(2):
            for i in range(2):
                coords.append((i, j, k))
                values.append(value)
                value += 1.0
    return SparseTensor(np.array(coords), np.array(values), (2, 2, 2))
