"""Tests for repro.util.validation."""

import numpy as np
import pytest

from repro.util.validation import (
    check_axis,
    check_mode,
    check_positive_int,
    check_rank,
    check_shape,
    normalize_modes,
)


class TestCheckPositiveInt:
    def test_accepts_python_int(self):
        assert check_positive_int(5, "x") == 5

    def test_accepts_numpy_int(self):
        assert check_positive_int(np.int64(3), "x") == 3

    def test_rejects_zero(self):
        with pytest.raises(ValueError, match="must be positive"):
            check_positive_int(0, "x")

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="must be positive"):
            check_positive_int(-2, "x")

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            check_positive_int(True, "x")

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            check_positive_int(2.5, "x")

    def test_error_names_argument(self):
        with pytest.raises(ValueError, match="rank"):
            check_positive_int(0, "rank")


class TestCheckShape:
    def test_tuple_passthrough(self):
        assert check_shape((2, 3, 4)) == (2, 3, 4)

    def test_list_converted(self):
        assert check_shape([5, 6]) == (5, 6)

    def test_numpy_ints(self):
        assert check_shape(np.array([2, 3])) == (2, 3)

    def test_min_order_enforced(self):
        with pytest.raises(ValueError, match="order"):
            check_shape((4,), min_order=2)

    def test_zero_dimension_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            check_shape((2, 0, 3))

    def test_non_integer_rejected(self):
        with pytest.raises(TypeError):
            check_shape("abc")


class TestCheckMode:
    def test_valid_mode(self):
        assert check_mode(1, 3) == 1

    def test_negative_mode_wraps(self):
        assert check_mode(-1, 3) == 2

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            check_mode(3, 3)

    def test_too_negative(self):
        with pytest.raises(ValueError):
            check_mode(-4, 3)

    def test_non_integer(self):
        with pytest.raises(TypeError):
            check_mode(1.5, 3)

    def test_axis_alias(self):
        assert check_axis(0, 2) == 0


class TestCheckRank:
    def test_valid(self):
        assert check_rank(16) == 16

    def test_invalid(self):
        with pytest.raises(ValueError):
            check_rank(0)


class TestNormalizeModes:
    def test_sorted_and_deduplicated(self):
        assert normalize_modes([2, 0, 2], 3) == (0, 2)

    def test_negative_modes(self):
        assert normalize_modes([-1, 0], 3) == (0, 2)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            normalize_modes([], 3)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            normalize_modes([5], 3)
