"""Property-based tests (hypothesis) for the core data structures and kernels.

These cover the invariants the rest of the system leans on:

* F-COO and CSF encodings are lossless for arbitrary sparse tensors;
* the segmented scan equals a serial segment sum;
* the unified kernels agree with the dense oracles for arbitrary inputs;
* the Khatri-Rao / unfolding identity behind Equation (5) holds;
* the Table II storage formulas agree with the measured structures.
"""

from typing import Tuple

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.formats.csf import CSFTensor
from repro.formats.fcoo import FCOOTensor
from repro.formats.mode_encoding import OperationKind, mode_roles
from repro.formats.storage_cost import fcoo_storage_bytes
from repro.gpusim.scan import segment_reduce
from repro.kernels.unified import unified_spmttkrp, unified_spttm
from repro.tensor.dense import fold_dense, unfold_dense
from repro.tensor.ops import mttkrp_dense, ttm_dense
from repro.tensor.products import khatri_rao
from repro.tensor.sparse import SparseTensor

# ---------------------------------------------------------------------- #
# Strategies
# ---------------------------------------------------------------------- #

# Inherit everything (max_examples, deadline, health checks) from the
# active profile registered in conftest.py: the per-PR "default" profile,
# or the high-examples "nightly" one under HYPOTHESIS_PROFILE=nightly.
SETTINGS = settings()


@st.composite
def sparse_tensors(draw, max_dim=8, max_order=4, max_nnz=60) -> SparseTensor:
    """Random small sparse tensors of order 2..max_order."""
    order = draw(st.integers(min_value=2, max_value=max_order))
    shape = tuple(draw(st.integers(min_value=1, max_value=max_dim)) for _ in range(order))
    nnz = draw(st.integers(min_value=1, max_value=max_nnz))
    rng_seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(rng_seed)
    indices = np.stack([rng.integers(0, s, size=nnz) for s in shape], axis=1)
    values = rng.uniform(0.25, 2.0, size=nnz)
    return SparseTensor(indices, values, shape)


@st.composite
def tensors_with_mode(draw) -> Tuple[SparseTensor, int]:
    tensor = draw(sparse_tensors())
    mode = draw(st.integers(min_value=0, max_value=tensor.order - 1))
    return tensor, mode


def make_factors(tensor: SparseTensor, rank: int, seed: int = 0):
    rng = np.random.default_rng(seed)
    return [rng.uniform(0.1, 1.0, size=(s, rank)) for s in tensor.shape]


# ---------------------------------------------------------------------- #
# Format round trips
# ---------------------------------------------------------------------- #


class TestFormatProperties:
    @SETTINGS
    @given(tensors_with_mode(), st.sampled_from(list(OperationKind)))
    def test_fcoo_round_trip(self, tensor_mode, operation):
        tensor, mode = tensor_mode
        fcoo = FCOOTensor.from_sparse(tensor, operation, mode)
        assert fcoo.to_sparse().allclose(tensor, rtol=1e-6, atol=1e-6)

    @SETTINGS
    @given(tensors_with_mode(), st.sampled_from(list(OperationKind)))
    def test_fcoo_segment_structure(self, tensor_mode, operation):
        tensor, mode = tensor_mode
        fcoo = FCOOTensor.from_sparse(tensor, operation, mode)
        # Exactly one bit per segment and segment ids are a prefix sum of bf.
        assert int(fcoo.bf.sum()) == fcoo.num_segments
        np.testing.assert_array_equal(np.cumsum(fcoo.bf) - 1, fcoo.segment_ids)
        # Segment sizes total the non-zero count.
        assert int(fcoo.segment_sizes().sum()) == fcoo.nnz

    @SETTINGS
    @given(tensors_with_mode(), st.integers(min_value=1, max_value=32))
    def test_fcoo_storage_model(self, tensor_mode, threadlen):
        tensor, mode = tensor_mode
        fcoo = FCOOTensor.from_sparse(tensor, "spmttkrp", mode)
        model = fcoo_storage_bytes(fcoo.nnz, tensor.order, "spmttkrp", mode, threadlen=threadlen)
        measured = fcoo.storage_bytes(threadlen)
        # Packing the flag bits rounds up to whole bytes.
        assert model <= measured <= model + 2 + 1 / 8 * 0 + 2

    @SETTINGS
    @given(tensors_with_mode())
    def test_csf_round_trip(self, tensor_mode):
        tensor, root = tensor_mode
        order = (root,) + tuple(m for m in range(tensor.order) if m != root)
        csf = CSFTensor.from_sparse(tensor, order)
        assert csf.to_sparse().allclose(tensor)

    @SETTINGS
    @given(tensors_with_mode())
    def test_mode_roles_partition(self, tensor_mode):
        tensor, mode = tensor_mode
        for op in OperationKind:
            roles = mode_roles(op, mode, tensor.order)
            assert sorted(roles.product_modes + roles.index_modes) == list(range(tensor.order))


# ---------------------------------------------------------------------- #
# Scan and dense-algebra identities
# ---------------------------------------------------------------------- #


class TestNumericProperties:
    @SETTINGS
    @given(
        st.integers(min_value=1, max_value=200),
        st.integers(min_value=1, max_value=20),
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_segment_reduce_matches_serial(self, n, num_segments, width, seed):
        rng = np.random.default_rng(seed)
        values = rng.standard_normal((n, width))
        ids = np.sort(rng.integers(0, num_segments, size=n))
        expected = np.zeros((num_segments, width))
        for v, s in zip(values, ids):
            expected[s] += v
        np.testing.assert_allclose(segment_reduce(values, ids, num_segments), expected, atol=1e-9)

    @SETTINGS
    @given(sparse_tensors(max_order=3))
    def test_unfold_fold_round_trip(self, tensor):
        dense = tensor.to_dense()
        for mode in range(tensor.order):
            np.testing.assert_allclose(
                fold_dense(unfold_dense(dense, mode), mode, dense.shape), dense
            )

    @SETTINGS
    @given(
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_mttkrp_khatri_rao_identity(self, i, j, k, rank, seed):
        """Equation (5): MTTKRP == X_(0) (C ⊙ B) for arbitrary dense data."""
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((i, j, k))
        b = rng.standard_normal((j, rank))
        c = rng.standard_normal((k, rank))
        a = rng.standard_normal((i, rank))
        direct = mttkrp_dense(x, [a, b, c], 0)
        via_kr = unfold_dense(x, 0) @ khatri_rao(c, b)
        np.testing.assert_allclose(direct, via_kr, atol=1e-9)


# ---------------------------------------------------------------------- #
# Kernels vs oracles
# ---------------------------------------------------------------------- #


class TestKernelProperties:
    @SETTINGS
    @given(tensors_with_mode(), st.integers(min_value=1, max_value=5))
    def test_unified_spttm_matches_oracle(self, tensor_mode, rank):
        tensor, mode = tensor_mode
        factors = make_factors(tensor, rank)
        result = unified_spttm(tensor, factors[mode], mode)
        expected = ttm_dense(tensor.to_dense(), factors[mode], mode)
        np.testing.assert_allclose(result.output.to_dense(), expected, rtol=1e-4, atol=1e-5)

    @SETTINGS
    @given(tensors_with_mode(), st.integers(min_value=1, max_value=5))
    def test_unified_spmttkrp_matches_oracle(self, tensor_mode, rank):
        tensor, mode = tensor_mode
        factors = make_factors(tensor, rank)
        result = unified_spmttkrp(tensor, factors, mode)
        expected = mttkrp_dense(tensor.to_dense(), factors, mode)
        np.testing.assert_allclose(result.output, expected, rtol=1e-4, atol=1e-5)

    @SETTINGS
    @given(tensors_with_mode(), st.integers(min_value=1, max_value=4))
    def test_unified_kernels_are_linear_in_the_tensor(self, tensor_mode, rank):
        """Both kernels are linear maps of the tensor values."""
        tensor, mode = tensor_mode
        factors = make_factors(tensor, rank)
        scaled = tensor.scale(2.5)

        base = unified_spmttkrp(tensor, factors, mode).output
        scaled_out = unified_spmttkrp(scaled, factors, mode).output
        np.testing.assert_allclose(scaled_out, 2.5 * base, rtol=1e-4, atol=1e-5)

        base_ttm = unified_spttm(tensor, factors[mode], mode).output
        scaled_ttm = unified_spttm(scaled, factors[mode], mode).output
        np.testing.assert_allclose(
            scaled_ttm.canonicalized().fiber_values,
            2.5 * base_ttm.canonicalized().fiber_values,
            rtol=1e-4,
            atol=1e-5,
        )
