"""Tests for the sparse CP fit metrics."""

import numpy as np
import pytest

from repro.algorithms.fit import cp_fit, cp_inner_product, cp_norm
from repro.tensor.ops import cp_reconstruct
from repro.tensor.random import random_factors
from repro.tensor.sparse import SparseTensor


def rank2_model(shape=(5, 6, 7), seed=0):
    rng = np.random.default_rng(seed)
    factors = [rng.random((s, 2)) for s in shape]
    weights = rng.random(2) + 0.5
    return factors, weights


class TestCpNorm:
    def test_matches_dense_norm(self):
        factors, weights = rank2_model()
        dense = cp_reconstruct(factors, weights)
        assert cp_norm(factors, weights) == pytest.approx(np.linalg.norm(dense))

    def test_default_weights(self):
        factors, _ = rank2_model()
        dense = cp_reconstruct(factors)
        assert cp_norm(factors) == pytest.approx(np.linalg.norm(dense))


class TestCpInnerProduct:
    def test_matches_dense_inner_product(self, small_tensor):
        factors, weights = rank2_model(small_tensor.shape, seed=1)
        dense_model = cp_reconstruct(factors, weights)
        expected = float(np.sum(small_tensor.to_dense() * dense_model))
        assert cp_inner_product(small_tensor, factors, weights) == pytest.approx(expected)

    def test_empty_tensor(self):
        factors, weights = rank2_model((3, 4, 5))
        assert cp_inner_product(SparseTensor.empty((3, 4, 5)), factors, weights) == 0.0

    def test_shape_mismatch(self, small_tensor):
        factors, weights = rank2_model((3, 4, 5))
        with pytest.raises(ValueError):
            cp_inner_product(small_tensor, factors, weights)


class TestCpFit:
    def test_exact_model_has_fit_one(self):
        factors, weights = rank2_model()
        dense = cp_reconstruct(factors, weights)
        tensor = SparseTensor.from_dense(dense)
        assert cp_fit(tensor, factors, weights) == pytest.approx(1.0, abs=1e-6)

    def test_matches_dense_residual(self, small_tensor):
        factors, weights = rank2_model(small_tensor.shape, seed=2)
        dense = small_tensor.to_dense()
        model = cp_reconstruct(factors, weights)
        expected = 1.0 - np.linalg.norm(dense - model) / np.linalg.norm(dense)
        assert cp_fit(small_tensor, factors, weights) == pytest.approx(expected, abs=1e-10)

    def test_fit_at_most_one(self, small_tensor):
        factors = [np.asarray(f) for f in random_factors(small_tensor.shape, 3, seed=3)]
        assert cp_fit(small_tensor, factors) <= 1.0

    def test_zero_tensor_rejected(self):
        factors, weights = rank2_model((3, 4, 5))
        with pytest.raises(ValueError):
            cp_fit(SparseTensor.empty((3, 4, 5)), factors, weights)
