"""Property harness for mid-run node-loss fault tolerance.

The central claim: **a run that loses a node mid-flight produces
bit-identical numerics to its failure-free twin**, at a positive modeled
recovery cost.  The decomposition drivers checkpoint their factors at
iteration boundaries, evict the dead node's shards, re-partition over the
survivors, replay the interrupted sweep from the checkpoint and charge the
re-staging on the shared timeline; the serving scheduler tears down jobs
in flight on the dead node and re-admits them on survivors.  Both rest on
the sharded kernels' canonical-reduction invariant (``test_sharded.py``):
shard topology only ever moves *time*, never bits.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.cp import RecoveryRecord, UnifiedGPUEngine, cp_als
from repro.algorithms.tucker import tucker_hooi
from repro.gpusim.cluster import (
    ETHERNET_10G,
    ClusterSpec,
    MultiNodeClusterSpec,
    NodeFailure,
)
from repro.gpusim.device import TITAN_X
from repro.serve.engine import ServingEngine
from repro.serve.job import JobStatus
from repro.serve.scheduler import Scheduler
from repro.serve.workload import (
    ChaosSpec,
    WorkloadSpec,
    generate_chaos,
    generate_workload,
)
from repro.tensor.random import random_sparse_tensor


def two_nodes(devices_per_node: int = 2) -> MultiNodeClusterSpec:
    return MultiNodeClusterSpec.homogeneous(
        num_nodes=2, devices_per_node=devices_per_node, nic=ETHERNET_10G
    )


TENSOR = random_sparse_tensor((120, 40, 30), 3_000, seed=11)


def run_cp(chaos=None, *, max_iterations=3, cluster=None):
    return cp_als(
        TENSOR,
        6,
        engine=UnifiedGPUEngine(cluster=cluster if cluster is not None else two_nodes()),
        max_iterations=max_iterations,
        compute_fit=True,
        chaos=chaos,
    )


class TestNodeFailureSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            NodeFailure(time_s=-1.0, node_index=0)
        with pytest.raises(ValueError):
            NodeFailure(time_s=0.0, node_index=-1)
        with pytest.raises(ValueError):
            NodeFailure(time_s=2.0, node_index=0, recover_s=1.0)
        NodeFailure(time_s=2.0, node_index=0, recover_s=3.0)

    def test_chaos_spec_validation(self):
        with pytest.raises(ValueError):
            ChaosSpec(num_failures=0)
        with pytest.raises(ValueError):
            ChaosSpec(window_s=0.0)
        with pytest.raises(ValueError):
            ChaosSpec(recover_after_s=-1.0)
        with pytest.raises(ValueError):
            generate_chaos(ChaosSpec(fail_node=5), num_nodes=2)

    def test_generate_chaos_deterministic_and_sorted(self):
        spec = ChaosSpec(seed=7, num_failures=4, window_s=1e-3)
        first = generate_chaos(spec, num_nodes=3)
        second = generate_chaos(spec, num_nodes=3)
        assert first == second
        assert len(first) == 4
        times = [e.time_s for e in first]
        assert times == sorted(times)
        assert all(0.0 <= e.time_s <= 1e-3 for e in first)
        assert all(0 <= e.node_index < 3 for e in first)

    def test_generate_chaos_pinned_node_and_recovery(self):
        spec = ChaosSpec(seed=0, num_failures=2, fail_node=1, recover_after_s=1e-4)
        events = generate_chaos(spec, num_nodes=4)
        assert all(e.node_index == 1 for e in events)
        assert all(e.recover_s == pytest.approx(e.time_s + 1e-4) for e in events)

    def test_chaos_stream_independent_of_workload(self):
        jobs = generate_workload(WorkloadSpec(num_jobs=10, seed=3))
        generate_chaos(ChaosSpec(seed=3), num_nodes=2)
        again = generate_workload(WorkloadSpec(num_jobs=10, seed=3))
        assert [j.job_id for j in jobs] == [j.job_id for j in again]
        assert [j.arrival_s for j in jobs] == [j.arrival_s for j in again]
        assert [j.tensor.content_key for j in jobs] == [
            j.tensor.content_key for j in again
        ]


class TestCPRecovery:
    def test_bit_identical_factors_after_node_loss(self):
        clean = run_cp()
        failure = NodeFailure(time_s=clean.makespan_s * 0.4, node_index=0)
        faulty = run_cp(chaos=[failure])
        for a, b in zip(clean.factors, faulty.factors):
            assert np.array_equal(a, b)
        assert np.array_equal(clean.weights, faulty.weights)
        assert clean.fits == faulty.fits
        assert clean.iterations == faulty.iterations

    def test_recovery_cost_is_positive_and_recorded(self):
        clean = run_cp()
        failure = NodeFailure(time_s=clean.makespan_s * 0.4, node_index=1)
        faulty = run_cp(chaos=[failure])
        assert len(faulty.recoveries) == 1
        record = faulty.recoveries[0]
        assert isinstance(record, RecoveryRecord)
        assert record.failure == failure
        assert record.restage_s > 0.0
        assert record.restaged_bytes > 0.0
        assert record.survivor_devices == 2
        assert faulty.recovery_overhead_s == pytest.approx(record.restage_s)
        # The restage bookings land on the shared timeline as copy work.
        restage = [
            e for e in faulty.timeline.events if e.label.startswith("restage:")
        ]
        assert restage and all(e.duration_s > 0.0 for e in restage)

    def test_timeline_stays_feasible_after_recovery(self):
        clean = run_cp()
        failure = NodeFailure(time_s=clean.makespan_s * 0.3, node_index=0)
        faulty = run_cp(chaos=[failure])
        assert faulty.timeline.violations() == {}

    def test_clean_run_unaffected_by_chaos_plumbing(self):
        baseline = run_cp(chaos=None)
        empty = run_cp(chaos=[])
        for a, b in zip(baseline.factors, empty.factors):
            assert np.array_equal(a, b)
        assert baseline.makespan_s == empty.makespan_s
        assert empty.recoveries == []
        assert empty.recovery_overhead_s == 0.0

    def test_inapplicable_failures_ignored(self):
        clean = run_cp()
        # Node index out of range, and a failure after the run completes.
        chaos = [
            NodeFailure(time_s=clean.makespan_s * 0.5, node_index=99),
            NodeFailure(time_s=clean.makespan_s * 10.0, node_index=0),
        ]
        faulty = run_cp(chaos=chaos)
        assert faulty.recoveries == []
        for a, b in zip(clean.factors, faulty.factors):
            assert np.array_equal(a, b)

    def test_single_node_cluster_ignores_chaos(self):
        cluster = ClusterSpec.homogeneous(TITAN_X, 2)
        clean = run_cp(cluster=cluster)
        faulty = run_cp(
            chaos=[NodeFailure(time_s=clean.makespan_s * 0.5, node_index=0)],
            cluster=cluster,
        )
        assert faulty.recoveries == []
        for a, b in zip(clean.factors, faulty.factors):
            assert np.array_equal(a, b)

    def test_evict_node_requires_multinode(self):
        engine = UnifiedGPUEngine(cluster=ClusterSpec.homogeneous(TITAN_X, 2))
        engine.prepare(TENSOR, 4)
        with pytest.raises(RuntimeError):
            engine.evict_node(0)

    @settings(deadline=None, max_examples=8)
    @given(
        frac=st.floats(min_value=0.05, max_value=0.95),
        node=st.integers(min_value=0, max_value=1),
    )
    def test_identity_over_failure_instants(self, frac, node):
        clean = run_cp(max_iterations=2)
        faulty = run_cp(
            chaos=[NodeFailure(time_s=clean.makespan_s * frac, node_index=node)],
            max_iterations=2,
        )
        for a, b in zip(clean.factors, faulty.factors):
            assert np.array_equal(a, b)
        assert np.array_equal(clean.weights, faulty.weights)


class TestTuckerRecovery:
    def test_bit_identical_after_node_loss(self):
        clean = tucker_hooi(TENSOR, (5, 5, 5), cluster=two_nodes(), max_iterations=2)
        failure = NodeFailure(time_s=clean.makespan_s * 0.4, node_index=0)
        faulty = tucker_hooi(
            TENSOR, (5, 5, 5), cluster=two_nodes(), max_iterations=2, chaos=[failure]
        )
        for a, b in zip(clean.factors, faulty.factors):
            assert np.array_equal(a, b)
        assert np.array_equal(clean.core, faulty.core)
        assert clean.fits == faulty.fits
        assert len(faulty.recoveries) == 1
        assert faulty.recovery_overhead_s > 0.0

    def test_preproc_cache_ledger_not_perturbed(self):
        from repro.serve.cache import PreprocCache

        def run(chaos, cache):
            return tucker_hooi(
                TENSOR,
                (5, 5, 5),
                cluster=two_nodes(),
                max_iterations=2,
                preproc_cache=cache,
                chaos=chaos,
            )

        clean_cache = PreprocCache()
        run(None, clean_cache)
        clean = tucker_hooi(TENSOR, (5, 5, 5), cluster=two_nodes(), max_iterations=2)
        chaos_cache = PreprocCache()
        run(
            [NodeFailure(time_s=clean.makespan_s * 0.4, node_index=0)],
            chaos_cache,
        )
        # Recovery plans re-encode from scratch *outside* the cache, so no
        # phantom misses appear; the replayed sweep's per-mode lookups are
        # real work and surface as extra hits.
        assert clean_cache.stats.encode_misses == chaos_cache.stats.encode_misses
        assert chaos_cache.stats.encode_hits >= clean_cache.stats.encode_hits
        assert chaos_cache.stats.evictions == clean_cache.stats.evictions


class TestServingChaos:
    CLUSTER_NODES = 2

    def _jobs(self, n=14, seed=7):
        return generate_workload(WorkloadSpec(num_jobs=n, seed=seed))

    def _run(self, chaos=None, **kwargs):
        engine = ServingEngine(two_nodes(), **kwargs)
        return engine.run(self._jobs(), chaos=chaos)

    def _mid_run_failure(self, node=0):
        clean = self._run()
        return clean, NodeFailure(
            time_s=clean.makespan_s * 0.25, node_index=node
        )

    def test_requeued_jobs_complete_on_survivors(self):
        clean, failure = self._mid_run_failure(node=0)
        report = self._run(chaos=[failure])
        assert report.failures == [failure]
        dead = set(two_nodes().node_slots(0))
        requeued = [r for r in report.results if r.requeues]
        assert report.requeued_jobs == sum(r.requeues for r in requeued)
        for r in report.results:
            if r.completed and r.exec_start_s > failure.time_s:
                assert not (set(r.device_slots) & dead)
        # A node loss delays work; it never loses it.
        assert len(report.completed) == len(clean.completed)

    def test_outputs_bit_identical_under_chaos(self):
        clean, failure = self._mid_run_failure(node=0)
        report = self._run(chaos=[failure])
        by_id = {r.job.job_id: r for r in clean.results}
        for r in report.results:
            twin = by_id[r.job.job_id]
            assert r.status == twin.status
            if not r.completed:
                continue
            if isinstance(r.output, np.ndarray):
                assert np.array_equal(r.output, twin.output)
            elif hasattr(r.output, "factors"):
                for a, b in zip(r.output.factors, twin.output.factors):
                    assert np.array_equal(a, b)

    def test_recovered_node_accepts_new_placements(self):
        clean = self._run()
        failure = NodeFailure(
            time_s=clean.makespan_s * 0.1,
            node_index=0,
            recover_s=clean.makespan_s * 0.3,
        )
        report = self._run(chaos=[failure])
        slots_after_recovery = set()
        for r in report.completed:
            if r.exec_start_s > failure.recover_s:
                slots_after_recovery.update(r.device_slots)
        # Not guaranteed for every workload, but for this seeded one node
        # 0 hosts work again after recovering; assert the mechanism.
        assert len(report.completed) == len(clean.completed)
        dead = set(two_nodes().node_slots(0))
        for r in report.completed:
            start = r.exec_start_s
            if failure.time_s < start <= failure.recover_s:
                assert not (set(r.device_slots) & dead)

    def test_chaos_without_victims_is_noop_on_results(self):
        clean = self._run()
        late = NodeFailure(time_s=clean.makespan_s * 2.0, node_index=1)
        report = self._run(chaos=[late])
        assert report.requeued_jobs == 0
        assert len(report.completed) == len(clean.completed)
        for r, twin in zip(report.results, clean.results):
            assert r.finish_s == twin.finish_s

    def test_timeline_violations_empty_under_chaos(self):
        clean, failure = self._mid_run_failure(node=1)
        report = self._run(chaos=[failure])
        assert report.timeline.violations() == {}

    def test_render_mentions_faults(self):
        clean, failure = self._mid_run_failure(node=0)
        report = self._run(chaos=[failure])
        text = report.render()
        assert "node losses" in text
        assert "re-queues" in text

    def test_scheduler_outcome_counters(self):
        jobs = self._jobs()
        scheduler = Scheduler(two_nodes())
        clean = scheduler.run(jobs)
        failure = NodeFailure(time_s=clean.makespan_s * 0.25, node_index=0)
        outcome = Scheduler(two_nodes()).run(jobs, chaos=[failure])
        assert outcome.failures == [failure]
        assert outcome.requeued_jobs == sum(r.requeues for r in outcome.results)
        completed = [r for r in outcome.results if r.status is JobStatus.COMPLETED]
        assert len(completed) == sum(1 for r in clean.results if r.completed)


class TestEmptyAndOversizeEdges:
    def test_empty_workload_report_well_defined(self):
        report = ServingEngine(two_nodes()).run([])
        assert report.results == []
        assert report.makespan_s == 0.0
        assert report.throughput_jobs_per_s == 0.0
        assert report.p50_latency_s == 0.0
        assert report.p99_latency_s == 0.0
        assert report.mean_queue_wait_s == 0.0
        assert report.overall_utilization == 0.0
        assert all(u == 0.0 for u in report.device_utilization.values())
        text = report.render()
        assert "0 submitted" in text

    def test_zero_job_workload_spec(self):
        jobs = generate_workload(WorkloadSpec(num_jobs=0, seed=0))
        assert jobs == []
        report = ServingEngine(two_nodes()).run_workload(
            WorkloadSpec(num_jobs=0, seed=0)
        )
        assert report.makespan_s == 0.0

    def test_fully_shed_workload_report(self):
        from repro.serve.job import Job
        from repro.serve.workload import default_serving_cluster

        # Every job's resident operands exceed the largest serving device,
        # so admission control rejects the entire workload.
        big = random_sparse_tensor((4_000, 3_000, 100), 4_000, seed=2)
        jobs = [
            Job(job_id=i, tenant="t", kind="spmttkrp", tensor=big, rank=64)
            for i in range(3)
        ]
        report = ServingEngine(default_serving_cluster()).run(jobs)
        assert report.completed == []
        assert len(report.rejected) == len(jobs)
        assert report.makespan_s == 0.0
        assert report.throughput_jobs_per_s == 0.0
        assert report.p50_latency_s == 0.0
        assert report.mean_queue_wait_s == 0.0
        assert report.overall_utilization == 0.0
        text = report.render()
        assert "0 completed" in text
        assert "3 rejected" in text

    def test_oversized_encoding_not_cached(self):
        from repro.formats.mode_encoding import OperationKind
        from repro.serve.cache import PreprocCache

        cache = PreprocCache(capacity_bytes=1)
        tensor = random_sparse_tensor((30, 20, 10), 500, seed=0)
        encoding, hit, cost = cache.encoding(tensor, OperationKind.SPMTTKRP, 0)
        assert encoding is not None
        assert not hit
        assert cost > 0.0
        # The oversized entry must not be admitted (it would evict the
        # whole cache), but the caller still gets the encoding.
        assert cache.current_bytes == 0
        again, hit2, cost2 = cache.encoding(tensor, OperationKind.SPMTTKRP, 0)
        assert not hit2  # genuinely uncached, so a recompute
        assert again is not None


class TestFaultsBenchSuite:
    def test_faults_metrics_gate(self):
        from repro.bench.regression import _faults_metrics

        metrics = _faults_metrics()
        assert metrics["faults/identity_violation_count"] == 0.0
        assert metrics["faults/recovery_cost_missing_count"] == 0.0
        assert metrics["faults/serve_lost_jobs_count"] == 0.0
        assert metrics["faults/serve_requeued_jobs"] > 0.0
        assert metrics["faults/cp_restage"] > 0.0
        assert metrics["faults/tucker_restage"] > 0.0
