"""Smoke tests: every script in ``examples/`` must run end to end.

Each example is executed via :mod:`runpy` exactly as ``python examples/x.py``
would, so the quickstart paths shown to users cannot silently rot.  The
examples already use their smallest (laptop-scale) parameters; the two that
sweep full tuning grids or run multi-iteration decompositions are marked
``slow`` (deselect with ``-m "not slow"``).
"""

from __future__ import annotations

import os
import runpy

import pytest

EXAMPLES_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "examples"
)

#: Examples that take more than ~2 s (full tuning sweeps / HOOI iterations).
SLOW = {"autotune_launch_parameters.py", "tucker_compression.py"}


def example_params():
    scripts = sorted(
        name for name in os.listdir(EXAMPLES_DIR) if name.endswith(".py")
    )
    assert scripts, f"no example scripts found in {EXAMPLES_DIR}"
    return [
        pytest.param(
            name,
            id=name,
            marks=[pytest.mark.slow] if name in SLOW else [],
        )
        for name in scripts
    ]


@pytest.mark.parametrize("script", example_params())
def test_example_runs(script, capsys):
    runpy.run_path(os.path.join(EXAMPLES_DIR, script), run_name="__main__")
    # Every example is expected to narrate what it did.
    assert capsys.readouterr().out.strip()
