"""The backend bit-identity harness (ISSUE 9 tentpole property).

Every numeric-execution backend must be ``np.array_equal`` — not merely
close — to the reference backend on every input.  The Hypothesis sweeps
here drive the three unified kernels through the one-shot, chunked
(streamed) and sharded topologies under both backends and compare bits,
plus the primitive-level reductions (1-D/2-D, empty segments, single
non-zero, unsorted-id fallback) and the ``ExecContext(backend=...)`` /
``REPRO_BACKEND`` selection plumbing.
"""

from typing import Tuple

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backends import (
    BACKEND_ENV_VAR,
    BACKENDS,
    Backend,
    ReferenceBackend,
    VectorizedBackend,
    available_backends,
    get_backend,
)
from repro.backends.vectorized import _self_check
from repro.context import ExecContext
from repro.gpusim.scan import segment_reduce
from repro.kernels.unified import unified_spmttkrp, unified_spttm, unified_spttmc
from repro.tensor.sparse import SparseTensor

SETTINGS = settings()

REF = ReferenceBackend()
VEC = VectorizedBackend()


# ---------------------------------------------------------------------- #
# Strategies
# ---------------------------------------------------------------------- #
@st.composite
def sparse_tensors(draw, max_dim=8, max_order=4, max_nnz=60) -> SparseTensor:
    order = draw(st.integers(min_value=2, max_value=max_order))
    shape = tuple(
        draw(st.integers(min_value=1, max_value=max_dim)) for _ in range(order)
    )
    nnz = draw(st.integers(min_value=1, max_value=max_nnz))
    rng = np.random.default_rng(draw(st.integers(0, 2**31 - 1)))
    indices = np.stack([rng.integers(0, s, size=nnz) for s in shape], axis=1)
    values = rng.uniform(0.25, 2.0, size=nnz)
    return SparseTensor(indices, values, shape)


@st.composite
def tensors_with_mode(draw) -> Tuple[SparseTensor, int]:
    tensor = draw(sparse_tensors())
    mode = draw(st.integers(min_value=0, max_value=tensor.order - 1))
    return tensor, mode


@st.composite
def segmented_values(draw):
    """(values, sorted segment_ids, num_segments) with empty segments."""
    n = draw(st.integers(min_value=0, max_value=80))
    num_segments = draw(st.integers(min_value=1, max_value=20))
    width = draw(st.integers(min_value=0, max_value=6))  # 0 -> 1-D values
    rng = np.random.default_rng(draw(st.integers(0, 2**31 - 1)))
    segment_ids = np.sort(rng.integers(0, num_segments, size=n))
    values = (
        rng.standard_normal(n) if width == 0 else rng.standard_normal((n, width))
    )
    return values, segment_ids, num_segments


def make_factors(tensor: SparseTensor, rank: int, seed: int = 0):
    rng = np.random.default_rng(seed)
    return [rng.uniform(0.1, 1.0, size=(s, rank)) for s in tensor.shape]


# ---------------------------------------------------------------------- #
# Primitive-level identity
# ---------------------------------------------------------------------- #
class TestSegmentReduceIdentity:
    @SETTINGS
    @given(segmented_values())
    def test_bit_identity_with_canonical_reduce(self, case):
        values, segment_ids, num_segments = case
        expected = segment_reduce(values, segment_ids, num_segments)
        np.testing.assert_array_equal(
            VEC.segment_reduce(values, segment_ids, num_segments), expected
        )
        np.testing.assert_array_equal(
            REF.segment_reduce(values, segment_ids, num_segments), expected
        )

    def test_single_nnz(self):
        values = np.array([[3.5, -1.25]])
        out = VEC.segment_reduce(values, np.array([2]), 5)
        expected = np.zeros((5, 2))
        expected[2] = values[0]
        np.testing.assert_array_equal(out, expected)

    def test_all_segments_empty(self):
        out = VEC.segment_reduce(np.zeros((0, 3)), np.zeros(0, dtype=np.int64), 4)
        np.testing.assert_array_equal(out, np.zeros((4, 3)))

    def test_unsorted_ids_fall_back_to_scatter_add(self):
        rng = np.random.default_rng(0)
        values = rng.standard_normal((50, 4))
        segment_ids = rng.integers(0, 7, size=50)  # deliberately unsorted
        np.testing.assert_array_equal(
            VEC.segment_reduce(values, segment_ids, 7),
            segment_reduce(values, segment_ids, 7),
        )

    def test_skewed_segments_hit_the_seeded_finish(self):
        # One giant segment next to many singletons forces the batched
        # stepping into its np.add.accumulate tail path.
        rng = np.random.default_rng(1)
        segment_ids = np.sort(np.r_[np.zeros(500, dtype=np.int64), np.arange(1, 40)])
        values = rng.standard_normal((segment_ids.size, 3))
        np.testing.assert_array_equal(
            VEC.segment_reduce(values, segment_ids, 40),
            segment_reduce(values, segment_ids, 40),
        )

    def test_self_check_probe(self):
        assert _self_check() is None

    @SETTINGS
    @given(segmented_values(), st.integers(min_value=1, max_value=3))
    def test_fused_hadamard_identity(self, case, num_mats):
        values, segment_ids, num_segments = case
        if values.ndim != 1:
            values = values[:, 0] if values.shape[1] else np.zeros(len(segment_ids))
        rng = np.random.default_rng(7)
        mats = [rng.standard_normal((10, 4)) for _ in range(num_mats)]
        rows = [rng.integers(0, 10, size=values.shape[0]) for _ in range(num_mats)]
        np.testing.assert_array_equal(
            VEC.hadamard_segment_sums(values, mats, rows, segment_ids, num_segments),
            REF.hadamard_segment_sums(values, mats, rows, segment_ids, num_segments),
        )

    @SETTINGS
    @given(segmented_values(), st.integers(min_value=1, max_value=3))
    def test_kron_identity(self, case, num_mats):
        values, segment_ids, num_segments = case
        if values.ndim != 1:
            values = values[:, 0] if values.shape[1] else np.zeros(len(segment_ids))
        rng = np.random.default_rng(9)
        mats = [rng.standard_normal((8, 3)) for _ in range(num_mats)]
        rows = [rng.integers(0, 8, size=values.shape[0]) for _ in range(num_mats)]
        np.testing.assert_array_equal(
            VEC.kron_segment_sums(values, mats, rows, segment_ids, num_segments),
            REF.kron_segment_sums(values, mats, rows, segment_ids, num_segments),
        )

    def test_dense_hadamard_identity(self):
        rng = np.random.default_rng(3)
        grams = [rng.standard_normal((6, 6)) for _ in range(4)]
        np.testing.assert_array_equal(
            VEC.dense_hadamard(grams, 6), REF.dense_hadamard(grams, 6)
        )
        np.testing.assert_array_equal(
            VEC.dense_hadamard([], 6), REF.dense_hadamard([], 6)
        )


# ---------------------------------------------------------------------- #
# Kernel-level identity across topologies
# ---------------------------------------------------------------------- #
# The backend contract is per-topology: swapping the backend under a fixed
# execution shape must not change a single bit.  (The topologies themselves
# are NOT bit-identical to each other — the streamed merge re-associates
# sums across chunk boundaries — so each topology is compared against the
# reference backend under the SAME topology.)
TOPOLOGIES = (
    {},
    {"streamed": True, "chunk_nnz": 16},
    {"devices": 2},
)


def _backend_pair(topology):
    return (
        ExecContext(backend="reference", **topology),
        ExecContext(backend="vectorized", **topology),
    )


class TestKernelIdentity:
    @SETTINGS
    @given(tensors_with_mode(), st.integers(min_value=1, max_value=6))
    def test_spmttkrp_identity_across_topologies(self, tensor_mode, rank):
        tensor, mode = tensor_mode
        factors = make_factors(tensor, rank)
        for topology in TOPOLOGIES:
            ref_ctx, vec_ctx = _backend_pair(topology)
            reference = unified_spmttkrp(tensor, factors, mode, ctx=ref_ctx).output
            out = unified_spmttkrp(tensor, factors, mode, ctx=vec_ctx).output
            np.testing.assert_array_equal(out, reference)

    @SETTINGS
    @given(tensors_with_mode(), st.integers(min_value=1, max_value=6))
    def test_spttm_identity_across_topologies(self, tensor_mode, rank):
        tensor, mode = tensor_mode
        matrix = make_factors(tensor, rank)[mode]
        for topology in TOPOLOGIES:
            ref_ctx, vec_ctx = _backend_pair(topology)
            reference = unified_spttm(tensor, matrix, mode, ctx=ref_ctx).output
            out = unified_spttm(tensor, matrix, mode, ctx=vec_ctx).output
            np.testing.assert_array_equal(out.fiber_values, reference.fiber_values)
            np.testing.assert_array_equal(out.fiber_coords, reference.fiber_coords)

    @SETTINGS
    @given(tensors_with_mode(), st.integers(min_value=1, max_value=4))
    def test_spttmc_identity_across_topologies(self, tensor_mode, rank):
        tensor, mode = tensor_mode
        factors = make_factors(tensor, rank)
        for topology in TOPOLOGIES:
            ref_ctx, vec_ctx = _backend_pair(topology)
            reference = unified_spttmc(tensor, factors, mode, ctx=ref_ctx).output
            out = unified_spttmc(tensor, factors, mode, ctx=vec_ctx).output
            np.testing.assert_array_equal(out, reference)

    def test_decomposition_identity(self):
        from repro.algorithms.cp import cp_als
        from repro.algorithms.tucker import tucker_hooi
        from repro.tensor.random import random_sparse_tensor

        tensor = random_sparse_tensor((40, 12, 10), 300, seed=5)
        runs = {
            name: cp_als(
                tensor, 4, max_iterations=2, compute_fit=False, seed=3,
                ctx=ExecContext(backend=name),
            )
            for name in ("reference", "vectorized")
        }
        for a, b in zip(runs["reference"].factors, runs["vectorized"].factors):
            np.testing.assert_array_equal(a, b)
        np.testing.assert_array_equal(
            runs["reference"].weights, runs["vectorized"].weights
        )

        tuckers = {
            name: tucker_hooi(
                tensor, (3, 3, 3), max_iterations=1, seed=3,
                ctx=ExecContext(backend=name),
            )
            for name in ("reference", "vectorized")
        }
        for a, b in zip(tuckers["reference"].factors, tuckers["vectorized"].factors):
            np.testing.assert_array_equal(a, b)
        np.testing.assert_array_equal(
            tuckers["reference"].core, tuckers["vectorized"].core
        )


# ---------------------------------------------------------------------- #
# Selection plumbing
# ---------------------------------------------------------------------- #
class TestBackendSelection:
    def test_registry_contents(self):
        assert available_backends() == ("reference", "vectorized")
        assert isinstance(BACKENDS["reference"], ReferenceBackend)
        assert isinstance(BACKENDS["vectorized"], VectorizedBackend)

    def test_get_backend_resolution(self):
        assert get_backend("vectorized") is BACKENDS["vectorized"]
        instance = VectorizedBackend()
        assert get_backend(instance) is instance

    def test_get_backend_env_default(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        assert get_backend(None).name == "reference"
        monkeypatch.setenv(BACKEND_ENV_VAR, "vectorized")
        assert get_backend(None).name == "vectorized"
        monkeypatch.setenv(BACKEND_ENV_VAR, "")  # empty -> default
        assert get_backend(None).name == "reference"

    def test_get_backend_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown backend"):
            get_backend("gpu")
        with pytest.raises(TypeError):
            get_backend(42)

    def test_context_validates_backend_eagerly(self):
        with pytest.raises(ValueError, match="unknown backend"):
            ExecContext(backend="typo")
        assert ExecContext(backend="vectorized").backend == "vectorized"
        instance = ReferenceBackend()
        assert ExecContext(backend=instance).backend is instance

    def test_context_threads_backend_into_kernels(self, monkeypatch):
        """An explicit ctx backend wins over the environment default."""
        from repro.tensor.random import random_sparse_tensor

        calls = []
        original = VectorizedBackend.hadamard_segment_sums

        def spy(self, *args, **kwargs):
            calls.append(self.name)
            return original(self, *args, **kwargs)

        monkeypatch.setattr(VectorizedBackend, "hadamard_segment_sums", spy)
        monkeypatch.setenv(BACKEND_ENV_VAR, "reference")
        tensor = random_sparse_tensor((8, 6, 5), 40, seed=0)
        factors = make_factors(tensor, 3)
        unified_spmttkrp(tensor, factors, 0, ctx=ExecContext(backend="vectorized"))
        assert calls, "ctx backend did not reach the kernel numeric core"

    def test_abstract_backend_is_abstract(self):
        backend = Backend()
        with pytest.raises(NotImplementedError):
            backend.segment_reduce(np.zeros(1), np.zeros(1, dtype=int), 1)
        with pytest.raises(NotImplementedError):
            backend.slice_products(np.zeros(1), [], [])
        with pytest.raises(NotImplementedError):
            backend.dense_hadamard([], 1)
