"""Observability layer: metrics registry, event log, span attribution.

Covers the PR 8 tentpole end to end:

* the deterministic :class:`~repro.obs.metrics.MetricsRegistry` (counters,
  gauges, fixed-bucket histograms, Prometheus/JSON export);
* the structured :class:`~repro.obs.events.EventLog` and its schema;
* span-tagged timeline bookings, per-resource wait accounting, and the
  :func:`~repro.obs.attribution.attribute` fold's reconciliation identity;
* the serving stack's wiring: every busy scheduler booking tagged, the
  per-job cost breakdown on :class:`~repro.serve.job.JobResult`, and
  byte-identical telemetry across repeated runs.
"""

import json

import pytest

from repro.context import ExecContext
from repro.gpusim.timeline import SPAN_PHASES, Span, Timeline
from repro.obs.attribution import attribute
from repro.obs.events import EVENT_KINDS, EVENT_SCHEMA_VERSION, EventLog
from repro.obs.metrics import KERNEL_SECONDS_BUCKETS, MetricsRegistry
from repro.serve.workload import WorkloadSpec
from repro.tensor.random import random_sparse_tensor


# ---------------------------------------------------------------------- #
# MetricsRegistry
# ---------------------------------------------------------------------- #
class TestMetricsRegistry:
    def test_counter_accumulates_and_rejects_negative(self):
        registry = MetricsRegistry()
        counter = registry.counter("jobs_total", "jobs", ("status",))
        counter.inc(status="ok")
        counter.inc(2, status="ok")
        counter.inc(0, status="bad")
        assert counter.value(status="ok") == 3
        assert counter.value(status="bad") == 0
        with pytest.raises(ValueError, match="cannot decrease"):
            counter.inc(-1, status="ok")

    def test_label_set_is_validated(self):
        registry = MetricsRegistry()
        counter = registry.counter("c", labels=("a",))
        with pytest.raises(ValueError, match="takes labels"):
            counter.inc(b="x")
        with pytest.raises(ValueError, match="takes labels"):
            counter.inc()

    def test_gauge_overwrites(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(4.0)
        gauge.set(2.0)
        assert gauge.value() == 2.0

    def test_registration_is_idempotent_but_typed(self):
        registry = MetricsRegistry()
        first = registry.counter("x_total", "help", ("k",))
        assert registry.counter("x_total", "help", ("k",)) is first
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("x_total", "help", ("k",))
        with pytest.raises(ValueError, match="already registered"):
            registry.counter("x_total", "help", ("other",))

    def test_histogram_buckets_fixed_and_cumulative(self):
        registry = MetricsRegistry()
        hist = registry.histogram("seconds", "s", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 0.5, 5.0, 50.0):
            hist.observe(value)
        assert hist.count() == 5
        assert hist.sum() == pytest.approx(56.05)
        with pytest.raises(ValueError, match="buckets"):
            registry.histogram("seconds", "s", buckets=(0.1, 1.0))
        text = registry.to_prometheus()
        assert 'seconds_bucket{le="0.1"} 1' in text
        assert 'seconds_bucket{le="1"} 3' in text
        assert 'seconds_bucket{le="10"} 4' in text
        assert 'seconds_bucket{le="+Inf"} 5' in text
        assert "seconds_count 5" in text

    def test_histogram_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            MetricsRegistry().histogram("h", buckets=(1.0, 1.0))

    def test_prometheus_exposition_layout(self):
        registry = MetricsRegistry()
        registry.counter("a_total", "things", ("k",)).inc(3, k="v")
        registry.gauge("b").set(1.5)
        text = registry.to_prometheus()
        assert text.endswith("\n")
        assert text.splitlines() == [
            "# HELP a_total things",
            "# TYPE a_total counter",
            'a_total{k="v"} 3',
            "# TYPE b gauge",
            "b 1.5",
        ]

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "", ("k",)).inc(k='say "hi"\n')
        assert 'c_total{k="say \\"hi\\"\\n"} 1' in registry.to_prometheus()

    def test_integer_valued_samples_render_as_integers(self):
        registry = MetricsRegistry()
        registry.gauge("g").set(40.0)
        assert "g 40" in registry.to_prometheus().splitlines()

    def test_json_export_round_trips(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("a_total", "things", ("k",)).inc(2, k="v")
        path = tmp_path / "metrics.json"
        registry.write_json(str(path))
        payload = json.loads(path.read_text())
        assert payload["a_total"]["kind"] == "counter"
        assert payload["a_total"]["values"]['{k="v"}'] == 2.0

    def test_export_order_is_registration_order(self):
        registry = MetricsRegistry()
        registry.gauge("zzz").set(1)
        registry.gauge("aaa").set(1)
        assert registry.metrics == ("zzz", "aaa")
        text = registry.to_prometheus()
        assert text.index("zzz") < text.index("aaa")

    def test_kernel_profile_observer_counts_paths(self):
        tensor = random_sparse_tensor((30, 20, 10), 400, seed=0)
        from repro.kernels.unified.spttm import unified_spttm

        registry = MetricsRegistry()
        ctx = ExecContext(metrics=registry)
        import numpy as np

        matrix = np.ones((30, 4))
        unified_spttm(tensor, matrix, 0, ctx=ctx)
        unified_spttm(tensor, matrix, 0, ctx=ctx)
        launches = registry.get("repro_kernel_launches_total")
        assert launches.value(kernel="spttm", path="one-shot") == 2
        nnz = registry.get("repro_kernel_nnz_total")
        assert nnz.value(kernel="spttm", path="one-shot") == 2 * tensor.nnz
        hist = registry.get("repro_kernel_seconds")
        assert hist.count(kernel="spttm", path="one-shot") == 2
        assert hist.buckets == KERNEL_SECONDS_BUCKETS


# ---------------------------------------------------------------------- #
# EventLog
# ---------------------------------------------------------------------- #
class TestEventLog:
    def test_emit_and_jsonl_schema(self):
        log = EventLog()
        log.emit("admit", time_s=1.5, job_id="job0", tenant="t", priority=1)
        log.emit("scale", time_s=2.0, action="up", slot=3)
        lines = log.to_jsonl().splitlines()
        assert len(lines) == len(log) == 2
        first = json.loads(lines[0])
        assert list(first)[:5] == ["v", "seq", "t", "kind", "job_id"]
        assert first == {
            "v": EVENT_SCHEMA_VERSION,
            "seq": 0,
            "t": 1.5,
            "kind": "admit",
            "job_id": "job0",
            "priority": 1,
            "tenant": "t",
        }
        assert json.loads(lines[1])["job_id"] == ""

    def test_detail_fields_sorted(self):
        log = EventLog()
        event = log.emit("dispatch", time_s=0.0, job_id="job1", zz=1, aa=2)
        assert [k for k, _ in event.fields] == ["aa", "zz"]

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown event kind"):
            EventLog().emit("explode", time_s=0.0)

    def test_bad_time_rejected(self):
        log = EventLog()
        with pytest.raises(ValueError, match="finite"):
            log.emit("admit", time_s=float("nan"))
        with pytest.raises(ValueError, match="finite"):
            log.emit("admit", time_s=-1.0)

    def test_header_shadowing_rejected(self):
        with pytest.raises(ValueError, match="shadow"):
            EventLog().emit("admit", time_s=0.0, seq=9)

    def test_counts_in_vocabulary_order(self):
        log = EventLog()
        log.emit("complete", time_s=1.0)
        log.emit("admit", time_s=0.0)
        log.emit("admit", time_s=0.5)
        assert list(log.counts().items()) == [("admit", 2), ("complete", 1)]
        assert set(log.counts()) <= set(EVENT_KINDS)

    def test_write(self, tmp_path):
        log = EventLog()
        log.emit("node_failure", time_s=3.0, node=1)
        path = tmp_path / "events.jsonl"
        log.write(str(path))
        assert path.read_text() == log.to_jsonl()

    def test_mark_and_rollback_discard_trial_events(self):
        log = EventLog()
        log.emit("admit", time_s=0.0, job_id="job0")
        mark = log.mark()
        log.emit("dispatch", time_s=1.0, job_id="job0")
        log.emit("complete", time_s=2.0, job_id="job0")
        assert log.rollback(mark) == 2
        assert len(log) == 1 and log.counts() == {"admit": 1}
        # Re-emission after rollback keeps seq contiguous.
        event = log.emit("dispatch", time_s=1.5, job_id="job0")
        assert event.seq == 1
        with pytest.raises(ValueError, match="outside"):
            log.rollback(5)

    def test_retract_removes_one_and_export_renumbers(self):
        log = EventLog()
        log.emit("admit", time_s=0.0, job_id="job0")
        stale = log.emit("complete", time_s=2.0, job_id="job0")
        kept = log.emit("preempt", time_s=1.0, job_id="job0")
        log.retract(stale)
        assert [e.kind for e in log.events] == ["admit", "preempt"]
        # Handles held across a retraction stay valid (identity match).
        log.retract(kept)
        assert log.counts() == {"admit": 1}
        lines = [json.loads(line) for line in log.to_jsonl().splitlines()]
        assert [line["seq"] for line in lines] == [0]
        with pytest.raises(ValueError, match="not in log"):
            log.retract(stale)


# ---------------------------------------------------------------------- #
# Span tagging + wait accounting on the timeline
# ---------------------------------------------------------------------- #
class TestSpansAndWaits:
    def test_span_validates_phase(self):
        for phase in SPAN_PHASES:
            Span("job0", phase=phase)
        Span("job0")  # empty phase allowed
        with pytest.raises(ValueError):
            Span("job0", phase="daydreaming")

    def test_booking_wait_is_queueing_delay(self):
        timeline = Timeline()
        lane = timeline.resource("gpu0.compute", category="compute")
        first = lane.book(2.0, ready_s=0.0)
        second = lane.book(1.0, ready_s=0.5)
        assert first.wait_s == 0.0
        assert second.start_s == 2.0
        assert second.wait_s == pytest.approx(1.5)
        assert lane.wait_time == pytest.approx(1.5)
        assert timeline.wait_s("gpu0.compute") == pytest.approx(1.5)

    def test_queued_from_overrides_ready_for_wait(self):
        timeline = Timeline()
        lane = timeline.resource("nic", category="nic")
        lane.book(3.0, ready_s=0.0)
        booking = lane.book(1.0, ready_s=3.0, queued_from_s=1.0)
        # Dependency gate unchanged (starts at the horizon), but the wait
        # is measured from when the work was actually ready.
        assert booking.start_s == 3.0
        assert booking.wait_s == pytest.approx(2.0)

    def test_release_rolls_back_wait(self):
        timeline = Timeline()
        lane = timeline.resource("gpu0.copy", category="copy")
        lane.book(2.0, ready_s=0.0)
        queued = lane.book(1.0, ready_s=0.0)
        assert lane.wait_time == pytest.approx(2.0)
        timeline.release([queued])
        assert lane.wait_time == 0.0
        assert lane.free_s == 2.0

    def test_gang_wait_counted_per_member(self):
        timeline = Timeline()
        a = timeline.resource("link0", category="link")
        b = timeline.resource("link1", category="link")
        a.book(4.0, ready_s=0.0)
        gang = timeline.book_together([a, b], 1.0, ready_s=1.0)
        assert gang.start_s == 4.0
        for booking in gang.bookings:
            assert booking.wait_s == pytest.approx(3.0)

    def test_chrome_trace_carries_span_args(self):
        timeline = Timeline()
        lane = timeline.resource("gpu0.compute", category="compute")
        lane.book(1.0, span=Span("job7", kernel="spttm", phase="compute"))
        events = [
            e for e in timeline.chrome_trace()["traceEvents"] if e["ph"] == "X"
        ]
        assert events[0]["args"]["job_id"] == "job7"
        assert events[0]["args"]["kernel"] == "spttm"
        assert events[0]["args"]["phase"] == "compute"


# ---------------------------------------------------------------------- #
# Attribution fold
# ---------------------------------------------------------------------- #
class TestAttribution:
    def _tagged_timeline(self) -> Timeline:
        timeline = Timeline()
        copy = timeline.resource("gpu0.copy", category="copy")
        compute = timeline.resource("gpu0.compute", category="compute")
        nic = timeline.resource("nic", category="nic")
        copy.book(1.0, span=Span("job0", phase="stage"))
        compute.book(2.0, ready_s=1.0, span=Span("job0", phase="compute"))
        nic.book(0.5, ready_s=3.0, span=Span("job0", phase="collective"))
        copy.book(0.25, ready_s=1.0, span=Span("job1", phase="stage"))
        compute.book(1.0, ready_s=3.0, span=Span("job1", phase="compute"))
        # Non-busy reservation: holds the lane, carries no cost.
        compute.book(5.0, busy=False, label="barrier:job1")
        return timeline

    def test_reconciliation_identity(self):
        attribution = attribute(self._tagged_timeline())
        assert attribution.gap_count == 0
        assert attribution.untagged_busy_count == 0
        for cost in attribution.resources.values():
            assert cost.reconciles
            assert cost.gap_s == pytest.approx(0.0, abs=1e-12)

    def test_per_job_phase_split(self):
        attribution = attribute(self._tagged_timeline())
        assert list(attribution.jobs) == ["job0", "job1"]  # sorted by id
        job0 = attribution.jobs["job0"]
        assert job0.stage_s == pytest.approx(1.0)
        assert job0.compute_s == pytest.approx(2.0)
        assert job0.collective_s == pytest.approx(0.5)
        assert job0.busy_s == pytest.approx(3.5)
        job1 = attribution.jobs["job1"]
        assert job1.busy_s == pytest.approx(1.25)
        totals = attribution.phase_totals()
        assert totals["stage"] == pytest.approx(1.25)
        assert totals["compute"] == pytest.approx(3.0)

    def test_untagged_busy_bookings_are_gapless_but_counted(self):
        timeline = Timeline()
        lane = timeline.resource("gpu0.compute", category="compute")
        lane.book(1.0)  # busy, no span
        attribution = attribute(timeline)
        assert attribution.gap_count == 0  # untagged time is accounted
        assert attribution.untagged_busy_count == 1
        cost = attribution.resources["gpu0.compute"]
        assert cost.untagged_s == pytest.approx(1.0)
        assert cost.attributed_s == 0.0

    def test_nic_wait_deduped_per_gang_window(self):
        timeline = Timeline()
        links = [
            timeline.resource(f"link{i}", category="link") for i in range(3)
        ]
        for link in links:
            link.book(2.0)  # background traffic: the collective queues
        timeline.book_together(
            links,
            1.0,
            ready_s=2.0,
            label="allreduce:job0",
            span=Span("job0", phase="collective"),
            queued_from_s=0.5,
        )
        attribution = attribute(timeline)
        # Three members, one shared window: the wait counts once.
        assert attribution.jobs["job0"].nic_wait_s == pytest.approx(1.5)
        assert attribution.jobs["job0"].collective_s == pytest.approx(3.0)

    def test_publish_writes_expected_families(self):
        registry = MetricsRegistry()
        attribute(self._tagged_timeline()).publish(registry)
        assert registry.counter(
            "repro_attributed_seconds_total", labels=("phase",)
        ).value(phase="compute") == pytest.approx(3.0)
        assert registry.gauge("repro_attribution_gap_resources").value() == 0
        wait = registry.get("repro_resource_wait_seconds_total")
        assert wait is not None


# ---------------------------------------------------------------------- #
# Serving-stack wiring
# ---------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def instrumented_report():
    from repro.serve.engine import ServingEngine

    engine = ServingEngine()
    return engine.run_workload(WorkloadSpec(num_jobs=25, seed=7))


class TestServingTelemetry:
    def test_every_busy_booking_is_tagged(self, instrumented_report):
        attribution = instrumented_report.attribution
        assert attribution.gap_count == 0
        assert attribution.untagged_busy_count == 0

    def test_attribution_reconciles_with_timeline(self, instrumented_report):
        timeline = instrumented_report.timeline
        attribution = instrumented_report.attribution
        for resource in timeline.resources:
            cost = attribution.resources[resource.key]
            assert cost.busy_s == resource.busy_s
            assert cost.reconciles

    def test_job_results_carry_cost_breakdown(self, instrumented_report):
        for result in instrumented_report.completed:
            assert result.compute_s >= 0.0
            assert result.nic_wait_s >= 0.0
            assert result.preemption_overhead_s == 0.0  # no chaos/preemption
            cost = instrumented_report.attribution.jobs[f"job{result.job.job_id}"]
            assert result.compute_s == cost.compute_s

    def test_event_log_covers_lifecycle(self, instrumented_report):
        counts = instrumented_report.events.counts()
        submitted = len(instrumented_report.results)
        assert counts["admit"] + counts.get("reject", 0) == submitted
        assert counts["dispatch"] == counts["complete"]
        assert set(counts) <= set(EVENT_KINDS)

    def test_revoked_commitments_leave_no_stale_events(self):
        # Chaos teardown and preemption both revoke committed-ahead work;
        # the log must still read as the final schedule's true history:
        # exactly one "complete" per job that actually completed.
        from collections import Counter

        from repro.serve import ServingEngine
        from repro.serve.workload import (
            ChaosSpec,
            default_multinode_serving_cluster,
            generate_chaos,
            generate_workload,
        )

        cluster = default_multinode_serving_cluster(2)
        jobs = generate_workload(WorkloadSpec(num_jobs=30, seed=4))
        chaos = generate_chaos(ChaosSpec(seed=4), num_nodes=2)
        report = ServingEngine(cluster).run(jobs, chaos=chaos)
        counts = report.events.counts()
        assert counts["requeue"] > 0  # the chaos run exercised teardown
        completes = Counter(
            e.job_id for e in report.events.events if e.kind == "complete"
        )
        assert all(n == 1 for n in completes.values())
        assert len(completes) == len(report.completed)
        # Victims that had started keep their dispatch as history, so
        # dispatches = completes + started-then-torn-down requeues.
        assert counts["dispatch"] >= counts["complete"]
        lines = report.events.to_jsonl().splitlines()
        assert [json.loads(line)["seq"] for line in lines] == list(
            range(len(lines))
        )

    def test_preempted_victims_complete_once(self):
        from collections import Counter

        from repro.serve import AutoscalerSpec, ServingEngine

        engine = ServingEngine(
            policy="deadline", autoscale=AutoscalerSpec(min_devices=1)
        )
        report = engine.run_workload(
            WorkloadSpec(num_jobs=60, seed=0, latency_slo_fraction=0.3)
        )
        counts = report.events.counts()
        assert counts["preempt"] > 0  # the workload exercised preemption
        completes = Counter(
            e.job_id for e in report.events.events if e.kind == "complete"
        )
        assert all(n == 1 for n in completes.values())
        assert len(completes) == len(report.completed)
        # A full-release victim's phantom dispatch is retracted and its
        # re-dispatch re-emitted; a trial re-commit replaces its own pair;
        # a mid-chunk victim keeps its dispatch and completes via resume —
        # so every completed job pairs one start with one complete.
        starts = counts["dispatch"] + counts.get("resume", 0)
        mid_chunk = sum(1 for e in report.events.events if e.kind == "resume")
        assert starts == counts["complete"] + mid_chunk
        assert report.attribution.gap_count == 0

    def test_registry_covers_all_layers(self, instrumented_report):
        names = instrumented_report.metrics.metrics
        assert "repro_kernel_launches_total" in names
        assert "repro_attributed_seconds_total" in names
        assert "repro_serve_jobs_total" in names
        jobs = instrumented_report.metrics.get("repro_serve_jobs_total")
        assert jobs.value(status="completed") == len(instrumented_report.completed)

    def test_telemetry_is_byte_deterministic(self):
        from repro.serve.engine import ServingEngine

        def collect():
            report = ServingEngine().run_workload(WorkloadSpec(num_jobs=25, seed=7))
            return report.metrics.to_prometheus(), report.events.to_jsonl()

        assert collect() == collect()

    def test_telemetry_does_not_perturb_schedule(self, instrumented_report):
        # The pre-observability invariant: passing caller-owned sinks (or
        # none at all at the scheduler layer) yields the same schedule.
        from repro.serve.engine import ServingEngine
        from repro.serve.workload import generate_workload

        jobs = generate_workload(WorkloadSpec(num_jobs=25, seed=7))
        outcome = ServingEngine().scheduler.run(jobs)  # no sinks
        assert [r.finish_s for r in outcome.results] == [
            r.finish_s for r in instrumented_report.results
        ]

    def test_decomposition_metrics_published(self):
        from repro.algorithms.cp import cp_als

        registry = MetricsRegistry()
        tensor = random_sparse_tensor((20, 15, 10), 300, seed=1)
        cp_als(tensor, 4, max_iterations=2, ctx=ExecContext(metrics=registry))
        runs = registry.get("repro_decomposition_runs_total")
        assert runs.value(algorithm="cp_als") == 1
        iters = registry.get("repro_decomposition_iterations_total")
        assert iters.value(algorithm="cp_als") == 2


# ---------------------------------------------------------------------- #
# ServingReport.render tables (PR 8 satellite)
# ---------------------------------------------------------------------- #
class TestServingReportRender:
    def test_render_tables_and_sections(self, instrumented_report):
        text = instrumented_report.render()
        # Summary lines.
        assert "Serving report" in text
        assert "jobs: 25 submitted" in text
        assert "preproc cache:" in text
        # Observability sections.
        assert "attribution:" in text
        assert "0 unreconciled resources" in text
        assert "telemetry:" in text
        assert "events logged" in text
        # The per-device utilization table: header row, separator, one row
        # per device with the busy/utilization columns filled.
        lines = text.splitlines()
        header = next(line for line in lines if line.startswith("| slot"))
        for column in ("slot", "device", "jobs", "busy", "utilization"):
            assert column in header
        separator = lines[lines.index(header) + 1]
        assert set(separator) <= {"|", "-", " "}
        rows = [
            line
            for line in lines[lines.index(header) + 2 :]
            if line.startswith("|")
        ]
        assert len(rows) == instrumented_report.cluster.num_devices
        for slot, row in enumerate(rows):
            cells = [c.strip() for c in row.strip("|").split("|")]
            assert cells[0] == str(slot)
            assert cells[-1].endswith("%")

    def test_render_reports_rejections(self):
        from repro.serve.engine import ServingEngine

        engine = ServingEngine(max_queue_depth=1)
        report = engine.run_workload(WorkloadSpec(num_jobs=25, seed=7))
        if report.rejected:  # queue bound makes shedding likely, not certain
            text = report.render()
            assert "rejected x" in text
