"""Tests for the ParTI-omp CPU baseline kernels."""

import numpy as np

from repro.cpusim.cpu import CPU_I7_5820K
from repro.kernels.baselines.parti_omp import parti_omp_spmttkrp, parti_omp_spttm
from repro.kernels.unified import unified_spmttkrp, unified_spttm
from repro.tensor.ops import mttkrp_dense, ttm_dense
from repro.tensor.random import random_factors


class TestCorrectness:
    def test_spttm_matches_dense(self, small_tensor, small_factors):
        dense = small_tensor.to_dense()
        for mode in range(3):
            result = parti_omp_spttm(small_tensor, small_factors[mode], mode)
            np.testing.assert_allclose(
                result.output.to_dense(), ttm_dense(dense, small_factors[mode], mode), atol=1e-10
            )

    def test_spmttkrp_matches_dense(self, small_tensor, small_factors):
        dense = small_tensor.to_dense()
        for mode in range(3):
            result = parti_omp_spmttkrp(small_tensor, small_factors, mode)
            np.testing.assert_allclose(
                result.output, mttkrp_dense(dense, small_factors, mode), atol=1e-10
            )


class TestProfile:
    def test_threads_speed_up_spttm(self, skewed_tensor):
        u = random_factors(skewed_tensor.shape, 8, seed=0)[2]
        one = parti_omp_spttm(skewed_tensor, u, 2, num_threads=1)
        twelve = parti_omp_spttm(skewed_tensor, u, 2, num_threads=12)
        assert twelve.estimated_time_s < one.estimated_time_s

    def test_threads_speed_up_spmttkrp(self, skewed_tensor):
        factors = random_factors(skewed_tensor.shape, 8, seed=1)
        one = parti_omp_spmttkrp(skewed_tensor, factors, 0, num_threads=1)
        twelve = parti_omp_spmttkrp(skewed_tensor, factors, 0, num_threads=12)
        assert twelve.estimated_time_s < one.estimated_time_s

    def test_gpu_unified_faster_than_cpu(self, medium_tensor):
        """The Figure 6 relationship: the unified GPU kernel beats ParTI-omp
        (on workloads large enough to amortise kernel launches)."""
        factors = random_factors(medium_tensor.shape, 16, seed=2)
        cpu_time = parti_omp_spmttkrp(medium_tensor, factors, 0).estimated_time_s
        gpu_time = unified_spmttkrp(medium_tensor, factors, 0).estimated_time_s
        assert gpu_time < cpu_time

        u = factors[2]
        cpu_time = parti_omp_spttm(medium_tensor, u, 2).estimated_time_s
        gpu_time = unified_spttm(medium_tensor, u, 2).estimated_time_s
        assert gpu_time < cpu_time

    def test_default_thread_count_is_cpu_threads(self, skewed_tensor):
        u = random_factors(skewed_tensor.shape, 4, seed=3)[2]
        result = parti_omp_spttm(skewed_tensor, u, 2)
        assert result.profile.breakdown["threads"] <= CPU_I7_5820K.threads

    def test_two_step_charges_intermediate_traffic(self, skewed_tensor):
        factors = random_factors(skewed_tensor.shape, 8, seed=4)
        mttkrp = parti_omp_spmttkrp(skewed_tensor, factors, 0)
        spttm = parti_omp_spttm(skewed_tensor, factors[2], 2)
        # The two-step MTTKRP moves more data than one SpTTM at equal rank.
        assert (
            mttkrp.profile.counters.mem_total_bytes
            > spttm.profile.counters.mem_total_bytes
        )
