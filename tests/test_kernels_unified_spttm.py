"""Tests for the unified F-COO SpTTM kernel."""

import numpy as np
import pytest

from repro.formats.fcoo import FCOOTensor
from repro.gpusim.counters import KernelProfile
from repro.kernels.unified import unified_spttm
from repro.tensor.ops import ttm_dense
from repro.tensor.random import random_factors, random_sparse_tensor
from repro.tensor.sparse import SparseTensor


class TestCorrectness:
    def test_matches_dense_every_mode(self, small_tensor, small_factors):
        dense = small_tensor.to_dense()
        for mode in range(3):
            result = unified_spttm(small_tensor, small_factors[mode], mode)
            np.testing.assert_allclose(
                result.output.to_dense(),
                ttm_dense(dense, small_factors[mode], mode),
                rtol=1e-5,
                atol=1e-6,
            )

    def test_matches_dense_fourth_order(self, fourth_order_tensor):
        rng = np.random.default_rng(0)
        dense = fourth_order_tensor.to_dense()
        for mode in range(4):
            u = rng.random((fourth_order_tensor.shape[mode], 3))
            result = unified_spttm(fourth_order_tensor, u, mode)
            np.testing.assert_allclose(
                result.output.to_dense(), ttm_dense(dense, u, mode), rtol=1e-5, atol=1e-6
            )

    def test_accepts_preencoded_fcoo(self, small_tensor, small_factors):
        fcoo = FCOOTensor.from_sparse(small_tensor, "spttm", 2)
        direct = unified_spttm(small_tensor, small_factors[2], 2)
        via_fcoo = unified_spttm(fcoo, small_factors[2], 2)
        assert via_fcoo.output.allclose(direct.output)

    def test_rejects_wrong_encoding(self, small_tensor, small_factors):
        fcoo = FCOOTensor.from_sparse(small_tensor, "spmttkrp", 0)
        with pytest.raises(ValueError, match="encoded for"):
            unified_spttm(fcoo, small_factors[0], 0)

    def test_empty_tensor(self):
        result = unified_spttm(SparseTensor.empty((4, 5, 6)), np.ones((6, 3)), 2)
        assert result.output.num_fibers == 0
        assert result.estimated_time_s >= 0

    def test_rank_one_matrix(self, small_tensor):
        u = np.ones((small_tensor.shape[2], 1))
        result = unified_spttm(small_tensor, u, 2)
        assert result.output.fiber_length == 1


class TestProfile:
    def test_profile_populated(self, small_tensor, small_factors):
        result = unified_spttm(small_tensor, small_factors[2], 2)
        assert isinstance(result.profile, KernelProfile)
        assert result.estimated_time_s > 0
        assert result.profile.counters.gmem_read_bytes > 0
        assert result.profile.counters.kernel_launches >= 1
        assert result.profile.device_memory_bytes > 0

    def test_perfect_load_balance(self, skewed_tensor):
        rng = np.random.default_rng(0)
        u = rng.random((skewed_tensor.shape[0], 8))
        result = unified_spttm(skewed_tensor, u, 0)
        assert result.profile.counters.imbalance_factor == pytest.approx(1.0)

    def test_time_scales_with_nnz(self):
        rng_rank = 8
        small = random_sparse_tensor((200, 200, 200), 5_000, seed=0)
        large = random_sparse_tensor((200, 200, 200), 100_000, seed=0)
        u_small = random_factors(small.shape, rng_rank, seed=1)[2]
        t_small = unified_spttm(small, u_small, 2).estimated_time_s
        t_large = unified_spttm(large, u_small, 2).estimated_time_s
        assert t_large > t_small

    def test_fused_no_slower_than_unfused(self, small_tensor, small_factors):
        fused = unified_spttm(small_tensor, small_factors[2], 2, fused=True)
        unfused = unified_spttm(small_tensor, small_factors[2], 2, fused=False)
        assert fused.estimated_time_s <= unfused.estimated_time_s
        assert (
            fused.profile.counters.gmem_total_bytes
            <= unfused.profile.counters.gmem_total_bytes
        )
        np.testing.assert_allclose(
            fused.output.fiber_values, unfused.output.fiber_values
        )

    def test_launch_parameters_respected(self, small_tensor, small_factors):
        result = unified_spttm(
            small_tensor, small_factors[2], 2, block_size=64, threadlen=16
        )
        assert result.estimated_time_s > 0

    def test_atomics_limited_to_block_carries(self, skewed_tensor):
        """The segmented scan removes per-non-zero atomics: the number of
        atomic operations must be far below nnz * rank (what the COO baseline
        issues)."""
        rank = 16
        u = np.random.default_rng(1).random((skewed_tensor.shape[2], rank))
        result = unified_spttm(skewed_tensor, u, 2)
        assert result.profile.counters.atomic_ops < skewed_tensor.nnz * rank / 10
