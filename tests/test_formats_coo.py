"""Tests for repro.formats.coo.COOTensor."""

import numpy as np
import pytest

from repro.formats.coo import COOTensor
from repro.tensor.random import random_sparse_tensor
from repro.tensor.sparse import SparseTensor


class TestCOOTensor:
    def test_round_trip(self, small_tensor):
        # Values are stored in device single precision, so compare at float32
        # accuracy.
        coo = COOTensor.from_sparse(small_tensor)
        assert coo.to_sparse().allclose(small_tensor, rtol=1e-6, atol=1e-6)

    def test_round_trip_every_sort_mode(self, small_tensor):
        for mode in range(small_tensor.order):
            coo = COOTensor.from_sparse(small_tensor, sort_mode=mode)
            assert coo.to_sparse().allclose(small_tensor, rtol=1e-6, atol=1e-6)

    def test_sorted_by_sort_mode(self, small_tensor):
        coo = COOTensor.from_sparse(small_tensor, sort_mode=1)
        primary = coo.mode_indices(1)
        assert (np.diff(primary.astype(np.int64)) >= 0).all()

    def test_storage_bytes_32bit(self, small_tensor):
        coo = COOTensor.from_sparse(small_tensor)
        expected = small_tensor.nnz * (small_tensor.order * 4 + 4)
        assert coo.storage_bytes() == expected

    def test_storage_bytes_64bit(self, small_tensor):
        coo = COOTensor.from_sparse(small_tensor, index_dtype=np.uint64)
        expected = small_tensor.nnz * (small_tensor.order * 8 + 4)
        assert coo.storage_bytes() == expected

    def test_index_dtype_overflow_rejected(self):
        tensor = random_sparse_tensor((70000, 4, 4), 100, seed=0)
        with pytest.raises(ValueError, match="does not fit"):
            COOTensor.from_sparse(tensor, index_dtype=np.uint16)

    def test_empty_tensor(self):
        coo = COOTensor.from_sparse(SparseTensor.empty((3, 4)))
        assert coo.nnz == 0
        assert coo.to_sparse().nnz == 0

    def test_mode_indices_bounds(self, small_tensor):
        coo = COOTensor.from_sparse(small_tensor)
        for mode in range(small_tensor.order):
            idx = coo.mode_indices(mode)
            assert idx.max() < small_tensor.shape[mode]

    def test_values_single_precision(self, small_tensor):
        coo = COOTensor.from_sparse(small_tensor)
        assert coo.values.dtype == np.float32
