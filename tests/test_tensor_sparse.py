"""Tests for repro.tensor.sparse.SparseTensor."""

import numpy as np
import pytest

from repro.tensor.sparse import SparseTensor


def make_simple():
    indices = np.array([[0, 0, 0], [1, 1, 1], [0, 1, 2]])
    values = np.array([1.0, 2.0, 3.0])
    return SparseTensor(indices, values, (2, 2, 3))


class TestConstruction:
    def test_basic_properties(self):
        t = make_simple()
        assert t.shape == (2, 2, 3)
        assert t.order == 3
        assert t.nnz == 3
        assert t.size == 12
        assert t.density == pytest.approx(3 / 12)

    def test_duplicates_are_summed(self):
        indices = np.array([[0, 0], [0, 0], [1, 1]])
        t = SparseTensor(indices, np.array([1.0, 2.0, 5.0]), (2, 2))
        assert t.nnz == 2
        assert t.to_coords_dict()[(0, 0)] == pytest.approx(3.0)

    def test_sorted_lexicographically(self):
        indices = np.array([[1, 1, 1], [0, 0, 0]])
        t = SparseTensor(indices, np.array([2.0, 1.0]), (2, 2, 2))
        np.testing.assert_array_equal(np.asarray(t.indices)[0], [0, 0, 0])

    def test_out_of_bounds_rejected(self):
        with pytest.raises(ValueError, match="out of bounds"):
            SparseTensor(np.array([[0, 5]]), np.array([1.0]), (2, 3))

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            SparseTensor(np.array([[0, -1]]), np.array([1.0]), (2, 3))

    def test_mismatched_values_rejected(self):
        with pytest.raises(ValueError):
            SparseTensor(np.array([[0, 0]]), np.array([1.0, 2.0]), (2, 2))

    def test_wrong_index_columns_rejected(self):
        with pytest.raises(ValueError):
            SparseTensor(np.array([[0, 0]]), np.array([1.0]), (2, 2, 2))

    def test_non_numeric_values_rejected(self):
        with pytest.raises(TypeError):
            SparseTensor(np.array([[0, 0]]), np.array(["a"]), (2, 2))

    def test_empty_tensor(self):
        t = SparseTensor.empty((3, 4))
        assert t.nnz == 0
        assert t.density == 0.0
        assert t.to_dense().shape == (3, 4)

    def test_from_dense_round_trip(self):
        rng = np.random.default_rng(0)
        dense = rng.random((4, 5, 3))
        dense[dense < 0.6] = 0.0
        t = SparseTensor.from_dense(dense)
        np.testing.assert_allclose(t.to_dense(), dense)

    def test_from_dense_tolerance(self):
        dense = np.array([[1e-12, 1.0], [0.0, 2.0]])
        t = SparseTensor.from_dense(dense, tol=1e-9)
        assert t.nnz == 2

    def test_indices_are_read_only(self):
        t = make_simple()
        with pytest.raises(ValueError):
            t.indices[0, 0] = 5
        with pytest.raises(ValueError):
            t.values[0] = 5.0


class TestConversions:
    def test_to_dense(self):
        t = make_simple()
        dense = t.to_dense()
        assert dense[0, 0, 0] == 1.0
        assert dense[1, 1, 1] == 2.0
        assert dense[0, 1, 2] == 3.0
        assert dense.sum() == pytest.approx(6.0)

    def test_to_dense_refuses_huge(self):
        t = SparseTensor(np.array([[0, 0, 0]]), np.array([1.0]), (10**4, 10**4, 10**4))
        with pytest.raises(MemoryError):
            t.to_dense()

    def test_unfold_matches_dense_unfold(self):
        from repro.tensor.dense import unfold_dense

        t = make_simple()
        dense = t.to_dense()
        for mode in range(3):
            sparse_unfold = t.unfold(mode).toarray()
            np.testing.assert_allclose(sparse_unfold, unfold_dense(dense, mode))

    def test_unfolded_column_indices_bounds(self):
        t = make_simple()
        cols = t.unfolded_column_indices(0)
        assert cols.max() < 2 * 3
        assert cols.min() >= 0


class TestReordering:
    def test_sort_by_modes_keeps_content(self):
        t = make_simple()
        sorted_t = t.sort_by_modes([2, 1, 0])
        assert sorted_t.allclose(t)

    def test_sort_by_modes_primary_key(self):
        t = make_simple()
        sorted_t = t.sort_by_modes([2, 0, 1])
        k = np.asarray(sorted_t.indices)[:, 2]
        assert (np.diff(k) >= 0).all()

    def test_sort_invalid_permutation(self):
        t = make_simple()
        with pytest.raises(ValueError):
            t.sort_by_modes([0, 0, 1])

    def test_permute_modes(self):
        t = make_simple()
        p = t.permute_modes([2, 0, 1])
        assert p.shape == (3, 2, 2)
        np.testing.assert_allclose(p.to_dense(), np.moveaxis(t.to_dense(), [0, 1, 2], [1, 2, 0]))

    def test_permute_invalid(self):
        with pytest.raises(ValueError):
            make_simple().permute_modes([0, 1])

    def test_scale(self):
        t = make_simple()
        np.testing.assert_allclose(t.scale(2.0).to_dense(), 2.0 * t.to_dense())

    def test_astype(self):
        t = make_simple().astype(np.float32)
        assert t.nnz == 3


class TestStructureQueries:
    def test_fiber_counts_sum_to_nnz(self):
        t = make_simple()
        for mode in range(3):
            assert t.fiber_counts(mode).sum() == t.nnz

    def test_num_fibers_matches_distinct(self):
        t = make_simple()
        # Mode-2 fibers are identified by (i, j): (0,0), (1,1), (0,1).
        assert t.num_fibers(2) == 3

    def test_slice_counts(self):
        t = make_simple()
        assert t.slice_counts(0).sum() == t.nnz
        assert t.num_slices(0) == 2

    def test_norm(self):
        t = make_simple()
        assert t.norm() == pytest.approx(np.sqrt(1 + 4 + 9))

    def test_empty_structure_queries(self):
        t = SparseTensor.empty((4, 5, 6))
        assert t.num_fibers(0) == 0
        assert t.num_slices(1) == 0
        assert t.norm() == 0.0


class TestComparison:
    def test_allclose_self(self):
        t = make_simple()
        assert t.allclose(t)

    def test_allclose_ignores_ordering(self):
        indices = np.array([[0, 1, 2], [1, 1, 1], [0, 0, 0]])
        other = SparseTensor(indices, np.array([3.0, 2.0, 1.0]), (2, 2, 3), sort=False)
        assert make_simple().allclose(other)

    def test_allclose_detects_value_difference(self):
        t = make_simple()
        other = SparseTensor(np.asarray(t.indices), np.asarray(t.values) * 1.1, t.shape)
        assert not t.allclose(other)

    def test_allclose_detects_shape_difference(self):
        t = make_simple()
        other = SparseTensor(np.asarray(t.indices), np.asarray(t.values), (2, 2, 4))
        assert not t.allclose(other)

    def test_allclose_ignores_explicit_zeros(self):
        a = SparseTensor(np.array([[0, 0], [1, 1]]), np.array([1.0, 0.0]), (2, 2))
        b = SparseTensor(np.array([[0, 0]]), np.array([1.0]), (2, 2))
        assert a.allclose(b)

    def test_allclose_type_error(self):
        with pytest.raises(TypeError):
            make_simple().allclose("not a tensor")
