"""Tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, main


class TestCli:
    def test_list_default(self, capsys):
        assert main([]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_list_explicit(self, capsys):
        assert main(["list"]) == 0
        assert "table2" in capsys.readouterr().out

    def test_single_experiment(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "F-COO" in out

    def test_platform_table(self, capsys):
        assert main(["table3"]) == 0
        assert "Titan X" in capsys.readouterr().out

    def test_multiple_experiments(self, capsys):
        assert main(["table3", "table4"]) == 0
        out = capsys.readouterr().out
        assert "Titan X" in out and "brainq" in out

    def test_rank_option(self, capsys):
        assert main(["fig9", "--rank", "8"]) == 0
        assert "rank=8" in capsys.readouterr().out

    def test_unknown_experiment(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["figure42"])
        assert exc.value.code != 0
        assert "unknown experiment" in capsys.readouterr().err

    def test_experiment_registry_covers_all_bench_artifacts(self):
        expected = {
            "table2", "table3", "table4", "table5",
            "fig5", "fig6a", "fig6b", "fig7", "fig8", "fig9", "fig10",
            "streaming", "scaling", "serve",
        }
        assert set(EXPERIMENTS) == expected

    def test_serve_zero_jobs(self, capsys):
        assert main(["serve", "--jobs", "0"]) == 0
        out = capsys.readouterr().out
        assert "0 submitted" in out
        assert "0 completed" in out

    def test_serve_chaos_run(self, capsys):
        assert main(
            ["serve", "--jobs", "20", "--nodes", "2", "--chaos-seed", "4"]
        ) == 0
        assert "node losses" in capsys.readouterr().out

    def test_chaos_seed_requires_multinode(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["serve", "--chaos-seed", "1"])
        assert exc.value.code != 0
        assert "--nodes >= 2" in capsys.readouterr().err

    def test_chaos_seed_requires_serve(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["table2", "--chaos-seed", "1", "--nodes", "2"])
        assert exc.value.code != 0
        assert "serve" in capsys.readouterr().err

    def test_fail_node_requires_chaos_seed(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["serve", "--nodes", "2", "--fail-node", "0"])
        assert exc.value.code != 0
        assert "--chaos-seed" in capsys.readouterr().err
