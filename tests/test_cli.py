"""Tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, main


class TestCli:
    def test_list_default(self, capsys):
        assert main([]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_list_explicit(self, capsys):
        assert main(["list"]) == 0
        assert "table2" in capsys.readouterr().out

    def test_single_experiment(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "F-COO" in out

    def test_platform_table(self, capsys):
        assert main(["table3"]) == 0
        assert "Titan X" in capsys.readouterr().out

    def test_multiple_experiments(self, capsys):
        assert main(["table3", "table4"]) == 0
        out = capsys.readouterr().out
        assert "Titan X" in out and "brainq" in out

    def test_rank_option(self, capsys):
        assert main(["fig9", "--rank", "8"]) == 0
        assert "rank=8" in capsys.readouterr().out

    def test_unknown_experiment(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["figure42"])
        assert exc.value.code != 0
        assert "unknown experiment" in capsys.readouterr().err

    def test_experiment_registry_covers_all_bench_artifacts(self):
        expected = {
            "table2", "table3", "table4", "table5",
            "fig5", "fig6a", "fig6b", "fig7", "fig8", "fig9", "fig10",
            "streaming", "scaling", "serve",
        }
        assert set(EXPERIMENTS) == expected

    def test_serve_zero_jobs(self, capsys):
        assert main(["serve", "--jobs", "0"]) == 0
        out = capsys.readouterr().out
        assert "0 submitted" in out
        assert "0 completed" in out

    def test_serve_chaos_run(self, capsys):
        assert main(
            ["serve", "--jobs", "20", "--nodes", "2", "--chaos-seed", "4"]
        ) == 0
        assert "node losses" in capsys.readouterr().out

    def test_serve_nic_policy_smoke(self, capsys):
        assert main(
            [
                "serve", "--jobs", "10", "--nodes", "2",
                "--adaptive", "--nic-policy", "fair",
            ]
        ) == 0
        assert "Serving report" in capsys.readouterr().out

    def test_adaptive_requires_serve(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["table2", "--adaptive"])
        assert exc.value.code != 0
        assert "serve" in capsys.readouterr().err

    def test_nic_policy_requires_serve(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["table2", "--nic-policy", "fair"])
        assert exc.value.code != 0
        assert "serve" in capsys.readouterr().err

    def test_unknown_nic_policy_rejected(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["serve", "--nic-policy", "weighted"])
        assert exc.value.code != 0
        assert "invalid choice" in capsys.readouterr().err

    def test_chaos_seed_requires_multinode(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["serve", "--chaos-seed", "1"])
        assert exc.value.code != 0
        assert "--nodes >= 2" in capsys.readouterr().err

    def test_chaos_seed_requires_serve(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["table2", "--chaos-seed", "1", "--nodes", "2"])
        assert exc.value.code != 0
        assert "serve" in capsys.readouterr().err

    def test_fail_node_requires_chaos_seed(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["serve", "--nodes", "2", "--fail-node", "0"])
        assert exc.value.code != 0
        assert "--chaos-seed" in capsys.readouterr().err

    def test_serve_writes_metrics_and_events(self, capsys, tmp_path):
        metrics = tmp_path / "out.prom"
        events = tmp_path / "events.jsonl"
        assert main(
            [
                "serve", "--jobs", "10",
                "--metrics", str(metrics),
                "--events", str(events),
            ]
        ) == 0
        out = capsys.readouterr().out
        assert str(metrics) in out and str(events) in out
        text = metrics.read_text()
        assert "# TYPE repro_serve_jobs_total counter" in text
        assert text.endswith("\n")
        lines = events.read_text().splitlines()
        assert lines
        import json

        assert all(json.loads(line)["v"] == 1 for line in lines)

    @pytest.mark.parametrize("flag", ["--metrics", "--events"])
    def test_telemetry_flags_require_serve(self, capsys, flag, tmp_path):
        with pytest.raises(SystemExit) as exc:
            main(["table2", flag, str(tmp_path / "x")])
        assert exc.value.code != 0
        assert "serve" in capsys.readouterr().err

    @pytest.mark.parametrize("flag", ["--metrics", "--events", "--trace"])
    def test_output_paths_validated_up_front(self, capsys, flag, tmp_path):
        bad = tmp_path / "missing-dir" / "out"
        with pytest.raises(SystemExit) as exc:
            main(["serve", "--jobs", "1", flag, str(bad)])
        assert exc.value.code != 0
        assert "cannot write" in capsys.readouterr().err
