"""Tests for the unified SpTTMc (tensor-times-matrix chain) kernel."""

import numpy as np
import pytest

from repro.formats.fcoo import FCOOTensor
from repro.kernels.unified import unified_spttmc
from repro.tensor.ops import ttmc_dense
from repro.tensor.random import random_factors
from repro.tensor.sparse import SparseTensor


class TestCorrectness:
    def test_matches_dense_every_mode(self, small_tensor, small_factors):
        dense = small_tensor.to_dense()
        for mode in range(3):
            result = unified_spttmc(small_tensor, small_factors, mode)
            np.testing.assert_allclose(
                result.output, ttmc_dense(dense, small_factors, mode), rtol=1e-5, atol=1e-6
            )

    def test_mixed_ranks(self, small_tensor):
        rng = np.random.default_rng(0)
        factors = [rng.random((s, r)) for s, r in zip(small_tensor.shape, (2, 3, 4))]
        result = unified_spttmc(small_tensor, factors, 0)
        assert result.output.shape == (small_tensor.shape[0], 12)
        np.testing.assert_allclose(
            result.output,
            ttmc_dense(small_tensor.to_dense(), factors, 0),
            rtol=1e-5,
            atol=1e-6,
        )

    def test_fourth_order(self, fourth_order_tensor):
        rng = np.random.default_rng(1)
        factors = [rng.random((s, 2)) for s in fourth_order_tensor.shape]
        dense = fourth_order_tensor.to_dense()
        for mode in range(4):
            result = unified_spttmc(fourth_order_tensor, factors, mode)
            np.testing.assert_allclose(
                result.output, ttmc_dense(dense, factors, mode), rtol=1e-5, atol=1e-6
            )

    def test_accepts_spmttkrp_encoding(self, small_tensor, small_factors):
        """SpTTMc and SpMTTKRP share the mode classification (Table I), so a
        tensor encoded for either works."""
        fcoo = FCOOTensor.from_sparse(small_tensor, "spmttkrp", 0)
        result = unified_spttmc(fcoo, small_factors, 0)
        np.testing.assert_allclose(
            result.output,
            ttmc_dense(small_tensor.to_dense(), small_factors, 0),
            rtol=1e-5,
            atol=1e-6,
        )

    def test_rejects_wrong_mode_encoding(self, small_tensor, small_factors):
        fcoo = FCOOTensor.from_sparse(small_tensor, "spttmc", 1)
        with pytest.raises(ValueError):
            unified_spttmc(fcoo, small_factors, 0)

    def test_empty_tensor(self):
        empty = SparseTensor.empty((3, 4, 5))
        factors = [np.ones((s, 2)) for s in (3, 4, 5)]
        result = unified_spttmc(empty, factors, 0)
        assert result.output.shape == (3, 4)
        assert (result.output == 0).all()


class TestProfile:
    def test_profile_populated(self, small_tensor, small_factors):
        result = unified_spttmc(small_tensor, small_factors, 0)
        assert result.estimated_time_s > 0
        assert result.profile.counters.flops > 0

    def test_wider_output_costs_more(self, skewed_tensor):
        narrow = random_factors(skewed_tensor.shape, 2, seed=0)
        wide = random_factors(skewed_tensor.shape, 8, seed=0)
        t_narrow = unified_spttmc(skewed_tensor, narrow, 0).estimated_time_s
        t_wide = unified_spttmc(skewed_tensor, wide, 0).estimated_time_s
        assert t_wide > t_narrow
