"""Tests for the (BLOCK_SIZE, threadlen) auto-tuner."""

import numpy as np
import pytest

from repro.autotune import tune_unified
from repro.formats.mode_encoding import OperationKind
from repro.tensor.random import random_sparse_tensor


@pytest.fixture(scope="module")
def tensor():
    return random_sparse_tensor((40, 300, 30), 15_000, seed=0, distribution="power")


class TestTuner:
    def test_surface_shape(self, tensor):
        result = tune_unified(
            tensor,
            "spmttkrp",
            0,
            rank=8,
            block_sizes=(64, 128),
            threadlens=(8, 16, 32),
        )
        assert result.times.shape == (2, 3)
        assert (result.times > 0).all()

    def test_best_is_minimum(self, tensor):
        result = tune_unified(
            tensor, "spttm", 2, rank=8, block_sizes=(64, 256), threadlens=(8, 64)
        )
        best_bs, best_tl = result.best
        i = result.block_sizes.index(best_bs)
        j = result.threadlens.index(best_tl)
        assert result.times[i, j] == result.best_time
        assert result.best_time == result.times.min()

    def test_deterministic(self, tensor):
        kwargs = dict(rank=4, block_sizes=(64, 128), threadlens=(8, 16))
        a = tune_unified(tensor, "spmttkrp", 0, **kwargs)
        b = tune_unified(tensor, "spmttkrp", 0, **kwargs)
        np.testing.assert_allclose(a.times, b.times)

    def test_operation_enum_accepted(self, tensor):
        result = tune_unified(
            tensor, OperationKind.SPTTM, 2, rank=4, block_sizes=(64,), threadlens=(8,)
        )
        assert result.best == (64, 8)

    def test_render_contains_axes(self, tensor):
        result = tune_unified(
            tensor, "spmttkrp", 0, rank=4, block_sizes=(64, 128), threadlens=(8, 16)
        )
        text = result.render()
        assert "BLOCK_SIZE" in text
        assert "128" in text

    def test_unsupported_operation(self, tensor):
        with pytest.raises(ValueError):
            tune_unified(tensor, "spttmc", 0, rank=4)
