"""Tests for the (BLOCK_SIZE, threadlen) auto-tuner."""

import numpy as np
import pytest

from repro.autotune import tune_unified
from repro.formats.mode_encoding import OperationKind
from repro.tensor.random import random_sparse_tensor


@pytest.fixture(scope="module")
def tensor():
    return random_sparse_tensor((40, 300, 30), 15_000, seed=0, distribution="power")


class TestTuner:
    def test_surface_shape(self, tensor):
        result = tune_unified(
            tensor,
            "spmttkrp",
            0,
            rank=8,
            block_sizes=(64, 128),
            threadlens=(8, 16, 32),
        )
        assert result.times.shape == (2, 3)
        assert (result.times > 0).all()

    def test_best_is_minimum(self, tensor):
        result = tune_unified(
            tensor, "spttm", 2, rank=8, block_sizes=(64, 256), threadlens=(8, 64)
        )
        best_bs, best_tl = result.best
        i = result.block_sizes.index(best_bs)
        j = result.threadlens.index(best_tl)
        assert result.times[i, j] == result.best_time
        assert result.best_time == result.times.min()

    def test_deterministic(self, tensor):
        kwargs = dict(rank=4, block_sizes=(64, 128), threadlens=(8, 16))
        a = tune_unified(tensor, "spmttkrp", 0, **kwargs)
        b = tune_unified(tensor, "spmttkrp", 0, **kwargs)
        np.testing.assert_allclose(a.times, b.times)

    def test_operation_enum_accepted(self, tensor):
        result = tune_unified(
            tensor, OperationKind.SPTTM, 2, rank=4, block_sizes=(64,), threadlens=(8,)
        )
        assert result.best == (64, 8)

    def test_render_contains_axes(self, tensor):
        result = tune_unified(
            tensor, "spmttkrp", 0, rank=4, block_sizes=(64, 128), threadlens=(8, 16)
        )
        text = result.render()
        assert "BLOCK_SIZE" in text
        assert "128" in text

    def test_unknown_operation_rejected(self, tensor):
        with pytest.raises(ValueError):
            tune_unified(tensor, "spfoo", 0, rank=4)

    def test_empty_streaming_axes_rejected(self, tensor):
        with pytest.raises(ValueError):
            tune_unified(tensor, "spttm", 2, rank=4, num_streams=())
        with pytest.raises(ValueError):
            tune_unified(tensor, "spttm", 2, rank=4, chunk_sizes=())


class TestSpTTMcTuning:
    def test_spttmc_surface_shape(self, tensor):
        result = tune_unified(
            tensor,
            OperationKind.SPTTMC,
            0,
            rank=3,
            block_sizes=(64, 128),
            threadlens=(8, 16, 32),
        )
        assert result.operation is OperationKind.SPTTMC
        assert result.times.shape == (2, 3)
        assert result.times_full.shape == (2, 3, 1, 1)
        assert (result.times > 0).all()

    def test_spttmc_best_is_minimum(self, tensor):
        result = tune_unified(
            tensor, "spttmc", 0, rank=3, block_sizes=(64, 256), threadlens=(8, 64)
        )
        assert result.best_time == result.times_full.min()
        best_bs, best_tl = result.best
        assert best_bs in result.block_sizes
        assert best_tl in result.threadlens


class TestStreamingAxes:
    def test_full_surface_shape(self, tensor):
        result = tune_unified(
            tensor,
            "spmttkrp",
            0,
            rank=4,
            block_sizes=(64, 128),
            threadlens=(8, 16),
            num_streams=(1, 2, 4),
            chunk_sizes=(None, 2048),
            streamed=True,
        )
        assert result.times_full.shape == (2, 2, 3, 2)
        assert result.times.shape == (2, 2)
        assert (result.times_full > 0).all()

    def test_best_config_covers_streaming_axes(self, tensor):
        result = tune_unified(
            tensor,
            "spmttkrp",
            0,
            rank=4,
            block_sizes=(128,),
            threadlens=(8,),
            num_streams=(1, 2),
            chunk_sizes=(2048,),
            streamed=True,
        )
        bs, tl, ns, cn = result.best_config
        assert (bs, tl, cn) == (128, 8, 2048)
        # Overlapping transfers with compute can only help.
        assert ns == 2
        assert result.times_full[0, 0, 1, 0] <= result.times_full[0, 0, 0, 0]

    def test_infeasible_streaming_cell_recorded_as_inf(self, tensor):
        from repro.gpusim.device import TITAN_X, scaled_device

        tiny = scaled_device(TITAN_X, 5e-7, name_suffix="tiny")
        result = tune_unified(
            tensor,
            "spmttkrp",
            0,
            rank=4,
            device=tiny,
            block_sizes=(128,),
            threadlens=(8,),
            num_streams=(2, 10_000),
            chunk_sizes=(None,),
        )
        # The feasible configuration survives; the absurd one is inf, and
        # best picks the feasible cell instead of the sweep aborting.
        assert np.isfinite(result.times_full[0, 0, 0, 0])
        assert np.isinf(result.times_full[0, 0, 1, 0])
        assert result.best_config[2] == 2

    def test_streamed_surface_reported_in_render(self, tensor):
        result = tune_unified(
            tensor,
            "spttm",
            2,
            rank=4,
            block_sizes=(128,),
            threadlens=(8,),
            num_streams=(1, 2),
            chunk_sizes=(None,),
            streamed=True,
        )
        assert "num_streams" in result.render()
