"""Tests for repro.util.formatting."""

import pytest

from repro.util.formatting import format_bytes, format_seconds, format_speedup, format_table


class TestFormatBytes:
    def test_bytes(self):
        assert format_bytes(512) == "512 B"

    def test_kib(self):
        assert format_bytes(2048) == "2.00 KiB"

    def test_mib(self):
        assert format_bytes(3 * 1024**2) == "3.00 MiB"

    def test_gib(self):
        assert format_bytes(12 * 1024**3) == "12.00 GiB"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            format_bytes(-1)


class TestFormatSeconds:
    def test_seconds(self):
        assert format_seconds(2.5) == "2.500 s"

    def test_milliseconds(self):
        assert format_seconds(0.0123) == "12.300 ms"

    def test_microseconds(self):
        assert format_seconds(4.2e-5) == "42.0 us"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            format_seconds(-0.1)


class TestFormatSpeedup:
    def test_format(self):
        assert format_speedup(3.74) == "3.7x"


class TestFormatTable:
    def test_contains_headers_and_cells(self):
        text = format_table(["name", "value"], [["a", 1], ["b", 22]])
        assert "name" in text and "value" in text
        assert "a" in text and "22" in text

    def test_title_included(self):
        text = format_table(["x"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_column_count_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_floats_rendered_compactly(self):
        text = format_table(["v"], [[0.123456789]])
        assert "0.1235" in text

    def test_alignment_produces_rectangular_output(self):
        text = format_table(["col", "n"], [["aaa", 1], ["b", 1000]])
        lines = [l for l in text.splitlines()]
        assert len({len(l) for l in lines}) == 1
