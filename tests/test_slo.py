"""SLO-driven serving and the unified ``ExecContext`` API (PR 7).

Four pillars:

(a) **checkpointable bookings** — ``Timeline.release`` / ``truncate`` give
    engine time back exactly (tail-only, verified before mutation), so a
    preempted job's lanes roll back to the pre-commit horizons;
(b) **preemption identity** — a batch job preempted at a streamed chunk
    boundary (or torn down mid-staging) and later resumed produces output
    bit-identical to its unpreempted run, and the deadline it made room
    for is met *only because* of the preemption;
(c) **deadline economics** — the ``"deadline"`` policy's miss rate never
    exceeds FIFO's on the same workload, and with no SLOs in play it
    degenerates bit-identically to the ``"priority"`` policy (zero extra
    RNG draws, zero preemptions);
(d) **one context API** — every kernel/driver accepts
    ``ctx=ExecContext(...)``, the legacy kwargs are equivalent deprecated
    aliases that warn exactly once per call site, and every run result
    speaks the :class:`~repro.context.TimedResult` protocol.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.algorithms.cp import CPResult, UnifiedGPUEngine, cp_als
from repro.algorithms.tucker import TuckerResult, tucker_hooi
from repro.context import (
    DEFAULT_CONTEXT,
    SLO,
    ExecContext,
    TimedResult,
    reset_deprecation_registry,
)
from repro.gpusim.cluster import ETHERNET_10G, MultiNodeClusterSpec, NodeFailure
from repro.gpusim.timeline import Timeline, device_copy_key
from repro.kernels.unified.spmttkrp import unified_spmttkrp
from repro.kernels.unified.spttm import unified_spttm
from repro.kernels.unified.spttmc import unified_spttmc
from repro.serve import (
    Autoscaler,
    AutoscalerSpec,
    Job,
    JobKind,
    ScheduleOutcome,
    ServingEngine,
    execute_job,
)
from repro.serve.workload import WorkloadSpec, generate_workload
from repro.tensor.random import random_factors, random_sparse_tensor
from test_serving import assert_same_output, one_device_cluster
from test_streaming import BLOCK_SIZE, CASES, RANK, THREADLEN

BIG_CASE = "order3-power"


def outputs_equal(a, b) -> bool:
    """Bit-identical comparison across every job output type."""
    if a is None or b is None:
        return a is b
    if isinstance(a, np.ndarray):
        return np.array_equal(a, b)
    if hasattr(a, "fiber_values"):
        return np.array_equal(a.fiber_coords, b.fiber_coords) and np.array_equal(
            a.fiber_values, b.fiber_values
        )
    ours = list(getattr(a, "factors", []) or [])
    theirs = list(getattr(b, "factors", []) or [])
    for attr in ("weights", "core"):
        va, vb = getattr(a, attr, None), getattr(b, attr, None)
        if (va is None) != (vb is None):
            return False
        if va is not None:
            ours.append(va)
            theirs.append(vb)
    return len(ours) == len(theirs) and all(
        np.array_equal(x, y) for x, y in zip(ours, theirs)
    )


# ---------------------------------------------------------------------- #
# (a) Checkpointable bookings
# ---------------------------------------------------------------------- #
class TestReleaseAndTruncate:
    def test_release_tail_restores_horizons_exactly(self):
        timeline = Timeline()
        lane = timeline.resource("dev0.compute", category="compute")
        kept = lane.book(1.0, label="kept")
        b1 = lane.book(2.0, label="tail1")
        b2 = lane.book(3.0, label="tail2")
        assert lane.free_s == 6.0 and lane.busy_s == 6.0
        released = timeline.release([b1, b2])
        assert released == 5.0
        assert lane.free_s == kept.end_s == 1.0
        assert lane.busy_s == 1.0
        assert lane.num_bookings == 1
        assert [e.label for e in timeline.events] == ["kept"]
        # The freed window is bookable again, from the restored horizon.
        again = lane.book(2.0, label="rebooked")
        assert again.start_s == 1.0

    def test_release_interior_booking_rejected_without_mutation(self):
        timeline = Timeline()
        lane = timeline.resource("dev0.compute", category="compute")
        first = lane.book(1.0)
        lane.book(2.0)
        with pytest.raises(ValueError, match="tail"):
            timeline.release([first])
        assert lane.free_s == 3.0 and lane.num_bookings == 2

    def test_release_duplicate_and_unknown_rejected(self):
        timeline = Timeline()
        lane = timeline.resource("dev0.compute", category="compute")
        booking = lane.book(1.0)
        with pytest.raises(ValueError):
            timeline.release([booking, booking])
        assert lane.free_s == 1.0 and lane.num_bookings == 1
        foreign = Timeline().resource("devX.compute").book(1.0)
        with pytest.raises(ValueError, match="unknown"):
            timeline.release([foreign])

    def test_release_gang_booking_across_resources(self):
        timeline = Timeline()
        lanes = [
            timeline.resource(device_copy_key(slot), category="copy")
            for slot in range(3)
        ]
        lanes[0].book(1.0)  # stagger one member's horizon
        gang = timeline.book_together(lanes, 2.0, label="collective")
        assert gang.start_s == 1.0 and gang.end_s == 3.0
        timeline.release(gang.bookings)
        assert [lane.free_s for lane in lanes] == [1.0, 0.0, 0.0]

    def test_truncate_newest_booking_at_boundary(self):
        timeline = Timeline()
        lane = timeline.resource("dev0.compute", category="compute")
        lane.book(1.0)
        tail = lane.book(4.0, label="exec")
        shortened = timeline.truncate(tail, 3.0)
        assert shortened.end_s == 3.0 and shortened.label == "exec"
        assert lane.free_s == 3.0
        assert lane.busy_s == pytest.approx(3.0)
        assert shortened in timeline.events and tail not in timeline.events

    def test_truncate_rejects_non_newest_and_out_of_bounds(self):
        timeline = Timeline()
        lane = timeline.resource("dev0.compute", category="compute")
        first = lane.book(1.0)
        tail = lane.book(2.0)
        with pytest.raises(ValueError, match="newest"):
            timeline.truncate(first, 0.5)
        with pytest.raises(ValueError, match="outside"):
            timeline.truncate(tail, 0.5)
        assert lane.free_s == 3.0


# ---------------------------------------------------------------------- #
# (b) Preemption identity
# ---------------------------------------------------------------------- #
class TestPreemption:
    def _streamed_batch_scenario(self):
        """A streamed batch job alone on a tiny device, plus its ledger."""
        tensor = CASES[BIG_CASE]()
        cluster = one_device_cluster(5_000)
        batch = Job(
            job_id=0, tenant="batch", kind=JobKind.SPMTTKRP, tensor=tensor, rank=RANK
        )
        engine = ServingEngine(
            cluster, threadlen=THREADLEN, block_size=BLOCK_SIZE, policy="deadline"
        )
        (alone,) = engine.run([batch]).results
        assert alone.execution == "streamed"
        return cluster, batch, alone

    def _engine(self, cluster, policy="deadline"):
        return ServingEngine(
            cluster, threadlen=THREADLEN, block_size=BLOCK_SIZE, policy=policy
        )

    def test_chunk_boundary_preemption_meets_deadline_bit_identically(self):
        cluster, batch, alone = self._streamed_batch_scenario()
        small = random_sparse_tensor((6, 5, 4), nnz=20, seed=3)
        mid = (alone.exec_start_s + alone.finish_s) / 2

        def urgent(deadline_s):
            return Job(
                job_id=1,
                tenant="lat",
                kind=JobKind.SPMTTKRP,
                tensor=small,
                rank=4,
                arrival_s=mid,
                slo=SLO.latency(deadline_s),
            )

        # Urgent finish without preemption (the priority policy never
        # preempts) and with it (an over-tight deadline always triggers).
        pair = [batch, urgent((alone.finish_s - mid) * 0.5)]
        unpreempted = {
            r.job.job_id: r for r in self._engine(cluster, "priority").run(pair).results
        }[1]
        forced = {r.job.job_id: r for r in self._engine(cluster).run(pair).results}[1]
        assert forced.finish_s < unpreempted.finish_s

        # A deadline feasible ONLY via preemption.
        deadline_s = (forced.finish_s - mid) * 1.05
        assert mid + deadline_s < unpreempted.finish_s
        report = self._engine(cluster).run([batch, urgent(deadline_s)])
        assert not report.timeline.violations()
        (record,) = report.preemptions
        assert record.job_id == 0 and record.preempted_by == 1
        assert 0 < record.completed_chunks < record.total_chunks
        by_id = {r.job.job_id: r for r in report.results}
        assert not by_id[1].missed_deadline
        victim = by_id[0]
        assert victim.completed and victim.preemptions == 1
        assert victim.preempted_s > 0.0
        # The tentpole: preempted-and-resumed output is bit-identical to
        # the unpreempted run and to a fresh pure replay.
        assert_same_output(victim.output, alone.output)
        assert_same_output(victim.output, execute_job(batch, victim.placement).output)
        labels = [e.label for e in report.timeline.events]
        assert "resume-stage:job0" in labels and "resume:job0" in labels

    def test_workload_preemptions_are_value_preserving(self):
        """Stage-straddle / full-release preemptions across a real workload:
        every deadline-policy output matches the preemption-free twin."""
        jobs = generate_workload(
            WorkloadSpec(num_jobs=60, seed=11, latency_slo_fraction=0.3)
        )
        edf = ServingEngine(policy="deadline").run(jobs)
        twin = ServingEngine(policy="priority").run(jobs)
        assert edf.preemptions  # the scenario actually preempts
        assert not twin.preemptions
        assert not edf.timeline.violations()
        others = {r.job.job_id: r for r in twin.results if r.completed}
        for result in edf.results:
            if result.completed and result.job.job_id in others:
                assert outputs_equal(result.output, others[result.job.job_id].output)

    def test_deadline_miss_rate_never_worse_than_fifo(self):
        jobs = generate_workload(
            WorkloadSpec(num_jobs=100, seed=0, latency_slo_fraction=0.3)
        )
        edf = ServingEngine(policy="deadline").run(jobs)
        fifo = ServingEngine(policy="fifo").run(jobs)
        assert edf.slo_jobs and fifo.slo_jobs
        assert edf.deadline_miss_rate <= fifo.deadline_miss_rate

    def test_preempted_job_survives_chaos_node_loss(self):
        """Preemption and chaos compose: a run with both loses no jobs and
        keeps every common output bit-identical to the chaos-free run."""
        from repro.bench.serving import run_serving

        kwargs = dict(num_jobs=40, seed=0, nodes=2, policy="deadline", slo_fraction=0.3)
        clean = run_serving(**kwargs)
        chaotic = run_serving(chaos_seed=4, fail_node=0, **kwargs)
        assert chaotic.requeued_jobs > 0
        assert len(chaotic.completed) >= len(clean.completed)
        assert not chaotic.timeline.violations()
        others = {r.job.job_id: r for r in clean.results if r.completed}
        for result in chaotic.results:
            if result.completed and result.job.job_id in others:
                assert outputs_equal(result.output, others[result.job.job_id].output)

    def test_latency_jobs_are_never_preempted(self):
        jobs = generate_workload(
            WorkloadSpec(num_jobs=100, seed=0, latency_slo_fraction=0.3)
        )
        report = ServingEngine(policy="deadline").run(jobs)
        by_id = {j.job_id: j for j in jobs}
        for record in report.preemptions:
            victim = by_id[record.job_id]
            assert victim.preemptible and victim.slo is None


class TestDeadlineDegeneracy:
    def test_no_slo_workload_is_bit_identical_to_priority_policy(self):
        jobs = generate_workload(WorkloadSpec(num_jobs=40, seed=7))
        assert all(j.slo is None for j in jobs)
        deadline = ServingEngine(policy="deadline").run(jobs)
        priority = ServingEngine(policy="priority").run(jobs)
        assert not deadline.preemptions
        for a, b in zip(deadline.results, priority.results):
            assert a.job.job_id == b.job.job_id
            assert a.status == b.status
            assert a.finish_s == b.finish_s
            assert a.stage_start_s == b.stage_start_s
            assert outputs_equal(a.output, b.output)

    def test_zero_fraction_draws_no_slo_rng(self):
        base = generate_workload(WorkloadSpec(num_jobs=30, seed=5))
        gated = generate_workload(
            WorkloadSpec(num_jobs=30, seed=5, latency_slo_fraction=0.0)
        )
        for a, b in zip(base, gated):
            assert a.arrival_s == b.arrival_s
            assert a.priority == b.priority
            assert a.factor_seed == b.factor_seed
            assert a.slo is None and b.slo is None

    def test_earliest_deadline_dispatches_first(self):
        cluster = one_device_cluster(1 << 30)
        tensor = random_sparse_tensor((8, 6, 5), nnz=30, seed=1)
        relaxed = Job(
            job_id=0, tenant="a", kind=JobKind.SPMTTKRP, tensor=tensor,
            rank=4, slo=SLO.latency(5.0),
        )
        tight = Job(
            job_id=1, tenant="b", kind=JobKind.SPMTTKRP, tensor=tensor,
            rank=4, slo=SLO.latency(1.0),
        )
        report = ServingEngine(cluster, policy="deadline", max_batch=1).run(
            [relaxed, tight]
        )
        by_id = {r.job.job_id: r for r in report.results}
        assert by_id[1].stage_start_s <= by_id[0].stage_start_s
        assert by_id[1].finish_s <= by_id[0].finish_s


# ---------------------------------------------------------------------- #
# Autoscaler
# ---------------------------------------------------------------------- #
class TestAutoscaler:
    def test_pool_bounds_and_preference_order(self):
        scaler = Autoscaler(AutoscalerSpec(min_devices=1), scores=(2.0, 4.0, 1.0))
        # Starts at min_devices keeping the most capable slot (slot 1).
        assert scaler.active == 1 and scaler.parked == {0, 2}
        events = scaler.step(0.0, queue_depth=5, copy_free_s=[0.0] * 3,
                             compute_free_s=[0.0] * 3)
        assert [e.action for e in events] == ["up"]
        assert events[0].slot == 0  # next most capable unparks first
        # Busy lanes never park, idle least-capable parks first.
        scaler.step(1.0, queue_depth=5, copy_free_s=[0.0] * 3,
                    compute_free_s=[0.0] * 3)
        assert scaler.active == 3
        # Drained queue: the least-capable idle slot parks first, one per
        # step, but never below min_devices.
        events = scaler.step(
            2.0, queue_depth=0,
            copy_free_s=[0.0, 0.0, 0.0], compute_free_s=[0.0, 0.0, 0.0],
        )
        assert [e.action for e in events] == ["down"] and events[0].slot == 2
        scaler.step(3.0, queue_depth=0, copy_free_s=[0.0] * 3,
                    compute_free_s=[0.0] * 3)
        events = scaler.step(4.0, queue_depth=0, copy_free_s=[0.0] * 3,
                             compute_free_s=[0.0] * 3)
        assert not events and scaler.active == 1

    def test_scale_down_parks_idle_least_capable(self):
        scaler = Autoscaler(AutoscalerSpec(min_devices=1), scores=(2.0, 4.0, 1.0))
        scaler.parked.clear()  # all active
        events = scaler.step(
            1.0, queue_depth=0, copy_free_s=[0.0, 1.0, 0.0],
            compute_free_s=[0.0, 1.0, 0.0],
        )
        assert [e.action for e in events] == ["down"]
        assert events[0].slot == 2  # least capable idle slot
        # A slot with committed future work (free_s beyond now) never parks.
        events = scaler.step(
            1.5, queue_depth=0, copy_free_s=[0.0, 2.0, 0.0],
            compute_free_s=[0.0, 2.0, 0.0],
        )
        assert events and events[0].slot == 0

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            AutoscalerSpec(min_devices=0)
        with pytest.raises(ValueError):
            AutoscalerSpec(min_devices=4, max_devices=2)
        with pytest.raises(ValueError):
            AutoscalerSpec(scale_down_idle_s=0.0)
        with pytest.raises(ValueError):
            AutoscalerSpec(cooldown_s=-1.0)

    def test_autoscaled_serving_identity_and_bounds(self):
        jobs = generate_workload(
            WorkloadSpec(num_jobs=60, seed=11, latency_slo_fraction=0.3)
        )
        fixed = ServingEngine(policy="deadline").run(jobs)
        scaled = ServingEngine(
            policy="deadline", autoscale=AutoscalerSpec(min_devices=1)
        ).run(jobs)
        assert scaled.scale_events
        assert any(e.action == "up" for e in scaled.scale_events)
        num_devices = scaled.cluster.num_devices
        for event in scaled.scale_events:
            assert 1 <= event.active_devices <= num_devices
        assert not scaled.timeline.violations()
        # Autoscaling moves work in time, never in value.
        others = {r.job.job_id: r for r in fixed.results if r.completed}
        for result in scaled.results:
            if result.completed and result.job.job_id in others:
                assert outputs_equal(result.output, others[result.job.job_id].output)


# ---------------------------------------------------------------------- #
# (c) Shard-staging overlap (carried ROADMAP item)
# ---------------------------------------------------------------------- #
class TestOverlapStaging:
    def test_sharded_staging_overlap_saves_wall_time_bit_identically(self):
        cluster = MultiNodeClusterSpec.homogeneous(
            num_nodes=2, devices_per_node=2, nic=ETHERNET_10G
        )
        tensor = random_sparse_tensor((60_000, 60, 50), 12_000, seed=3)
        serial = cp_als(
            tensor, 16,
            engine=UnifiedGPUEngine(ctx=ExecContext(cluster=cluster)),
            max_iterations=2, compute_fit=False,
        )
        overlapped = cp_als(
            tensor, 16,
            engine=UnifiedGPUEngine(
                ctx=ExecContext(cluster=cluster, overlap_staging=True)
            ),
            max_iterations=2, compute_fit=False,
        )
        # Staging moves from the serial setup charge onto the copy lanes,
        # so the comparable quantity is setup + timeline makespan.
        serial_wall = serial.setup_time_s + serial.makespan_s
        overlap_wall = overlapped.setup_time_s + overlapped.makespan_s
        assert overlap_wall <= serial_wall
        assert any("stage:mode" in e.label for e in overlapped.timeline.events)
        for a, b in zip(serial.factors, overlapped.factors):
            assert np.array_equal(a, b)
        assert np.array_equal(serial.weights, overlapped.weights)

    def test_single_device_overlap_staging(self):
        tensor = random_sparse_tensor((2_000, 40, 30), 3_000, seed=9)
        serial = cp_als(tensor, 8, max_iterations=1, compute_fit=False)
        overlapped = cp_als(
            tensor, 8, ctx=ExecContext(overlap_staging=True),
            max_iterations=1, compute_fit=False,
        )
        assert (
            overlapped.setup_time_s + overlapped.makespan_s
            <= serial.setup_time_s + serial.makespan_s
        )
        for a, b in zip(serial.factors, overlapped.factors):
            assert np.array_equal(a, b)


# ---------------------------------------------------------------------- #
# (d) ExecContext equivalence and the TimedResult protocol
# ---------------------------------------------------------------------- #
KERNELS = {
    "spttm": unified_spttm,
    "spmttkrp": unified_spmttkrp,
    "spttmc": unified_spttmc,
}


class TestExecContextEquivalence:
    def setup_method(self):
        reset_deprecation_registry()

    def teardown_method(self):
        reset_deprecation_registry()

    def _call(self, name, tensor, factors, **kwargs):
        kernel = KERNELS[name]
        if name == "spttm":
            return kernel(tensor, factors[1], 1, **kwargs)
        return kernel(tensor, factors, 1, **kwargs)

    @pytest.mark.parametrize("name", sorted(KERNELS))
    def test_kernel_ctx_equals_legacy_kwargs(self, name):
        tensor = random_sparse_tensor((30, 25, 20), nnz=600, seed=4)
        factors = [np.asarray(f) for f in random_factors(tensor.shape, 6, seed=0)]
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = self._call(
                name, tensor, factors, streamed=True, num_streams=3
            )
        via_ctx = self._call(
            name, tensor, factors, ctx=ExecContext(streamed=True, num_streams=3)
        )
        assert_same_output(via_ctx.output, legacy.output)
        assert via_ctx.estimated_time_s == legacy.estimated_time_s

    def test_legacy_kwarg_warns_once_per_parameter(self):
        tensor = random_sparse_tensor((20, 15, 10), nnz=200, seed=2)
        factors = [np.asarray(f) for f in random_factors(tensor.shape, 4, seed=0)]
        with pytest.warns(DeprecationWarning) as record:
            unified_spmttkrp(tensor, factors, 0, streamed=True, num_streams=3)
        messages = [str(w.message) for w in record]
        assert any("streamed" in m for m in messages)
        assert any("num_streams" in m for m in messages)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            # Second use of the same (function, parameter) pair: silent.
            unified_spmttkrp(tensor, factors, 0, streamed=True, num_streams=3)

    def test_legacy_kwarg_overrides_ctx_field(self):
        tensor = random_sparse_tensor((20, 15, 10), nnz=200, seed=2)
        factors = [np.asarray(f) for f in random_factors(tensor.shape, 4, seed=0)]
        ctx = ExecContext(streamed=True, num_streams=2)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            overridden = unified_spmttkrp(
                tensor, factors, 0, ctx=ctx, num_streams=4
            )
        explicit = unified_spmttkrp(
            tensor, factors, 0, ctx=ExecContext(streamed=True, num_streams=4)
        )
        assert overridden.estimated_time_s == explicit.estimated_time_s

    def test_cp_and_tucker_ctx_equals_legacy(self):
        tensor = random_sparse_tensor((40, 30, 20), nnz=800, seed=6)
        cluster = MultiNodeClusterSpec.homogeneous(
            num_nodes=2, devices_per_node=2, nic=ETHERNET_10G
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy_cp = cp_als(
                tensor, 6,
                engine=UnifiedGPUEngine(cluster=cluster),
                max_iterations=2, compute_fit=False,
            )
            legacy_tk = tucker_hooi(tensor, (4, 4, 4), cluster=cluster, max_iterations=2)
        ctx_cp = cp_als(
            tensor, 6,
            engine=UnifiedGPUEngine(ctx=ExecContext(cluster=cluster)),
            max_iterations=2, compute_fit=False,
        )
        ctx_tk = tucker_hooi(
            tensor, (4, 4, 4), ctx=ExecContext(cluster=cluster), max_iterations=2
        )
        for a, b in zip(legacy_cp.factors, ctx_cp.factors):
            assert np.array_equal(a, b)
        assert legacy_cp.makespan_s == ctx_cp.makespan_s
        for a, b in zip(legacy_tk.factors, ctx_tk.factors):
            assert np.array_equal(a, b)
        assert np.array_equal(legacy_tk.core, ctx_tk.core)
        assert legacy_tk.makespan_s == ctx_tk.makespan_s

    def test_context_validation_and_evolve(self):
        with pytest.raises(ValueError):
            ExecContext(num_streams=0)
        with pytest.raises(ValueError):
            ExecContext(chunk_nnz=0)
        with pytest.raises(ValueError):
            ExecContext(devices=0)
        evolved = DEFAULT_CONTEXT.evolve(num_streams=5)
        assert evolved.num_streams == 5 and DEFAULT_CONTEXT.num_streams == 2
        failures = [NodeFailure(time_s=1.0, node_index=0)]
        assert isinstance(ExecContext(chaos=failures).chaos, tuple)

    def test_slo_validation(self):
        with pytest.raises(ValueError):
            SLO(deadline_s=0.0)
        with pytest.raises(ValueError):
            SLO(deadline_s=float("inf"))
        with pytest.raises(ValueError):
            SLO(priority=-1)
        latency = SLO.latency(2.5)
        assert latency.has_deadline and not latency.preemptible
        assert latency.deadline_for(1.0) == 3.5
        batch = SLO.batch()
        assert not batch.has_deadline and batch.preemptible
        assert batch.deadline_for(1.0) == float("inf")


class TestTimedResultProtocol:
    def test_all_result_types_conform(self):
        tensor = random_sparse_tensor((20, 15, 10), nnz=300, seed=0)
        cp = cp_als(tensor, 4, max_iterations=1, compute_fit=False)
        tucker = tucker_hooi(tensor, (3, 3, 3), max_iterations=1)
        engine = ServingEngine()
        outcome = engine.scheduler.run(generate_workload(WorkloadSpec(num_jobs=5)))
        report = engine.run(generate_workload(WorkloadSpec(num_jobs=5)))
        for result in (cp, tucker, outcome, report):
            assert isinstance(result, TimedResult)
            assert result.makespan_s >= 0.0
            assert result.timeline is not None
            assert result.recoveries == []
            assert result.preemptions == []
        assert isinstance(cp, CPResult) and isinstance(tucker, TuckerResult)
        assert isinstance(outcome, ScheduleOutcome)

    def test_bare_timeline_is_not_a_timed_result(self):
        assert not isinstance(Timeline(), TimedResult)
