"""Tests for repro.gpusim.launch.LaunchConfig."""

import pytest

from repro.gpusim.device import TITAN_X
from repro.gpusim.launch import LaunchConfig


class TestConstruction:
    def test_for_nnz_covers_all_nonzeros(self):
        cfg = LaunchConfig.for_nnz(10_000, 16, block_size=128, threadlen=8)
        assert cfg.nnz_capacity >= 10_000
        assert cfg.grid_y == 16

    def test_for_nnz_exact_fit(self):
        cfg = LaunchConfig.for_nnz(1024, 4, block_size=128, threadlen=8)
        assert cfg.grid_x == 1

    def test_totals(self):
        cfg = LaunchConfig(block_size=64, grid_x=10, grid_y=2, threadlen=4)
        assert cfg.num_blocks == 20
        assert cfg.total_threads == 1280
        assert cfg.nnz_capacity == 10 * 64 * 4

    def test_invalid_values(self):
        with pytest.raises(ValueError):
            LaunchConfig(block_size=0, grid_x=1)
        with pytest.raises(ValueError):
            LaunchConfig(block_size=32, grid_x=1, threadlen=0)


class TestDeviceLimits:
    def test_block_too_large(self):
        cfg = LaunchConfig(block_size=2048, grid_x=1)
        with pytest.raises(ValueError, match="exceeds device limit"):
            cfg.validate_against(TITAN_X)

    def test_non_warp_multiple(self):
        cfg = LaunchConfig(block_size=100, grid_x=1)
        with pytest.raises(ValueError, match="warp size"):
            cfg.validate_against(TITAN_X)


class TestOccupancy:
    def test_large_launch_full_occupancy(self):
        cfg = LaunchConfig.for_nnz(10_000_000, 16, block_size=256, threadlen=8)
        assert cfg.occupancy(TITAN_X) == pytest.approx(1.0)

    def test_small_launch_low_occupancy(self):
        cfg = LaunchConfig(block_size=32, grid_x=4)
        assert cfg.occupancy(TITAN_X) < 0.01

    def test_occupancy_monotone_in_grid(self):
        small = LaunchConfig(block_size=128, grid_x=10)
        big = LaunchConfig(block_size=128, grid_x=1000)
        assert big.occupancy(TITAN_X) >= small.occupancy(TITAN_X)

    def test_utilization_capped_by_active_threads(self):
        cfg = LaunchConfig(block_size=256, grid_x=10_000)
        low = cfg.utilization(TITAN_X, active_threads=100)
        high = cfg.utilization(TITAN_X, active_threads=10_000_000)
        assert low < high <= 1.0

    def test_utilization_never_zero(self):
        cfg = LaunchConfig(block_size=32, grid_x=1)
        assert cfg.utilization(TITAN_X, active_threads=0) > 0.0

    def test_negative_active_threads_rejected(self):
        cfg = LaunchConfig(block_size=32, grid_x=1)
        with pytest.raises(ValueError):
            cfg.utilization(TITAN_X, active_threads=-5)
