"""Tests for repro.gpusim.device."""

import dataclasses

import pytest

from repro.gpusim.device import DeviceSpec, TITAN_X, scaled_device


class TestTitanX:
    """The default device must match the paper's Table III."""

    def test_core_count(self):
        assert TITAN_X.total_cores == 3072

    def test_peak_flops_about_6_tflops(self):
        assert TITAN_X.peak_flops == pytest.approx(6144e9, rel=1e-6)

    def test_memory_capacity(self):
        assert TITAN_X.global_mem_bytes == 12 * 1024**3

    def test_bandwidth(self):
        assert TITAN_X.peak_bandwidth_bytes_per_s == pytest.approx(336e9)
        assert TITAN_X.achievable_bandwidth_bytes_per_s < TITAN_X.peak_bandwidth_bytes_per_s

    def test_l2(self):
        assert TITAN_X.l2_bytes == 3 * 1024**2

    def test_validate_passes(self):
        TITAN_X.validate()

    def test_resident_threads(self):
        assert TITAN_X.max_resident_threads == 24 * 2048

    def test_atomic_throughput_positive(self):
        assert TITAN_X.atomic_ops_per_second > 0


class TestValidation:
    def test_negative_sms_rejected(self):
        bad = dataclasses.replace(TITAN_X, num_sms=0)
        with pytest.raises(ValueError):
            bad.validate()

    def test_bandwidth_fraction_range(self):
        bad = dataclasses.replace(TITAN_X, achievable_bandwidth_fraction=1.5)
        with pytest.raises(ValueError):
            bad.validate()

    def test_block_threads_limit(self):
        bad = dataclasses.replace(TITAN_X, max_threads_per_block=4096)
        with pytest.raises(ValueError):
            bad.validate()


class TestScaledDevice:
    def test_memory_scaled(self):
        half = scaled_device(TITAN_X, 0.5)
        assert half.global_mem_bytes == TITAN_X.global_mem_bytes // 2

    def test_compute_untouched(self):
        small = scaled_device(TITAN_X, 0.01)
        assert small.peak_flops == TITAN_X.peak_flops
        assert small.mem_bandwidth_gbps == TITAN_X.mem_bandwidth_gbps

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            scaled_device(TITAN_X, 0.0)

    def test_every_other_field_carried_over(self):
        """A derived device differs from its base ONLY in memory and name.

        This is the field-consistency audit: replace() copies every field,
        so a field added to DeviceSpec later (as pcie_bandwidth_bytes_per_s
        was) is automatically preserved — and this test fails if a future
        refactor rebuilds the spec field-by-field and drops one.
        """
        small = scaled_device(TITAN_X, 0.25, name_suffix="audit")
        for f in dataclasses.fields(DeviceSpec):
            if f.name in ("global_mem_bytes", "name"):
                continue
            assert getattr(small, f.name) == getattr(TITAN_X, f.name), f.name
        assert small.pcie_bandwidth_bytes_per_s == TITAN_X.pcie_bandwidth_bytes_per_s
        assert small.name.endswith("[audit]")

    def test_bandwidth_scale_scales_dram_and_pcie_together(self):
        slow = scaled_device(TITAN_X, 0.5, bandwidth_scale=0.25)
        assert slow.mem_bandwidth_gbps == pytest.approx(TITAN_X.mem_bandwidth_gbps * 0.25)
        assert slow.pcie_bandwidth_bytes_per_s == pytest.approx(
            TITAN_X.pcie_bandwidth_bytes_per_s * 0.25
        )
        # Compute is still untouched: bandwidth and capacity scale, lanes do not.
        assert slow.peak_flops == TITAN_X.peak_flops

    def test_invalid_bandwidth_scale(self):
        with pytest.raises(ValueError):
            scaled_device(TITAN_X, 0.5, bandwidth_scale=0.0)

    def test_derived_device_is_validated(self):
        bad_base = dataclasses.replace(TITAN_X, achievable_bandwidth_fraction=1.5)
        with pytest.raises(ValueError):
            scaled_device(bad_base, 0.5)
