"""Tests for the experiment harness (one runner per paper table/figure).

The full-size runs live in ``benchmarks/``; here each runner is exercised on
a reduced configuration to keep the test suite fast, and the *structural*
properties of its output (row/series counts, rendering, derived quantities)
are checked.
"""

import pytest

from repro.bench import (
    platform_report,
    run_fig5,
    run_fig6a,
    run_fig6b,
    run_fig7,
    run_fig8,
    run_fig9,
    run_fig10,
    run_table2,
    run_table4,
    run_table5,
)
from repro.bench.memory import paper_scale_spmttkrp_footprints
from repro.data.registry import DATASETS


class TestPlatformReport:
    def test_mentions_both_devices(self):
        text = platform_report()
        assert "Titan X" in text
        assert "i7-5820K" in text
        assert "GB/s" in text


class TestTable2:
    def test_rows_and_reduction(self):
        result = run_table2(datasets=["brainq"])
        assert len(result.rows) == 2
        for row in result.rows:
            assert row.fcoo_bytes_per_nnz_measured < row.coo_bytes_per_nnz_measured
            assert row.coo_bytes_per_nnz_model == pytest.approx(16.0)
        assert "F-COO" in result.render()


class TestTable4:
    def test_renders_all_datasets(self):
        text = run_table4(include_analog=False)
        for name in DATASETS:
            assert name in text


class TestFig5AndTable5:
    def test_fig5_surfaces(self):
        result = run_fig5(
            datasets=["brainq"], rank=4, block_sizes=(64, 128), threadlens=(8, 16)
        )
        assert set(result.surfaces) == {"brainq"}
        assert result.surfaces["brainq"].times.shape == (2, 2)
        assert "best configuration" in result.render()

    def test_table5_structure(self):
        result = run_table5(datasets=["brainq"], rank=4, block_sizes=(64, 128), threadlens=(8,))
        assert set(result.best) == {"spttm", "spmttkrp"}
        assert result.best["spttm"]["brainq"][0] in (64, 128)
        assert "Table V" in result.render()


class TestFig6:
    def test_fig6a_unified_wins(self):
        result = run_fig6a(rank=8, datasets=["brainq", "nell2"])
        assert len(result.rows) == 2
        for row in result.rows:
            assert row.unified_speedup > 1.0
            assert row.unified_over_parti_gpu is not None
            assert row.unified_over_parti_gpu > 1.0
        assert "Unified" in result.render()

    def test_fig6b_shapes(self):
        # Rank 16 as in the paper: the ParTI-GPU OOM determination depends on
        # the rank through the intermediate tensor size.
        result = run_fig6b(rank=16, datasets=["brainq", "nell1"])
        by_name = {r.dataset: r for r in result.rows}
        # Unified always beats the CPU baselines.
        for row in result.rows:
            assert row.unified_speedup > 1.0
            assert row.speedup_over_omp(row.splatt_time_s) > 1.0
        # ParTI-GPU runs out of memory for nell1 at paper scale (Section V-A).
        assert by_name["nell1"].parti_gpu_time_s is None
        assert by_name["brainq"].parti_gpu_time_s is not None
        assert by_name["brainq"].unified_over_parti_gpu > 5.0
        assert "OOM" in result.render()


class TestFig7:
    def test_unified_less_mode_sensitive_for_mttkrp(self):
        result = run_fig7("spmttkrp", dataset="brainq", rank=8)
        assert len(result.rows) == 3
        assert result.variation("unified") < result.variation("parti_gpu")
        assert result.variation("unified") < 1.5
        assert "mode behaviour" in result.render()

    def test_spttm_runs_all_modes(self):
        result = run_fig7("spttm", dataset="brainq", rank=8)
        assert len(result.rows) == 3
        assert all(r.splatt_time_s is None for r in result.rows)

    def test_invalid_operation(self):
        with pytest.raises(ValueError):
            run_fig7("spmv")


class TestFig8:
    def test_series_and_growth(self):
        result = run_fig8(datasets=["brainq"], ranks=(8, 16, 32))
        assert len(result.series) == 2
        unified = result.series_for("brainq", "Unified")
        parti = result.series_for("brainq", "ParTI-GPU")
        # Time grows with the rank for both implementations.
        assert unified.times_s[-1] > unified.times_s[0]
        assert parti.times_s[-1] > parti.times_s[0]
        # Unified stays faster across the sweep (Figure 8).
        for u, p in zip(unified.times_s, parti.times_s):
            assert u < p
        assert "rank" in result.render()

    def test_unknown_series(self):
        result = run_fig8(datasets=["brainq"], ranks=(8,))
        with pytest.raises(KeyError):
            result.series_for("brainq", "SPLATT")


class TestFig9:
    def test_unified_always_smaller(self):
        result = run_fig9(rank=8)
        assert len(result.rows) == len(DATASETS)
        for row in result.rows:
            assert row.unified_bytes < row.parti_bytes
            assert 0 < row.reduction_percent < 100

    def test_oom_only_for_large_tensors(self):
        result = run_fig9(rank=16)
        by_name = {r.dataset: r for r in result.rows}
        assert by_name["nell1"].parti_oom_at_paper_scale
        assert by_name["delicious"].parti_oom_at_paper_scale
        assert not by_name["brainq"].parti_oom_at_paper_scale
        assert not by_name["nell2"].parti_oom_at_paper_scale

    def test_paper_scale_footprints_projection(self):
        unified, parti = paper_scale_spmttkrp_footprints(DATASETS["brainq"], 16)
        assert unified < parti
        # brainq easily fits on a 12 GB card in both layouts (the paper ran it).
        assert parti < 12 * 1024**3


class TestFig10:
    def test_breakdown_and_speedup(self):
        result = run_fig10(rank=4, iterations=2, datasets=["nell2"])
        assert len(result.rows) == 2
        unified_row = result.row("nell2", "unified-gpu")
        splatt_row = result.row("nell2", "splatt-cpu")
        assert set(unified_row.mttkrp_time_by_mode) == {0, 1, 2}
        assert result.speedup("nell2") > 1.0
        # The unified per-mode MTTKRP times are better balanced (Figure 10).
        assert unified_row.mode_balance <= splatt_row.mode_balance + 1e-9
        assert "CP-ALS" in result.render()

    def test_missing_row_raises(self):
        result = run_fig10(rank=4, iterations=1, datasets=["nell2"])
        with pytest.raises(KeyError):
            result.row("brainq", "unified-gpu")
