"""Property harness for the out-of-core streamed execution engine.

The central claim: for every unified kernel, **chunked streamed execution
computes the same result as one-shot execution** — including when a
reduction segment straddles a chunk boundary — and its per-chunk counter
ledgers add up to the one-shot work.  The harness drives all three kernels
over seeded random tensors (orders 3 and 4) plus the adversarial edge cases
(fewer non-zeros than one thread partition, a single segment, an empty
tensor, a segment deliberately spanning a chunk boundary), comparing
streamed vs one-shot vs the reference oracles.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.algorithms.cp import UnifiedGPUEngine, cp_als
from repro.formats.fcoo import FCOOTensor
from repro.formats.mode_encoding import OperationKind
from repro.gpusim.device import TITAN_X, scaled_device
from repro.gpusim.streams import ChunkTiming, pipeline_time, schedule_chunks
from repro.gpusim.timing import OutOfDeviceMemory
from repro.kernels.reference import reference_mttkrp, reference_spttm, reference_ttmc
from repro.kernels.unified import (
    choose_chunk_nnz,
    unified_spmttkrp,
    unified_spttm,
    unified_spttmc,
)
from repro.tensor.random import random_factors, random_sparse_tensor
from repro.tensor.sparse import SparseTensor

#: Small launch parameters so even the tiny case tensors split into several
#: chunks: each chunk holds two thread partitions.
THREADLEN = 4
BLOCK_SIZE = 32
CHUNK_NNZ = 2 * THREADLEN
RANK = 3


def single_segment_tensor() -> SparseTensor:
    """Every non-zero shares the same (i, j): one fiber AND one slice."""
    k = np.arange(20, dtype=np.int64)
    indices = np.stack([np.full_like(k, 1), np.full_like(k, 1), k], axis=1)
    values = np.linspace(1.0, 2.0, k.size)
    return SparseTensor(indices, values, (3, 3, 20))


def boundary_straddling_tensor() -> SparseTensor:
    """One long fiber guaranteed to span several CHUNK_NNZ boundaries.

    Non-zeros sort with the index modes as primary keys, so the 30 entries
    of slice/fiber (0, 0, :) occupy positions 0..29 of the stream — chunk
    boundaries at 8, 16, 24 all split it — followed by a handful of short
    segments.
    """
    k_long = np.arange(30, dtype=np.int64)
    long_run = np.stack([np.zeros_like(k_long), np.zeros_like(k_long), k_long], axis=1)
    short = np.array([[1, 2, 3], [2, 0, 1], [2, 4, 7], [3, 1, 0], [3, 1, 9]], dtype=np.int64)
    indices = np.concatenate([long_run, short])
    values = np.linspace(-1.0, 1.0, indices.shape[0]) + 0.1
    return SparseTensor(indices, values, (4, 5, 30))


#: name -> tensor builder; ≥ 5 seeded shapes per kernel, orders 3 and 4.
CASES = {
    "order3-uniform": lambda: random_sparse_tensor((8, 9, 10), 150, seed=42),
    "order3-power": lambda: random_sparse_tensor(
        (30, 50, 40), 600, seed=11, distribution="power", concentration=1.2
    ),
    "order4-uniform": lambda: random_sparse_tensor((5, 6, 7, 4), 120, seed=13),
    "order4-power": lambda: random_sparse_tensor(
        (6, 8, 9, 5), 300, seed=3, distribution="power", concentration=0.9
    ),
    "nnz-below-threadlen": lambda: random_sparse_tensor((4, 4, 4), 3, seed=7),
    "single-segment": single_segment_tensor,
    "empty": lambda: SparseTensor.empty((5, 6, 7)),
    "boundary-straddle": boundary_straddling_tensor,
}

CASE_PARAMS = [pytest.param(build, id=name) for name, build in CASES.items()]


def run_kernel(kernel, tensor, factors, mode, **kwargs):
    if kernel is unified_spttm:
        return unified_spttm(
            tensor, factors[mode], mode,
            block_size=BLOCK_SIZE, threadlen=THREADLEN, **kwargs,
        )
    return kernel(
        tensor, factors, mode,
        block_size=BLOCK_SIZE, threadlen=THREADLEN, **kwargs,
    )


def run_reference(kernel, tensor, factors, mode):
    if kernel is unified_spttm:
        return reference_spttm(tensor, factors[mode], mode)
    if kernel is unified_spmttkrp:
        return reference_mttkrp(tensor, factors, mode)
    return reference_ttmc(tensor, factors, mode)


class TestChunkPartitioner:
    """FCOOTensor.chunk: alignment, coverage and carry bookkeeping."""

    def test_chunks_cover_stream_contiguously(self):
        fcoo = FCOOTensor.from_sparse(CASES["order3-power"](), "spmttkrp", 0)
        chunks = fcoo.chunk(CHUNK_NNZ, threadlen=THREADLEN)
        assert chunks[0].start == 0
        assert chunks[-1].stop == fcoo.nnz
        for prev, nxt in zip(chunks, chunks[1:]):
            assert prev.stop == nxt.start
            assert nxt.start % THREADLEN == 0
        assert sum(c.nnz for c in chunks) == fcoo.nnz

    def test_segment_offsets_match_global_ids(self):
        fcoo = FCOOTensor.from_sparse(CASES["order3-power"](), "spmttkrp", 0)
        for chunk in fcoo.chunk(CHUNK_NNZ, threadlen=THREADLEN):
            assert chunk.segment_offset == fcoo.segment_ids[chunk.start]
            assert chunk.carries_in == (chunk.start > 0 and not fcoo.bf[chunk.start])
            np.testing.assert_array_equal(
                chunk.tensor.segment_index_coords,
                fcoo.segment_index_coords[
                    chunk.segment_offset : chunk.segment_offset + chunk.num_segments
                ],
            )

    def test_segment_counts_add_up(self):
        fcoo = FCOOTensor.from_sparse(boundary_straddling_tensor(), "spmttkrp", 0)
        chunks = fcoo.chunk(CHUNK_NNZ, threadlen=THREADLEN)
        carried = sum(c.carries_in for c in chunks)
        # A carried segment is counted locally by both neighbouring chunks.
        assert sum(c.num_segments for c in chunks) == fcoo.num_segments + carried
        # The crafted long fiber must actually straddle chunk boundaries.
        assert carried >= 3

    def test_empty_tensor_has_no_chunks(self):
        fcoo = FCOOTensor.from_sparse(SparseTensor.empty((5, 6, 7)), "spmttkrp", 0)
        assert fcoo.chunk(CHUNK_NNZ, threadlen=THREADLEN) == []

    def test_misaligned_chunk_rejected(self):
        fcoo = FCOOTensor.from_sparse(CASES["order3-uniform"](), "spmttkrp", 0)
        with pytest.raises(ValueError):
            fcoo.chunk(10, threadlen=THREADLEN)
        with pytest.raises(ValueError):
            fcoo.chunk(0, threadlen=THREADLEN)


class TestStreamSchedule:
    """The transfer/compute pipeline model."""

    def test_one_stream_is_fully_serial(self):
        timings = [ChunkTiming(2.0, 3.0), ChunkTiming(1.0, 4.0), ChunkTiming(2.0, 2.0)]
        schedule = schedule_chunks(timings, 1)
        assert schedule.total_time_s == pytest.approx(schedule.serial_time_s)
        assert schedule.overlap_efficiency == pytest.approx(0.0)

    def test_two_streams_land_between_bounds(self):
        timings = [ChunkTiming(2.0, 3.0), ChunkTiming(2.0, 3.0), ChunkTiming(2.0, 3.0)]
        schedule = schedule_chunks(timings, 2)
        assert schedule.ideal_time_s < schedule.total_time_s < schedule.serial_time_s
        # Steady state charges max(transfer, compute) per pipelined chunk:
        # 2 + 3 + 3 + 3 = first transfer plus three computes.
        assert schedule.total_time_s == pytest.approx(11.0)

    def test_more_streams_never_slower(self):
        rng = np.random.default_rng(0)
        timings = [
            ChunkTiming(float(t), float(c))
            for t, c in rng.uniform(0.5, 3.0, size=(10, 2))
        ]
        totals = [schedule_chunks(timings, s).total_time_s for s in (1, 2, 3, 4)]
        assert all(b <= a + 1e-12 for a, b in zip(totals, totals[1:]))

    def test_empty_schedule(self):
        assert schedule_chunks([], 2).total_time_s == 0.0

    def test_pipeline_time_matches_schedule(self):
        transfers, computes = [2.0, 2.0, 2.0], [3.0, 3.0, 3.0]
        assert pipeline_time(transfers, computes, 2) == pytest.approx(11.0)
        assert pipeline_time(transfers, computes, 1) == pytest.approx(15.0)

    def test_pipeline_time_validates_lengths(self):
        with pytest.raises(ValueError):
            pipeline_time([1.0], [1.0, 2.0], 2)

    def test_negative_times_rejected(self):
        with pytest.raises(ValueError):
            ChunkTiming(-1.0, 1.0)


class TestChunkedEqualsOneShot:
    """The property: streamed output == one-shot output == reference."""

    @pytest.mark.parametrize("kernel", [unified_spttm, unified_spmttkrp, unified_spttmc])
    @pytest.mark.parametrize("build", CASE_PARAMS)
    def test_streamed_matches_one_shot_and_reference(self, kernel, build):
        tensor = build()
        factors = [np.asarray(f) for f in random_factors(tensor.shape, RANK, seed=5)]
        mode = tensor.order - 1 if kernel is unified_spttm else 0

        one_shot = run_kernel(kernel, tensor, factors, mode, streamed=False)
        streamed = run_kernel(
            kernel, tensor, factors, mode, streamed=True, chunk_nnz=CHUNK_NNZ
        )
        reference = run_reference(kernel, tensor, factors, mode)

        if kernel is unified_spttm:
            assert streamed.output.allclose(one_shot.output)
            # The F-COO arrays store single-precision values (the paper's
            # cost model), so reference comparisons get float32 tolerances.
            assert streamed.output.allclose(reference, rtol=1e-5, atol=1e-6)
        else:
            np.testing.assert_allclose(
                streamed.output, one_shot.output, rtol=1e-10, atol=1e-12
            )
            np.testing.assert_allclose(streamed.output, reference, rtol=1e-5, atol=1e-6)

    @pytest.mark.parametrize("kernel", [unified_spttm, unified_spmttkrp, unified_spttmc])
    @pytest.mark.parametrize(
        "build", [CASE_PARAMS[0], CASE_PARAMS[1], CASE_PARAMS[2], CASE_PARAMS[7]]
    )
    def test_chunk_ledgers_sum_consistently(self, kernel, build):
        tensor = build()
        factors = [np.asarray(f) for f in random_factors(tensor.shape, RANK, seed=5)]
        mode = tensor.order - 1 if kernel is unified_spttm else 0

        one_shot = run_kernel(kernel, tensor, factors, mode, streamed=False)
        streamed = run_kernel(
            kernel, tensor, factors, mode, streamed=True, chunk_nnz=CHUNK_NNZ
        )
        execution = streamed.profile.streaming
        assert execution is not None
        assert execution.num_chunks == -(-tensor.nnz // CHUNK_NNZ)

        # Non-zero coverage: the chunk ledgers partition the stream exactly.
        assert sum(c.nnz for c in execution.chunks) == tensor.nnz
        # The arithmetic is chunk-size independent, so per-chunk FLOPs must
        # add up to the one-shot kernel's FLOPs.
        total_flops = sum(c.counters.flops for c in execution.chunks)
        assert total_flops == pytest.approx(one_shot.profile.counters.flops, rel=1e-9)
        # Every byte of the F-COO stream is shipped exactly once; the merged
        # profile's PCIe ledger equals the per-chunk transfer sum.
        transfer_total = sum(c.transfer_bytes for c in execution.chunks)
        assert transfer_total >= FCOOTensor.from_sparse(
            tensor,
            OperationKind.SPTTM if kernel is unified_spttm else OperationKind.SPMTTKRP,
            mode,
        ).storage_bytes(THREADLEN)
        assert streamed.profile.counters.host_to_device_bytes == pytest.approx(transfer_total)
        # And the schedule's busy totals are the ledger sums.
        assert execution.schedule.transfer_time_s == pytest.approx(
            sum(c.transfer_s for c in execution.chunks)
        )
        assert execution.schedule.compute_time_s == pytest.approx(
            sum(c.compute_s for c in execution.chunks)
        )

    def test_execute_streamed_accepts_one_dimensional_chunk_sums(self):
        # Public-API contract: a width-1 chunk kernel may return its sums as
        # a plain (num_segments,) vector.
        from repro.gpusim.counters import KernelCounters
        from repro.gpusim.launch import LaunchConfig
        from repro.kernels.unified import execute_streamed

        tensor = CASES["order3-uniform"]()
        fcoo = FCOOTensor.from_sparse(tensor, OperationKind.SPMTTKRP, 0)

        def chunk_kernel(chunk):
            sums = np.bincount(
                chunk.segment_ids, weights=np.asarray(chunk.values, dtype=np.float64),
                minlength=chunk.num_segments,
            )
            launch = LaunchConfig.for_nnz(chunk.nnz, 1, threadlen=THREADLEN)
            return sums, KernelCounters(active_threads=1.0), launch

        sums, profile = execute_streamed(
            fcoo, chunk_kernel, device=TITAN_X, threadlen=THREADLEN,
            chunk_nnz=CHUNK_NNZ, name="segment-value-sums",
        )
        assert sums.shape == (fcoo.num_segments, 1)
        expected = np.bincount(
            fcoo.segment_ids, weights=np.asarray(fcoo.values, dtype=np.float64),
            minlength=fcoo.num_segments,
        )
        np.testing.assert_allclose(sums[:, 0], expected)

        def bad_kernel(chunk):
            sums, counters, launch = chunk_kernel(chunk)
            return sums[:-1], counters, launch

        with pytest.raises(ValueError):
            execute_streamed(
                fcoo, bad_kernel, device=TITAN_X, threadlen=THREADLEN,
                chunk_nnz=CHUNK_NNZ, name="bad",
            )

    def test_execute_streamed_on_empty_stream_honours_output_width(self):
        from repro.gpusim.counters import KernelCounters
        from repro.gpusim.launch import LaunchConfig
        from repro.kernels.unified import execute_streamed

        empty = FCOOTensor.from_sparse(
            SparseTensor.empty((5, 6, 7)), OperationKind.SPMTTKRP, 0
        )

        def chunk_kernel(chunk):  # pragma: no cover - zero chunks to run
            return (
                np.zeros((chunk.num_segments, 4)),
                KernelCounters(),
                LaunchConfig.for_nnz(max(chunk.nnz, 1), 4),
            )

        # Auto chunk sizing must not choke on the empty stream, and the
        # returned sums keep the caller's width.
        sums, profile = execute_streamed(
            empty, chunk_kernel, device=TITAN_X, threadlen=THREADLEN,
            name="empty", output_width=4,
        )
        assert sums.shape == (0, 4)
        assert profile.streaming.num_chunks == 0
        assert profile.estimated_time_s == 0.0

    def test_chunk_nnz_below_threadlen_rejected(self):
        tensor = CASES["order3-uniform"]()
        factors = [np.asarray(f) for f in random_factors(tensor.shape, RANK, seed=5)]
        with pytest.raises(ValueError, match="at least threadlen"):
            unified_spmttkrp(
                tensor, factors, 0, threadlen=THREADLEN,
                streamed=True, chunk_nnz=THREADLEN - 1,
            )
        # At or above threadlen it rounds down to a threadlen multiple.
        result = unified_spmttkrp(
            tensor, factors, 0, threadlen=THREADLEN,
            streamed=True, chunk_nnz=THREADLEN + 3,
        )
        assert result.profile.streaming.chunk_nnz == THREADLEN

    def test_forced_streaming_on_empty_tensor_degrades_to_one_shot(self):
        tensor = SparseTensor.empty((5, 6, 7))
        factors = [np.asarray(f) for f in random_factors(tensor.shape, RANK, seed=5)]
        result = unified_spmttkrp(tensor, factors, 0, streamed=True, chunk_nnz=CHUNK_NNZ)
        assert result.profile.streaming is None
        np.testing.assert_array_equal(result.output, np.zeros((5, RANK)))


class TestOverCapacityExecution:
    """Acceptance: over-capacity tensors complete via streaming."""

    @pytest.fixture(scope="class")
    def tensor(self):
        return random_sparse_tensor(
            (30, 50, 40), 600, seed=11, distribution="power", concentration=1.2
        )

    @pytest.fixture(scope="class")
    def tiny_device(self, tensor):
        """A device too small for the one-shot footprint but big enough for
        the dense operands plus a couple of chunk buffers."""
        return scaled_device(TITAN_X, 5e-7, name_suffix="tiny")

    def test_one_shot_raises_out_of_device_memory(self, tensor, tiny_device):
        factors = [np.asarray(f) for f in random_factors(tensor.shape, 4, seed=7)]
        with pytest.raises(OutOfDeviceMemory):
            unified_spmttkrp(tensor, factors, 0, device=tiny_device, streamed=False)

    def test_auto_fallback_streams_and_matches_reference(self, tensor, tiny_device):
        factors = [np.asarray(f) for f in random_factors(tensor.shape, 4, seed=7)]
        result = unified_spmttkrp(tensor, factors, 0, device=tiny_device)
        execution = result.profile.streaming
        assert execution is not None and execution.num_chunks >= 2
        np.testing.assert_allclose(
            result.output, reference_mttkrp(tensor, factors, 0), rtol=1e-5, atol=1e-6
        )
        # The device-side footprint honoured the shrunken capacity.
        assert result.profile.device_memory_bytes <= tiny_device.global_mem_bytes

    def test_streamed_time_strictly_between_overlap_bounds(self, tensor, tiny_device):
        factors = [np.asarray(f) for f in random_factors(tensor.shape, 4, seed=7)]
        result = unified_spmttkrp(tensor, factors, 0, device=tiny_device, num_streams=2)
        schedule = result.profile.streaming.schedule
        assert schedule.ideal_time_s < schedule.total_time_s < schedule.serial_time_s

    def test_auto_chunk_size_is_aligned_and_fits(self, tensor, tiny_device):
        fcoo = FCOOTensor.from_sparse(tensor, OperationKind.SPMTTKRP, 0)
        chunk_nnz = choose_chunk_nnz(
            fcoo,
            device=tiny_device,
            threadlen=8,
            num_streams=2,
            resident_bytes=1024.0,
        )
        assert chunk_nnz % 8 == 0
        assert chunk_nnz >= 8

    def test_dense_operands_too_big_still_raise(self, tensor):
        factors = [np.asarray(f) for f in random_factors(tensor.shape, 4, seed=7)]
        nano = scaled_device(TITAN_X, 1e-8, name_suffix="nano")
        with pytest.raises(OutOfDeviceMemory):
            unified_spmttkrp(tensor, factors, 0, device=nano)

    def test_cp_als_completes_on_over_capacity_tensor(self, tensor, tiny_device):
        engine = UnifiedGPUEngine(device=tiny_device)
        result = cp_als(
            tensor, 4, engine=engine, max_iterations=1, seed=0, compute_fit=False
        )
        assert result.iterations == 1
        assert all(np.isfinite(f).all() for f in result.factors)
        # Numerics are device-independent: the streamed run must reproduce
        # the factors of the same decomposition on a full-size device.
        full = cp_als(
            tensor, 4, engine=UnifiedGPUEngine(), max_iterations=1, seed=0,
            compute_fit=False,
        )
        for streamed_f, full_f in zip(result.factors, full.factors):
            np.testing.assert_allclose(streamed_f, full_f, rtol=1e-8, atol=1e-12)


class TestEngineAndTunerIntegration:
    def test_engine_forwards_streaming_parameters(self):
        tensor = random_sparse_tensor((10, 12, 14), 300, seed=2)
        engine = UnifiedGPUEngine(streamed=True, chunk_nnz=64, num_streams=3)
        engine.prepare(tensor, 4)
        factors = [np.asarray(f) for f in random_factors(tensor.shape, 4, seed=1)]
        result = engine.mttkrp(factors, 0)
        execution = result.profile.streaming
        assert execution is not None
        assert execution.num_streams == 3
        assert execution.chunk_nnz == 64


# ---------------------------------------------------------------------- #
# Hypothesis sweep (the nightly CI profile raises max_examples)
# ---------------------------------------------------------------------- #


class TestStreamedHypothesis:
    """Arbitrary tensors x chunk sizes: chunked == one-shot.

    The parametrized corpus above pins the known-adversarial shapes; this
    sweep searches the space around them under the active Hypothesis
    profile (per-PR default, or the nightly high-examples profile).
    """

    @given(
        dims=st.tuples(*(st.integers(min_value=2, max_value=14),) * 3),
        nnz=st.integers(min_value=1, max_value=220),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        chunk_parts=st.integers(min_value=1, max_value=5),
    )
    def test_chunked_equals_one_shot(self, dims, nnz, seed, chunk_parts):
        tensor = random_sparse_tensor(dims, nnz, seed=seed)
        factors = [np.asarray(f) for f in random_factors(dims, RANK, seed=seed)]
        one_shot = run_kernel(unified_spmttkrp, tensor, factors, 0, streamed=False)
        streamed = run_kernel(
            unified_spmttkrp,
            tensor,
            factors,
            0,
            streamed=True,
            chunk_nnz=chunk_parts * THREADLEN,
        )
        np.testing.assert_allclose(
            streamed.output, one_shot.output, rtol=1e-10, atol=1e-12
        )
