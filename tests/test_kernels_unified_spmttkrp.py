"""Tests for the unified one-shot SpMTTKRP kernel."""

import numpy as np
import pytest

from repro.formats.fcoo import FCOOTensor
from repro.kernels.unified import unified_spmttkrp
from repro.tensor.ops import mttkrp_dense
from repro.tensor.random import random_factors, random_sparse_tensor
from repro.tensor.sparse import SparseTensor


class TestCorrectness:
    def test_matches_dense_every_mode(self, small_tensor, small_factors):
        dense = small_tensor.to_dense()
        for mode in range(3):
            result = unified_spmttkrp(small_tensor, small_factors, mode)
            np.testing.assert_allclose(
                result.output, mttkrp_dense(dense, small_factors, mode), rtol=1e-5, atol=1e-6
            )

    def test_matches_dense_fourth_order(self, fourth_order_tensor):
        rng = np.random.default_rng(0)
        factors = [rng.random((s, 3)) for s in fourth_order_tensor.shape]
        dense = fourth_order_tensor.to_dense()
        for mode in range(4):
            result = unified_spmttkrp(fourth_order_tensor, factors, mode)
            np.testing.assert_allclose(
                result.output, mttkrp_dense(dense, factors, mode), rtol=1e-5, atol=1e-6
            )

    def test_accepts_preencoded_fcoo(self, small_tensor, small_factors):
        fcoo = FCOOTensor.from_sparse(small_tensor, "spmttkrp", 1)
        direct = unified_spmttkrp(small_tensor, small_factors, 1)
        via = unified_spmttkrp(fcoo, small_factors, 1)
        np.testing.assert_allclose(via.output, direct.output)

    def test_rejects_wrong_encoding(self, small_tensor, small_factors):
        fcoo = FCOOTensor.from_sparse(small_tensor, "spmttkrp", 1)
        with pytest.raises(ValueError, match="encoded for"):
            unified_spmttkrp(fcoo, small_factors, 0)

    def test_ignored_factor_at_target_mode(self, small_tensor, small_factors):
        """The factor at the output mode is not read; garbage there must not matter."""
        modified = list(small_factors)
        modified[0] = np.full_like(small_factors[0], np.nan)
        result = unified_spmttkrp(small_tensor, modified, 0)
        reference = unified_spmttkrp(small_tensor, small_factors, 0)
        np.testing.assert_allclose(result.output, reference.output)

    def test_empty_tensor(self):
        empty = SparseTensor.empty((4, 5, 6))
        factors = [np.ones((s, 2)) for s in (4, 5, 6)]
        result = unified_spmttkrp(empty, factors, 0)
        assert result.output.shape == (4, 2)
        assert (result.output == 0).all()

    def test_output_rows_without_nonzeros_are_zero(self):
        coords = np.array([[0, 0, 0], [0, 1, 1]])
        tensor = SparseTensor(coords, np.array([1.0, 2.0]), (5, 2, 2))
        factors = [np.ones((5, 2)), np.ones((2, 2)), np.ones((2, 2))]
        result = unified_spmttkrp(tensor, factors, 0)
        assert (result.output[1:] == 0).all()
        assert (result.output[0] != 0).all()

    def test_wrong_factor_count(self, small_tensor, small_factors):
        with pytest.raises(ValueError):
            unified_spmttkrp(small_tensor, small_factors[:2], 0)

    def test_rank_mismatch(self, small_tensor, small_factors):
        bad = list(small_factors)
        bad[1] = np.ones((small_tensor.shape[1], 9))
        with pytest.raises(ValueError):
            unified_spmttkrp(small_tensor, bad, 0)


class TestProfile:
    def test_one_shot_no_intermediate_tensor(self, skewed_tensor):
        """The one-shot kernel's footprint excludes any intermediate tensor:
        it must be well below COO + intermediate (what ParTI allocates)."""
        from repro.bench.memory import spmttkrp_footprints

        rank = 8
        factors = random_factors(skewed_tensor.shape, rank, seed=0)
        result = unified_spmttkrp(skewed_tensor, factors, 0)
        unified_bytes, parti_bytes = spmttkrp_footprints(skewed_tensor, rank, mode=0)
        assert result.profile.device_memory_bytes == pytest.approx(unified_bytes, rel=0.2)
        assert result.profile.device_memory_bytes < parti_bytes

    def test_single_fused_launch(self, small_tensor, small_factors):
        result = unified_spmttkrp(small_tensor, small_factors, 0)
        assert result.profile.counters.kernel_launches == 1

    def test_atomics_far_below_baseline(self, skewed_tensor):
        rank = 16
        factors = random_factors(skewed_tensor.shape, rank, seed=1)
        result = unified_spmttkrp(skewed_tensor, factors, 0)
        assert result.profile.counters.atomic_ops < skewed_tensor.nnz * rank / 10

    def test_balanced(self, skewed_tensor):
        factors = random_factors(skewed_tensor.shape, 4, seed=2)
        result = unified_spmttkrp(skewed_tensor, factors, 0)
        assert result.profile.counters.imbalance_factor == pytest.approx(1.0)

    def test_mode_insensitivity_on_skewed_tensor(self):
        """The core claim of Figure 7: per-mode times stay within a small factor."""
        tensor = random_sparse_tensor(
            (50, 400, 8), 20_000, seed=3, distribution="power", concentration=1.0
        )
        factors = random_factors(tensor.shape, 16, seed=4)
        times = [
            unified_spmttkrp(tensor, factors, mode).estimated_time_s for mode in range(3)
        ]
        assert max(times) / min(times) < 2.0

    def test_rank_scaling_roughly_linear(self, skewed_tensor):
        factors8 = random_factors(skewed_tensor.shape, 8, seed=5)
        factors64 = random_factors(skewed_tensor.shape, 64, seed=5)
        t8 = unified_spmttkrp(skewed_tensor, factors8, 0).estimated_time_s
        t64 = unified_spmttkrp(skewed_tensor, factors64, 0).estimated_time_s
        assert t64 / t8 < 16.0  # grows, but not faster than the 8x rank increase squared
        assert t64 > t8
