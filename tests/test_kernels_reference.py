"""Tests for the COO reference kernels against the dense oracles."""

import numpy as np
import pytest

from repro.kernels.reference import reference_mttkrp, reference_spttm, reference_ttmc
from repro.tensor.ops import mttkrp_dense, ttm_dense, ttmc_dense
from repro.tensor.sparse import SparseTensor


class TestReferenceSpTTM:
    def test_matches_dense_every_mode(self, small_tensor, small_factors):
        dense = small_tensor.to_dense()
        for mode in range(3):
            out = reference_spttm(small_tensor, small_factors[mode], mode)
            np.testing.assert_allclose(
                out.to_dense(), ttm_dense(dense, small_factors[mode], mode), atol=1e-12
            )

    def test_output_is_semisparse_with_right_fibers(self, small_tensor, small_factors):
        out = reference_spttm(small_tensor, small_factors[2], 2)
        assert out.dense_mode == 2
        assert out.num_fibers == small_tensor.num_fibers(2)
        assert out.fiber_length == small_factors[2].shape[1]

    def test_empty_tensor(self):
        empty = SparseTensor.empty((4, 5, 6))
        out = reference_spttm(empty, np.ones((6, 3)), 2)
        assert out.num_fibers == 0

    def test_factor_shape_mismatch(self, small_tensor):
        with pytest.raises(ValueError):
            reference_spttm(small_tensor, np.ones((3, 2)), 0)


class TestReferenceMTTKRP:
    def test_matches_dense_every_mode(self, small_tensor, small_factors):
        dense = small_tensor.to_dense()
        for mode in range(3):
            np.testing.assert_allclose(
                reference_mttkrp(small_tensor, small_factors, mode),
                mttkrp_dense(dense, small_factors, mode),
                atol=1e-12,
            )

    def test_fourth_order(self, fourth_order_tensor):
        rng = np.random.default_rng(0)
        factors = [rng.random((s, 3)) for s in fourth_order_tensor.shape]
        dense = fourth_order_tensor.to_dense()
        for mode in range(4):
            np.testing.assert_allclose(
                reference_mttkrp(fourth_order_tensor, factors, mode),
                mttkrp_dense(dense, factors, mode),
                atol=1e-12,
            )

    def test_empty_tensor(self):
        empty = SparseTensor.empty((4, 5, 6))
        out = reference_mttkrp(empty, [np.ones((s, 2)) for s in (4, 5, 6)], 0)
        assert out.shape == (4, 2)
        assert (out == 0).all()

    def test_wrong_factor_count(self, small_tensor, small_factors):
        with pytest.raises(ValueError):
            reference_mttkrp(small_tensor, small_factors[:2], 0)

    def test_rank_mismatch(self, small_tensor, small_factors):
        bad = list(small_factors)
        bad[2] = np.ones((small_tensor.shape[2], 7))
        with pytest.raises(ValueError):
            reference_mttkrp(small_tensor, bad, 0)


class TestReferenceTTMc:
    def test_matches_dense_every_mode(self, small_tensor, small_factors):
        dense = small_tensor.to_dense()
        for mode in range(3):
            np.testing.assert_allclose(
                reference_ttmc(small_tensor, small_factors, mode),
                ttmc_dense(dense, small_factors, mode),
                atol=1e-12,
            )

    def test_mixed_ranks(self, small_tensor):
        rng = np.random.default_rng(1)
        factors = [rng.random((s, r)) for s, r in zip(small_tensor.shape, (2, 3, 4))]
        out = reference_ttmc(small_tensor, factors, 0)
        assert out.shape == (small_tensor.shape[0], 3 * 4)
        np.testing.assert_allclose(
            out, ttmc_dense(small_tensor.to_dense(), factors, 0), atol=1e-12
        )

    def test_empty_tensor(self):
        empty = SparseTensor.empty((3, 4, 5))
        out = reference_ttmc(empty, [np.ones((s, 2)) for s in (3, 4, 5)], 1)
        assert out.shape == (4, 4)
        assert (out == 0).all()
