"""Tests for repro.gpusim.counters."""

import pytest

from repro.gpusim.counters import KernelCounters, KernelProfile


class TestKernelCounters:
    def test_defaults(self):
        c = KernelCounters()
        assert c.gmem_total_bytes == 0.0
        assert c.imbalance_factor == 1.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            KernelCounters(flops=-1.0)

    def test_imbalance_below_one_rejected(self):
        with pytest.raises(ValueError):
            KernelCounters(imbalance_factor=0.5)

    def test_merge_adds_traffic(self):
        a = KernelCounters(gmem_read_bytes=100, flops=10, kernel_launches=1)
        b = KernelCounters(gmem_write_bytes=50, flops=5, kernel_launches=1)
        merged = a.merge(b)
        assert merged.gmem_total_bytes == 150
        assert merged.flops == 15
        assert merged.kernel_launches == 2

    def test_merge_takes_max_imbalance_and_threads(self):
        a = KernelCounters(active_threads=100, imbalance_factor=2.0)
        b = KernelCounters(active_threads=500, imbalance_factor=1.1)
        merged = a + b
        assert merged.active_threads == 500
        assert merged.imbalance_factor == 2.0

    def test_merge_type_error(self):
        with pytest.raises(TypeError):
            KernelCounters().merge("nope")

    def test_as_dict_round_trip(self):
        c = KernelCounters(flops=3.0, atomic_ops=2.0)
        d = c.as_dict()
        assert d["flops"] == 3.0
        assert d["atomic_ops"] == 2.0


class TestKernelProfile:
    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            KernelProfile(name="x", counters=KernelCounters(), estimated_time_s=-1.0)

    def test_combined_adds_times_and_maxes_memory(self):
        a = KernelProfile(
            name="a",
            counters=KernelCounters(flops=1),
            estimated_time_s=1.0,
            device_memory_bytes=100,
            breakdown={"memory": 0.5},
        )
        b = KernelProfile(
            name="b",
            counters=KernelCounters(flops=2),
            estimated_time_s=2.0,
            device_memory_bytes=300,
            breakdown={"memory": 1.0, "compute": 0.5},
        )
        c = a.combined(b)
        assert c.estimated_time_s == pytest.approx(3.0)
        assert c.device_memory_bytes == 300
        assert c.breakdown["memory"] == pytest.approx(1.5)
        assert "a" in c.name and "b" in c.name
