"""Tests for the SPLATT CSF-based CPU MTTKRP baseline."""

import numpy as np

from repro.formats.csf import CSFTensor
from repro.kernels.baselines.splatt import splatt_csf_mode_order, splatt_mttkrp
from repro.kernels.baselines.parti_omp import parti_omp_spmttkrp
from repro.tensor.ops import mttkrp_dense
from repro.tensor.random import random_factors, random_sparse_tensor


class TestModeOrder:
    def test_root_first(self, small_tensor):
        order = splatt_csf_mode_order(small_tensor, 1)
        assert order[0] == 1
        assert sorted(order) == [0, 1, 2]

    def test_remaining_sorted_by_size(self):
        tensor = random_sparse_tensor((100, 5, 50), 200, seed=0)
        assert splatt_csf_mode_order(tensor, 0) == (0, 1, 2)
        assert splatt_csf_mode_order(tensor, 1) == (1, 2, 0)


class TestCorrectness:
    def test_matches_dense_every_mode(self, small_tensor, small_factors):
        dense = small_tensor.to_dense()
        for mode in range(3):
            result = splatt_mttkrp(small_tensor, small_factors, mode)
            np.testing.assert_allclose(
                result.output, mttkrp_dense(dense, small_factors, mode), atol=1e-10
            )

    def test_with_shared_csf_tree(self, small_tensor, small_factors):
        csf = CSFTensor.from_sparse(small_tensor, splatt_csf_mode_order(small_tensor, 0))
        dense = small_tensor.to_dense()
        for mode in range(3):
            result = splatt_mttkrp(small_tensor, small_factors, mode, csf=csf)
            np.testing.assert_allclose(
                result.output, mttkrp_dense(dense, small_factors, mode), atol=1e-10
            )

    def test_fourth_order(self, fourth_order_tensor):
        rng = np.random.default_rng(0)
        factors = [rng.random((s, 2)) for s in fourth_order_tensor.shape]
        dense = fourth_order_tensor.to_dense()
        for mode in range(4):
            result = splatt_mttkrp(fourth_order_tensor, factors, mode)
            np.testing.assert_allclose(
                result.output, mttkrp_dense(dense, factors, mode), atol=1e-10
            )


class TestProfile:
    def test_faster_than_parti_omp(self, skewed_tensor):
        """SPLATT is the stronger CPU baseline in Figure 6b."""
        factors = random_factors(skewed_tensor.shape, 16, seed=1)
        splatt_time = splatt_mttkrp(skewed_tensor, factors, 0).estimated_time_s
        parti_time = parti_omp_spmttkrp(skewed_tensor, factors, 0).estimated_time_s
        assert splatt_time < parti_time

    def test_root_mode_cheaper_than_non_root(self):
        """Operating on the tree's root benefits from fiber factorisation;
        other modes do not (the Figure 7b / Figure 10 mode sensitivity)."""
        tensor = random_sparse_tensor((40, 300, 30), 20_000, seed=2)
        factors = random_factors(tensor.shape, 16, seed=3)
        csf = CSFTensor.from_sparse(tensor, splatt_csf_mode_order(tensor, 0))
        on_root = splatt_mttkrp(tensor, factors, 0, csf=csf)
        off_root = splatt_mttkrp(tensor, factors, 1, csf=csf)
        assert on_root.profile.counters.flops < off_root.profile.counters.flops

    def test_thread_scaling(self, skewed_tensor):
        factors = random_factors(skewed_tensor.shape, 8, seed=4)
        one = splatt_mttkrp(skewed_tensor, factors, 0, num_threads=1)
        many = splatt_mttkrp(skewed_tensor, factors, 0, num_threads=12)
        assert many.estimated_time_s < one.estimated_time_s

    def test_parallelism_limited_by_root_slices(self):
        # Root mode with very few slices cannot use all 12 threads.
        tensor = random_sparse_tensor((3, 200, 200), 5_000, seed=5)
        factors = random_factors(tensor.shape, 8, seed=6)
        result = splatt_mttkrp(tensor, factors, 0, csf_root_mode=0)
        assert result.profile.breakdown["threads"] <= 3
