"""End-to-end integration tests across the full stack.

These exercise the public API exactly as the examples and the benchmark
harness do: datasets -> formats -> kernels -> algorithms -> reported shapes.
"""

import numpy as np
import pytest

import repro
from repro import (
    SparseTensor,
    cp_als,
    load_dataset,
    random_factors,
    tucker_hooi,
    unified_spmttkrp,
    unified_spttm,
)
from repro.algorithms.cp import SplattCPUEngine, UnifiedGPUEngine
from repro.kernels.baselines import parti_gpu_spmttkrp, parti_omp_spmttkrp, splatt_mttkrp
from repro.kernels.reference import reference_mttkrp


class TestPublicAPI:
    def test_version_and_exports(self):
        assert isinstance(repro.__version__, str)
        for name in ("SparseTensor", "FCOOTensor", "unified_spmttkrp", "cp_als", "TITAN_X"):
            assert name in repro.__all__
            assert hasattr(repro, name)

    def test_quickstart_snippet(self):
        """The snippet from the package docstring must keep working."""
        X = SparseTensor(
            np.array([[0, 1, 2], [1, 0, 1]]), np.array([1.0, 2.0]), (2, 2, 3)
        )
        factors = random_factors(X.shape, rank=4, seed=0)
        result = unified_spmttkrp(X, factors, mode=0)
        assert result.output.shape == (2, 4)


class TestDatasetKernelsAgree:
    """All four implementations must agree numerically on a registry dataset."""

    @pytest.fixture(scope="class")
    def workload(self):
        tensor = load_dataset("brainq")
        factors = [np.asarray(f) for f in random_factors(tensor.shape, 8, seed=1)]
        return tensor, factors

    def test_all_mttkrp_implementations_agree(self, workload):
        tensor, factors = workload
        reference = reference_mttkrp(tensor, factors, 0)
        unified = unified_spmttkrp(tensor, factors, 0).output
        parti_gpu = parti_gpu_spmttkrp(tensor, factors, 0).output
        parti_omp = parti_omp_spmttkrp(tensor, factors, 0).output
        splatt = splatt_mttkrp(tensor, factors, 0).output
        np.testing.assert_allclose(unified, reference, rtol=1e-3, atol=1e-4)
        np.testing.assert_allclose(parti_gpu, reference, rtol=1e-10, atol=1e-10)
        np.testing.assert_allclose(parti_omp, reference, rtol=1e-10, atol=1e-10)
        np.testing.assert_allclose(splatt, reference, rtol=1e-10, atol=1e-10)

    def test_headline_performance_shape(self, workload):
        """Unified beats ParTI-GPU and the CPU baselines on SpMTTKRP (Fig. 6b)."""
        tensor, factors = workload
        unified_t = unified_spmttkrp(tensor, factors, 0).estimated_time_s
        parti_gpu_t = parti_gpu_spmttkrp(tensor, factors, 0).estimated_time_s
        parti_omp_t = parti_omp_spmttkrp(tensor, factors, 0).estimated_time_s
        splatt_t = splatt_mttkrp(tensor, factors, 0).estimated_time_s
        assert unified_t < parti_gpu_t
        assert unified_t < splatt_t < parti_omp_t


class TestEndToEndDecompositions:
    def test_cp_on_registry_dataset(self):
        tensor = load_dataset("brainq")
        result = cp_als(tensor, 4, max_iterations=2, tolerance=0.0, seed=0)
        assert result.iterations == 2
        assert result.final_fit is not None
        assert 0.0 < result.final_fit <= 1.0
        assert result.total_time_s > 0

    def test_cp_engines_same_fit_different_times(self, medium_tensor):
        unified = cp_als(
            medium_tensor, 4, engine=UnifiedGPUEngine(), max_iterations=2, tolerance=0.0, seed=3
        )
        splatt = cp_als(
            medium_tensor, 4, engine=SplattCPUEngine(), max_iterations=2, tolerance=0.0, seed=3
        )
        assert unified.final_fit == pytest.approx(splatt.final_fit, rel=1e-4)
        assert unified.total_time_s < splatt.total_time_s

    def test_tucker_on_medium_tensor(self, medium_tensor):
        result = tucker_hooi(medium_tensor, (4, 4, 4), max_iterations=2, tolerance=0.0)
        assert result.core.shape == (4, 4, 4)
        assert len(result.fits) == 2

    def test_spttm_feeds_into_further_processing(self, medium_tensor):
        """SpTTM output (semi-sparse) can be densified and reused downstream."""
        u = np.asarray(random_factors(medium_tensor.shape, 4, seed=5)[2])
        out = unified_spttm(medium_tensor, u, 2).output
        collapsed = out.to_sparse()
        assert collapsed.shape == (medium_tensor.shape[0], medium_tensor.shape[1], 4)
        assert collapsed.nnz > 0
