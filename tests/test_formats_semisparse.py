"""Tests for repro.formats.semisparse.SemiSparseTensor (sCOO)."""

import numpy as np
import pytest

from repro.formats.semisparse import SemiSparseTensor
from repro.kernels.reference.coo_reference import reference_spttm
from repro.tensor.ops import ttm_dense


def make_semisparse(dense_mode=2):
    coords = np.array([[0, 0], [1, 2], [2, 1]])
    values = np.arange(12.0).reshape(3, 4)
    shape = [3, 3, 3]
    shape[dense_mode] = 4
    return SemiSparseTensor(
        shape=tuple(shape), dense_mode=dense_mode, fiber_coords=coords, fiber_values=values
    )


class TestConstruction:
    def test_basic_properties(self):
        t = make_semisparse()
        assert t.num_fibers == 3
        assert t.fiber_length == 4
        assert t.sparse_modes == (0, 1)

    def test_coordinate_bounds_checked(self):
        with pytest.raises(ValueError):
            SemiSparseTensor(
                shape=(2, 2, 4),
                dense_mode=2,
                fiber_coords=np.array([[5, 0]]),
                fiber_values=np.ones((1, 4)),
            )

    def test_value_shape_checked(self):
        with pytest.raises(ValueError):
            SemiSparseTensor(
                shape=(2, 2, 4),
                dense_mode=2,
                fiber_coords=np.array([[0, 0]]),
                fiber_values=np.ones((1, 3)),
            )

    def test_coord_column_count_checked(self):
        with pytest.raises(ValueError):
            SemiSparseTensor(
                shape=(2, 2, 4),
                dense_mode=2,
                fiber_coords=np.array([[0]]),
                fiber_values=np.ones((1, 4)),
            )


class TestConversions:
    @pytest.mark.parametrize("dense_mode", [0, 1, 2])
    def test_to_dense_places_fibers(self, dense_mode):
        t = make_semisparse(dense_mode)
        dense = t.to_dense()
        for f in range(t.num_fibers):
            index = [None] * 3
            for pos, m in enumerate(t.sparse_modes):
                index[m] = int(t.fiber_coords[f, pos])
            index[dense_mode] = slice(None)
            np.testing.assert_allclose(dense[tuple(index)], t.fiber_values[f])

    @pytest.mark.parametrize("dense_mode", [0, 1, 2])
    def test_to_sparse_matches_to_dense(self, dense_mode):
        t = make_semisparse(dense_mode)
        np.testing.assert_allclose(t.to_sparse().to_dense(), t.to_dense())

    def test_spttm_output_matches_dense_ttm(self, small_tensor):
        rng = np.random.default_rng(0)
        for mode in range(3):
            u = rng.random((small_tensor.shape[mode], 5))
            out = reference_spttm(small_tensor, u, mode)
            np.testing.assert_allclose(
                out.to_dense(), ttm_dense(small_tensor.to_dense(), u, mode), atol=1e-12
            )

    def test_storage_bytes(self):
        t = make_semisparse()
        assert t.storage_bytes() == 3 * 2 * 4 + 3 * 4 * 4


class TestComparison:
    def test_allclose_self(self):
        t = make_semisparse()
        assert t.allclose(t)

    def test_allclose_reordered_fibers(self):
        t = make_semisparse()
        perm = np.array([2, 0, 1])
        other = SemiSparseTensor(
            shape=t.shape,
            dense_mode=t.dense_mode,
            fiber_coords=t.fiber_coords[perm],
            fiber_values=t.fiber_values[perm],
        )
        assert t.allclose(other)

    def test_allclose_detects_differences(self):
        t = make_semisparse()
        other = SemiSparseTensor(
            shape=t.shape,
            dense_mode=t.dense_mode,
            fiber_coords=t.fiber_coords,
            fiber_values=t.fiber_values * 2.0,
        )
        assert not t.allclose(other)

    def test_allclose_type_error(self):
        with pytest.raises(TypeError):
            make_semisparse().allclose(42)
