"""Tests for repro.util.timing."""

import pytest

from repro.util.timing import Timer


class TestTimer:
    def test_lap_records_positive_time(self):
        t = Timer()
        with t.lap("work"):
            sum(range(1000))
        assert t.laps["work"] >= 0.0

    def test_laps_accumulate(self):
        t = Timer()
        t.add("a", 1.0)
        t.add("a", 2.0)
        assert t.laps["a"] == pytest.approx(3.0)

    def test_total(self):
        t = Timer()
        t.add("a", 1.0)
        t.add("b", 0.5)
        assert t.total == pytest.approx(1.5)

    def test_as_dict_preserves_order(self):
        t = Timer()
        t.add("first", 1.0)
        t.add("second", 2.0)
        assert list(t.as_dict()) == ["first", "second"]

    def test_negative_rejected(self):
        t = Timer()
        with pytest.raises(ValueError):
            t.add("x", -1.0)
