"""Tests for the Table II storage-cost model."""

import pytest

from repro.formats.mode_encoding import OperationKind
from repro.formats.storage_cost import (
    coo_storage_bytes,
    csf_storage_bytes,
    fcoo_storage_bytes,
    storage_report,
)


class TestCOOCost:
    def test_paper_value_third_order(self):
        # Table II: 16 bytes per non-zero for a 3-order tensor.
        assert coo_storage_bytes(1000, 3) == 16 * 1000

    def test_order_dependence(self):
        assert coo_storage_bytes(10, 4) == 10 * (4 * 4 + 4)

    def test_custom_widths(self):
        assert coo_storage_bytes(10, 3, index_bytes=8, value_bytes=8) == 10 * 32


class TestFCOOCost:
    def test_paper_spttm_formula(self):
        # Table II: (8 + 1/8 + 1/(8*threadlen)) * nnz for SpTTM on mode-3.
        nnz, threadlen = 1000, 8
        expected = (8 + 1 / 8 + 1 / (8 * threadlen)) * nnz
        got = fcoo_storage_bytes(nnz, 3, OperationKind.SPTTM, 2, threadlen=threadlen)
        assert got == pytest.approx(expected)

    def test_paper_spmttkrp_formula(self):
        nnz, threadlen = 1000, 16
        expected = (12 + 1 / 8 + 1 / (8 * threadlen)) * nnz
        got = fcoo_storage_bytes(nnz, 3, "spmttkrp", 0, threadlen=threadlen)
        assert got == pytest.approx(expected)

    def test_without_start_flag(self):
        assert fcoo_storage_bytes(800, 3, "spttm", 2) == pytest.approx((8 + 1 / 8) * 800)

    def test_always_cheaper_than_coo(self):
        for op, mode in [("spttm", 2), ("spmttkrp", 0), ("spttmc", 0)]:
            for threadlen in (1, 8, 64):
                fcoo_bytes = fcoo_storage_bytes(500, 3, op, mode, threadlen=threadlen)
                assert fcoo_bytes < coo_storage_bytes(500, 3)

    def test_higher_order(self):
        # 4-order SpMTTKRP keeps 3 product-mode index arrays.
        got = fcoo_storage_bytes(100, 4, "spmttkrp", 0)
        assert got == pytest.approx((16 + 1 / 8) * 100)


class TestCSFCost:
    def test_basic(self):
        total = csf_storage_bytes(12, [2, 3, 12])
        # fids: (2+3+12)*4, fptr: (3+4)*4, values: 12*4
        assert total == (2 + 3 + 12) * 4 + (3 + 4) * 4 + 12 * 4

    def test_leaf_mismatch_rejected(self):
        with pytest.raises(ValueError):
            csf_storage_bytes(10, [2, 3, 12])

    def test_empty_levels_rejected(self):
        with pytest.raises(ValueError):
            csf_storage_bytes(10, [])


class TestStorageReport:
    def test_report_fields(self):
        report = storage_report(1000, 3, "spmttkrp", 0, threadlen=8)
        assert report.coo_bytes_per_nnz == pytest.approx(16.0)
        assert report.fcoo_bytes_per_nnz == pytest.approx(12 + 1 / 8 + 1 / 64)
        assert report.reduction_factor > 1.0

    def test_spttm_reduction_close_to_two(self):
        report = storage_report(10_000, 3, "spttm", 2, threadlen=8)
        assert report.reduction_factor == pytest.approx(16 / (8 + 1 / 8 + 1 / 64), rel=1e-6)
