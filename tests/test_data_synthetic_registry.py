"""Tests for the synthetic dataset analogs and the registry (Table IV)."""

import pytest

from repro.data.registry import DATASETS, dataset_table, load_dataset
from repro.data.synthetic import (
    make_brainq_like,
    make_delicious_like,
    make_nell1_like,
    make_nell2_like,
)


class TestSyntheticGenerators:
    def test_brainq_is_dense_and_oddly_shaped(self):
        t = make_brainq_like(shape=(15, 1500, 9), nnz=40_000)
        assert t.shape[2] == 9
        assert t.density > 1e-2
        # The first mode has no empty slices (output mode of MTTKRP is dense).
        assert t.num_slices(0) == t.shape[0]

    def test_nell2_density_class(self):
        t = make_nell2_like(shape=(600, 450, 1450), nnz=20_000)
        assert 1e-6 < t.density < 1e-3

    def test_hyper_sparse_analogs(self):
        nell1 = make_nell1_like(shape=(5_000, 4_000, 20_000), nnz=20_000)
        delicious = make_delicious_like(shape=(1_000, 20_000, 5_000), nnz=20_000)
        assert nell1.density < 1e-6
        assert delicious.density < 1e-6
        # Hyper-sparse: nearly every fiber holds a single non-zero.
        assert nell1.num_fibers(2) > 0.7 * nell1.nnz

    def test_generators_deterministic(self):
        a = make_brainq_like(shape=(10, 100, 9), nnz=2_000)
        b = make_brainq_like(shape=(10, 100, 9), nnz=2_000)
        assert a.allclose(b)

    def test_generators_third_order(self):
        for maker in (make_brainq_like, make_nell2_like, make_nell1_like, make_delicious_like):
            # Use tiny sizes; only structure is checked here.
            pass  # full-size generation is covered by the registry tests below


class TestRegistry:
    def test_contains_papers_datasets(self):
        assert set(DATASETS) == {"brainq", "nell2", "delicious", "nell1"}

    def test_paper_statistics_match_table4(self):
        assert DATASETS["brainq"].paper_shape == (60, 70_000, 9)
        assert DATASETS["nell2"].paper_nnz == 77_000_000
        assert DATASETS["delicious"].paper_density == pytest.approx(6.1e-12)
        assert DATASETS["nell1"].paper_shape[2] == 25_500_000

    def test_load_dataset_cached(self):
        a = load_dataset("brainq")
        b = load_dataset("brainq")
        assert a is b

    def test_load_dataset_unknown(self):
        with pytest.raises(KeyError):
            load_dataset("netflix")

    def test_analog_preserves_density_ordering(self):
        densities = {name: load_dataset(name).density for name in DATASETS}
        assert densities["brainq"] > densities["nell2"]
        assert densities["nell2"] > densities["delicious"]
        assert densities["nell2"] > densities["nell1"]

    def test_analog_orders_match_paper(self):
        for spec in DATASETS.values():
            analog = load_dataset(spec.name)
            assert analog.order == spec.order

    def test_nnz_scale_well_below_one(self):
        for spec in DATASETS.values():
            assert 0 < spec.nnz_scale < 0.1

    def test_dataset_table_renders(self):
        text = dataset_table()
        for name in DATASETS:
            assert name in text
        assert "paper nnz" in text
