"""Tests for the segmented-scan primitive."""

import numpy as np
import pytest

from repro.gpusim.counters import KernelCounters
from repro.gpusim.device import TITAN_X
from repro.gpusim.launch import LaunchConfig
from repro.gpusim.scan import segment_reduce, segmented_scan_counters


class TestSegmentReduce:
    def test_one_dimensional(self):
        values = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        ids = np.array([0, 0, 1, 1, 1])
        np.testing.assert_allclose(segment_reduce(values, ids, 2), [3.0, 12.0])

    def test_two_dimensional(self):
        values = np.arange(12.0).reshape(6, 2)
        ids = np.array([0, 0, 0, 1, 1, 2])
        out = segment_reduce(values, ids, 3)
        np.testing.assert_allclose(out[0], values[:3].sum(axis=0))
        np.testing.assert_allclose(out[2], values[5])

    def test_empty_segments_are_zero(self):
        values = np.array([1.0])
        out = segment_reduce(values, np.array([2]), 4)
        np.testing.assert_allclose(out, [0.0, 0.0, 1.0, 0.0])

    def test_empty_input(self):
        out = segment_reduce(np.empty((0, 3)), np.empty(0, dtype=int), 2)
        assert out.shape == (2, 3)
        assert (out == 0).all()

    def test_matches_serial_oracle(self):
        rng = np.random.default_rng(0)
        values = rng.random((200, 4))
        ids = np.sort(rng.integers(0, 17, size=200))
        expected = np.zeros((17, 4))
        for v, s in zip(values, ids):
            expected[s] += v
        np.testing.assert_allclose(segment_reduce(values, ids, 17), expected)

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            segment_reduce(np.ones(3), np.zeros(4, dtype=int), 1)

    def test_out_of_range_segment(self):
        with pytest.raises(ValueError):
            segment_reduce(np.ones(3), np.array([0, 1, 5]), 2)

    def test_three_dimensional_rejected(self):
        with pytest.raises(ValueError):
            segment_reduce(np.ones((2, 2, 2)), np.array([0, 1]), 2)


class TestScanCounters:
    def _launch(self):
        return LaunchConfig.for_nnz(100_000, 16, block_size=128, threadlen=8)

    def test_returns_counters(self):
        c = segmented_scan_counters(100_000, 5_000, 16, self._launch(), TITAN_X)
        assert isinstance(c, KernelCounters)
        assert c.flops > 0

    def test_fused_avoids_spill(self):
        fused = segmented_scan_counters(100_000, 5_000, 16, self._launch(), TITAN_X, fused=True)
        unfused = segmented_scan_counters(
            100_000, 5_000, 16, self._launch(), TITAN_X, fused=False
        )
        assert unfused.gmem_total_bytes > fused.gmem_total_bytes
        assert unfused.kernel_launches > fused.kernel_launches

    def test_carry_atomics_scale_with_blocks(self):
        small = segmented_scan_counters(
            1_000, 100, 4, LaunchConfig.for_nnz(1_000, 4, block_size=128, threadlen=8), TITAN_X
        )
        large = segmented_scan_counters(
            1_000_000,
            100,
            4,
            LaunchConfig.for_nnz(1_000_000, 4, block_size=128, threadlen=8),
            TITAN_X,
        )
        assert large.atomic_ops > small.atomic_ops

    def test_zero_elements(self):
        c = segmented_scan_counters(0, 0, 4, self._launch(), TITAN_X)
        assert c.flops == 0.0
        assert c.gmem_total_bytes == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            segmented_scan_counters(-1, 0, 4, self._launch(), TITAN_X)
