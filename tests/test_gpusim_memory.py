"""Tests for the coalescing and read-only cache models."""

import numpy as np
import pytest

from repro.gpusim.device import TITAN_X
from repro.gpusim.memory import AccessPattern, coalesced_traffic_bytes, readonly_cache_traffic


class TestCoalescing:
    def test_coalesced_is_exact(self):
        assert coalesced_traffic_bytes(1000, 4, AccessPattern.COALESCED, TITAN_X) == 4000

    def test_random_short_runs_waste_bandwidth(self):
        useful = 1000 * 4
        random = coalesced_traffic_bytes(
            1000, 4, AccessPattern.RANDOM, TITAN_X, contiguous_run_bytes=4
        )
        assert random > useful
        # A 4-byte gather costs a whole 32-byte sector.
        assert random == pytest.approx(1000 * 32)

    def test_random_long_runs_amortise(self):
        long_run = coalesced_traffic_bytes(
            1000, 4, AccessPattern.RANDOM, TITAN_X, contiguous_run_bytes=1024
        )
        assert long_run == pytest.approx(1000 * 4, rel=0.1)

    def test_strided_penalty_grows_then_saturates(self):
        s2 = coalesced_traffic_bytes(100, 4, AccessPattern.STRIDED, TITAN_X, stride_elements=2)
        s8 = coalesced_traffic_bytes(100, 4, AccessPattern.STRIDED, TITAN_X, stride_elements=8)
        s1000 = coalesced_traffic_bytes(
            100, 4, AccessPattern.STRIDED, TITAN_X, stride_elements=1000
        )
        assert 400 < s2 < s8 <= s1000
        assert s1000 == pytest.approx(100 * 128)  # capped at one line per access

    def test_never_less_than_useful(self):
        for pattern in AccessPattern:
            got = coalesced_traffic_bytes(
                500, 8, pattern, TITAN_X, stride_elements=2, contiguous_run_bytes=8
            )
            assert got >= 500 * 8 - 1e-9

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            coalesced_traffic_bytes(-1, 4, AccessPattern.COALESCED, TITAN_X)
        with pytest.raises(ValueError):
            coalesced_traffic_bytes(10, 0, AccessPattern.COALESCED, TITAN_X)
        with pytest.raises(ValueError):
            coalesced_traffic_bytes(10, 4, AccessPattern.STRIDED, TITAN_X, stride_elements=0.5)


class TestReadOnlyCache:
    def test_small_working_set_hits(self):
        # 10 distinct rows of 64 B each reused 1000x: only compulsory misses.
        rows = np.tile(np.arange(10), 1000)
        traffic = readonly_cache_traffic(rows, 64.0, TITAN_X)
        assert traffic.misses == pytest.approx(10)
        assert traffic.hit_rate > 0.99

    def test_huge_working_set_misses(self):
        rows = np.arange(500_000)  # every access distinct
        traffic = readonly_cache_traffic(rows, 64.0, TITAN_X)
        assert traffic.hit_rate == pytest.approx(0.0, abs=1e-9)
        assert traffic.dram_bytes >= 500_000 * 64

    def test_intermediate_working_set(self):
        rng = np.random.default_rng(0)
        rows = rng.integers(0, 100_000, size=300_000)
        traffic = readonly_cache_traffic(rows, 64.0, TITAN_X)
        assert 0.0 < traffic.hit_rate < 1.0

    def test_monotone_in_working_set(self):
        rng = np.random.default_rng(1)
        small = readonly_cache_traffic(rng.integers(0, 1_000, 100_000), 64.0, TITAN_X)
        large = readonly_cache_traffic(rng.integers(0, 1_000_000, 100_000), 64.0, TITAN_X)
        assert large.hit_rate < small.hit_rate
        assert large.dram_bytes > small.dram_bytes

    def test_custom_cache_size(self):
        rows = np.tile(np.arange(1000), 10)
        big_cache = readonly_cache_traffic(rows, 64.0, TITAN_X, cache_bytes=1e9)
        small_cache = readonly_cache_traffic(rows, 64.0, TITAN_X, cache_bytes=1e3)
        assert big_cache.misses < small_cache.misses

    def test_empty_stream(self):
        traffic = readonly_cache_traffic(np.empty(0, dtype=np.int64), 64.0, TITAN_X)
        assert traffic.accesses == 0
        assert traffic.dram_bytes == 0.0

    def test_invalid_row_bytes(self):
        with pytest.raises(ValueError):
            readonly_cache_traffic(np.arange(5), 0.0, TITAN_X)
