"""Tests for repro.tensor.dense (matricization)."""

import numpy as np
import pytest

from repro.tensor.dense import fold_dense, unfold_dense, unfold_shape


class TestUnfoldShape:
    def test_third_order(self):
        assert unfold_shape((2, 3, 4), 0) == (2, 12)
        assert unfold_shape((2, 3, 4), 1) == (3, 8)
        assert unfold_shape((2, 3, 4), 2) == (4, 6)

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            unfold_shape((2, 3), 5)


class TestUnfoldDense:
    def test_paper_figure1_convention(self, tiny_dense_tensor):
        """The 2x2x2 example of Figure 1 must unfold exactly as printed."""
        dense = tiny_dense_tensor.to_dense()
        x1 = unfold_dense(dense, 0)
        np.testing.assert_allclose(x1, [[1, 3, 5, 7], [2, 4, 6, 8]])
        x2 = unfold_dense(dense, 1)
        np.testing.assert_allclose(x2, [[1, 2, 5, 6], [3, 4, 7, 8]])
        x3 = unfold_dense(dense, 2)
        np.testing.assert_allclose(x3, [[1, 2, 3, 4], [5, 6, 7, 8]])

    def test_element_mapping(self):
        rng = np.random.default_rng(0)
        x = rng.random((3, 4, 5))
        x1 = unfold_dense(x, 1)
        # Element (i, j, k) lands at row j, column i + k*3 for mode-1 unfold.
        for i, j, k in [(0, 0, 0), (2, 3, 4), (1, 2, 3)]:
            assert x1[j, i + k * 3] == pytest.approx(x[i, j, k])

    def test_shapes(self):
        x = np.zeros((2, 3, 4, 5))
        for mode in range(4):
            assert unfold_dense(x, mode).shape == unfold_shape(x.shape, mode)


class TestFoldDense:
    def test_round_trip_all_modes(self):
        rng = np.random.default_rng(1)
        x = rng.random((4, 3, 6))
        for mode in range(3):
            restored = fold_dense(unfold_dense(x, mode), mode, x.shape)
            np.testing.assert_allclose(restored, x)

    def test_round_trip_fourth_order(self):
        rng = np.random.default_rng(2)
        x = rng.random((2, 3, 4, 5))
        for mode in range(4):
            np.testing.assert_allclose(fold_dense(unfold_dense(x, mode), mode, x.shape), x)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="does not match"):
            fold_dense(np.zeros((2, 5)), 0, (2, 3, 4))
