"""Tests for repro.util.rng."""

import numpy as np
import pytest

from repro.util.rng import as_rng, spawn_rngs


class TestAsRng:
    def test_none_gives_generator(self):
        assert isinstance(as_rng(None), np.random.Generator)

    def test_int_is_deterministic(self):
        a = as_rng(123).integers(0, 1000, size=10)
        b = as_rng(123).integers(0, 1000, size=10)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = as_rng(1).integers(0, 1_000_000, size=20)
        b = as_rng(2).integers(0, 1_000_000, size=20)
        assert not np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_rng(gen) is gen

    def test_seed_sequence_accepted(self):
        gen = as_rng(np.random.SeedSequence(5))
        assert isinstance(gen, np.random.Generator)

    def test_invalid_type_rejected(self):
        with pytest.raises(TypeError):
            as_rng("seed")


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 4)) == 4

    def test_children_are_independent(self):
        a, b = spawn_rngs(7, 2)
        assert not np.array_equal(
            a.integers(0, 10**6, size=50), b.integers(0, 10**6, size=50)
        )

    def test_deterministic_given_seed(self):
        first = [g.integers(0, 10**6, size=5) for g in spawn_rngs(3, 3)]
        second = [g.integers(0, 10**6, size=5) for g in spawn_rngs(3, 3)]
        for a, b in zip(first, second):
            np.testing.assert_array_equal(a, b)

    def test_spawn_from_generator(self):
        children = spawn_rngs(np.random.default_rng(0), 2)
        assert len(children) == 2

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, 0)
