"""Tests for repro.tensor.products (Kronecker, Khatri-Rao, Hadamard)."""

import numpy as np
import pytest

from repro.tensor.dense import unfold_dense
from repro.tensor.products import hadamard, khatri_rao, kronecker
from repro.tensor.products import khatri_rao_multi


class TestKronecker:
    def test_matches_definition(self):
        a = np.array([[1.0, 2.0], [3.0, 4.0]])
        b = np.array([[0.0, 1.0], [1.0, 0.0]])
        k = kronecker(a, b)
        assert k.shape == (4, 4)
        np.testing.assert_allclose(k[:2, :2], a[0, 0] * b)
        np.testing.assert_allclose(k[2:, 2:], a[1, 1] * b)

    def test_element_formula(self):
        rng = np.random.default_rng(0)
        a = rng.random((3, 2))
        b = rng.random((4, 5))
        k = kronecker(a, b)
        for i, j, p, q in [(0, 0, 0, 0), (2, 1, 3, 4), (1, 0, 2, 3)]:
            assert k[i * 4 + p, j * 5 + q] == pytest.approx(a[i, j] * b[p, q])

    def test_rejects_vectors(self):
        with pytest.raises(ValueError):
            kronecker(np.ones(3), np.ones((2, 2)))


class TestKhatriRao:
    def test_shape(self):
        a = np.ones((3, 4))
        b = np.ones((5, 4))
        assert khatri_rao(a, b).shape == (15, 4)

    def test_columns_are_kron_of_columns(self):
        rng = np.random.default_rng(1)
        a = rng.random((3, 4))
        b = rng.random((5, 4))
        kr = khatri_rao(a, b)
        for r in range(4):
            np.testing.assert_allclose(kr[:, r], np.kron(a[:, r], b[:, r]))

    def test_rank_mismatch_rejected(self):
        with pytest.raises(ValueError):
            khatri_rao(np.ones((3, 2)), np.ones((4, 3)))

    def test_mttkrp_identity(self):
        """X_(0) @ khatri_rao(C, B) equals the MTTKRP (Equation 5)."""
        rng = np.random.default_rng(2)
        x = rng.random((4, 5, 6))
        b = rng.random((5, 3))
        c = rng.random((6, 3))
        direct = np.einsum("ijk,jr,kr->ir", x, b, c)
        via_kr = unfold_dense(x, 0) @ khatri_rao(c, b)
        np.testing.assert_allclose(via_kr, direct)

    def test_multi_left_associated(self):
        rng = np.random.default_rng(3)
        mats = [rng.random((3, 2)), rng.random((4, 2)), rng.random((5, 2))]
        expected = khatri_rao(khatri_rao(mats[0], mats[1]), mats[2])
        np.testing.assert_allclose(khatri_rao_multi(mats), expected)

    def test_multi_empty_rejected(self):
        with pytest.raises(ValueError):
            khatri_rao_multi([])


class TestHadamard:
    def test_elementwise(self):
        a = np.array([[1.0, 2.0], [3.0, 4.0]])
        b = np.array([[2.0, 0.5], [1.0, 2.0]])
        np.testing.assert_allclose(hadamard(a, b), a * b)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            hadamard(np.ones((2, 2)), np.ones((3, 2)))
