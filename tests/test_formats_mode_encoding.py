"""Tests for repro.formats.mode_encoding (paper Table I)."""

import pytest

from repro.formats.mode_encoding import OperationKind, mode_roles


class TestOperationKind:
    def test_coerce_from_string(self):
        assert OperationKind.coerce("spttm") is OperationKind.SPTTM
        assert OperationKind.coerce("SpMTTKRP") is OperationKind.SPMTTKRP

    def test_coerce_passthrough(self):
        assert OperationKind.coerce(OperationKind.SPTTMC) is OperationKind.SPTTMC

    def test_coerce_invalid(self):
        with pytest.raises(ValueError, match="unknown operation"):
            OperationKind.coerce("spmv")


class TestModeRolesTable1:
    """The exact classifications of the paper's Table I (0-based modes)."""

    def test_spttm_mode3(self):
        roles = mode_roles(OperationKind.SPTTM, 2, 3)
        assert roles.product_modes == (2,)
        assert roles.index_modes == (0, 1)
        assert roles.result_dense_modes == (2,)
        assert roles.result_sparse_modes == (0, 1)

    def test_spmttkrp_mode1(self):
        roles = mode_roles(OperationKind.SPMTTKRP, 0, 3)
        assert roles.product_modes == (1, 2)
        assert roles.index_modes == (0,)
        assert roles.result_sparse_modes == (0,)

    def test_spttmc_mode1(self):
        roles = mode_roles(OperationKind.SPTTMC, 0, 3)
        assert roles.product_modes == (1, 2)
        assert roles.index_modes == (0,)

    def test_spttm_every_mode_partitions_modes(self):
        for order in (2, 3, 4, 5):
            for mode in range(order):
                roles = mode_roles("spttm", mode, order)
                assert set(roles.product_modes) | set(roles.index_modes) == set(range(order))
                assert set(roles.product_modes) & set(roles.index_modes) == set()

    def test_spmttkrp_every_mode_partitions_modes(self):
        for order in (3, 4):
            for mode in range(order):
                roles = mode_roles("spmttkrp", mode, order)
                assert roles.index_modes == (mode,)
                assert len(roles.product_modes) == order - 1

    def test_negative_mode(self):
        roles = mode_roles("spttm", -1, 3)
        assert roles.mode == 2

    def test_order_too_small(self):
        with pytest.raises(ValueError):
            mode_roles("spttm", 0, 1)

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            mode_roles("spttm", 4, 3)

    def test_frozen(self):
        roles = mode_roles("spttm", 0, 3)
        with pytest.raises(AttributeError):
            roles.mode = 1
