"""Tests for CP-ALS (Algorithm 1) with both engines."""

import numpy as np
import pytest

from repro.algorithms.cp import CPResult, SplattCPUEngine, UnifiedGPUEngine, cp_als
from repro.tensor.ops import cp_reconstruct
from repro.tensor.random import random_factors
from repro.tensor.sparse import SparseTensor


@pytest.fixture
def low_rank_tensor():
    """A tensor that is exactly rank 3, stored sparsely (fully recoverable)."""
    rng = np.random.default_rng(0)
    factors = [rng.random((12, 3)), rng.random((14, 3)), rng.random((10, 3))]
    return SparseTensor.from_dense(cp_reconstruct(factors))


class TestCPAlgorithm:
    def test_fit_improves_monotonically(self, skewed_tensor):
        result = cp_als(skewed_tensor, 4, max_iterations=6, tolerance=0.0, seed=1)
        assert len(result.fits) == 6
        diffs = np.diff(result.fits)
        assert (diffs >= -1e-8).all()

    def test_factor_shapes_and_weights(self, skewed_tensor):
        rank = 5
        result = cp_als(skewed_tensor, rank, max_iterations=2, seed=2)
        assert len(result.factors) == skewed_tensor.order
        for m, f in enumerate(result.factors):
            assert f.shape == (skewed_tensor.shape[m], rank)
        assert result.weights.shape == (rank,)
        assert (result.weights > 0).all()

    def test_factors_have_unit_columns(self, skewed_tensor):
        result = cp_als(skewed_tensor, 3, max_iterations=2, seed=3)
        for f in result.factors:
            np.testing.assert_allclose(np.linalg.norm(f, axis=0), 1.0, rtol=1e-8)

    def test_engines_agree_numerically(self, skewed_tensor):
        unified = cp_als(skewed_tensor, 3, engine=UnifiedGPUEngine(), max_iterations=3, seed=4)
        splatt = cp_als(skewed_tensor, 3, engine=SplattCPUEngine(), max_iterations=3, seed=4)
        assert unified.final_fit == pytest.approx(splatt.final_fit, rel=1e-4)

    def test_early_stopping_on_tolerance(self, skewed_tensor):
        result = cp_als(skewed_tensor, 3, max_iterations=50, tolerance=1e-2, seed=5)
        assert result.iterations < 50

    def test_recovers_low_rank_structure(self, low_rank_tensor):
        result = cp_als(low_rank_tensor, 3, max_iterations=40, tolerance=1e-9, seed=6)
        assert result.final_fit is not None
        assert result.final_fit > 0.95

    def test_initial_factors_respected(self, skewed_tensor):
        init = [np.asarray(f) for f in random_factors(skewed_tensor.shape, 3, seed=7)]
        a = cp_als(skewed_tensor, 3, max_iterations=2, initial_factors=init)
        b = cp_als(skewed_tensor, 3, max_iterations=2, initial_factors=init)
        for fa, fb in zip(a.factors, b.factors):
            np.testing.assert_allclose(fa, fb)

    def test_invalid_initial_factors(self, skewed_tensor):
        with pytest.raises(ValueError):
            cp_als(skewed_tensor, 3, initial_factors=[np.ones((2, 3))])

    def test_zero_tensor_rejected(self):
        with pytest.raises(ValueError):
            cp_als(SparseTensor.empty((3, 4, 5)), 2)

    def test_compute_fit_disabled(self, skewed_tensor):
        result = cp_als(skewed_tensor, 3, max_iterations=2, compute_fit=False)
        assert result.fits == []
        assert result.final_fit is None


class TestCPTimings:
    def test_timings_accumulate_per_mode(self, skewed_tensor):
        iterations = 4
        result = cp_als(
            skewed_tensor, 4, max_iterations=iterations, tolerance=0.0, compute_fit=False
        )
        assert set(result.mttkrp_time_by_mode) == {0, 1, 2}
        assert all(t > 0 for t in result.mttkrp_time_by_mode.values())
        assert result.other_time_s > 0
        assert result.total_time_s == pytest.approx(
            sum(result.mttkrp_time_by_mode.values()) + result.other_time_s
        )

    def test_unified_modes_balanced(self, skewed_tensor):
        result = cp_als(skewed_tensor, 4, max_iterations=3, tolerance=0.0, compute_fit=False)
        times = list(result.mttkrp_time_by_mode.values())
        assert max(times) / min(times) < 2.0

    def test_unified_faster_than_splatt(self, medium_tensor):
        unified = cp_als(
            medium_tensor, 4, engine=UnifiedGPUEngine(), max_iterations=3,
            tolerance=0.0, compute_fit=False,
        )
        splatt = cp_als(
            medium_tensor, 4, engine=SplattCPUEngine(), max_iterations=3,
            tolerance=0.0, compute_fit=False,
        )
        assert unified.total_time_s < splatt.total_time_s

    def test_setup_time_recorded(self, skewed_tensor):
        result = cp_als(skewed_tensor, 3, max_iterations=1, compute_fit=False)
        assert result.setup_time_s > 0

    def test_per_mode_launch_parameters(self, skewed_tensor):
        engine = UnifiedGPUEngine(per_mode_params={0: (64, 16), 1: (128, 8), 2: (256, 32)})
        result = cp_als(skewed_tensor, 3, engine=engine, max_iterations=1, compute_fit=False)
        assert isinstance(result, CPResult)


class TestEngineGuards:
    def test_mttkrp_before_prepare_raises(self, skewed_tensor, small_factors):
        engine = UnifiedGPUEngine()
        with pytest.raises(RuntimeError):
            engine.mttkrp(small_factors, 0)

    def test_splatt_mttkrp_before_prepare_raises(self, small_factors):
        engine = SplattCPUEngine()
        with pytest.raises(RuntimeError):
            engine.mttkrp(small_factors, 0)
