"""Tests for the shared kernel helpers."""

import numpy as np
import pytest

from repro.kernels.common import (
    as_float32_matrix,
    chunked_imbalance,
    validate_factor,
    warp_group_imbalance,
)


class TestWarpGroupImbalance:
    def test_uniform_work_is_balanced(self):
        assert warp_group_imbalance(np.full(64, 5.0), 32) == pytest.approx(1.0)

    def test_single_heavy_unit(self):
        work = np.ones(32)
        work[0] = 32.0
        # The warp is busy for 32 units x 32 lanes while useful work is 63.
        assert warp_group_imbalance(work, 32) == pytest.approx(32 * 32 / 63.0)

    def test_group_of_one_is_balanced(self):
        rng = np.random.default_rng(0)
        assert warp_group_imbalance(rng.random(100), 1) == pytest.approx(1.0)

    def test_empty(self):
        assert warp_group_imbalance(np.empty(0), 32) == 1.0

    def test_zero_work(self):
        assert warp_group_imbalance(np.zeros(10), 4) == 1.0

    def test_never_below_one(self):
        rng = np.random.default_rng(1)
        for _ in range(5):
            work = rng.integers(1, 100, size=50).astype(float)
            assert warp_group_imbalance(work, 8) >= 1.0

    def test_invalid_group(self):
        with pytest.raises(ValueError):
            warp_group_imbalance(np.ones(4), 0)

    def test_negative_work(self):
        with pytest.raises(ValueError):
            warp_group_imbalance(np.array([-1.0]), 4)


class TestChunkedImbalance:
    def test_uniform_is_balanced(self):
        assert chunked_imbalance(np.ones(120), 12) == pytest.approx(1.0)

    def test_skewed_chunks(self):
        # All the work sits in the first chunk.
        work = np.concatenate([np.full(10, 100.0), np.zeros(90)])
        assert chunked_imbalance(work, 10) == pytest.approx(10.0)

    def test_more_chunks_than_units(self):
        assert chunked_imbalance(np.ones(3), 12) >= 1.0

    def test_single_chunk(self):
        assert chunked_imbalance(np.random.default_rng(0).random(50), 1) == pytest.approx(1.0)

    def test_empty(self):
        assert chunked_imbalance(np.empty(0), 4) == 1.0

    def test_invalid_chunks(self):
        with pytest.raises(ValueError):
            chunked_imbalance(np.ones(4), 0)


class TestValidateFactor:
    def test_accepts_matching(self):
        out = validate_factor(np.ones((5, 3)), 5, "U")
        assert out.dtype == np.float64

    def test_rejects_wrong_rows(self):
        with pytest.raises(ValueError, match="U"):
            validate_factor(np.ones((4, 3)), 5, "U")

    def test_rejects_vector(self):
        with pytest.raises(ValueError):
            validate_factor(np.ones(5), 5, "U")


class TestAsFloat32Matrix:
    def test_casts_and_contiguous(self):
        out = as_float32_matrix(np.asfortranarray(np.ones((4, 3))))
        assert out.dtype == np.float32
        assert out.flags["C_CONTIGUOUS"]
