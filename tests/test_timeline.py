"""Property harness for the unified simulated-time resource engine.

The three pillars the refactor must hold (ISSUE 5):

(a) **closed-form equivalence on idle resources** — the streaming pipeline,
    the sharded kernels and the serving scheduler, re-expressed as timeline
    bookings, reproduce the pre-refactor recurrences/closed forms (bit for
    bit where the arithmetic is identical, to float association otherwise);
(b) **NIC congestion** — concurrent cross-node collectives on a shared
    timeline never finish earlier than the idle-NIC model and degenerate to
    it exactly with a single job;
(c) **intra-kernel overlap** — ``cp_als(..., overlap_modes=True)`` never
    exceeds the sequential modeled makespan and leaves every factor
    bit-identical.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.algorithms.cp import CPResult, UnifiedGPUEngine, cp_als
from repro.algorithms.tucker import tucker_hooi
from repro.formats.fcoo import FCOOTensor
from repro.formats.mode_encoding import OperationKind
from repro.gpusim.cluster import (
    ETHERNET_10G,
    ClusterSpec,
    MultiNodeClusterSpec,
    NodeSpec,
    PCIE3_P2P,
)
from repro.gpusim.device import TITAN_X, scaled_device
from repro.gpusim.timeline import (
    Booking,
    ChunkTiming,
    GangBooking,
    Resource,
    SimClock,
    StreamSchedule,
    Timeline,
    device_compute_key,
    device_copy_key,
    pipeline_time,
    schedule_chunks,
)
from repro.kernels.unified.spmttkrp import unified_spmttkrp
from repro.tensor.random import random_factors, random_sparse_tensor

# ---------------------------------------------------------------------- #
# Strategies
# ---------------------------------------------------------------------- #
_seconds = st.floats(
    min_value=0.0, max_value=10.0, allow_nan=False, allow_infinity=False
)
_chunk_timings = st.lists(
    st.tuples(_seconds, _seconds).map(lambda p: ChunkTiming(*p)),
    min_size=0,
    max_size=12,
)


# ---------------------------------------------------------------------- #
# Engine units: Resource / Timeline / SimClock
# ---------------------------------------------------------------------- #
class TestEngine:
    def test_serial_resource_bookkeeping(self):
        timeline = Timeline()
        lane = timeline.resource("dev0.compute", category="compute")
        first = lane.book(2.0, label="a")
        second = lane.book(1.0, ready_s=1.0, label="b")  # queues behind `a`
        assert (first.start_s, first.end_s) == (0.0, 2.0)
        assert (second.start_s, second.end_s) == (2.0, 3.0)
        assert lane.free_s == 3.0
        assert lane.busy_s == 3.0
        assert timeline.makespan_s == 3.0
        assert [e.label for e in timeline.events] == ["a", "b"]

    def test_dependency_gate(self):
        timeline = Timeline()
        lane = timeline.resource("r")
        booking = lane.book(1.0, ready_s=5.0)
        assert booking.start_s == 5.0 and booking.end_s == 6.0

    def test_non_busy_reservation(self):
        timeline = Timeline()
        lane = timeline.resource("r")
        lane.book(2.0, busy=False, label="hold")
        assert lane.free_s == 2.0
        assert lane.busy_s == 0.0
        assert timeline.utilization("r") == 0.0

    def test_invalid_bookings_rejected(self):
        timeline = Timeline()
        lane = timeline.resource("r")
        with pytest.raises(ValueError, match="duration"):
            lane.book(-1.0)
        with pytest.raises(ValueError, match="ready_s"):
            lane.book(1.0, ready_s=-2.0)
        with pytest.raises(ValueError, match="duration"):
            lane.book(float("nan"))

    def test_gang_booking_waits_for_slowest_member(self):
        timeline = Timeline()
        a = timeline.resource("a")
        b = timeline.resource("b")
        a.book(3.0)
        gang = timeline.book_together([a, b], 2.0, ready_s=1.0, label="coll")
        assert isinstance(gang, GangBooking)
        assert gang.start_s == 3.0 and gang.end_s == 5.0
        assert a.free_s == b.free_s == 5.0
        with pytest.raises(ValueError, match="at least one"):
            timeline.book_together([], 1.0)

    def test_foreign_resource_rejected(self):
        timeline = Timeline()
        other = Timeline().resource("r")
        with pytest.raises(ValueError, match="different timeline"):
            timeline.book(other, 1.0)

    def test_queries_and_utilization(self):
        timeline = Timeline()
        timeline.book("x", 1.0, label="one")
        timeline.book("y", 3.0, label="two")
        assert timeline.busy_s("x") == 1.0
        assert timeline.busy_s("missing") == 0.0
        assert timeline.free_s("y") == 3.0
        assert timeline.utilization("x") == pytest.approx(1.0 / 3.0)
        assert timeline.utilizations() == {
            "x": pytest.approx(1.0 / 3.0),
            "y": 1.0,
        }
        assert timeline.has_resource("x") and not timeline.has_resource("z")
        assert [e.label for e in timeline.events_for(resource="y")] == ["two"]
        assert isinstance(timeline.events[0], Booking)
        assert isinstance(timeline.resources[0], Resource)

    def test_utilization_unclamped_and_violations(self):
        timeline = Timeline()
        lane = timeline.resource("r")
        lane.book(2.0)
        assert timeline.utilization("r") == 1.0
        assert timeline.violations() == {}
        # Simulate the accounting bug the clamp used to mask: busy seconds
        # double-counted beyond the booked span must now be visible...
        lane.busy_s += 5.0
        assert timeline.utilization("r") == pytest.approx(3.5)
        # ...and flagged by the violations query.
        violations = timeline.violations()
        assert set(violations) == {"r"}
        assert violations["r"] == pytest.approx(5.0)
        # explicit span override works the same way
        assert timeline.violations(makespan_s=10.0) == {}

    def test_real_runs_book_without_violations(self):
        from repro.bench.serving import run_serving

        report = run_serving(num_jobs=20, seed=0, nodes=2)
        assert report.timeline is not None
        assert report.timeline.violations() == {}

    def test_sim_clock_monotone(self):
        clock = SimClock()
        assert clock.advance_to(2.0) == 2.0
        assert clock.advance_to(1.0) == 2.0  # never backwards
        assert clock.now_s == 2.0
        with pytest.raises(ValueError):
            SimClock(-1.0)
        with pytest.raises(ValueError):
            clock.advance_to(float("inf"))

    def test_chrome_trace_schema(self, tmp_path):
        timeline = Timeline()
        timeline.book("dev0.compute", 1.5, label="kernel")
        timeline.book("nic:node0", 0.5, ready_s=1.5, label="allreduce")
        trace = timeline.chrome_trace()
        assert trace["displayTimeUnit"] == "ms"
        phases = {e["ph"] for e in trace["traceEvents"]}
        assert phases == {"M", "X"}
        complete = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert complete[0]["name"] == "kernel"
        assert complete[0]["ts"] == 0.0 and complete[0]["dur"] == 1.5e6
        path = tmp_path / "trace.json"
        timeline.write_chrome_trace(str(path))
        loaded = json.loads(path.read_text())
        assert loaded == json.loads(json.dumps(trace))


# ---------------------------------------------------------------------- #
# Satellite: thin-shim import compatibility
# ---------------------------------------------------------------------- #
class TestImportCompat:
    def test_streams_shim_reexports_engine_objects(self):
        import repro.gpusim.streams as streams
        import repro.gpusim.timeline as timeline_mod

        assert set(streams.__all__) == {
            "ChunkTiming",
            "StreamSchedule",
            "schedule_chunks",
            "pipeline_time",
        }
        for name in streams.__all__:
            assert getattr(streams, name) is getattr(timeline_mod, name)
        assert "deprecated" in (streams.__doc__ or "").lower()

    def test_streams_shim_warns_once_per_import(self):
        import sys
        import warnings

        # A fresh import of the shim fires the DeprecationWarning exactly
        # once (it is module-level, so it runs when the module executes)...
        sys.modules.pop("repro.gpusim.streams", None)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            import repro.gpusim.streams  # noqa: F401

        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1
        assert "repro.gpusim.timeline" in str(deprecations[0].message)

        # ...while re-imports hit the module cache and stay silent.
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            import repro.gpusim.streams  # noqa: F401,F811

        assert not [w for w in caught if issubclass(w.category, DeprecationWarning)]

    def test_scheduler_surface_unchanged(self):
        from repro.serve.scheduler import DeviceTimeline, ScheduleOutcome, Scheduler

        assert {"slot", "device", "copy_free_s", "compute_free_s", "busy_s", "jobs"} <= {
            f for f in DeviceTimeline.__dataclass_fields__
        }
        assert hasattr(Scheduler, "run")
        assert "timeline" in ScheduleOutcome.__dataclass_fields__

    def test_package_level_exports(self):
        import repro.gpusim as gpusim

        for name in (
            "Timeline",
            "SimClock",
            "Resource",
            "Booking",
            "GangBooking",
            "schedule_chunks",
            "ChunkTiming",
            "device_copy_key",
            "device_compute_key",
        ):
            assert hasattr(gpusim, name)
        assert device_copy_key(3) == "dev3.copy"
        assert device_compute_key(0) == "dev0.compute"


# ---------------------------------------------------------------------- #
# (a) closed-form equivalence: streaming
# ---------------------------------------------------------------------- #
def _reference_recurrence(timings, num_streams):
    """The pre-refactor two-resource recurrence, verbatim."""
    transfer_ends, compute_ends = [], []
    for i, timing in enumerate(timings):
        copy_free = transfer_ends[i - 1] if i >= 1 else 0.0
        buffer_free = compute_ends[i - num_streams] if i >= num_streams else 0.0
        transfer_end = max(copy_free, buffer_free) + timing.transfer_s
        compute_free = compute_ends[i - 1] if i >= 1 else 0.0
        compute_end = max(transfer_end, compute_free) + timing.compute_s
        transfer_ends.append(transfer_end)
        compute_ends.append(compute_end)
    return transfer_ends, compute_ends


class TestStreamingClosedForm:
    @given(timings=_chunk_timings, num_streams=st.integers(1, 5))
    def test_schedule_matches_pre_refactor_recurrence_bitwise(
        self, timings, num_streams
    ):
        schedule = schedule_chunks(timings, num_streams)
        transfer_ends, compute_ends = _reference_recurrence(timings, num_streams)
        assert list(schedule.transfer_ends) == transfer_ends
        assert list(schedule.compute_ends) == compute_ends

    @given(timings=_chunk_timings, num_streams=st.integers(1, 5))
    def test_schedule_books_copy_and_compute_resources(self, timings, num_streams):
        schedule = schedule_chunks(timings, num_streams)
        timeline = schedule.timeline
        assert timeline is not None
        assert timeline.busy_s(device_copy_key(0)) == pytest.approx(
            schedule.transfer_time_s
        )
        assert timeline.busy_s(device_compute_key(0)) == pytest.approx(
            schedule.compute_time_s
        )
        assert timeline.makespan_s == schedule.total_time_s

    def test_pipeline_time_and_shared_timeline(self):
        assert pipeline_time([1.0, 1.0], [2.0, 2.0], 2) == 5.0
        shared = Timeline()
        schedule_chunks([ChunkTiming(1.0, 2.0)], 2, timeline=shared, device_slot=1)
        assert shared.busy_s(device_compute_key(1)) == 2.0
        assert isinstance(
            schedule_chunks([], 1), StreamSchedule
        )  # empty stream is fine

    def test_streamed_kernel_profile_carries_timeline(self):
        tensor = random_sparse_tensor((24, 20, 16), 3_000, seed=5)
        factors = [np.asarray(f) for f in random_factors(tensor.shape, 4, seed=1)]
        fcoo = FCOOTensor.from_sparse(tensor, OperationKind.SPMTTKRP, 0)
        result = unified_spmttkrp(
            fcoo, factors, 0, streamed=True, num_streams=2, chunk_nnz=512
        )
        streaming = result.profile.streaming
        assert streaming is not None
        assert streaming.timeline is not None
        assert streaming.timeline.makespan_s == result.estimated_time_s


# ---------------------------------------------------------------------- #
# (a) closed-form equivalence: sharded kernels and serving
# ---------------------------------------------------------------------- #
class TestShardedAndServingClosedForm:
    @given(num_devices=st.integers(2, 4), seed=st.integers(0, 4))
    def test_sharded_booking_matches_closed_form_on_idle_timeline(
        self, num_devices, seed
    ):
        tensor = random_sparse_tensor((20, 18, 16), 2_500, seed=seed)
        factors = [np.asarray(f) for f in random_factors(tensor.shape, 4, seed=seed)]
        fcoo = FCOOTensor.from_sparse(tensor, OperationKind.SPMTTKRP, 0)
        cluster = ClusterSpec.homogeneous(TITAN_X, num_devices)
        result = unified_spmttkrp(fcoo, factors, 0, cluster=cluster)
        execution = result.profile.sharded
        timeline = Timeline()
        start, end = execution.book(timeline)
        assert start == 0.0
        assert end == pytest.approx(execution.total_time_s, rel=1e-12)
        # the collective rode the cluster's link resource
        if execution.reduction_time_s > 0.0:
            assert timeline.busy_s(cluster.link_resource_key()) == pytest.approx(
                execution.reduction_time_s
            )

    def test_serving_uncontended_finish_matches_closed_form(self):
        from repro.bench.serving import run_serving

        report = run_serving(num_jobs=30, seed=0)
        assert report.completed
        for r in report.completed:
            # finish == exec_start + exec_s is exactly the pre-refactor
            # two-horizon recurrence; on the default single-node cluster no
            # collective ever queues, so it must hold bit for bit.
            assert r.finish_s == r.exec_start_s + r.exec_s

    def test_multinode_serving_finish_never_below_closed_form(self):
        from repro.bench.serving import run_serving

        report = run_serving(num_jobs=30, seed=0, nodes=2)
        assert report.completed
        for r in report.completed:
            assert r.finish_s >= r.exec_start_s + r.exec_s - 1e-18
        assert report.timeline is not None
        # cross-node sharded jobs booked the NIC tier
        if report.cross_node_jobs:
            assert any(e.category == "nic" for e in report.timeline.events)

    def test_sharded_decomposition_job_books_collectives(self):
        from repro.serve.engine import ServingEngine
        from repro.serve.job import Job, JobKind
        from repro.serve.workload import default_multinode_serving_cluster

        tensor = random_sparse_tensor(
            (240, 280, 200), 130_000, seed=9, distribution="power", concentration=1.1
        )
        engine = ServingEngine(default_multinode_serving_cluster(2))
        job = Job(job_id=0, tenant="t", kind=JobKind.CP_ALS, tensor=tensor, rank=8)
        report = engine.run([job])
        (result,) = report.results
        assert result.completed and result.execution == "decomposition"
        assert result.placement is not None and result.placement.crosses_nic
        # the decomposition's aggregate collective seconds rode the NIC tier
        labels = {
            e.label for e in report.timeline.events_for(category="nic", busy_only=True)
        }
        assert "collectives:job0" in labels
        # uncontended: the idle closed form holds bit for bit
        assert result.finish_s == result.exec_start_s + result.exec_s

    def test_report_utilization_derived_from_timeline(self):
        from repro.bench.serving import run_serving

        report = run_serving(num_jobs=25, seed=0)
        timeline = report.timeline
        assert timeline is not None
        makespan = report.makespan_s
        for slot, utilization in report.device_utilization.items():
            busy = timeline.busy_s(device_compute_key(slot))
            assert utilization == pytest.approx(min(1.0, busy / makespan))
            assert 0.0 <= utilization <= 1.0
        # the DeviceTimeline views carry the same per-resource busy numbers
        for view in report.timelines:
            assert view.busy_s == timeline.busy_s(device_compute_key(view.slot))
            assert view.copy_free_s == timeline.free_s(device_copy_key(view.slot))


# ---------------------------------------------------------------------- #
# (b) shared-NIC congestion
# ---------------------------------------------------------------------- #
_payloads = st.floats(min_value=1.0, max_value=1e9, allow_nan=False, allow_infinity=False)


class TestNicCongestion:
    @given(nbytes=_payloads, num_nodes=st.integers(2, 4))
    def test_single_collective_degenerates_to_idle_model(self, nbytes, num_nodes):
        cluster = MultiNodeClusterSpec.homogeneous(
            num_nodes=num_nodes, devices_per_node=2, nic=ETHERNET_10G
        )
        timeline = Timeline()
        booking = cluster.book_allreduce(timeline, nbytes, ready_s=1.0)
        assert booking.start_s == 1.0
        assert booking.end_s == 1.0 + cluster.allreduce_time(nbytes)

    @given(
        payload_list=st.lists(_payloads, min_size=2, max_size=5),
        num_nodes=st.integers(2, 3),
    )
    def test_concurrent_collectives_never_beat_idle_model(self, payload_list, num_nodes):
        cluster = MultiNodeClusterSpec.homogeneous(
            num_nodes=num_nodes, devices_per_node=2, nic=ETHERNET_10G
        )
        timeline = Timeline()
        clock = 0.0
        for i, nbytes in enumerate(payload_list):
            idle = cluster.allreduce_time(nbytes)
            booking = cluster.book_allreduce(timeline, nbytes, label=f"job{i}")
            # never earlier than the idle-NIC model...
            assert booking.end_s >= idle
            # ...and exactly serialised behind the previous collectives.
            assert booking.start_s == clock
            assert booking.end_s == clock + idle
            clock = booking.end_s

    def test_node_local_and_cluster_wide_collectives_share_link_resources(self):
        cluster = MultiNodeClusterSpec.homogeneous(num_nodes=2, devices_per_node=2)
        timeline = Timeline()
        node0 = cluster.nodes[0].as_cluster()
        local = node0.book_allreduce(timeline, 1 << 20)
        wide = cluster.book_allreduce(timeline, 1 << 20)
        # the cluster-wide collective had to wait for node 0's link
        assert wide.start_s == local.end_s
        keys = {b.resource for b in wide.bookings}
        assert node0.link_resource_key() in keys
        assert cluster.nic_resource_key(0) in keys and cluster.nic_resource_key(1) in keys

    def test_single_node_cluster_books_no_nic(self):
        node = NodeSpec.homogeneous(TITAN_X, 2, interconnect=PCIE3_P2P)
        cluster = MultiNodeClusterSpec(nodes=(node,))
        timeline = Timeline()
        cluster.book_allreduce(timeline, 1 << 20)
        assert not any(e.category == "nic" for e in timeline.events)

    def test_other_collective_bookings(self):
        cluster = ClusterSpec.homogeneous(TITAN_X, 3)
        timeline = Timeline()
        g = cluster.book_gather(timeline, [0.0, 1e6, 1e6])
        assert g.end_s == cluster.gather_time([0.0, 1e6, 1e6])
        n = cluster.book_neighbor_exchange(timeline, [1e6], ready_s=g.end_s)
        assert n.end_s == g.end_s + cluster.neighbor_exchange_time([1e6])
        b = cluster.book_broadcast(timeline, 1e6)
        assert b.start_s == n.end_s  # serialised on the shared link
        multi = MultiNodeClusterSpec.homogeneous(num_nodes=2, devices_per_node=2)
        assert (
            multi.book_broadcast(Timeline(), 1e6).end_s == multi.broadcast_time(1e6)
        )
        assert (
            multi.book_gather(Timeline(), [1e6] * 4).end_s
            == multi.gather_time([1e6] * 4)
        )
        assert (
            multi.book_neighbor_exchange(
                Timeline(), [1e6], slots=[2], sources=[1]
            ).end_s
            == multi.neighbor_exchange_time([1e6], slots=[2], sources=[1])
        )


# ---------------------------------------------------------------------- #
# (c) intra-kernel overlap for CP-ALS
# ---------------------------------------------------------------------- #
def _overlap_cluster(num_nodes=2, devices_per_node=2):
    return MultiNodeClusterSpec.homogeneous(
        num_nodes=num_nodes, devices_per_node=2, nic=ETHERNET_10G
    )


class TestOverlapModes:
    @given(
        seed=st.integers(0, 3),
        rank=st.sampled_from([4, 8]),
        num_nodes=st.integers(2, 3),
        iterations=st.integers(1, 2),
    )
    def test_overlap_never_exceeds_sequential_and_factors_bit_identical(
        self, seed, rank, num_nodes, iterations
    ):
        tensor = random_sparse_tensor((600, 24, 20), 2_000, seed=seed)
        kwargs = dict(max_iterations=iterations, compute_fit=False, seed=seed)
        sequential = cp_als(
            tensor, rank, engine=UnifiedGPUEngine(cluster=_overlap_cluster(num_nodes)), **kwargs
        )
        overlapped = cp_als(
            tensor,
            rank,
            engine=UnifiedGPUEngine(cluster=_overlap_cluster(num_nodes)),
            overlap_modes=True,
            **kwargs,
        )
        assert overlapped.makespan_s <= sequential.makespan_s
        assert overlapped.overlap_modes and not sequential.overlap_modes
        for a, b in zip(sequential.factors, overlapped.factors):
            np.testing.assert_array_equal(a, b)
        np.testing.assert_array_equal(sequential.weights, overlapped.weights)
        assert overlapped.total_time_s == sequential.total_time_s

    def test_sequential_makespan_matches_serial_ledger_sum(self):
        tensor = random_sparse_tensor((64, 24, 20), 2_000, seed=1)
        result = cp_als(
            tensor,
            4,
            engine=UnifiedGPUEngine(cluster=_overlap_cluster()),
            max_iterations=2,
            compute_fit=False,
        )
        assert result.makespan_s == pytest.approx(result.total_time_s, rel=1e-12)
        assert result.timeline is not None
        assert any(e.category in ("link", "nic") for e in result.timeline.events)

    def test_overlap_saves_time_when_collective_is_hidable(self):
        tensor = random_sparse_tensor((60_000, 60, 50), 12_000, seed=3)
        kwargs = dict(max_iterations=1, compute_fit=False)
        sequential = cp_als(
            tensor, 16, engine=UnifiedGPUEngine(cluster=_overlap_cluster()), **kwargs
        )
        overlapped = cp_als(
            tensor,
            16,
            engine=UnifiedGPUEngine(cluster=_overlap_cluster()),
            overlap_modes=True,
            **kwargs,
        )
        assert overlapped.makespan_s < sequential.makespan_s
        assert overlapped.overlap_saved_s > 0.0

    def test_single_device_overlap_is_a_noop(self):
        tensor = random_sparse_tensor((32, 24, 20), 1_500, seed=2)
        kwargs = dict(max_iterations=2, compute_fit=False)
        plain = cp_als(tensor, 4, **kwargs)
        overlapped = cp_als(tensor, 4, overlap_modes=True, **kwargs)
        assert overlapped.makespan_s == plain.makespan_s
        assert plain.makespan_s == pytest.approx(plain.total_time_s, rel=1e-12)
        for a, b in zip(plain.factors, overlapped.factors):
            np.testing.assert_array_equal(a, b)

    def test_cp_result_shape(self):
        tensor = random_sparse_tensor((32, 24, 20), 1_500, seed=2)
        result = cp_als(tensor, 4, max_iterations=1, compute_fit=False)
        assert isinstance(result, CPResult)
        assert result.timeline is not None
        assert result.overlap_saved_s >= 0.0

    def test_tucker_books_unified_timeline(self):
        tensor = random_sparse_tensor((30, 24, 20), 1_500, seed=4)
        cluster = ClusterSpec.homogeneous(scaled_device(TITAN_X, 1.0), 2)
        result = tucker_hooi(tensor, (3, 3, 3), max_iterations=1, cluster=cluster)
        assert result.timeline is not None
        assert result.makespan_s == pytest.approx(result.total_time_s, rel=1e-12)
        busy = sum(
            result.timeline.busy_s(device_compute_key(i)) for i in range(2)
        )
        assert busy > 0.0


# ---------------------------------------------------------------------- #
# CLI --trace and the regression suite
# ---------------------------------------------------------------------- #
class TestTraceSurfaces:
    def test_serve_trace_export(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "serve-trace.json"
        assert main(["serve", "--jobs", "8", "--trace", str(path)]) == 0
        out = capsys.readouterr().out
        assert "timeline trace written" in out
        trace = json.loads(path.read_text())
        assert trace["traceEvents"]
        names = {e["args"]["name"] for e in trace["traceEvents"] if e["ph"] == "M"}
        assert device_copy_key(0) in names and device_compute_key(0) in names

    def test_scaling_trace_export(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "scaling-trace.json"
        assert main(["scaling", "--rank", "8", "--trace", str(path)]) == 0
        assert "timeline trace written" in capsys.readouterr().out
        trace = json.loads(path.read_text())
        labels = {e["name"] for e in trace["traceEvents"] if e["ph"] == "X"}
        assert any(label.startswith("spmttkrp") for label in labels)

    def test_multinode_scaling_trace_matches_requested_topology(
        self, tmp_path, capsys
    ):
        from repro.cli import main

        path = tmp_path / "nodes-trace.json"
        assert main(["scaling", "--nodes", "2", "--trace", str(path)]) == 0
        capsys.readouterr()
        trace = json.loads(path.read_text())
        threads = {e["args"]["name"] for e in trace["traceEvents"] if e["ph"] == "M"}
        assert any(name.startswith("nic:") for name in threads)

    def test_trace_requires_exactly_one_consumer(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "trace.json"
        with pytest.raises(SystemExit):
            main(["fig8", "--trace", str(path)])  # no timeline to export
        with pytest.raises(SystemExit):
            main(["serve", "scaling", "--trace", str(path)])  # ambiguous
        assert not path.exists()
        capsys.readouterr()

    def test_regression_timeline_metrics(self):
        from repro.bench.regression import _timeline_metrics

        metrics = _timeline_metrics()
        assert set(metrics) == {
            "timeline/congestion_slowdown_ratio",
            "timeline/contended_lt_idle_count",
            "timeline/overlap_makespan",
            "timeline/overlap_time_ratio",
            "timeline/overlap_gt_sequential_count",
            "timeline/overlap_lost_count",
        }
        assert metrics["timeline/contended_lt_idle_count"] == 0.0
        assert metrics["timeline/overlap_gt_sequential_count"] == 0.0
        assert metrics["timeline/overlap_lost_count"] == 0.0
        assert metrics["timeline/congestion_slowdown_ratio"] >= 1.0
        assert 0.0 < metrics["timeline/overlap_time_ratio"] <= 1.0
