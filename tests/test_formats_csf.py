"""Tests for repro.formats.csf.CSFTensor (SPLATT's fiber tree)."""

import numpy as np
import pytest

from repro.formats.csf import CSFTensor
from repro.tensor.sparse import SparseTensor


class TestCSFConstruction:
    def test_round_trip_natural_order(self, small_tensor):
        csf = CSFTensor.from_sparse(small_tensor, (0, 1, 2))
        assert csf.to_sparse().allclose(small_tensor)

    def test_round_trip_all_orderings(self, small_tensor):
        import itertools

        for order in itertools.permutations(range(3)):
            csf = CSFTensor.from_sparse(small_tensor, order)
            assert csf.to_sparse().allclose(small_tensor)

    def test_round_trip_fourth_order(self, fourth_order_tensor):
        csf = CSFTensor.from_sparse(fourth_order_tensor, (3, 1, 0, 2))
        assert csf.to_sparse().allclose(fourth_order_tensor)

    def test_invalid_mode_order(self, small_tensor):
        with pytest.raises(ValueError):
            CSFTensor.from_sparse(small_tensor, (0, 0, 1))

    def test_empty_tensor(self):
        csf = CSFTensor.from_sparse(SparseTensor.empty((3, 4, 5)), (0, 1, 2))
        assert csf.nnz == 0
        assert csf.to_sparse().nnz == 0


class TestCSFStructure:
    def test_level_sizes(self):
        # Figure 2 tensor: 2 slices, 3 fibers, 12 leaves under ordering (0,1,2).
        coords = [
            (0, 0, 0), (0, 0, 1), (0, 0, 2), (0, 0, 3), (0, 0, 4),
            (1, 0, 0), (1, 0, 1), (1, 0, 2), (1, 0, 3),
            (1, 1, 0), (1, 1, 1), (1, 1, 2),
        ]
        tensor = SparseTensor(np.array(coords), np.arange(1.0, 13.0), (2, 2, 5))
        csf = CSFTensor.from_sparse(tensor, (0, 1, 2))
        assert csf.level_size(0) == 2
        assert csf.level_size(1) == 3
        assert csf.level_size(2) == 12

    def test_leaf_level_equals_nnz(self, small_tensor):
        csf = CSFTensor.from_sparse(small_tensor, (0, 1, 2))
        assert csf.level_size(small_tensor.order - 1) == small_tensor.nnz

    def test_level_sizes_monotone(self, skewed_tensor):
        csf = CSFTensor.from_sparse(skewed_tensor, (0, 1, 2))
        sizes = [csf.level_size(l) for l in range(3)]
        assert sizes[0] <= sizes[1] <= sizes[2]

    def test_root_level_counts_slices(self, small_tensor):
        for root in range(3):
            order = (root,) + tuple(m for m in range(3) if m != root)
            csf = CSFTensor.from_sparse(small_tensor, order)
            assert csf.level_size(0) == small_tensor.num_slices(root)

    def test_children_ranges_cover_next_level(self, small_tensor):
        csf = CSFTensor.from_sparse(small_tensor, (0, 1, 2))
        for level in range(2):
            ptr = csf.fptr[level]
            assert ptr[0] == 0
            assert ptr[-1] == csf.level_size(level + 1)
            assert (np.diff(ptr) >= 1).all()

    def test_children_accessor(self, small_tensor):
        csf = CSFTensor.from_sparse(small_tensor, (0, 1, 2))
        start, stop = csf.children(0, 0)
        assert stop > start

    def test_children_out_of_range(self, small_tensor):
        csf = CSFTensor.from_sparse(small_tensor, (0, 1, 2))
        with pytest.raises(ValueError):
            csf.children(2, 0)
        with pytest.raises(ValueError):
            csf.children(0, 10**6)

    def test_storage_bytes_positive_and_sensible(self, small_tensor):
        csf = CSFTensor.from_sparse(small_tensor, (0, 1, 2))
        total = csf.storage_bytes()
        # At least values + leaf indices.
        assert total >= small_tensor.nnz * 8
        # CSF compresses repeated upper-level indices vs COO.
        coo_bytes = small_tensor.nnz * (3 * 4 + 4)
        assert total <= coo_bytes + 3 * 4 * small_tensor.nnz
