"""Property harness for multi-node hierarchical execution.

The central claims:

* **bit identity** — for every unified kernel and for CP-ALS/Tucker,
  execution across a two-tier :class:`MultiNodeClusterSpec` (1/2/4 nodes,
  node-boundary-straddling segments included) computes the same result as
  one-shot single-GPU execution;
* **the collective cost model** — the hierarchical all-reduce is never
  costlier than the topology-oblivious flat ring whenever the NIC is the
  slower (lower-bandwidth, higher-latency) tier, and a degenerate one-node
  cluster reduces *exactly* to the existing :class:`ClusterSpec` costs;
* **placer locality** — a sharded job that fits inside one node never
  crosses the NIC; only jobs too large for every node spill cluster-wide.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.algorithms.cp import UnifiedGPUEngine, cp_als
from repro.algorithms.tucker import tucker_hooi
from repro.bench.multinode import run_multinode_scaling
from repro.bench.regression import _multinode_metrics
from repro.cli import main as cli_main
from repro.formats.fcoo import FCOOTensor
from repro.gpusim.cluster import (
    ClusterSpec,
    ETHERNET_10G,
    InterconnectSpec,
    MultiNodeClusterSpec,
    NVLINK1,
    NodeSpec,
    PCIE3_P2P,
    resolve_cluster,
)
from repro.gpusim.device import TITAN_X, scaled_device
from repro.kernels.unified import partition_shards_hierarchical
from repro.kernels.unified.spmttkrp import unified_spmttkrp
from repro.kernels.unified.spttm import unified_spttm
from repro.kernels.unified.spttmc import unified_spttmc
from repro.serve import Job, JobKind, ServingEngine, WorkloadSpec, generate_workload
from repro.serve.placement import Placer, job_geometry
from repro.serve.workload import (
    SERVE_NIC,
    default_multinode_serving_cluster,
    default_serving_cluster,
)
from repro.tensor.random import random_factors, random_sparse_tensor
from test_streaming import CASE_PARAMS, CASES, run_kernel, run_reference

THREADLEN = 4
BLOCK_SIZE = 32
RANK = 3


def two_tier(
    num_nodes: int = 2,
    devices_per_node: int = 2,
    *,
    intra: InterconnectSpec = NVLINK1,
    nic: InterconnectSpec = ETHERNET_10G,
) -> MultiNodeClusterSpec:
    return MultiNodeClusterSpec.homogeneous(
        TITAN_X, num_nodes, devices_per_node, intra=intra, nic=nic
    )


# ---------------------------------------------------------------------- #
# The cluster model
# ---------------------------------------------------------------------- #


class TestMultiNodeModel:
    def test_construction_and_flat_layout(self):
        cluster = two_tier(2, 4)
        assert cluster.num_nodes == 2
        assert cluster.num_devices == 8
        assert cluster.node_slots(0) == (0, 1, 2, 3)
        assert cluster.node_slots(1) == (4, 5, 6, 7)
        assert cluster.device_node == (0, 0, 0, 0, 1, 1, 1, 1)
        assert cluster.is_homogeneous
        assert cluster.total_memory_bytes == 8 * TITAN_X.global_mem_bytes
        cluster.validate()

    def test_empty_and_invalid_rejected(self):
        with pytest.raises(ValueError):
            MultiNodeClusterSpec(nodes=())
        with pytest.raises(ValueError):
            MultiNodeClusterSpec.homogeneous(TITAN_X, 0, 2)
        with pytest.raises(ValueError):
            NodeSpec.homogeneous(TITAN_X, 0)
        with pytest.raises(ValueError):
            MultiNodeClusterSpec(
                nodes=(NodeSpec.homogeneous(TITAN_X, 2),),
                nic=InterconnectSpec("bad", 0.0, 1e-6),
            )
        # A bare ClusterSpec is not a node.
        with pytest.raises(ValueError):
            MultiNodeClusterSpec(nodes=(ClusterSpec.homogeneous(TITAN_X, 2),))

    def test_duplicate_device_id_across_nodes_rejected(self):
        from dataclasses import replace

        fast = TITAN_X
        slow = replace(TITAN_X, num_sms=TITAN_X.num_sms // 2)  # same id
        with pytest.raises(ValueError):
            MultiNodeClusterSpec(
                nodes=(
                    NodeSpec(devices=(fast,)),
                    NodeSpec(devices=(slow,)),
                )
            )

    def test_node_as_cluster_round_trip(self):
        node = NodeSpec.homogeneous(TITAN_X, 3, interconnect=NVLINK1, name="n0")
        cluster = node.as_cluster()
        assert isinstance(cluster, ClusterSpec)
        assert cluster.devices == node.devices
        assert cluster.interconnect is NVLINK1

    def test_resolve_cluster_collapses_degenerates(self):
        # One node -> the node's plain ClusterSpec (no NIC tier to model).
        device, multi = resolve_cluster(TITAN_X, two_tier(1, 4), None)
        assert isinstance(multi, ClusterSpec)
        assert multi.num_devices == 4
        # One node of one device -> plain single-device execution.
        device, multi = resolve_cluster(TITAN_X, two_tier(1, 1), None)
        assert multi is None and device == TITAN_X
        # Several nodes stay multi-node.
        device, multi = resolve_cluster(TITAN_X, two_tier(2, 2), None)
        assert isinstance(multi, MultiNodeClusterSpec)
        with pytest.raises(ValueError):
            resolve_cluster(TITAN_X, two_tier(2, 2), 3)

    def test_capability_weights_sum_and_node_grouping(self):
        big = scaled_device(TITAN_X, 1.0, name_suffix="mn-big")
        small = scaled_device(TITAN_X, 1.0, bandwidth_scale=0.5, name_suffix="mn-small")
        cluster = MultiNodeClusterSpec(
            nodes=(NodeSpec(devices=(big, big)), NodeSpec(devices=(small, small)))
        )
        weights = cluster.capability_weights()
        node_weights = cluster.node_capability_weights()
        assert sum(weights) == pytest.approx(1.0)
        assert sum(node_weights) == pytest.approx(1.0)
        # The full-rate node carries twice the half-rate node's weight.
        assert node_weights[0] == pytest.approx(2.0 * node_weights[1])
        assert node_weights[0] == pytest.approx(weights[0] + weights[1])


# ---------------------------------------------------------------------- #
# The hierarchical collective cost model
# ---------------------------------------------------------------------- #


class TestHierarchicalCollectives:
    def test_one_node_degenerates_to_cluster_spec_exactly(self):
        """A 1-node MultiNodeClusterSpec charges exactly ClusterSpec costs."""
        node = NodeSpec.homogeneous(TITAN_X, 4, interconnect=NVLINK1)
        multi = MultiNodeClusterSpec(nodes=(node,), nic=ETHERNET_10G)
        flat = node.as_cluster()
        for nbytes in (0.0, 8.0, 4096.0, 1e6, 64e6):
            assert multi.hierarchical_allreduce_time(nbytes) == flat.allreduce_time(nbytes)
            assert multi.allreduce_time(nbytes) == flat.allreduce_time(nbytes)
            assert multi.broadcast_time(nbytes) == flat.broadcast_time(nbytes)
        payloads = [1e6, 2e6, 0.0, 3e6]
        assert multi.gather_time(payloads) == flat.gather_time(payloads)
        assert multi.neighbor_exchange_time(
            [4096.0], slots=[2]
        ) == flat.neighbor_exchange_time([4096.0])

    @pytest.mark.parametrize("num_nodes", [2, 3, 4])
    @pytest.mark.parametrize("devices_per_node", [1, 2, 4])
    def test_hierarchical_never_loses_to_flat_ring(self, num_nodes, devices_per_node):
        """hierarchical <= flat whenever the NIC is the slower tier."""
        cluster = two_tier(
            num_nodes, devices_per_node, intra=PCIE3_P2P, nic=ETHERNET_10G
        )
        for nbytes in (0.0, 64.0, 4096.0, 1e6, 64e6):
            hier = cluster.hierarchical_allreduce_time(nbytes)
            flat = cluster.flat_allreduce_time(nbytes)
            assert hier <= flat + 1e-18, (num_nodes, devices_per_node, nbytes)
            assert cluster.allreduce_time(nbytes) == min(hier, flat)

    def test_hierarchical_strictly_wins_with_slow_nic(self):
        cluster = two_tier(2, 4, intra=NVLINK1, nic=ETHERNET_10G)
        assert cluster.hierarchical_allreduce_time(64e6) < cluster.flat_allreduce_time(
            64e6
        )
        assert cluster.allreduce_algorithm(64e6) == "hierarchical"

    def test_flat_ring_can_win_when_nic_is_fast(self):
        """Algorithm selection is real: a NIC faster than the P2P tier can
        flip the choice, and allreduce_time still takes the cheaper one."""
        fast_nic = InterconnectSpec("fat NIC", 100e9, 0.5e-6)
        slow_p2p = InterconnectSpec("slow P2P", 2e9, 10e-6)
        cluster = two_tier(4, 2, intra=slow_p2p, nic=fast_nic)
        nbytes = 64e6
        assert cluster.allreduce_time(nbytes) == min(
            cluster.hierarchical_allreduce_time(nbytes),
            cluster.flat_allreduce_time(nbytes),
        )

    @given(
        num_nodes=st.integers(min_value=2, max_value=5),
        devices_per_node=st.integers(min_value=1, max_value=5),
        p2p_bw=st.floats(min_value=1e9, max_value=1e12),
        nic_ratio=st.floats(min_value=1e-3, max_value=1.0),
        p2p_lat=st.floats(min_value=0.0, max_value=1e-5),
        lat_factor=st.floats(min_value=1.0, max_value=100.0),
        nbytes=st.floats(min_value=0.0, max_value=1e9),
    )
    def test_hierarchical_never_loses_property(
        self, num_nodes, devices_per_node, p2p_bw, nic_ratio, p2p_lat, lat_factor, nbytes
    ):
        """Hypothesis sweep of the tentpole inequality: for any equal-node
        cluster whose NIC has no more bandwidth and no less latency than
        the P2P tier, hierarchical <= flat ring."""
        intra = InterconnectSpec("p2p", p2p_bw, p2p_lat)
        nic = InterconnectSpec("nic", p2p_bw * nic_ratio, p2p_lat * lat_factor)
        cluster = two_tier(num_nodes, devices_per_node, intra=intra, nic=nic)
        hier = cluster.hierarchical_allreduce_time(nbytes)
        flat = cluster.flat_allreduce_time(nbytes)
        assert hier <= flat * (1.0 + 1e-12) + 1e-18

    def test_broadcast_and_gather_price_both_tiers(self):
        one = two_tier(1, 4)
        two = two_tier(2, 4)
        four = two_tier(4, 4)
        # More nodes -> more NIC stages for the same payload.
        assert two.broadcast_time(1e6) > one.broadcast_time(1e6)
        assert four.broadcast_time(1e6) > two.broadcast_time(1e6)
        # Gather: payloads on remote nodes cross the NIC, the root node's
        # own payloads do not.
        local = [1e6] * 4 + [0.0] * 4
        remote = [0.0] * 4 + [1e6] * 4
        assert two.gather_time(local) < two.gather_time(remote)
        with pytest.raises(ValueError):
            two.gather_time([1.0] * 3)  # must be slot-aligned

    def test_neighbor_exchange_tiers(self):
        cluster = two_tier(2, 2, intra=NVLINK1, nic=ETHERNET_10G)
        payload = [65536.0]
        intra_cost = cluster.neighbor_exchange_time(payload, slots=[1])  # inside node 0
        nic_cost = cluster.neighbor_exchange_time(payload, slots=[2])  # node 0 -> 1
        assert nic_cost > intra_cost
        # Without slots the conservative bound prices the slowest tier.
        assert cluster.neighbor_exchange_time(payload) == nic_cost
        with pytest.raises(ValueError):
            cluster.neighbor_exchange_time(payload, slots=[0])
        with pytest.raises(ValueError):
            cluster.neighbor_exchange_time(payload, slots=[1, 2])

    def test_neighbor_exchange_respects_explicit_source(self):
        """An empty placeholder shard can put the physical sender in
        another node: slot 3's neighbor-by-index is slot 2 (same node),
        but a source in node 0 must be priced over the NIC."""
        cluster = two_tier(2, 2, intra=NVLINK1, nic=ETHERNET_10G)
        payload = [65536.0]
        adjacent = cluster.neighbor_exchange_time(payload, slots=[3])
        crossing = cluster.neighbor_exchange_time(payload, slots=[3], sources=[1])
        assert crossing > adjacent  # NIC, not node 1's P2P tier
        assert crossing == cluster.neighbor_exchange_time(payload, slots=[2])
        with pytest.raises(ValueError):
            cluster.neighbor_exchange_time(payload, slots=[2], sources=[2])
        with pytest.raises(ValueError):
            cluster.neighbor_exchange_time(payload, sources=[0])

    def test_boundary_reduction_prices_nic_past_empty_placeholder(self):
        """SpTTM on a cluster where one device is allocated no partitions:
        the carrying shard's physical predecessor is in the *other* node,
        so the boundary exchange must be priced over the NIC."""
        big = scaled_device(TITAN_X, 1.0, name_suffix="mn-big")
        feeble = scaled_device(
            TITAN_X, 1.0, bandwidth_scale=1e-6, name_suffix="mn-feeble"
        )
        cluster = MultiNodeClusterSpec(
            nodes=(NodeSpec(devices=(big,)), NodeSpec(devices=(feeble, big))),
            nic=ETHERNET_10G,
        )
        tensor = CASES["single-segment"]()  # one fiber: every boundary carries
        factors = [np.asarray(f) for f in random_factors(tensor.shape, RANK, seed=5)]
        result = run_kernel(unified_spttm, tensor, factors, 2, cluster=cluster)
        execution = result.profile.sharded
        assert execution is not None and execution.reduction_kind == "boundary"
        # The feeble device (flat slot 1) got no partitions; slots 0 and 2
        # executed, and slot 2's carried segment arrives from node 0.
        executed = [ledger.index for ledger in execution.shards]
        assert executed == [0, 2]
        assert execution.shards[1].carries_in
        expected = cluster.neighbor_exchange_time(
            [execution.reduction_bytes], slots=[2], sources=[0]
        )
        assert execution.reduction_time_s == pytest.approx(expected)
        # Bit identity still holds with the placeholder in the middle.
        one_shot = run_kernel(unified_spttm, tensor, factors, 2, streamed=False)
        assert result.output.allclose(one_shot.output)


# ---------------------------------------------------------------------- #
# Topology-aware partitioning
# ---------------------------------------------------------------------- #


class TestHierarchicalPartition:
    def test_slot_aligned_contiguous_coverage(self):
        fcoo = FCOOTensor.from_sparse(CASES["order3-power"](), "spmttkrp", 0)
        cluster = two_tier(2, 2)
        shards = partition_shards_hierarchical(fcoo, cluster, threadlen=THREADLEN)
        assert len(shards) == cluster.num_devices
        assert shards[0].start == 0
        assert shards[-1].stop == fcoo.nnz
        for prev, nxt in zip(shards, shards[1:]):
            assert prev.stop == nxt.start
            assert nxt.start % THREADLEN == 0
        assert sum(s.nnz for s in shards) == fcoo.nnz

    def test_node_spans_follow_node_weights(self):
        big = scaled_device(TITAN_X, 1.0, name_suffix="mn-big")
        small = scaled_device(TITAN_X, 1.0, bandwidth_scale=0.5, name_suffix="mn-small")
        cluster = MultiNodeClusterSpec(
            nodes=(NodeSpec(devices=(big, big)), NodeSpec(devices=(small, small)))
        )
        tensor = random_sparse_tensor((40, 60, 50), 3000, seed=0)
        fcoo = FCOOTensor.from_sparse(tensor, "spmttkrp", 0)
        shards = partition_shards_hierarchical(fcoo, cluster, threadlen=THREADLEN)
        node0 = shards[0].nnz + shards[1].nnz
        node1 = shards[2].nnz + shards[3].nnz
        # The full-rate node gets ~2x the non-zeros (threadlen granularity).
        assert node0 == pytest.approx(2.0 * node1, rel=0.05)
        # Devices inside one node split evenly (identical capabilities).
        assert abs(shards[0].nnz - shards[1].nnz) <= THREADLEN

    def test_empty_and_short_streams(self):
        cluster = two_tier(2, 2)
        empty = FCOOTensor.from_sparse(CASES["empty"](), "spmttkrp", 0)
        assert partition_shards_hierarchical(empty, cluster, threadlen=THREADLEN) == []
        short = FCOOTensor.from_sparse(CASES["nnz-below-threadlen"](), "spmttkrp", 0)
        shards = partition_shards_hierarchical(short, cluster, threadlen=THREADLEN)
        assert len(shards) == cluster.num_devices
        assert sum(s.nnz for s in shards) == short.nnz
        assert sum(1 for s in shards if s.nnz) == 1  # 3 nnz < one partition


# ---------------------------------------------------------------------- #
# Bit identity across nodes
# ---------------------------------------------------------------------- #


class TestMultiNodeEqualsOneShot:
    """The property: multi-node output == one-shot output == reference."""

    @pytest.mark.parametrize("kernel", [unified_spttm, unified_spmttkrp, unified_spttmc])
    @pytest.mark.parametrize("num_nodes", [1, 2, 4])
    @pytest.mark.parametrize("build", CASE_PARAMS)
    def test_multinode_matches_one_shot_and_reference(self, kernel, num_nodes, build):
        tensor = build()
        factors = [np.asarray(f) for f in random_factors(tensor.shape, RANK, seed=5)]
        mode = tensor.order - 1 if kernel is unified_spttm else 0
        cluster = two_tier(num_nodes, 2)

        one_shot = run_kernel(kernel, tensor, factors, mode, streamed=False)
        multi = run_kernel(kernel, tensor, factors, mode, cluster=cluster)
        reference = run_reference(kernel, tensor, factors, mode)

        if kernel is unified_spttm:
            assert multi.output.allclose(one_shot.output)
            assert multi.output.allclose(reference, rtol=1e-5, atol=1e-6)
        else:
            np.testing.assert_allclose(
                multi.output, one_shot.output, rtol=1e-10, atol=1e-12
            )
            np.testing.assert_allclose(multi.output, reference, rtol=1e-5, atol=1e-6)

    def test_node_boundary_straddling_segment(self):
        """The crafted 30-nnz fiber spans shard AND node-span boundaries."""
        tensor = CASES["boundary-straddle"]()
        factors = [np.asarray(f) for f in random_factors(tensor.shape, RANK, seed=5)]
        cluster = two_tier(4, 1)  # every shard boundary is a node boundary
        one_shot = run_kernel(unified_spmttkrp, tensor, factors, 0, streamed=False)
        multi = run_kernel(unified_spmttkrp, tensor, factors, 0, cluster=cluster)
        execution = multi.profile.sharded
        assert execution is not None
        assert any(s.carries_in for s in execution.shards)
        np.testing.assert_allclose(
            multi.output, one_shot.output, rtol=1e-10, atol=1e-12
        )

    def test_reduction_pricing_uses_selected_algorithm(self):
        tensor = CASES["order3-power"]()
        factors = [np.asarray(f) for f in random_factors(tensor.shape, RANK, seed=5)]
        cluster = two_tier(2, 2)
        mttkrp = run_kernel(unified_spmttkrp, tensor, factors, 0, cluster=cluster)
        execution = mttkrp.profile.sharded
        assert execution.reduction_kind == "allreduce"
        assert execution.reduction_time_s == pytest.approx(
            cluster.allreduce_time(execution.reduction_bytes)
        )
        assert execution.reduction_time_s <= cluster.flat_allreduce_time(
            execution.reduction_bytes
        )
        spttm = run_kernel(unified_spttm, tensor, factors, 2, cluster=cluster)
        assert spttm.profile.sharded.reduction_kind == "boundary"

    def test_streamed_fallback_shard_on_multinode(self):
        tensor = CASES["order3-power"]()
        factors = [np.asarray(f) for f in random_factors(tensor.shape, RANK, seed=7)]
        tiny = scaled_device(TITAN_X, 3.2e-7, name_suffix="tiny")
        cluster = MultiNodeClusterSpec(
            nodes=(
                NodeSpec.homogeneous(tiny, 1),
                NodeSpec.homogeneous(tiny, 1),
            ),
            nic=ETHERNET_10G,
        )
        one_shot = unified_spmttkrp(
            tensor, factors, 0, block_size=BLOCK_SIZE, threadlen=THREADLEN
        )
        multi = unified_spmttkrp(
            tensor,
            factors,
            0,
            block_size=BLOCK_SIZE,
            threadlen=THREADLEN,
            cluster=cluster,
        )
        execution = multi.profile.sharded
        assert execution is not None and execution.has_streaming_shards
        np.testing.assert_allclose(
            multi.output, one_shot.output, rtol=1e-10, atol=1e-12
        )

    def test_cp_als_multinode_matches_single_gpu(self):
        tensor = CASES["order3-power"]()
        cluster = two_tier(2, 2)
        single = cp_als(
            tensor, 4, engine=UnifiedGPUEngine(), max_iterations=2, seed=0,
            compute_fit=False,
        )
        multi = cp_als(
            tensor, 4, engine=UnifiedGPUEngine(cluster=cluster), max_iterations=2,
            seed=0, compute_fit=False,
        )
        for single_f, multi_f in zip(single.factors, multi.factors):
            np.testing.assert_allclose(single_f, multi_f, rtol=1e-9, atol=1e-12)
        np.testing.assert_allclose(single.weights, multi.weights, rtol=1e-9)
        assert set(multi.device_time_by_device) == {0, 1, 2, 3}
        assert 0.0 < multi.parallel_efficiency <= 1.0

    def test_tucker_multinode_matches_single_gpu(self):
        tensor = CASES["order3-power"]()
        single = tucker_hooi(tensor, (3, 3, 3), max_iterations=1, seed=0)
        multi = tucker_hooi(
            tensor, (3, 3, 3), max_iterations=1, seed=0, cluster=two_tier(2, 2)
        )
        for single_f, multi_f in zip(single.factors, multi.factors):
            np.testing.assert_allclose(single_f, multi_f, rtol=1e-9, atol=1e-12)
        np.testing.assert_allclose(single.core, multi.core, rtol=1e-9, atol=1e-12)

    @given(
        dims=st.tuples(*(st.integers(min_value=2, max_value=14),) * 3),
        nnz=st.integers(min_value=1, max_value=220),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        num_nodes=st.integers(min_value=1, max_value=4),
        devices_per_node=st.integers(min_value=1, max_value=3),
    )
    def test_multinode_equals_one_shot_property(
        self, dims, nnz, seed, num_nodes, devices_per_node
    ):
        """Hypothesis sweep: arbitrary tensors x node topologies agree."""
        tensor = random_sparse_tensor(dims, nnz, seed=seed)
        factors = [np.asarray(f) for f in random_factors(dims, RANK, seed=seed)]
        one_shot = run_kernel(unified_spmttkrp, tensor, factors, 0, streamed=False)
        multi = run_kernel(
            unified_spmttkrp,
            tensor,
            factors,
            0,
            cluster=two_tier(num_nodes, devices_per_node),
        )
        np.testing.assert_allclose(
            multi.output, one_shot.output, rtol=1e-10, atol=1e-12
        )


# ---------------------------------------------------------------------- #
# Node-aware placement
# ---------------------------------------------------------------------- #


def _kernel_job(tensor, job_id=0, kind=JobKind.SPMTTKRP, rank=8) -> Job:
    return Job(
        job_id=job_id,
        tenant="t",
        kind=kind,
        tensor=tensor,
        mode=0,
        rank=rank,
        arrival_s=0.0,
        factor_seed=3,
    )


class TestNodeAwarePlacement:
    @pytest.fixture(scope="class")
    def cluster(self):
        return default_multinode_serving_cluster()

    @pytest.fixture(scope="class")
    def placer(self, cluster):
        return Placer(cluster)

    def _place(self, placer, job):
        geometry = job_geometry(job, threadlen=placer.threadlen)
        assert placer.admit(job, geometry) is None
        free = [0.0] * placer.cluster.num_devices
        return placer.place(job, geometry, free, 0.0)

    def test_small_job_stays_single_device(self, placer):
        tensor = random_sparse_tensor((10, 12, 14), 300, seed=2)
        placement = self._place(placer, _kernel_job(tensor))
        assert not placement.sharded
        assert not placement.crosses_nic

    def test_node_fit_job_never_crosses_nic(self, placer, cluster):
        """The whale exceeds any device but fits the big node: node-local."""
        rng = np.random.default_rng(1)
        from repro.serve.workload import _whale_tensor

        whale = _whale_tensor(rng)
        geometry = job_geometry(_kernel_job(whale), threadlen=placer.threadlen)
        assert geometry.footprint_bytes > cluster.max_device_memory_bytes
        placement = self._place(placer, _kernel_job(whale))
        assert placement.sharded
        assert not placement.crosses_nic
        assert placement.node_index == 0  # the big node
        assert placement.device_slots == cluster.node_slots(0)
        assert isinstance(placement.cluster, ClusterSpec)

    def test_locality_prefers_less_loaded_qualifying_node(self):
        """With two equally capable nodes, load breaks the locality tie."""
        big = scaled_device(TITAN_X, 2.0e-5, name_suffix="serve big")
        cluster = MultiNodeClusterSpec(
            nodes=(NodeSpec(devices=(big, big)), NodeSpec(devices=(big, big))),
            nic=SERVE_NIC,
        )
        placer = Placer(cluster)
        rng = np.random.default_rng(1)
        from repro.serve.workload import _whale_tensor

        job = _kernel_job(_whale_tensor(rng))
        geometry = job_geometry(job, threadlen=placer.threadlen)
        busy_node0 = placer.place(job, geometry, [5.0, 5.0, 0.0, 0.0], 0.0)
        assert busy_node0.node_index == 1
        busy_node1 = placer.place(job, geometry, [0.0, 0.0, 5.0, 5.0], 0.0)
        assert busy_node1.node_index == 0

    def test_cross_node_job_spills_over_nic(self, placer, cluster):
        rng = np.random.default_rng(2)
        from repro.serve.workload import _cross_node_tensor

        cross = _cross_node_tensor(rng)
        geometry = job_geometry(_kernel_job(cross), threadlen=placer.threadlen)
        # Too big for any single node's aggregate...
        for index, node in enumerate(cluster.nodes):
            aggregate = geometry.fcoo_bytes + node.num_devices * geometry.resident_bytes
            assert aggregate > sum(d.global_mem_bytes for d in node.devices), index
        placement = self._place(placer, _kernel_job(cross))
        # ...so it spans every node over the NIC.
        assert placement.sharded
        assert placement.crosses_nic
        assert placement.node_index is None
        assert placement.device_slots == tuple(range(cluster.num_devices))

    def test_one_node_multinode_collapses(self):
        placer = Placer(default_multinode_serving_cluster(1))
        assert not placer.multinode
        assert isinstance(placer.cluster, ClusterSpec)


# ---------------------------------------------------------------------- #
# Multi-node serving
# ---------------------------------------------------------------------- #


class TestMultiNodeServing:
    def test_workload_cross_node_tenants_and_rng_stability(self):
        base = generate_workload(WorkloadSpec(num_jobs=30, seed=0))
        with_cross = generate_workload(
            WorkloadSpec(num_jobs=30, seed=0, cross_node_every=14)
        )
        assert len(base) == len(with_cross)
        # The cadence produces cross-node tenants, always on kernel kinds,
        # all sharing the one cross tensor.
        cross_jobs = [
            job
            for job_id, job in enumerate(with_cross)
            if job_id % 14 == 13 and (job_id % 33 != 32)
        ]
        assert cross_jobs and all(j.kind.is_kernel for j in cross_jobs)
        assert len({j.tensor.content_key for j in cross_jobs}) == 1
        # With the feature disabled (the default), the workload is
        # byte-identical run to run — the cross tensor draw must not touch
        # the RNG stream, guarding the committed serving baseline.
        disabled = generate_workload(WorkloadSpec(num_jobs=30, seed=0))
        for a, b in zip(base, disabled):
            assert a.tensor.content_key == b.tensor.content_key
            assert a.arrival_s == b.arrival_s and a.kind is b.kind

    def test_multinode_serving_exercises_both_shard_paths(self):
        report = ServingEngine(default_multinode_serving_cluster()).run(
            generate_workload(WorkloadSpec(num_jobs=60, seed=0, cross_node_every=14))
        )
        assert report.node_local_sharded_jobs > 0
        assert report.cross_node_jobs > 0
        assert "node-local (off the NIC)" in report.render()
        # Node-local shards never reduce over the NIC.
        for result in report.completed:
            if result.placement is not None and result.placement.node_index is not None:
                assert not result.placement.crosses_nic

    def test_multinode_serving_deterministic(self):
        jobs = generate_workload(WorkloadSpec(num_jobs=25, seed=3, cross_node_every=14))
        first = ServingEngine(default_multinode_serving_cluster()).run(jobs)
        second = ServingEngine(default_multinode_serving_cluster()).run(jobs)
        assert [r.finish_s for r in first.results] == [
            r.finish_s for r in second.results
        ]
        assert first.makespan_s == second.makespan_s

    def test_single_node_serving_unchanged(self):
        """The default workload/cluster keep their exact pre-multi-node
        behaviour (guards the committed BENCH_serving baseline)."""
        jobs = generate_workload(WorkloadSpec(num_jobs=20, seed=0))
        report = ServingEngine(default_serving_cluster()).run(jobs)
        assert report.cross_node_jobs == 0
        assert report.node_local_sharded_jobs == 0
        assert "topology:" not in report.render()


# ---------------------------------------------------------------------- #
# Bench runner, regression metrics and CLI surfaces
# ---------------------------------------------------------------------- #


class TestMultiNodeBench:
    def test_multinode_scaling_structure(self):
        result = run_multinode_scaling(
            rank=4, datasets=["brainq"], node_counts=(1, 2, 4), devices_per_node=2,
            seed=0,
        )
        for op in ("spttm", "spmttkrp", "spttmc"):
            curve = result.rows_for(op, "brainq")
            assert [r.num_nodes for r in curve] == [1, 2, 4]
            assert curve[0].speedup == pytest.approx(1.0)
            for row in curve[1:]:
                assert row.num_devices == row.num_nodes * 2
                # The tentpole inequality, visible per row.
                assert row.reduction_s <= row.flat_reduction_s + 1e-15
        assert "Multi-node scaling" in result.render()
        assert "hierarchical" in result.render()

    def test_unknown_operation_rejected(self):
        with pytest.raises(ValueError):
            run_multinode_scaling(rank=4, operations=("spmv",), datasets=["brainq"])
        with pytest.raises(ValueError):
            run_multinode_scaling(rank=4, devices_per_node=0)

    def test_regression_metrics_include_multinode(self):
        metrics = _multinode_metrics()
        assert metrics["multinode/hier_minus_flat_count"] == 0.0
        for op in ("spttm", "spmttkrp", "spttmc"):
            for nodes in (1, 2, 4):
                assert f"multinode/{op}/brainq/nodes={nodes}" in metrics
            assert f"multinode/{op}/brainq/nodes=4/reduction" in metrics

    def test_cli_scaling_nodes(self, capsys):
        assert cli_main(["scaling", "--nodes", "2", "--rank", "4"]) == 0
        out = capsys.readouterr().out
        assert "Multi-node scaling" in out
        assert "hierarchical" in out

    def test_cli_serve_nodes(self, capsys):
        assert cli_main(["serve", "--nodes", "2", "--jobs", "30"]) == 0
        out = capsys.readouterr().out
        assert "topology: 2 nodes" in out
