"""Tests for the ParTI-GPU baseline kernels."""

import numpy as np
import pytest

from repro.gpusim.device import TITAN_X, scaled_device
from repro.gpusim.timing import OutOfDeviceMemory
from repro.kernels.baselines.parti_gpu import parti_gpu_spmttkrp, parti_gpu_spttm
from repro.kernels.unified import unified_spmttkrp, unified_spttm
from repro.tensor.ops import mttkrp_dense, ttm_dense
from repro.tensor.random import random_factors, random_sparse_tensor


class TestSpTTMCorrectness:
    def test_matches_dense_every_mode(self, small_tensor, small_factors):
        dense = small_tensor.to_dense()
        for mode in range(3):
            result = parti_gpu_spttm(small_tensor, small_factors[mode], mode)
            np.testing.assert_allclose(
                result.output.to_dense(), ttm_dense(dense, small_factors[mode], mode), atol=1e-10
            )

    def test_same_result_as_unified(self, skewed_tensor):
        u = random_factors(skewed_tensor.shape, 8, seed=0)[1]
        a = parti_gpu_spttm(skewed_tensor, u, 1).output
        b = unified_spttm(skewed_tensor, u, 1).output
        assert a.allclose(b, rtol=1e-5, atol=1e-6)


class TestSpTTMProfile:
    def test_load_imbalance_on_skewed_fibers(self, skewed_tensor):
        u = random_factors(skewed_tensor.shape, 8, seed=1)[2]
        result = parti_gpu_spttm(skewed_tensor, u, 2)
        assert result.profile.counters.imbalance_factor > 1.0

    def test_parallelism_limited_by_fiber_count(self):
        # A mode with very few fibers exposes very little parallelism.
        tensor = random_sparse_tensor((20, 1500, 6), 30_000, seed=2)
        rank = 16
        u1 = random_factors(tensor.shape, rank, seed=3)[1]
        few_fibers_mode = 1  # fibers are indexed by (i, k): only 120 of them
        result = parti_gpu_spttm(tensor, u1, few_fibers_mode)
        assert result.profile.counters.active_threads <= tensor.num_fibers(1) * rank

    def test_mode_sensitivity_larger_than_unified(self):
        """Figure 7a: ParTI's per-mode variation exceeds the unified kernel's."""
        tensor = random_sparse_tensor((20, 1500, 6), 30_000, seed=4)
        factors = random_factors(tensor.shape, 16, seed=5)
        parti_times = [
            parti_gpu_spttm(tensor, factors[m], m).estimated_time_s for m in range(3)
        ]
        unified_times = [
            unified_spttm(tensor, factors[m], m).estimated_time_s for m in range(3)
        ]
        parti_variation = max(parti_times) / min(parti_times)
        unified_variation = max(unified_times) / min(unified_times)
        assert parti_variation > unified_variation

    def test_rank_divergence_penalty_grows(self, skewed_tensor):
        u8 = random_factors(skewed_tensor.shape, 8, seed=6)[2]
        u64 = random_factors(skewed_tensor.shape, 64, seed=6)[2]
        t8 = parti_gpu_spttm(skewed_tensor, u8, 2)
        t64 = parti_gpu_spttm(skewed_tensor, u64, 2)
        assert (
            t64.profile.counters.imbalance_factor > t8.profile.counters.imbalance_factor
        )


class TestSpMTTKRPCorrectness:
    def test_matches_dense_every_mode(self, small_tensor, small_factors):
        dense = small_tensor.to_dense()
        for mode in range(3):
            result = parti_gpu_spmttkrp(small_tensor, small_factors, mode)
            np.testing.assert_allclose(
                result.output, mttkrp_dense(dense, small_factors, mode), atol=1e-10
            )

    def test_fourth_order(self, fourth_order_tensor):
        rng = np.random.default_rng(0)
        factors = [rng.random((s, 3)) for s in fourth_order_tensor.shape]
        dense = fourth_order_tensor.to_dense()
        for mode in range(4):
            result = parti_gpu_spmttkrp(fourth_order_tensor, factors, mode)
            np.testing.assert_allclose(
                result.output, mttkrp_dense(dense, factors, mode), atol=1e-10
            )

    def test_same_result_as_unified(self, skewed_tensor):
        factors = random_factors(skewed_tensor.shape, 4, seed=1)
        a = parti_gpu_spmttkrp(skewed_tensor, factors, 0).output
        b = unified_spmttkrp(skewed_tensor, factors, 0).output
        np.testing.assert_allclose(a, b, rtol=1e-4, atol=1e-5)


class TestSpMTTKRPProfile:
    def test_issues_atomics_per_nonzero(self, skewed_tensor):
        rank = 8
        factors = random_factors(skewed_tensor.shape, rank, seed=2)
        result = parti_gpu_spmttkrp(skewed_tensor, factors, 0)
        assert result.profile.counters.atomic_ops >= skewed_tensor.nnz * rank

    def test_two_kernel_launches(self, skewed_tensor):
        factors = random_factors(skewed_tensor.shape, 4, seed=3)
        result = parti_gpu_spmttkrp(skewed_tensor, factors, 0)
        assert result.profile.counters.kernel_launches == 2

    def test_footprint_includes_intermediate(self, skewed_tensor):
        factors = random_factors(skewed_tensor.shape, 8, seed=4)
        parti = parti_gpu_spmttkrp(skewed_tensor, factors, 0)
        unified = unified_spmttkrp(skewed_tensor, factors, 0)
        assert parti.profile.device_memory_bytes > unified.profile.device_memory_bytes

    def test_out_of_memory_on_small_device(self, skewed_tensor):
        factors = random_factors(skewed_tensor.shape, 8, seed=5)
        tiny_device = scaled_device(TITAN_X, 1e-8)
        with pytest.raises(OutOfDeviceMemory):
            parti_gpu_spmttkrp(skewed_tensor, factors, 0, device=tiny_device)

    def test_slower_than_unified(self, skewed_tensor):
        """The paper's headline claim for SpMTTKRP."""
        factors = random_factors(skewed_tensor.shape, 16, seed=6)
        parti = parti_gpu_spmttkrp(skewed_tensor, factors, 0)
        unified = unified_spmttkrp(skewed_tensor, factors, 0)
        assert unified.estimated_time_s < parti.estimated_time_s
