"""Property harness for the multi-tenant serving subsystem.

The central claim: **scheduling, batching, caching and placement move work
in time, never in value** — every job served by the
:class:`~repro.serve.ServingEngine` produces output bit-identical to
executing it alone (replaying its recorded placement through the pure
:func:`~repro.serve.execute.execute_job`), and — for single-device
one-shot placements — bit-identical to calling the unified kernel
directly, since the kernels' numerics are device-independent.  The harness
drives all three kernels over the streaming test corpus through a
heterogeneous serving cluster (cache hits, batches and duplicate tenants
included), plus focused bit-identity checks for the sharded and streamed
paths, and unit-tests the scheduler, cache, placement, workload generator,
cluster validation and the capability-weighted shard partitioner.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.algorithms.cp import UnifiedGPUEngine, cp_als
from repro.algorithms.tucker import tucker_hooi
from repro.bench.regression import _serving_metrics
from repro.bench.serving import run_serving
from repro.cli import main as cli_main
from repro.formats.fcoo import FCOOTensor
from repro.formats.semisparse import SemiSparseTensor
from repro.gpusim.cluster import ClusterSpec, InterconnectSpec, PCIE3_P2P
from repro.gpusim.device import TITAN_X, scaled_device
from repro.kernels.unified import partition_shards
from repro.kernels.unified.spmttkrp import spmttkrp_footprint, unified_spmttkrp
from repro.kernels.unified.spttm import unified_spttm
from repro.kernels.unified.spttmc import unified_spttmc
from repro.serve import (
    Job,
    JobKind,
    JobStatus,
    PreprocCache,
    ServingEngine,
    WorkloadSpec,
    execute_job,
    generate_workload,
    job_geometry,
)
from repro.serve.workload import default_serving_cluster
from repro.tensor.random import random_sparse_tensor
from repro.tensor.sparse import SparseTensor
from test_streaming import (
    BLOCK_SIZE,
    CASES,
    RANK,
    THREADLEN,
    run_kernel,
    run_reference,
)

#: Job kinds of the three unified kernels, with their kernel entry points.
KERNEL_KINDS = {
    JobKind.SPTTM: unified_spttm,
    JobKind.SPMTTKRP: unified_spmttkrp,
    JobKind.SPTTMC: unified_spttmc,
}

#: The big corpus tensor used by the focused sharded/streamed tests.
BIG_CASE = "order3-power"


def hetero_cluster(big_mem: float, small_mem: float) -> ClusterSpec:
    """A 2 fast + 1 slow cluster with explicitly scaled memories (bytes)."""
    big = scaled_device(TITAN_X, big_mem / TITAN_X.global_mem_bytes, name_suffix="t-big")
    small = scaled_device(
        TITAN_X,
        small_mem / TITAN_X.global_mem_bytes,
        bandwidth_scale=0.5,
        name_suffix="t-small",
    )
    return ClusterSpec(devices=(big, big, small), interconnect=PCIE3_P2P, name="test-hetero")


def one_device_cluster(mem_bytes: float) -> ClusterSpec:
    device = scaled_device(
        TITAN_X, mem_bytes / TITAN_X.global_mem_bytes, name_suffix="t-solo"
    )
    return ClusterSpec(devices=(device,), name="test-solo")


def assert_same_output(actual, expected) -> None:
    """Bit-identical comparison across the kernels' output types."""
    if isinstance(expected, SemiSparseTensor):
        assert isinstance(actual, SemiSparseTensor)
        np.testing.assert_array_equal(actual.fiber_coords, expected.fiber_coords)
        np.testing.assert_array_equal(actual.fiber_values, expected.fiber_values)
    else:
        np.testing.assert_array_equal(actual, expected)


def reference_output(job: Job):
    return run_reference(KERNEL_KINDS[job.kind], job.tensor, job.factors(), job.mode)


def assert_close_to_reference(result_output, job: Job) -> None:
    reference = reference_output(job)
    if isinstance(result_output, SemiSparseTensor):
        assert result_output.allclose(reference, rtol=1e-5, atol=1e-6)
    else:
        np.testing.assert_allclose(result_output, reference, rtol=1e-5, atol=1e-6)


# ---------------------------------------------------------------------- #
# Tensor content keys (the cache's identity)
# ---------------------------------------------------------------------- #
class TestContentKey:
    def test_same_content_same_key(self):
        a = random_sparse_tensor((6, 7, 8), 60, seed=3)
        b = SparseTensor(np.asarray(a.indices), np.asarray(a.values), a.shape)
        assert a.content_key == b.content_key

    def test_construction_order_irrelevant(self):
        idx = np.array([[0, 1, 2], [1, 0, 1], [2, 2, 0]])
        vals = np.array([1.0, 2.0, 3.0])
        forward = SparseTensor(idx, vals, (3, 3, 3))
        backward = SparseTensor(idx[::-1], vals[::-1], (3, 3, 3))
        assert forward.content_key == backward.content_key

    def test_different_values_different_key(self):
        a = random_sparse_tensor((6, 7, 8), 60, seed=3)
        b = a.scale(2.0)
        assert a.content_key != b.content_key

    def test_different_shape_different_key(self):
        idx = np.array([[0, 0, 0]])
        vals = np.array([1.0])
        assert (
            SparseTensor(idx, vals, (2, 2, 2)).content_key
            != SparseTensor(idx, vals, (3, 2, 2)).content_key
        )


# ---------------------------------------------------------------------- #
# ClusterSpec validation + capability weights (satellite)
# ---------------------------------------------------------------------- #
class TestClusterValidation:
    def test_zero_throughput_device_rejected_at_construction(self):
        dead = replace(TITAN_X, clock_ghz=0.0)
        with pytest.raises(ValueError, match=r"devices\[1\]"):
            ClusterSpec(devices=(TITAN_X, dead))

    def test_invalid_interconnect_rejected_at_construction(self):
        with pytest.raises(ValueError, match="interconnect"):
            ClusterSpec(devices=(TITAN_X,), interconnect=InterconnectSpec("bad", 0.0, 1e-6))

    def test_duplicate_id_with_different_spec_rejected(self):
        impostor = replace(TITAN_X, num_sms=12)  # same name, different silicon
        with pytest.raises(ValueError, match="device id"):
            ClusterSpec(devices=(TITAN_X, impostor))

    def test_identical_repeated_devices_allowed(self):
        cluster = ClusterSpec(devices=(TITAN_X, TITAN_X, TITAN_X))
        assert cluster.is_homogeneous
        assert cluster.max_device_memory_bytes == TITAN_X.global_mem_bytes

    def test_capability_weights_homogeneous_uniform(self):
        weights = ClusterSpec.homogeneous(TITAN_X, 4).capability_weights()
        np.testing.assert_allclose(weights, [0.25] * 4)

    def test_capability_weights_follow_bandwidth(self):
        half = scaled_device(TITAN_X, 1.0, bandwidth_scale=0.5, name_suffix="half")
        cluster = ClusterSpec(devices=(TITAN_X, half))
        w_full, w_half = cluster.capability_weights()
        assert w_full == pytest.approx(2.0 * w_half)
        assert w_full + w_half == pytest.approx(1.0)
        with pytest.raises(ValueError):
            cluster.capability_weights(flops_per_byte=0.0)


# ---------------------------------------------------------------------- #
# Capability-weighted shard partitioner (satellite)
# ---------------------------------------------------------------------- #
class TestWeightedPartition:
    def _fcoo(self, name=BIG_CASE):
        return FCOOTensor.from_sparse(CASES[name](), "spmttkrp", 0)

    def test_even_split_unchanged_without_weights(self):
        fcoo = self._fcoo()
        even = partition_shards(fcoo, 4, threadlen=THREADLEN)
        sizes = [s.nnz for s in even]
        assert max(sizes) - min(sizes[:-1] or sizes) <= THREADLEN
        assert sum(sizes) == fcoo.nnz

    def test_weighted_sizes_proportional(self):
        fcoo = self._fcoo()
        shards = partition_shards(fcoo, 3, threadlen=THREADLEN, weights=(2.0, 1.0, 1.0))
        sizes = [s.nnz for s in shards]
        assert len(shards) == 3
        assert sum(sizes) == fcoo.nnz
        # The double-weight shard gets twice the work, up to alignment.
        assert abs(sizes[0] - 2 * sizes[1]) <= 2 * THREADLEN
        assert abs(sizes[1] - sizes[2]) <= 2 * THREADLEN
        for shard in shards:
            assert shard.start % THREADLEN == 0

    def test_weighted_coverage_is_contiguous(self):
        fcoo = self._fcoo()
        shards = partition_shards(
            fcoo, 4, threadlen=THREADLEN, weights=(3.0, 1.0, 2.0, 2.0)
        )
        assert shards[0].start == 0
        assert shards[-1].stop == fcoo.nnz
        for prev, nxt in zip(shards, shards[1:]):
            assert prev.stop == nxt.start

    def test_short_stream_keeps_slot_alignment_with_empties(self):
        fcoo = FCOOTensor.from_sparse(CASES["nnz-below-threadlen"](), "spmttkrp", 0)
        shards = partition_shards(
            fcoo, 4, threadlen=THREADLEN, weights=(1.0, 1.0, 1.0, 1.0)
        )
        # Exactly num_shards entries come back, empties as placeholders.
        assert len(shards) == 4
        assert sum(s.nnz for s in shards) == fcoo.nnz
        assert sum(1 for s in shards if s.nnz == 0) == 3

    def test_weight_validation(self):
        fcoo = self._fcoo()
        with pytest.raises(ValueError):
            partition_shards(fcoo, 2, threadlen=THREADLEN, weights=(1.0,))
        with pytest.raises(ValueError):
            partition_shards(fcoo, 2, threadlen=THREADLEN, weights=(1.0, -1.0))
        with pytest.raises(ValueError):
            partition_shards(fcoo, 2, threadlen=THREADLEN, weights=(1.0, float("nan")))

    @pytest.mark.parametrize("kind", list(KERNEL_KINDS))
    def test_heterogeneous_sharded_matches_one_shot(self, kind):
        """Weighted shards on a mixed cluster reproduce the one-shot result."""
        tensor = CASES[BIG_CASE]()
        job = Job(job_id=0, tenant="t", kind=kind, tensor=tensor, mode=0, rank=RANK)
        factors = job.factors()
        cluster = hetero_cluster(big_mem=1 << 30, small_mem=1 << 29)
        kernel = KERNEL_KINDS[kind]
        sharded = run_kernel(kernel, tensor, factors, 0, cluster=cluster)
        one_shot = run_kernel(kernel, tensor, factors, 0)
        execution = sharded.profile.sharded
        assert execution is not None
        # The slow member (slot 2) gets the smallest shard.
        nnz_by_slot = {led.index: led.nnz for led in execution.shards}
        assert nnz_by_slot[2] <= nnz_by_slot[0]
        assert nnz_by_slot[2] <= nnz_by_slot[1]
        if isinstance(one_shot.output, SemiSparseTensor):
            assert sharded.output.allclose(one_shot.output)
        else:
            np.testing.assert_allclose(
                sharded.output, one_shot.output, rtol=1e-9, atol=1e-12
            )
        assert_close_to_reference(sharded.output, job)


# ---------------------------------------------------------------------- #
# Preprocessing cache
# ---------------------------------------------------------------------- #
class TestPreprocCache:
    def test_hit_after_miss_and_free_hits(self):
        cache = PreprocCache()
        tensor = CASES["order3-uniform"]()
        enc1, hit1, cost1 = cache.encoding(tensor, "spmttkrp", 0)
        enc2, hit2, cost2 = cache.encoding(tensor, "spmttkrp", 0)
        assert (hit1, hit2) == (False, True)
        assert cost1 > 0.0 and cost2 == 0.0
        assert enc1 is enc2
        assert cache.stats.encode_hits == 1 and cache.stats.encode_misses == 1

    def test_key_includes_operation_and_mode(self):
        cache = PreprocCache()
        tensor = CASES["order3-uniform"]()
        cache.encoding(tensor, "spmttkrp", 0)
        _, hit_mode, _ = cache.encoding(tensor, "spmttkrp", 1)
        _, hit_op, _ = cache.encoding(tensor, "spttm", 0)
        assert not hit_mode and not hit_op

    def test_shared_across_equal_content(self):
        cache = PreprocCache()
        a = random_sparse_tensor((8, 9, 10), 100, seed=1)
        b = SparseTensor(np.asarray(a.indices), np.asarray(a.values), a.shape)
        cache.encoding(a, "spmttkrp", 0)
        _, hit, _ = cache.encoding(b, "spmttkrp", 0)
        assert hit  # two tenants, same upload, one entry

    def test_lru_eviction_under_capacity(self):
        tensors = [random_sparse_tensor((8, 9, 10), 120, seed=s) for s in range(4)]
        one_entry = FCOOTensor.from_sparse(tensors[0], "spmttkrp", 0).storage_bytes()
        cache = PreprocCache(capacity_bytes=int(2.5 * one_entry))
        for t in tensors:
            cache.encoding(t, "spmttkrp", 0)
        assert cache.stats.evictions > 0
        assert cache.current_bytes <= int(2.5 * one_entry)
        # The most recent entry survived; the oldest was evicted.
        _, hit_new, _ = cache.encoding(tensors[-1], "spmttkrp", 0)
        _, hit_old, _ = cache.encoding(tensors[0], "spmttkrp", 0)
        assert hit_new and not hit_old

    def test_tuner_config_reuse(self):
        cache = PreprocCache()
        tensor = CASES["order3-uniform"]()
        cfg1, hit1, cost1 = cache.tuner_config(tensor, "spmttkrp", 0, RANK)
        cfg2, hit2, cost2 = cache.tuner_config(tensor, "spmttkrp", 0, RANK)
        assert (hit1, hit2) == (False, True)
        assert cost1 > 0.0 and cost2 == 0.0
        assert cfg1 == cfg2
        block_size, threadlen = cfg1
        assert block_size > 0 and threadlen > 0


# ---------------------------------------------------------------------- #
# Geometry + placement
# ---------------------------------------------------------------------- #
class TestPlacement:
    def test_geometry_matches_kernel_footprint(self):
        tensor = CASES[BIG_CASE]()
        job = Job(job_id=0, tenant="t", kind=JobKind.SPMTTKRP, tensor=tensor, rank=RANK)
        geometry = job_geometry(job, threadlen=THREADLEN)
        fcoo = FCOOTensor.from_sparse(tensor, "spmttkrp", 0)
        footprint, resident = spmttkrp_footprint(
            fcoo, RANK, block_size=BLOCK_SIZE, threadlen=THREADLEN
        )
        assert geometry.footprint_bytes == pytest.approx(footprint, rel=0.01)
        assert geometry.resident_bytes == pytest.approx(resident, rel=0.01)

    def test_admission_rejects_oversized_dense_operands(self):
        indices = np.stack(
            [np.arange(100) * 999, np.arange(100) % 5, np.arange(100) % 7], axis=1
        )
        giant = SparseTensor(indices, np.ones(100), (100_000, 5, 7))
        job = Job(job_id=0, tenant="t", kind=JobKind.SPMTTKRP, tensor=giant, rank=16)
        engine = ServingEngine(hetero_cluster(16_000, 8_000), threadlen=THREADLEN)
        report = engine.run([job])
        (result,) = report.results
        assert result.status is JobStatus.REJECTED
        assert "resident operands" in result.reject_reason

    def test_fast_device_preferred_when_idle(self):
        engine = ServingEngine(hetero_cluster(1 << 30, 1 << 29), threadlen=THREADLEN)
        job = Job(
            job_id=0,
            tenant="t",
            kind=JobKind.SPMTTKRP,
            tensor=CASES["order3-uniform"](),
            rank=RANK,
        )
        geometry = job_geometry(job, threadlen=THREADLEN)
        placement = engine.scheduler.placer.place(job, geometry, [0.0, 0.0, 0.0], 0.0)
        assert placement.device_slots == (0,)
        # With slot 0 busy far into the future, slot 1 wins.
        placement = engine.scheduler.placer.place(job, geometry, [1.0, 0.0, 0.0], 0.0)
        assert placement.device_slots == (1,)

    def test_oversized_job_sharded_across_cluster(self):
        cluster = hetero_cluster(6_000, 3_500)
        engine = ServingEngine(cluster, threadlen=THREADLEN, block_size=BLOCK_SIZE)
        job = Job(
            job_id=0,
            tenant="t",
            kind=JobKind.SPMTTKRP,
            tensor=CASES[BIG_CASE](),
            rank=RANK,
        )
        report = engine.run([job])
        (result,) = report.results
        assert result.completed and result.execution == "sharded"
        assert result.device_slots == (0, 1, 2)


# ---------------------------------------------------------------------- #
# Scheduler behaviour
# ---------------------------------------------------------------------- #
class TestScheduler:
    def _identical_jobs(self, n, tensor, priorities=None, arrival=0.0):
        priorities = priorities or [1] * n
        return [
            Job(
                job_id=i,
                tenant=f"t{i}",
                kind=JobKind.SPMTTKRP,
                tensor=tensor,
                mode=0,
                rank=RANK,
                priority=priorities[i],
                arrival_s=arrival,
                factor_seed=i,
            )
            for i in range(n)
        ]

    def test_deterministic_schedule(self):
        jobs = generate_workload(WorkloadSpec(num_jobs=25, seed=7))
        first = ServingEngine(autotune=True).run(jobs)
        second = ServingEngine(autotune=True).run(
            generate_workload(WorkloadSpec(num_jobs=25, seed=7))
        )
        np.testing.assert_array_equal(first.latencies_s, second.latencies_s)
        assert first.makespan_s == second.makespan_s
        assert [r.device_slots for r in first.results] == [
            r.device_slots for r in second.results
        ]

    def test_priority_overtakes_fifo_order(self):
        tensor = CASES["order3-uniform"]()
        cluster = one_device_cluster(1 << 30)
        jobs = self._identical_jobs(5, tensor, priorities=[1, 1, 1, 1, 0])
        by_priority = ServingEngine(cluster, policy="priority", max_batch=1).run(jobs)
        by_fifo = ServingEngine(cluster, policy="fifo", max_batch=1).run(jobs)
        pri = {r.job.job_id: r for r in by_priority.results}
        fifo = {r.job.job_id: r for r in by_fifo.results}
        # Under priority, the urgent job (id 4) runs before the batch-class
        # job 1; under FIFO it runs last.
        assert pri[4].exec_start_s < pri[1].exec_start_s
        assert fifo[4].exec_start_s > fifo[1].exec_start_s

    def test_batching_shares_one_staging(self):
        tensor = CASES["order3-uniform"]()
        cluster = one_device_cluster(1 << 30)
        jobs = self._identical_jobs(4, tensor)
        report = ServingEngine(cluster, max_batch=4).run(jobs)
        batched = [r for r in report.results if r.batch_id is not None]
        # All four become stage-ready together when the shared encoding's
        # build completes (the hits wait for the miss's build), so they
        # ride one batch.
        assert len(batched) == 4
        leaders = [r for r in batched if r.batch_leader]
        assert len(leaders) == 1
        (leader,) = leaders
        for mate in batched:
            if not mate.batch_leader:
                # Mates reuse the staged encoding: only dense operands move.
                assert mate.stage_s < leader.stage_s
        # Batch members execute back to back on the one device.
        starts = sorted(r.exec_start_s for r in batched)
        assert all(b >= a for a, b in zip(starts, starts[1:]))

    def test_decomposition_never_rides_a_kernel_batch(self):
        # A CP job shares the kernel's batch_key (its preprocessing is the
        # SpMTTKRP encoding) but must keep its own placement and never
        # batch with kernel invocations.
        tensor = CASES["order3-uniform"]()
        kernel_jobs = self._identical_jobs(3, tensor)
        cp_job = Job(
            job_id=10,
            tenant="cp",
            kind=JobKind.CP_ALS,
            tensor=tensor,
            rank=RANK,
            iterations=1,
        )
        report = ServingEngine(one_device_cluster(1 << 30), max_batch=4).run(
            kernel_jobs + [cp_job]
        )
        by_id = {r.job.job_id: r for r in report.results}
        assert by_id[10].batch_id is None
        assert by_id[10].execution == "decomposition"

    def test_report_cache_stats_are_a_snapshot(self):
        tensor = CASES["order3-uniform"]()
        engine = ServingEngine(one_device_cluster(1 << 30))
        first = engine.run(self._identical_jobs(2, tensor))
        misses_after_first = first.cache_stats.encode_misses
        engine.run(
            [
                Job(
                    job_id=99,
                    tenant="t",
                    kind=JobKind.SPMTTKRP,
                    tensor=CASES["order3-power"](),
                    rank=RANK,
                )
            ]
        )
        # The second run's misses must not leak into the first report.
        assert first.cache_stats.encode_misses == misses_after_first

    def test_cache_hit_waits_for_encoding_build(self):
        # A hit is free, but the encoding it reuses must physically exist:
        # a job arriving just behind the miss that builds the entry cannot
        # stage before that build completes in simulated time.
        from repro.serve.cache import ENCODE_SECONDS_PER_NNZ

        tensor = CASES["order3-power"]()
        build_s = tensor.nnz * ENCODE_SECONDS_PER_NNZ
        jobs = [
            Job(job_id=0, tenant="a", kind=JobKind.SPMTTKRP, tensor=tensor, rank=RANK),
            Job(
                job_id=1,
                tenant="b",
                kind=JobKind.SPMTTKRP,
                tensor=tensor,
                rank=RANK,
                arrival_s=build_s / 10.0,
            ),
        ]
        report = ServingEngine(one_device_cluster(1 << 30), max_batch=1).run(jobs)
        by_id = {r.job.job_id: r for r in report.results}
        assert by_id[1].encode_cache_hit
        assert by_id[1].stage_start_s >= build_s - 1e-12

    def test_tuner_hit_waits_for_sweep_build(self):
        # Same asymmetry guard for the tuner cache: a hit cannot make a
        # job stage-ready before the sweep that built the config finishes.
        tensor = CASES["order3-power"]()
        jobs = [
            Job(job_id=0, tenant="a", kind=JobKind.SPMTTKRP, tensor=tensor, rank=RANK),
            Job(
                job_id=1,
                tenant="b",
                kind=JobKind.SPMTTKRP,
                tensor=tensor,
                rank=RANK,
                arrival_s=1e-9,
            ),
        ]
        report = ServingEngine(
            one_device_cluster(1 << 30), max_batch=1, autotune=True
        ).run(jobs)
        by_id = {r.job.job_id: r for r in report.results}
        assert by_id[1].tuner_cache_hit
        # Job 0's preproc is the encode + sweep; job 1 cannot stage earlier
        # than that build completes.
        assert by_id[1].stage_start_s >= by_id[0].job.arrival_s + by_id[0].preproc_s - 1e-12

    def test_batching_disabled_with_max_batch_one(self):
        tensor = CASES["order3-uniform"]()
        jobs = self._identical_jobs(4, tensor)
        report = ServingEngine(one_device_cluster(1 << 30), max_batch=1).run(jobs)
        assert all(r.batch_id is None for r in report.results)

    def test_queue_depth_sheds_load(self):
        tensor = CASES["order3-uniform"]()
        jobs = self._identical_jobs(6, tensor)
        report = ServingEngine(
            one_device_cluster(1 << 30), max_queue_depth=2, max_batch=1
        ).run(jobs)
        shed = [r for r in report.results if not r.completed]
        assert len(shed) == 4
        assert all("queue full" in r.reject_reason for r in shed)
        assert sum(r.completed for r in report.results) == 2

    def test_execution_capacity_failure_rejects_job_not_run(self, monkeypatch):
        # The admission estimate is first-order; if the kernel itself runs
        # out of device memory, that one job is rejected and the rest of
        # the workload still completes.
        import repro.serve.scheduler as scheduler_module
        from repro.gpusim.timing import OutOfDeviceMemory

        tensor = CASES["order3-uniform"]()
        jobs = self._identical_jobs(3, tensor)
        real_execute = scheduler_module.execute_job

        def flaky_execute(job, placement, **kwargs):
            if job.job_id == 1:
                raise OutOfDeviceMemory(1e9, 1e6, what="test kernel")
            return real_execute(job, placement, **kwargs)

        monkeypatch.setattr(scheduler_module, "execute_job", flaky_execute)
        report = ServingEngine(one_device_cluster(1 << 30), max_batch=1).run(jobs)
        by_id = {r.job.job_id: r for r in report.results}
        assert not by_id[1].completed
        assert "rejected at execution" in by_id[1].reject_reason
        assert by_id[0].completed and by_id[2].completed

    def test_unique_job_ids_required(self):
        tensor = CASES["order3-uniform"]()
        jobs = self._identical_jobs(2, tensor)
        clash = [jobs[0], replace(jobs[1], job_id=jobs[0].job_id)]
        with pytest.raises(ValueError, match="unique"):
            ServingEngine(one_device_cluster(1 << 30)).run(clash)

    def test_report_invariants(self):
        report = run_serving(num_jobs=40, seed=0)
        assert len(report.results) == 40
        assert report.makespan_s >= max(r.exec_s for r in report.completed)
        assert report.p99_latency_s >= report.p50_latency_s > 0.0
        for r in report.completed:
            assert r.finish_s >= r.exec_start_s >= r.stage_start_s >= r.job.arrival_s
            assert r.latency_s > 0.0
        for utilization in report.device_utilization.values():
            assert 0.0 <= utilization <= 1.0
        assert 0.0 < report.overall_utilization <= 1.0
        text = report.render()
        for needle in ("throughput", "p50", "p99", "utilization", "cache"):
            assert needle in text


# ---------------------------------------------------------------------- #
# The central property: serving never changes numerics
# ---------------------------------------------------------------------- #
class TestServingBitIdentity:
    def _corpus_jobs(self):
        jobs = []
        job_id = 0
        arrival = 0.0
        for name, build in CASES.items():
            tensor = build()
            for kind in KERNEL_KINDS:
                for copy in range(2):  # duplicate tenant submissions
                    arrival += 1e-6
                    jobs.append(
                        Job(
                            job_id=job_id,
                            tenant=f"tenant-{copy}",
                            kind=kind,
                            tensor=tensor,
                            mode=0,
                            rank=RANK,
                            priority=job_id % 2,
                            arrival_s=arrival,
                            factor_seed=17,  # shared: duplicates must agree
                        )
                    )
                    job_id += 1
        return jobs

    def test_scheduled_equals_sequential_for_all_kernels(self):
        jobs = self._corpus_jobs()
        engine = ServingEngine(
            default_serving_cluster(),
            threadlen=THREADLEN,
            block_size=BLOCK_SIZE,
            max_batch=4,
        )
        report = engine.run(jobs)
        assert all(r.completed for r in report.results)
        assert report.cache_stats.encode_hits > 0  # duplicates hit

        outputs = {}
        for result in report.results:
            job = result.job
            # 1. Replaying the recorded placement alone reproduces the
            #    scheduled output bit for bit (cache, batching and queueing
            #    never touched the numerics).
            replay = execute_job(job, result.placement)
            assert_same_output(result.output, replay.output)
            # 2. Single-device one-shot numerics are device-independent:
            #    the plain kernel on the default device must agree exactly.
            if result.execution == "one-shot":
                direct = run_kernel(
                    KERNEL_KINDS[job.kind], job.tensor, job.factors(), job.mode
                )
                assert_same_output(result.output, direct.output)
            # 3. And everything stays numerically faithful to the oracle.
            if job.tensor.nnz:
                assert_close_to_reference(result.output, job)
            outputs.setdefault(
                (job.tensor.content_key, job.kind.value, job.rank), []
            ).append(result.output)
        # 4. Duplicate submissions (cache-hit path) agree bit for bit.
        for twins in outputs.values():
            for other in twins[1:]:
                assert_same_output(twins[0], other)

    def test_sharded_job_bit_identity(self):
        tensor = CASES[BIG_CASE]()
        cluster = hetero_cluster(6_000, 3_500)
        engine = ServingEngine(cluster, threadlen=THREADLEN, block_size=BLOCK_SIZE)
        job = Job(
            job_id=0, tenant="t", kind=JobKind.SPMTTKRP, tensor=tensor, rank=RANK
        )
        (result,) = engine.run([job]).results
        assert result.execution == "sharded"
        replay = execute_job(job, result.placement)
        assert_same_output(result.output, replay.output)
        # The recorded placement is the whole cluster, so the direct
        # cluster call reproduces it exactly too.
        direct = run_kernel(
            unified_spmttkrp, tensor, job.factors(), 0, cluster=cluster
        )
        assert_same_output(result.output, direct.output)
        assert_close_to_reference(result.output, job)

    def test_shard_streamed_fallback_bit_identity(self):
        tensor = CASES[BIG_CASE]()
        cluster = hetero_cluster(3_000, 2_200)
        engine = ServingEngine(cluster, threadlen=THREADLEN, block_size=BLOCK_SIZE)
        job = Job(
            job_id=0, tenant="t", kind=JobKind.SPMTTKRP, tensor=tensor, rank=RANK
        )
        (result,) = engine.run([job]).results
        assert result.execution == "sharded"
        profile = execute_job(job, result.placement).profile
        assert profile.sharded.has_streaming_shards
        replay = execute_job(job, result.placement)
        assert_same_output(result.output, replay.output)
        assert_close_to_reference(result.output, job)

    def test_streamed_single_device_bit_identity(self):
        tensor = CASES[BIG_CASE]()
        cluster = one_device_cluster(5_000)
        engine = ServingEngine(cluster, threadlen=THREADLEN, block_size=BLOCK_SIZE)
        job = Job(
            job_id=0, tenant="t", kind=JobKind.SPMTTKRP, tensor=tensor, rank=RANK
        )
        (result,) = engine.run([job]).results
        assert result.execution == "streamed"
        replay = execute_job(job, result.placement)
        assert_same_output(result.output, replay.output)
        direct = run_kernel(
            unified_spmttkrp,
            tensor,
            job.factors(),
            0,
            device=cluster.devices[0],
        )
        assert direct.profile.streaming is not None
        assert_same_output(result.output, direct.output)
        assert_close_to_reference(result.output, job)


# ---------------------------------------------------------------------- #
# Decomposition jobs + cache wiring in the drivers
# ---------------------------------------------------------------------- #
class TestDecompositionJobs:
    def test_cp_job_matches_direct_cp_als(self):
        tensor = CASES["order3-uniform"]()
        job = Job(
            job_id=0,
            tenant="t",
            kind=JobKind.CP_ALS,
            tensor=tensor,
            rank=RANK,
            iterations=2,
            factor_seed=5,
        )
        engine = ServingEngine(
            default_serving_cluster(), threadlen=THREADLEN, block_size=BLOCK_SIZE
        )
        (result,) = engine.run([job]).results
        assert result.completed and result.execution == "decomposition"
        direct = cp_als(
            tensor,
            RANK,
            engine=UnifiedGPUEngine(
                device=result.placement.device,
                block_size=BLOCK_SIZE,
                threadlen=THREADLEN,
            ),
            max_iterations=2,
            seed=5,
            compute_fit=False,
        )
        for served, reference in zip(result.output.factors, direct.factors):
            np.testing.assert_array_equal(served, reference)
        np.testing.assert_array_equal(result.output.weights, direct.weights)

    def test_tucker_job_matches_direct_hooi(self):
        tensor = CASES["order3-uniform"]()
        job = Job(
            job_id=0,
            tenant="t",
            kind=JobKind.TUCKER,
            tensor=tensor,
            rank=3,
            iterations=2,
            factor_seed=9,
        )
        engine = ServingEngine(
            default_serving_cluster(), threadlen=THREADLEN, block_size=BLOCK_SIZE
        )
        (result,) = engine.run([job]).results
        assert result.completed
        direct = tucker_hooi(
            tensor,
            job.tucker_ranks,
            device=result.placement.device,
            max_iterations=2,
            seed=9,
            block_size=BLOCK_SIZE,
            threadlen=THREADLEN,
        )
        np.testing.assert_array_equal(result.output.core, direct.core)
        for served, reference in zip(result.output.factors, direct.factors):
            np.testing.assert_array_equal(served, reference)

    def test_unified_engine_reuses_cache_across_runs(self):
        tensor = CASES["order3-uniform"]()
        cache = PreprocCache()
        cached_engine = UnifiedGPUEngine(
            block_size=BLOCK_SIZE, threadlen=THREADLEN, preproc_cache=cache
        )
        first = cp_als(tensor, RANK, engine=cached_engine, max_iterations=2, seed=1)
        assert cache.stats.encode_misses == tensor.order
        second = cp_als(tensor, RANK, engine=cached_engine, max_iterations=2, seed=1)
        assert cache.stats.encode_hits >= tensor.order
        # The cached run charges no host encode the second time around...
        assert second.setup_time_s < first.setup_time_s
        # ...and the numerics are untouched by the cache.
        plain = cp_als(
            tensor,
            RANK,
            engine=UnifiedGPUEngine(block_size=BLOCK_SIZE, threadlen=THREADLEN),
            max_iterations=2,
            seed=1,
        )
        for cached_f, plain_f in zip(second.factors, plain.factors):
            np.testing.assert_array_equal(cached_f, plain_f)

    def test_tucker_cache_hits_across_sweeps(self):
        tensor = CASES["order3-uniform"]()
        cache = PreprocCache()
        cached = tucker_hooi(
            tensor,
            (3, 3, 3),
            max_iterations=2,
            seed=2,
            block_size=BLOCK_SIZE,
            threadlen=THREADLEN,
            preproc_cache=cache,
        )
        # One miss per mode, then every later sweep hits.
        assert cache.stats.encode_misses == tensor.order
        assert cache.stats.encode_hits > 0
        plain = tucker_hooi(
            tensor,
            (3, 3, 3),
            max_iterations=2,
            seed=2,
            block_size=BLOCK_SIZE,
            threadlen=THREADLEN,
        )
        np.testing.assert_array_equal(cached.core, plain.core)


# ---------------------------------------------------------------------- #
# Workload generator, bench runner, regression metrics, CLI
# ---------------------------------------------------------------------- #
class TestWorkloadAndSurfaces:
    def test_workload_deterministic_and_sorted(self):
        a = generate_workload(WorkloadSpec(num_jobs=30, seed=3))
        b = generate_workload(WorkloadSpec(num_jobs=30, seed=3))
        assert len(a) == 30
        assert [j.arrival_s for j in a] == [j.arrival_s for j in b]
        assert [j.tensor.content_key for j in a] == [j.tensor.content_key for j in b]
        arrivals = [j.arrival_s for j in a]
        assert arrivals == sorted(arrivals)
        kinds = {j.kind for j in a}
        assert JobKind.SPMTTKRP in kinds and len(kinds) >= 3

    def test_workload_includes_whale_and_giant(self):
        spec = WorkloadSpec(num_jobs=40, seed=0)
        jobs = generate_workload(spec)
        report = ServingEngine(autotune=False).run(jobs)
        counts = report.execution_counts()
        assert counts.get("sharded", 0) > 0  # the whale sharded
        assert len(report.rejected) > 0  # the giant was refused

    def test_run_serving_full_paths(self):
        report = run_serving(num_jobs=100, seed=0)
        counts = report.execution_counts()
        assert counts.get("one-shot", 0) > 0
        assert counts.get("sharded", 0) > 0
        assert counts.get("decomposition", 0) > 0
        assert report.cache_stats.encode_hit_rate > 0.5
        # Pin the deterministic completed/rejected split of the seed-0
        # workload: a placement or admission regression that silently
        # refuses traffic would *improve* every latency metric, so the
        # counts themselves are the guard (update deliberately alongside
        # intentional scheduler changes, like the bench baselines).
        assert len(report.completed) == 95
        assert len(report.rejected) == 5

    def test_regression_serving_metrics(self):
        metrics = _serving_metrics()
        assert set(metrics) == {
            "serve/p50_latency",
            "serve/p99_latency",
            "serve/makespan",
            "serve/seconds_per_job",
            "serve/mean_queue_wait",
            "serve/rejected_jobs_count",
        }
        assert all(v >= 0.0 for v in metrics.values())
        assert metrics["serve/p99_latency"] >= metrics["serve/p50_latency"]

    def test_count_metrics_fail_on_any_increase(self):
        from repro.bench.regression import compare_metrics

        regressions, _ = compare_metrics(
            {"serve/rejected_jobs_count": 5.0}, {"serve/rejected_jobs_count": 6.0}
        )
        assert regressions  # +1 rejection fails even though 6/5 < 1.2
        regressions, _ = compare_metrics(
            {"serve/rejected_jobs_count": 5.0}, {"serve/rejected_jobs_count": 4.0}
        )
        assert not regressions  # fewer rejections is an improvement

    def test_tucker_admission_uses_clamped_ranks(self):
        # The real SpTTMc inside tucker_hooi runs with per-mode ranks
        # clamped to the shape; admission must size it the same way, not
        # with rank**(order-1).
        tensor = random_sparse_tensor((3000, 4, 4), 1500, seed=6)
        job = Job(
            job_id=0,
            tenant="t",
            kind=JobKind.TUCKER,
            tensor=tensor,
            rank=16,
            iterations=1,
        )
        report = ServingEngine(default_serving_cluster()).run([job])
        (result,) = report.results
        assert result.completed, result.reject_reason

    def test_cache_stats_are_per_run(self):
        tensor = CASES["order3-uniform"]()
        engine = ServingEngine(one_device_cluster(1 << 30), max_batch=1)
        job = Job(job_id=0, tenant="t", kind=JobKind.SPMTTKRP, tensor=tensor, rank=RANK)
        cold = engine.run([job])
        warm = engine.run([replace(job, job_id=1)])
        assert cold.cache_stats.encode_misses == 1
        # The warm run reports its own perfect hit rate, not the average.
        assert warm.cache_stats.encode_misses == 0
        assert warm.cache_stats.encode_hit_rate == 1.0

    def test_cli_serve(self, capsys):
        assert cli_main(["serve", "--jobs", "12"]) == 0
        out = capsys.readouterr().out
        assert "Serving report" in out and "throughput" in out

    def test_cli_serve_fifo_policy(self, capsys):
        assert cli_main(["serve", "--jobs", "8", "--policy", "fifo"]) == 0
        assert "policy=fifo" in capsys.readouterr().out


# ---------------------------------------------------------------------- #
# Hypothesis sweep (the nightly CI profile raises max_examples)
# ---------------------------------------------------------------------- #


class TestServingHypothesis:
    """Arbitrary small workloads: serving is deterministic and replayable.

    For any seeded workload, a serving run is (a) reproducible — a fresh
    engine on the same jobs yields the identical schedule — and (b) honest
    about numerics — replaying every completed job's recorded placement
    through the pure ``execute_job`` reproduces its output bit for bit.
    """

    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        num_jobs=st.integers(min_value=2, max_value=8),
        policy=st.sampled_from(["priority", "fifo"]),
    )
    def test_deterministic_and_replayable(self, seed, num_jobs, policy):
        spec = WorkloadSpec(num_jobs=num_jobs, seed=seed, giant_every=5)
        jobs = generate_workload(spec)
        first = ServingEngine(default_serving_cluster(), policy=policy).run(jobs)
        second = ServingEngine(default_serving_cluster(), policy=policy).run(jobs)
        assert [r.status for r in first.results] == [r.status for r in second.results]
        for a, b in zip(first.results, second.results):
            assert a.finish_s == b.finish_s
            assert a.device_slots == b.device_slots
            if a.completed and a.job.kind.is_kernel:
                assert_same_output(a.output, b.output)
                replay = execute_job(a.job, a.placement)
                assert_same_output(a.output, replay.output)
