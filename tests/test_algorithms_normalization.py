"""Tests for factor-column normalisation."""

import numpy as np
import pytest

from repro.algorithms.normalization import normalize_columns


class TestNormalizeColumns:
    def test_unit_norms(self):
        rng = np.random.default_rng(0)
        m = rng.random((20, 5))
        normalized, weights = normalize_columns(m)
        np.testing.assert_allclose(np.linalg.norm(normalized, axis=0), np.ones(5))
        np.testing.assert_allclose(normalized * weights, m)

    def test_weights_are_column_norms(self):
        m = np.array([[3.0, 0.0], [4.0, 2.0]])
        _, weights = normalize_columns(m)
        np.testing.assert_allclose(weights, [5.0, 2.0])

    def test_zero_column_untouched(self):
        m = np.zeros((4, 2))
        m[:, 1] = 1.0
        normalized, weights = normalize_columns(m)
        assert weights[0] == 1.0
        np.testing.assert_allclose(normalized[:, 0], 0.0)

    def test_inf_norm(self):
        m = np.array([[1.0], [-4.0], [2.0]])
        normalized, weights = normalize_columns(m, ord=np.inf)
        assert weights[0] == pytest.approx(4.0)
        assert np.abs(normalized).max() == pytest.approx(1.0)

    def test_rejects_vector(self):
        with pytest.raises(ValueError):
            normalize_columns(np.ones(5))
