"""Tests for the F-COO storage format (paper Section IV-B, Figure 2, Table II)."""

import numpy as np
import pytest

from repro.formats.fcoo import FCOOTensor
from repro.formats.mode_encoding import OperationKind
from repro.formats.storage_cost import fcoo_storage_bytes
from repro.tensor.random import random_sparse_tensor
from repro.tensor.sparse import SparseTensor


def figure2_tensor():
    """The 12-non-zero tensor of the paper's Figure 2 (1-based in the paper)."""
    coords = [
        (0, 0, 0), (0, 0, 1), (0, 0, 2), (0, 0, 3), (0, 0, 4),
        (1, 0, 0), (1, 0, 1), (1, 0, 2), (1, 0, 3),
        (1, 1, 0), (1, 1, 1), (1, 1, 2),
    ]
    values = np.arange(1.0, 13.0)
    return SparseTensor(np.array(coords), values, (2, 2, 5))


class TestFigure2Encoding:
    """The worked example of the paper's Figure 2."""

    def test_spttm_mode3_segments_are_fibers(self):
        fcoo = FCOOTensor.from_sparse(figure2_tensor(), OperationKind.SPTTM, 2)
        # Three (i, j) fibers: (0,0) with 5 nnz, (1,0) with 4, (1,1) with 3.
        assert fcoo.num_segments == 3
        np.testing.assert_array_equal(fcoo.segment_sizes(), [5, 4, 3])
        np.testing.assert_array_equal(fcoo.segment_index_coords, [[0, 0], [1, 0], [1, 1]])

    def test_spttm_mode3_bit_flags(self):
        fcoo = FCOOTensor.from_sparse(figure2_tensor(), OperationKind.SPTTM, 2)
        # A flag is set exactly where a new fiber starts (positions 0, 5, 9).
        expected = np.zeros(12, dtype=bool)
        expected[[0, 5, 9]] = True
        np.testing.assert_array_equal(fcoo.bf, expected)

    def test_spttm_mode3_product_indices_are_k(self):
        fcoo = FCOOTensor.from_sparse(figure2_tensor(), OperationKind.SPTTM, 2)
        np.testing.assert_array_equal(
            fcoo.product_mode_indices(0), [0, 1, 2, 3, 4, 0, 1, 2, 3, 0, 1, 2]
        )

    def test_spmttkrp_mode1_segments_are_slices(self):
        fcoo = FCOOTensor.from_sparse(figure2_tensor(), OperationKind.SPMTTKRP, 0)
        # Two i-slices: i=0 with 5 nnz, i=1 with 7 nnz.
        assert fcoo.num_segments == 2
        np.testing.assert_array_equal(fcoo.segment_sizes(), [5, 7])

    def test_start_flags_partition_of_four(self):
        """With 4 non-zeros per partition, sf = [1, 1, 0] for mode-1 SpMTTKRP.

        Partition 0 starts at non-zero 0 (new slice), partition 1 at
        non-zero 4 (still slice i=0 ... wait, the paper's example has the
        partition-2 start inside slice i=1): the invariant tested is that
        sf[t] equals bf at the partition's first non-zero with sf[0] forced
        to 1 (Figure 2 caption).
        """
        fcoo = FCOOTensor.from_sparse(figure2_tensor(), OperationKind.SPMTTKRP, 0)
        sf = fcoo.start_flags(4)
        assert sf.shape == (3,)
        assert bool(sf[0]) is True
        np.testing.assert_array_equal(sf[1:], fcoo.bf[[4, 8]])


class TestRoundTrip:
    @pytest.mark.parametrize("operation", ["spttm", "spmttkrp", "spttmc"])
    @pytest.mark.parametrize("mode", [0, 1, 2])
    def test_lossless_third_order(self, operation, mode):
        tensor = random_sparse_tensor((12, 9, 15), 300, seed=mode)
        fcoo = FCOOTensor.from_sparse(tensor, operation, mode)
        # The sparsity pattern must round-trip exactly; values at float32
        # accuracy (F-COO stores device single precision).
        assert fcoo.to_sparse().allclose(tensor, rtol=1e-6, atol=1e-6)

    def test_lossless_fourth_order(self, fourth_order_tensor):
        for mode in range(4):
            fcoo = FCOOTensor.from_sparse(fourth_order_tensor, "spmttkrp", mode)
            assert fcoo.to_sparse().allclose(fourth_order_tensor, rtol=1e-6, atol=1e-6)

    def test_empty_tensor(self):
        fcoo = FCOOTensor.from_sparse(SparseTensor.empty((4, 5, 6)), "spttm", 2)
        assert fcoo.nnz == 0
        assert fcoo.num_segments == 0
        assert fcoo.to_sparse().allclose(SparseTensor.empty((4, 5, 6)))


class TestInvariants:
    def test_bf_first_is_set_and_cumsum_matches_segments(self, small_tensor):
        fcoo = FCOOTensor.from_sparse(small_tensor, "spmttkrp", 0)
        assert bool(fcoo.bf[0]) is True
        assert int(fcoo.bf.sum()) == fcoo.num_segments
        np.testing.assert_array_equal(np.cumsum(fcoo.bf) - 1, fcoo.segment_ids)

    def test_segment_ids_non_decreasing(self, small_tensor):
        fcoo = FCOOTensor.from_sparse(small_tensor, "spttm", 1)
        assert (np.diff(fcoo.segment_ids) >= 0).all()

    def test_segments_count_equals_num_fibers(self, small_tensor):
        for mode in range(3):
            fcoo = FCOOTensor.from_sparse(small_tensor, "spttm", mode)
            assert fcoo.num_segments == small_tensor.num_fibers(mode)

    def test_segments_count_equals_num_slices_for_mttkrp(self, small_tensor):
        for mode in range(3):
            fcoo = FCOOTensor.from_sparse(small_tensor, "spmttkrp", mode)
            assert fcoo.num_segments == small_tensor.num_slices(mode)

    def test_product_indices_dtype(self, small_tensor):
        fcoo = FCOOTensor.from_sparse(small_tensor, "spmttkrp", 0)
        assert fcoo.product_indices.dtype == np.uint32
        assert fcoo.values.dtype == np.float32

    def test_index_dtype_overflow_check(self):
        tensor = random_sparse_tensor((300, 5, 5), 50, seed=0)
        with pytest.raises(ValueError, match="does not fit"):
            FCOOTensor.from_sparse(tensor, "spttm", 0, index_dtype=np.uint8)

    def test_wrong_product_position(self, small_tensor):
        fcoo = FCOOTensor.from_sparse(small_tensor, "spttm", 0)
        with pytest.raises(ValueError):
            fcoo.product_mode_indices(1)


class TestPartitions:
    def test_num_partitions(self, small_tensor):
        fcoo = FCOOTensor.from_sparse(small_tensor, "spmttkrp", 0)
        assert fcoo.num_partitions(8) == -(-fcoo.nnz // 8)
        assert fcoo.num_partitions(fcoo.nnz) == 1

    def test_start_flags_first_always_set(self, small_tensor):
        fcoo = FCOOTensor.from_sparse(small_tensor, "spmttkrp", 0)
        for threadlen in (1, 4, 16, 64):
            sf = fcoo.start_flags(threadlen)
            assert bool(sf[0]) is True

    def test_start_flags_all_set_when_threadlen_one_on_distinct_segments(self):
        # One non-zero per slice -> every partition starts a new segment.
        coords = np.array([[i, 0, 0] for i in range(10)])
        tensor = SparseTensor(coords, np.ones(10), (10, 2, 2))
        fcoo = FCOOTensor.from_sparse(tensor, "spmttkrp", 0)
        assert fcoo.start_flags(1).all()

    def test_partition_spans_segments_totals(self, small_tensor):
        fcoo = FCOOTensor.from_sparse(small_tensor, "spmttkrp", 0)
        spans = fcoo.partition_spans_segments(8)
        assert spans.shape == (fcoo.num_partitions(8),)
        assert (spans >= 1).all()
        # Total distinct (partition, segment) pairs is at least the number of
        # segments and at most segments + partitions - 1.
        assert fcoo.num_segments <= spans.sum() <= fcoo.num_segments + len(spans)

    def test_invalid_threadlen(self, small_tensor):
        fcoo = FCOOTensor.from_sparse(small_tensor, "spttm", 2)
        with pytest.raises(ValueError):
            fcoo.start_flags(0)


class TestStorage:
    def test_storage_matches_table2_model(self, small_tensor):
        for op, mode in [("spttm", 2), ("spmttkrp", 0)]:
            fcoo = FCOOTensor.from_sparse(small_tensor, op, mode)
            for threadlen in (8, 32):
                model = fcoo_storage_bytes(
                    fcoo.nnz, small_tensor.order, op, mode, threadlen=threadlen
                )
                measured = fcoo.storage_bytes(threadlen)
                # The model is exact up to the rounding of the packed flag bits.
                assert abs(measured - model) <= 16

    def test_spttm_smaller_than_spmttkrp(self, small_tensor):
        spttm = FCOOTensor.from_sparse(small_tensor, "spttm", 2).storage_bytes(8)
        spmttkrp = FCOOTensor.from_sparse(small_tensor, "spmttkrp", 0).storage_bytes(8)
        assert spttm < spmttkrp

    def test_packed_bit_flags_round_trip(self, small_tensor):
        fcoo = FCOOTensor.from_sparse(small_tensor, "spmttkrp", 0)
        packed = fcoo.packed_bit_flags()
        unpacked = np.unpackbits(packed)[: fcoo.nnz].astype(bool)
        np.testing.assert_array_equal(unpacked, fcoo.bf)


class TestValidation:
    def test_reencoding_required_for_other_mode(self, small_tensor):
        from repro.kernels.unified.spttm import unified_spttm

        fcoo = FCOOTensor.from_sparse(small_tensor, "spttm", 2)
        with pytest.raises(ValueError, match="encoded for"):
            unified_spttm(fcoo, np.ones((small_tensor.shape[0], 4)), 0)
