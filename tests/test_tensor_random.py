"""Tests for repro.tensor.random."""

import numpy as np
import pytest

from repro.tensor.random import random_factors, random_sparse_tensor


class TestRandomSparseTensor:
    def test_shape_and_bounds(self):
        t = random_sparse_tensor((10, 20, 30), 500, seed=0)
        assert t.shape == (10, 20, 30)
        idx = np.asarray(t.indices)
        assert (idx >= 0).all()
        assert (idx < np.array([10, 20, 30])).all()

    def test_nnz_at_most_requested(self):
        t = random_sparse_tensor((10, 20, 30), 500, seed=0)
        assert 0 < t.nnz <= 500

    def test_deterministic(self):
        a = random_sparse_tensor((10, 10, 10), 200, seed=5)
        b = random_sparse_tensor((10, 10, 10), 200, seed=5)
        assert a.allclose(b)

    def test_seeds_differ(self):
        a = random_sparse_tensor((10, 10, 10), 200, seed=5)
        b = random_sparse_tensor((10, 10, 10), 200, seed=6)
        assert not a.allclose(b)

    def test_power_law_is_skewed(self):
        uniform = random_sparse_tensor((1000, 50, 50), 5000, seed=1, distribution="uniform")
        power = random_sparse_tensor(
            (1000, 50, 50), 5000, seed=1, distribution="power", concentration=1.5
        )
        # The power-law tensor concentrates non-zeros on fewer slices.
        assert power.num_slices(0) < uniform.num_slices(0)
        assert power.slice_counts(0).max() > uniform.slice_counts(0).max()

    def test_ensure_no_empty_first_mode(self):
        t = random_sparse_tensor((20, 30, 30), 200, seed=2, ensure_no_empty_first_mode=True)
        assert t.num_slices(0) == 20

    def test_values_in_range(self):
        t = random_sparse_tensor((5, 5, 5), 50, seed=3, value_low=0.5, value_high=2.0)
        vals = np.asarray(t.values)
        # Duplicate merging can push values above value_high but never below.
        assert (vals >= 0.5).all()

    def test_unknown_distribution(self):
        with pytest.raises(ValueError):
            random_sparse_tensor((5, 5), 10, distribution="gaussian")

    def test_invalid_concentration(self):
        with pytest.raises(ValueError):
            random_sparse_tensor((5, 5), 10, distribution="power", concentration=0.0)


class TestRandomFactors:
    def test_shapes(self):
        factors = random_factors((4, 5, 6), 3, seed=0)
        assert [f.shape for f in factors] == [(4, 3), (5, 3), (6, 3)]

    def test_deterministic(self):
        a = random_factors((4, 5), 2, seed=1)
        b = random_factors((4, 5), 2, seed=1)
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)

    def test_scale(self):
        factors = random_factors((100,), 4, seed=2, scale=0.1)
        assert factors[0].max() <= 0.1

    def test_invalid_rank(self):
        with pytest.raises(ValueError):
            random_factors((4, 5), 0)
