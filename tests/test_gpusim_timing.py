"""Tests for the kernel timing model.

The absolute times are model outputs, but the *monotonicity* relations here
are what drive every figure of the reproduction: more traffic, more atomics,
more imbalance or fewer active threads must never make a kernel faster.
"""

import pytest

from repro.gpusim.counters import KernelCounters
from repro.gpusim.device import TITAN_X
from repro.gpusim.launch import LaunchConfig
from repro.gpusim.timing import (
    OutOfDeviceMemory,
    check_device_fit,
    estimate_kernel_time,
    profile_from_counters,
)


def big_launch():
    return LaunchConfig.for_nnz(10_000_000, 16, block_size=256, threadlen=8)


def time_of(counters, launch=None):
    total, _ = estimate_kernel_time(counters, launch or big_launch(), TITAN_X)
    return total


class TestMonotonicity:
    def test_more_memory_traffic_is_slower(self):
        base = KernelCounters(gmem_read_bytes=1e8, active_threads=1e6)
        more = KernelCounters(gmem_read_bytes=5e8, active_threads=1e6)
        assert time_of(more) > time_of(base)

    def test_more_flops_is_not_faster(self):
        base = KernelCounters(flops=1e9, active_threads=1e6)
        more = KernelCounters(flops=1e11, active_threads=1e6)
        assert time_of(more) >= time_of(base)

    def test_more_atomics_is_slower(self):
        base = KernelCounters(gmem_read_bytes=1e8, atomic_serialized_ops=1e6, active_threads=1e6)
        more = KernelCounters(gmem_read_bytes=1e8, atomic_serialized_ops=1e9, active_threads=1e6)
        assert time_of(more) > time_of(base)

    def test_imbalance_multiplies(self):
        balanced = KernelCounters(gmem_read_bytes=1e8, active_threads=1e6, imbalance_factor=1.0)
        skewed = KernelCounters(gmem_read_bytes=1e8, active_threads=1e6, imbalance_factor=4.0)
        assert time_of(skewed) == pytest.approx(4 * time_of(balanced), rel=0.05)

    def test_fewer_active_threads_is_slower(self):
        busy = KernelCounters(gmem_read_bytes=1e8, active_threads=1e6)
        idle = KernelCounters(gmem_read_bytes=1e8, active_threads=500)
        assert time_of(idle) > time_of(busy)

    def test_launch_overhead_additive(self):
        none = KernelCounters(gmem_read_bytes=1e6, active_threads=1e6, kernel_launches=0)
        ten = KernelCounters(gmem_read_bytes=1e6, active_threads=1e6, kernel_launches=10)
        assert time_of(ten) - time_of(none) == pytest.approx(
            10 * TITAN_X.kernel_launch_overhead_s, rel=0.01
        )

    def test_transfers_charged_when_requested(self):
        c = KernelCounters(host_to_device_bytes=1.2e10, active_threads=1e6)
        with_transfer, _ = estimate_kernel_time(c, big_launch(), TITAN_X, include_transfers=True)
        without, _ = estimate_kernel_time(c, big_launch(), TITAN_X, include_transfers=False)
        assert with_transfer > without + 0.5


class TestBreakdown:
    def test_breakdown_keys(self):
        _, breakdown = estimate_kernel_time(
            KernelCounters(gmem_read_bytes=1e8, active_threads=1e6), big_launch(), TITAN_X
        )
        for key in ("compute", "memory", "atomic", "launch", "transfer", "utilization"):
            assert key in breakdown

    def test_memory_bound_kernel_dominated_by_memory(self):
        total, breakdown = estimate_kernel_time(
            KernelCounters(gmem_read_bytes=1e9, flops=1e6, active_threads=1e6),
            big_launch(),
            TITAN_X,
        )
        assert breakdown["memory"] == pytest.approx(total, rel=0.2)


class TestDeviceFit:
    def test_fits(self):
        check_device_fit(1e9, TITAN_X)

    def test_out_of_memory(self):
        with pytest.raises(OutOfDeviceMemory) as exc:
            check_device_fit(20e9, TITAN_X, what="test operands")
        assert exc.value.required_bytes == pytest.approx(20e9)
        assert "test operands" in str(exc.value)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            check_device_fit(-1.0, TITAN_X)

    def test_profile_from_counters_checks_fit(self):
        with pytest.raises(OutOfDeviceMemory):
            profile_from_counters(
                "big",
                KernelCounters(active_threads=1e6),
                big_launch(),
                TITAN_X,
                device_memory_bytes=1e12,
            )

    def test_profile_from_counters_builds_profile(self):
        profile = profile_from_counters(
            "ok",
            KernelCounters(gmem_read_bytes=1e6, active_threads=1e6),
            big_launch(),
            TITAN_X,
            device_memory_bytes=1e6,
        )
        assert profile.name == "ok"
        assert profile.estimated_time_s > 0
