"""Tests for the multicore CPU cost model."""

import pytest

from repro.cpusim.cpu import CPU_I7_5820K, CpuCounters, cpu_profile, estimate_cpu_time


class TestCpuSpec:
    def test_table3_values(self):
        assert CPU_I7_5820K.physical_cores == 6
        assert CPU_I7_5820K.threads == 12
        assert CPU_I7_5820K.peak_sp_gflops == pytest.approx(56.72)
        assert CPU_I7_5820K.mem_bandwidth_gbps == pytest.approx(68.0)
        assert CPU_I7_5820K.llc_bytes == 15 * 1024**2

    def test_derived_rates(self):
        assert CPU_I7_5820K.peak_flops == pytest.approx(56.72e9)
        assert CPU_I7_5820K.achievable_bandwidth_bytes_per_s < 68e9
        assert CPU_I7_5820K.scalar_ops_per_second_per_core == pytest.approx(6.6e9)


class TestCpuCounters:
    def test_validation(self):
        with pytest.raises(ValueError):
            CpuCounters(flops=-1)
        with pytest.raises(ValueError):
            CpuCounters(imbalance_factor=0.1)
        with pytest.raises(ValueError):
            CpuCounters(parallel_fraction=1.5)

    def test_merge(self):
        a = CpuCounters(flops=10, mem_read_bytes=100, used_threads=4)
        b = CpuCounters(flops=5, mem_write_bytes=50, imbalance_factor=2.0)
        merged = a + b
        assert merged.flops == 15
        assert merged.mem_total_bytes == 150
        assert merged.imbalance_factor == 2.0
        assert merged.used_threads == 4


class TestEstimate:
    def _time(self, **kwargs):
        total, _ = estimate_cpu_time(CpuCounters(**kwargs), CPU_I7_5820K)
        return total

    def test_more_memory_is_slower(self):
        assert self._time(mem_read_bytes=1e9) > self._time(mem_read_bytes=1e8)

    def test_more_flops_is_slower(self):
        assert self._time(flops=1e11) > self._time(flops=1e9)

    def test_scalar_ops_bound(self):
        assert self._time(scalar_ops=1e10) > self._time(scalar_ops=1e8)

    def test_imbalance_multiplies_parallel_part(self):
        base = self._time(mem_read_bytes=1e9)
        skewed = self._time(mem_read_bytes=1e9, imbalance_factor=3.0)
        assert skewed > 2.0 * base

    def test_threads_help_compute(self):
        counters = CpuCounters(flops=1e10)
        one, _ = estimate_cpu_time(counters, CPU_I7_5820K, num_threads=1)
        many, _ = estimate_cpu_time(counters, CPU_I7_5820K, num_threads=12)
        assert many < one
        # Compute scales with the 6 physical cores, not the 12 threads.
        assert one / many <= 6.5

    def test_memory_saturates(self):
        counters = CpuCounters(mem_read_bytes=1e10)
        four, _ = estimate_cpu_time(counters, CPU_I7_5820K, num_threads=4)
        twelve, _ = estimate_cpu_time(counters, CPU_I7_5820K, num_threads=12)
        # Bandwidth saturates at ~4 threads, so more threads barely help.
        assert twelve == pytest.approx(four, rel=0.05)

    def test_used_threads_limits_scaling(self):
        few = CpuCounters(flops=1e10, used_threads=2)
        many = CpuCounters(flops=1e10)
        t_few, _ = estimate_cpu_time(few, CPU_I7_5820K)
        t_many, _ = estimate_cpu_time(many, CPU_I7_5820K)
        assert t_few > t_many

    def test_serial_fraction_amdahl(self):
        parallel = CpuCounters(flops=1e10, parallel_fraction=1.0)
        half = CpuCounters(flops=1e10, parallel_fraction=0.5)
        t_par, _ = estimate_cpu_time(parallel, CPU_I7_5820K)
        t_half, _ = estimate_cpu_time(half, CPU_I7_5820K)
        assert t_half > t_par

    def test_invalid_threads(self):
        with pytest.raises(ValueError):
            estimate_cpu_time(CpuCounters(), CPU_I7_5820K, num_threads=0)

    def test_profile_wrapper(self):
        p = cpu_profile("kernel", CpuCounters(flops=1e9), CPU_I7_5820K)
        assert p.name == "kernel"
        assert p.estimated_time_s > 0
        assert "memory" in p.breakdown
