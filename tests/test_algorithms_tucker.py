"""Tests for the Tucker/HOOI decomposition built on unified SpTTMc."""

import numpy as np
import pytest

from repro.algorithms.tucker import tucker_hooi
from repro.tensor.sparse import SparseTensor
from repro.tensor.ops import ttm_dense


@pytest.fixture
def low_multilinear_rank_tensor():
    """A tensor with exact multilinear rank (2, 2, 2)."""
    rng = np.random.default_rng(0)
    core = rng.random((2, 2, 2))
    factors = [np.linalg.qr(rng.standard_normal((s, 2)))[0] for s in (10, 12, 9)]
    dense = core
    for m, f in enumerate(factors):
        # Expand mode m from rank 2 to the full size: G x_m U == ttm with U^T.
        dense = ttm_dense(dense, f.T, m)
    return SparseTensor.from_dense(dense, tol=1e-12)


class TestTuckerHOOI:
    def test_fit_improves(self, skewed_tensor):
        result = tucker_hooi(skewed_tensor, (5, 5, 5), max_iterations=4, tolerance=0.0)
        assert len(result.fits) == 4
        assert (np.diff(result.fits) >= -1e-8).all()

    def test_shapes(self, skewed_tensor):
        ranks = (4, 6, 5)
        result = tucker_hooi(skewed_tensor, ranks, max_iterations=2)
        assert result.core.shape == ranks
        for m, f in enumerate(result.factors):
            assert f.shape == (skewed_tensor.shape[m], ranks[m])

    def test_factors_orthonormal(self, skewed_tensor):
        result = tucker_hooi(skewed_tensor, (3, 3, 3), max_iterations=2)
        for f in result.factors:
            np.testing.assert_allclose(f.T @ f, np.eye(f.shape[1]), atol=1e-8)

    def test_recovers_exact_low_rank(self, low_multilinear_rank_tensor):
        result = tucker_hooi(
            low_multilinear_rank_tensor, (2, 2, 2), max_iterations=6, tolerance=1e-10
        )
        # The kernels store values in device single precision, so the recovered
        # fit is exact only to float32 accuracy.
        assert result.final_fit == pytest.approx(1.0, abs=1e-3)

    def test_reconstruction_matches_fit(self, skewed_tensor):
        ranks = (6, 6, 6)
        result = tucker_hooi(skewed_tensor, ranks, max_iterations=3, tolerance=0.0)
        dense = skewed_tensor.to_dense()
        approx = result.core
        for m, f in enumerate(result.factors):
            approx = ttm_dense(approx, f.T, m)
        fit = 1.0 - np.linalg.norm(dense - approx) / np.linalg.norm(dense)
        assert fit == pytest.approx(result.final_fit, abs=1e-6)

    def test_timings_recorded(self, skewed_tensor):
        result = tucker_hooi(skewed_tensor, (3, 3, 3), max_iterations=2)
        assert set(result.ttmc_time_by_mode) == {0, 1, 2}
        assert result.total_time_s > 0

    def test_rank_validation(self, skewed_tensor):
        with pytest.raises(ValueError):
            tucker_hooi(skewed_tensor, (100, 3, 3))
        with pytest.raises(ValueError):
            tucker_hooi(skewed_tensor, (3, 3))

    def test_zero_tensor_rejected(self):
        with pytest.raises(ValueError):
            tucker_hooi(SparseTensor.empty((4, 4, 4)), (2, 2, 2))
