"""Tests for the atomic-contention model."""

import numpy as np
import pytest

from repro.gpusim.atomics import atomic_contention_factor, atomic_cost_ops
from repro.gpusim.device import TITAN_X


class TestContentionFactor:
    def test_no_conflicts(self):
        counts = np.ones(1000)
        assert atomic_contention_factor(counts, TITAN_X) == pytest.approx(1.0)

    def test_full_conflict_caps(self):
        counts = np.array([1_000_000.0])
        assert atomic_contention_factor(counts, TITAN_X) == pytest.approx(
            TITAN_X.atomic_max_conflict_penalty
        )

    def test_weighted_mean(self):
        # Two addresses: one with 3 updates, one with 1 -> weighted mean 2.5.
        counts = np.array([3.0, 1.0])
        assert atomic_contention_factor(counts, TITAN_X) == pytest.approx((9 + 1) / 4)

    def test_scalar_input(self):
        assert atomic_contention_factor(4.0, TITAN_X) == pytest.approx(4.0)

    def test_empty_histogram(self):
        assert atomic_contention_factor(np.empty(0), TITAN_X) == 1.0

    def test_monotone_in_skew(self):
        uniform = np.full(100, 10.0)
        skewed = np.concatenate([np.full(10, 91.0), np.full(90, 1.0)])
        assert atomic_contention_factor(skewed, TITAN_X) > atomic_contention_factor(
            uniform, TITAN_X
        )

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            atomic_contention_factor(np.array([-1.0]), TITAN_X)
        with pytest.raises(ValueError):
            atomic_contention_factor(-2.0, TITAN_X)


class TestAtomicCost:
    def test_scales_with_count(self):
        counts = np.full(10, 50.0)
        assert atomic_cost_ops(1000, counts, TITAN_X) == pytest.approx(
            2 * atomic_cost_ops(500, counts, TITAN_X)
        )

    def test_at_least_raw_count(self):
        assert atomic_cost_ops(100, np.ones(100), TITAN_X) >= 100

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            atomic_cost_ops(-1, np.ones(2), TITAN_X)
