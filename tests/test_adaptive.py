"""Closed-loop adaptive scheduling: the feedback loop never loses or lies.

The hedged adaptive engine (``ServingEngine(adaptive=True)``) trial-runs
every job list both ways and keeps the adaptive schedule only on a strict
makespan win, so four properties must hold on *every* seeded workload:

1. the adaptive makespan never exceeds the static one;
2. adaptive and static runs produce bit-identical job outputs — feedback
   moves work in time, never in value;
3. with a cold observation store and a FIFO NIC, the adaptive run is
   event-for-event identical to the static run (the hedge's tie-break
   keeps the static schedule);
4. the fair/priority NIC disciplines may reorder queued collectives, but
   never break gang feasibility (``Timeline.violations() == {}``).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.obs.events import EventLog
from repro.serve.cache import PreprocCache
from repro.serve.engine import ServingEngine
from repro.serve.feedback import ObservationStore
from repro.serve.workload import (
    WorkloadSpec,
    default_multinode_serving_cluster,
    default_serving_cluster,
    generate_workload,
)

SEEDS = st.integers(min_value=0, max_value=2**31 - 1)


def _arrays(output):
    """The comparable ndarrays of any job output type."""
    if output is None:
        return []
    if isinstance(output, np.ndarray):
        return [output]
    if hasattr(output, "fiber_values"):  # SemiSparseTensor
        return [output.fiber_coords, output.fiber_values]
    out = list(getattr(output, "factors", []) or [])
    for attr in ("weights", "core"):
        value = getattr(output, attr, None)
        if value is not None:
            out.append(value)
    return out


def _assert_identical_outputs(static, adaptive):
    twin = {r.job.job_id: r for r in static.results if r.completed}
    for result in adaptive.results:
        other = twin.get(result.job.job_id)
        if not result.completed or other is None:
            continue
        ours, theirs = _arrays(result.output), _arrays(other.output)
        assert len(ours) == len(theirs)
        for a, b in zip(ours, theirs):
            assert np.array_equal(a, b)


class TestAdaptiveNeverLoses:
    @given(seed=SEEDS, num_jobs=st.integers(min_value=2, max_value=8))
    def test_single_node_makespan_and_outputs(self, seed, num_jobs):
        """Properties 1 + 2 on the heterogeneous single node: across a cold
        and a warm run, adaptive never exceeds the static makespan and all
        outputs stay bit-identical."""
        jobs = generate_workload(WorkloadSpec(num_jobs=num_jobs, seed=seed))
        static = ServingEngine(default_serving_cluster(), autotune=True)
        adaptive = ServingEngine(
            default_serving_cluster(), autotune=True, adaptive=True
        )
        for _ in range(2):  # cold run, then warm (observations recorded)
            s = static.run(jobs)
            a = adaptive.run(jobs)
            assert a.makespan_s <= s.makespan_s + 1e-12
            _assert_identical_outputs(s, a)

    @given(seed=SEEDS, num_jobs=st.integers(min_value=2, max_value=6))
    def test_multinode_makespan_with_nic_policy(self, seed, num_jobs):
        """Property 1 on two nodes with cross-node collectives and a
        non-FIFO NIC discipline in the adaptive trial."""
        jobs = generate_workload(
            WorkloadSpec(num_jobs=num_jobs, seed=seed, cross_node_every=3)
        )
        static = ServingEngine(default_multinode_serving_cluster(2), autotune=True)
        adaptive = ServingEngine(
            default_multinode_serving_cluster(2),
            autotune=True,
            adaptive=True,
            nic_policy="fair",
        )
        for _ in range(2):
            s = static.run(jobs)
            a = adaptive.run(jobs)
            assert a.makespan_s <= s.makespan_s + 1e-12
            _assert_identical_outputs(s, a)


class TestColdStartIdentity:
    @given(seed=SEEDS, num_jobs=st.integers(min_value=2, max_value=8))
    def test_cold_adaptive_fifo_is_event_identical_to_static(self, seed, num_jobs):
        """Property 3: no observations + FIFO NIC means the adaptive trial
        collapses to the static schedule, the tie-break keeps static, and
        the event logs match line for line."""
        jobs = generate_workload(WorkloadSpec(num_jobs=num_jobs, seed=seed))
        static_log, adaptive_log = EventLog(), EventLog()
        static = ServingEngine(default_serving_cluster(), autotune=True).run(
            jobs, events=static_log
        )
        engine = ServingEngine(
            default_serving_cluster(),
            autotune=True,
            adaptive=True,
            nic_policy="fifo",
        )
        assert len(engine.observations) == 0
        adaptive = engine.run(jobs, events=adaptive_log)
        assert engine.last_adaptive_won is False
        assert adaptive_log.to_jsonl() == static_log.to_jsonl()
        assert adaptive.makespan_s == static.makespan_s
        assert [r.finish_s for r in adaptive.results] == [
            r.finish_s for r in static.results
        ]


class TestNicDisciplineFeasibility:
    @given(
        seed=SEEDS,
        num_jobs=st.integers(min_value=2, max_value=6),
        nic_policy=st.sampled_from(["fair", "priority"]),
    )
    def test_reordered_collectives_keep_gangs_feasible(
        self, seed, num_jobs, nic_policy
    ):
        """Property 4: even when the discipline displaces a queued gang,
        the timeline stays over-booking free and every job completes with
        the same bits."""
        jobs = generate_workload(
            WorkloadSpec(
                num_jobs=num_jobs,
                seed=seed,
                cross_node_every=2,
                latency_slo_fraction=0.5 if nic_policy == "priority" else 0.0,
            )
        )
        engine = ServingEngine(
            default_multinode_serving_cluster(2),
            autotune=True,
            adaptive=True,
            nic_policy=nic_policy,
        )
        static = ServingEngine(
            default_multinode_serving_cluster(2), autotune=True
        ).run(jobs)
        for _ in range(2):
            report = engine.run(jobs)
            assert report.timeline is not None
            assert report.timeline.violations() == {}
            assert report.makespan_s <= static.makespan_s + 1e-12
            _assert_identical_outputs(static, report)


class TestObservationStore:
    def test_records_fold_into_estimates(self):
        store = ObservationStore()
        assert len(store) == 0
        store.record(
            kind="spttm",
            content_key="k1",
            device_names=["Titan X"],
            slots=[0],
            nodes=[0],
            exec_s=2.0,
            device_wait_s=0.5,
            nic_wait_s=0.0,
        )
        assert len(store) == 1
        assert store.expected_exec_any("spttm", "k1") == pytest.approx(2.0)
        # The EMA moves toward later observations without jumping to them.
        store.record(
            kind="spttm",
            content_key="k1",
            device_names=["Titan X"],
            slots=[0],
            nodes=[0],
            exec_s=4.0,
            device_wait_s=0.0,
            nic_wait_s=0.0,
        )
        expected = store.expected_exec_any("spttm", "k1")
        assert 2.0 < expected < 4.0
        assert store.expected_exec_any("spttm", "other") is None

    def test_clone_is_independent(self):
        store = ObservationStore()
        store.record(
            kind="spttm",
            content_key="k1",
            device_names=["Titan X"],
            slots=[0],
            nodes=[0],
            exec_s=1.0,
            device_wait_s=0.0,
            nic_wait_s=0.0,
        )
        copy = store.clone()
        copy.record(
            kind="spttm",
            content_key="k1",
            device_names=["Titan X"],
            slots=[0],
            nodes=[0],
            exec_s=9.0,
            device_wait_s=0.0,
            nic_wait_s=0.0,
        )
        assert len(store) == 1 and len(copy) == 2
        assert store.expected_exec_any("spttm", "k1") == pytest.approx(1.0)

    def test_engine_records_across_runs(self):
        jobs = generate_workload(WorkloadSpec(num_jobs=6, seed=0))
        engine = ServingEngine(default_serving_cluster(), autotune=True)
        engine.run(jobs)
        first = len(engine.observations)
        assert first > 0  # static runs still warm the store
        engine.run(jobs)
        assert len(engine.observations) > first


class TestNicPolicyValidation:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="nic_policy"):
            ServingEngine(
                default_serving_cluster(), nic_policy="weighted"
            ).run(generate_workload(WorkloadSpec(num_jobs=1, seed=0)))

    def test_exec_context_rejects_unknown_policy(self):
        from repro.context import ExecContext

        with pytest.raises(ValueError, match="nic_policy"):
            ExecContext(nic_policy="weighted")

    def test_make_nic_discipline(self):
        from repro.gpusim.timeline import NIC_POLICIES, make_nic_discipline

        for policy in NIC_POLICIES:
            assert make_nic_discipline(policy).policy == policy
        with pytest.raises(ValueError):
            make_nic_discipline("weighted")


class TestTunerRerank:
    def test_rerank_gates_on_drift_and_known_keys(self):
        from repro.tensor.random import random_sparse_tensor

        cache = PreprocCache()
        tensor = random_sparse_tensor((20, 20, 20), 300, seed=5)
        config, hit, _ = cache.tuner_config(tensor, "spttm", 0, 8)
        assert not hit
        # An in-tolerance observation keeps the cached config untouched.
        kept, changed = cache.rerank_tuner_config(
            tensor, "spttm", 0, 8, observed_s=123.0, tolerance=1e12
        )
        assert kept == config and not changed
        # A wildly slow observation dethrones the cached winner.
        moved, changed = cache.rerank_tuner_config(
            tensor, "spttm", 0, 8, observed_s=1e30
        )
        assert changed and moved != config
        # A shape the tuner never swept is a no-op.
        other = random_sparse_tensor((9, 9, 9), 50, seed=6)
        _, changed = cache.rerank_tuner_config(
            other, "spttm", 0, 8, observed_s=1.0
        )
        assert not changed
