"""Property harness for the multi-GPU sharded execution driver.

The central claim: for every unified kernel, **sharded execution across a
simulated cluster computes the same result as one-shot single-GPU
execution** — including when a reduction segment straddles a shard
boundary, and when a shard individually exceeds its device's memory and
falls back to the PR 1 streamed path.  The harness drives all three
kernels over the streaming test corpus across 1/2/4 devices, comparing
sharded vs one-shot vs the reference oracles, and checks the cluster /
collective cost models and the scaling harness on top.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.algorithms.cp import UnifiedGPUEngine, cp_als
from repro.algorithms.tucker import tucker_hooi
from repro.autotune import tune_unified
from repro.bench.scaling import analog_interconnect, run_scaling, run_weak_scaling
from repro.formats.fcoo import FCOOTensor
from repro.gpusim.cluster import (
    ClusterSpec,
    InterconnectSpec,
    NVLINK1,
    PCIE3_P2P,
    resolve_cluster,
)
from repro.gpusim.device import TITAN_X, scaled_device
from repro.kernels.unified import partition_shards
from repro.kernels.unified.spmttkrp import unified_spmttkrp
from repro.kernels.unified.spttm import unified_spttm
from repro.kernels.unified.spttmc import unified_spttmc
from repro.tensor.random import random_factors, random_sparse_tensor
from test_streaming import CASE_PARAMS, CASES, run_kernel, run_reference

THREADLEN = 4
BLOCK_SIZE = 32
RANK = 3


class TestClusterModel:
    def test_homogeneous_construction(self):
        cluster = ClusterSpec.homogeneous(TITAN_X, 4)
        assert cluster.num_devices == 4
        assert cluster.min_device_memory_bytes == TITAN_X.global_mem_bytes
        assert cluster.total_memory_bytes == 4 * TITAN_X.global_mem_bytes
        cluster.validate()

    def test_empty_cluster_rejected(self):
        with pytest.raises(ValueError):
            ClusterSpec(devices=())
        with pytest.raises(ValueError):
            ClusterSpec.homogeneous(TITAN_X, 0)

    def test_interconnect_validation(self):
        with pytest.raises(ValueError):
            InterconnectSpec("bad", 0.0, 1e-6).validate()
        with pytest.raises(ValueError):
            InterconnectSpec("bad", 1e9, -1.0).validate()
        NVLINK1.validate()
        PCIE3_P2P.validate()

    def test_allreduce_zero_for_single_device(self):
        assert ClusterSpec.homogeneous(TITAN_X, 1).allreduce_time(1e9) == 0.0
        assert ClusterSpec.homogeneous(TITAN_X, 4).allreduce_time(0.0) == 0.0

    def test_allreduce_grows_with_payload_and_latency_with_devices(self):
        c2 = ClusterSpec.homogeneous(TITAN_X, 2)
        c8 = ClusterSpec.homogeneous(TITAN_X, 8)
        assert c2.allreduce_time(2e6) > c2.allreduce_time(1e6)
        # The latency term grows with the ring size even for tiny payloads.
        assert c8.allreduce_time(8.0) > c2.allreduce_time(8.0)
        # The bandwidth term approaches 2 * bytes / bw from below.
        big = 1e9
        bound = 2.0 * big / c8.interconnect.bandwidth_bytes_per_s
        assert c8.allreduce_time(big) < bound + 2 * 7 * c8.interconnect.latency_s + 1e-9

    def test_gather_root_keeps_its_payload(self):
        cluster = ClusterSpec.homogeneous(TITAN_X, 4)
        only_root = cluster.gather_time([1e9, 0.0, 0.0, 0.0])
        spread = cluster.gather_time([0.0, 1e9, 0.0, 0.0])
        assert only_root < spread  # the root's own bytes never cross the link
        with pytest.raises(ValueError):
            cluster.gather_time([1.0] * 5)
        with pytest.raises(ValueError):
            cluster.gather_time([-1.0])

    def test_neighbor_exchange_overlaps_pairs(self):
        cluster = ClusterSpec.homogeneous(TITAN_X, 4)
        assert cluster.neighbor_exchange_time([]) == 0.0
        one = cluster.neighbor_exchange_time([4096.0])
        three = cluster.neighbor_exchange_time([4096.0, 4096.0, 4096.0])
        assert one == pytest.approx(three)  # disjoint pairs exchange concurrently

    def test_broadcast_log_stages(self):
        c2 = ClusterSpec.homogeneous(TITAN_X, 2)
        c8 = ClusterSpec.homogeneous(TITAN_X, 8)
        assert c8.broadcast_time(1e6) == pytest.approx(3 * c2.broadcast_time(1e6))
        assert c2.broadcast_time(0.0) == 0.0

    def test_resolve_cluster_shorthand(self):
        device, multi = resolve_cluster(TITAN_X, None, None)
        assert multi is None and device is TITAN_X
        device, multi = resolve_cluster(TITAN_X, None, 1)
        assert multi is None
        device, multi = resolve_cluster(TITAN_X, None, 4)
        assert multi is not None and multi.num_devices == 4
        # A one-member cluster resolves to its sole device.
        small = scaled_device(TITAN_X, 0.5)
        device, multi = resolve_cluster(TITAN_X, ClusterSpec.homogeneous(small, 1), None)
        assert multi is None and device == small
        with pytest.raises(ValueError):
            resolve_cluster(TITAN_X, ClusterSpec.homogeneous(TITAN_X, 2), 3)
        with pytest.raises(ValueError):
            resolve_cluster(TITAN_X, None, 0)


class TestShardPartitioner:
    def test_at_most_num_devices_shards_and_alignment(self):
        fcoo = FCOOTensor.from_sparse(CASES["order3-power"](), "spmttkrp", 0)
        for n in (1, 2, 3, 4, 8, 64):
            shards = partition_shards(fcoo, n, threadlen=THREADLEN)
            assert len(shards) <= n
            assert sum(s.nnz for s in shards) == fcoo.nnz
            for shard in shards:
                assert shard.start % THREADLEN == 0

    def test_short_stream_leaves_devices_idle(self):
        fcoo = FCOOTensor.from_sparse(CASES["nnz-below-threadlen"](), "spmttkrp", 0)
        shards = partition_shards(fcoo, 4, threadlen=THREADLEN)
        assert len(shards) == 1  # 3 non-zeros < one thread partition

    def test_empty_stream(self):
        fcoo = FCOOTensor.from_sparse(CASES["empty"](), "spmttkrp", 0)
        assert partition_shards(fcoo, 4, threadlen=THREADLEN) == []

    def test_boundary_straddling_segments_marked(self):
        fcoo = FCOOTensor.from_sparse(CASES["boundary-straddle"](), "spmttkrp", 0)
        shards = partition_shards(fcoo, 4, threadlen=THREADLEN)
        # The crafted 30-nnz fiber spans several 8/12-nnz shards.
        assert any(s.carries_in for s in shards)


class TestShardedEqualsOneShot:
    """The property: sharded output == one-shot output == reference."""

    @pytest.mark.parametrize("kernel", [unified_spttm, unified_spmttkrp, unified_spttmc])
    @pytest.mark.parametrize("num_devices", [1, 2, 4])
    @pytest.mark.parametrize("build", CASE_PARAMS)
    def test_sharded_matches_one_shot_and_reference(self, kernel, num_devices, build):
        tensor = build()
        factors = [np.asarray(f) for f in random_factors(tensor.shape, RANK, seed=5)]
        mode = tensor.order - 1 if kernel is unified_spttm else 0

        one_shot = run_kernel(kernel, tensor, factors, mode, streamed=False)
        sharded = run_kernel(kernel, tensor, factors, mode, devices=num_devices)
        reference = run_reference(kernel, tensor, factors, mode)

        if kernel is unified_spttm:
            assert sharded.output.allclose(one_shot.output)
            assert sharded.output.allclose(reference, rtol=1e-5, atol=1e-6)
        else:
            np.testing.assert_allclose(
                sharded.output, one_shot.output, rtol=1e-10, atol=1e-12
            )
            np.testing.assert_allclose(sharded.output, reference, rtol=1e-5, atol=1e-6)

    @pytest.mark.parametrize("kernel", [unified_spttm, unified_spmttkrp, unified_spttmc])
    def test_shard_ledgers_sum_consistently(self, kernel):
        tensor = CASES["boundary-straddle"]()
        factors = [np.asarray(f) for f in random_factors(tensor.shape, RANK, seed=5)]
        mode = tensor.order - 1 if kernel is unified_spttm else 0

        one_shot = run_kernel(kernel, tensor, factors, mode, streamed=False)
        sharded = run_kernel(kernel, tensor, factors, mode, devices=4)
        execution = sharded.profile.sharded
        assert execution is not None
        assert 2 <= execution.num_shards <= 4
        assert sum(s.nnz for s in execution.shards) == tensor.nnz
        # The arithmetic is shard-count independent.
        total_flops = sum(s.counters.flops for s in execution.shards)
        assert total_flops == pytest.approx(one_shot.profile.counters.flops, rel=1e-9)
        # Makespan = slowest device + the modeled reduction; efficiency is a
        # true fraction.
        assert execution.total_time_s == pytest.approx(
            execution.max_shard_time_s + execution.reduction_time_s
        )
        assert 0.0 < execution.parallel_efficiency <= 1.0
        assert sharded.estimated_time_s == pytest.approx(execution.total_time_s)

    def test_single_device_count_is_exactly_single_gpu(self):
        tensor = CASES["order3-power"]()
        factors = [np.asarray(f) for f in random_factors(tensor.shape, RANK, seed=5)]
        plain = run_kernel(unified_spmttkrp, tensor, factors, 0)
        via_devices = run_kernel(unified_spmttkrp, tensor, factors, 0, devices=1)
        assert via_devices.profile.sharded is None
        assert via_devices.estimated_time_s == plain.estimated_time_s
        np.testing.assert_array_equal(via_devices.output, plain.output)

    def test_reduction_kinds(self):
        tensor = CASES["order3-power"]()
        factors = [np.asarray(f) for f in random_factors(tensor.shape, RANK, seed=5)]
        mttkrp = run_kernel(unified_spmttkrp, tensor, factors, 0, devices=4)
        assert mttkrp.profile.sharded.reduction_kind == "allreduce"
        assert mttkrp.profile.sharded.reduction_time_s > 0.0
        spttm = run_kernel(unified_spttm, tensor, factors, 2, devices=4)
        assert spttm.profile.sharded.reduction_kind == "boundary"


class TestStreamedFallbackShard:
    """A shard that individually exceeds its device streams on that device."""

    @pytest.fixture(scope="class")
    def tensor(self):
        return random_sparse_tensor(
            (30, 50, 40), 600, seed=11, distribution="power", concentration=1.2
        )

    def test_shard_falls_back_to_streaming_and_matches(self, tensor):
        factors = [np.asarray(f) for f in random_factors(tensor.shape, RANK, seed=7)]
        # Small enough that half the stream does not fit next to the dense
        # operands, so each of the two shards must stream on its device.
        tiny = scaled_device(TITAN_X, 3.2e-7, name_suffix="tiny")
        cluster = ClusterSpec.homogeneous(tiny, 2)
        one_shot = unified_spmttkrp(
            tensor, factors, 0, block_size=BLOCK_SIZE, threadlen=THREADLEN
        )
        sharded = unified_spmttkrp(
            tensor,
            factors,
            0,
            block_size=BLOCK_SIZE,
            threadlen=THREADLEN,
            cluster=cluster,
        )
        execution = sharded.profile.sharded
        assert execution is not None
        assert execution.has_streaming_shards
        streaming_shards = [s for s in execution.shards if s.streaming is not None]
        assert streaming_shards and streaming_shards[0].streaming.num_chunks >= 2
        # Streamed shards re-ship their chunks; nothing is pre-staged.
        assert streaming_shards[0].staged_bytes == 0.0
        np.testing.assert_allclose(
            sharded.output, one_shot.output, rtol=1e-10, atol=1e-12
        )

    def test_forced_streaming_applies_per_shard(self, tensor):
        factors = [np.asarray(f) for f in random_factors(tensor.shape, RANK, seed=7)]
        sharded = unified_spmttkrp(
            tensor,
            factors,
            0,
            threadlen=THREADLEN,
            devices=2,
            streamed=True,
            chunk_nnz=THREADLEN * 2,
        )
        execution = sharded.profile.sharded
        assert execution is not None
        assert all(s.streaming is not None for s in execution.shards)


class TestDecompositionsOnClusters:
    """Acceptance: whole decompositions run multi-GPU and stay exact."""

    @pytest.fixture(scope="class")
    def tensor(self):
        return random_sparse_tensor(
            (30, 50, 40), 600, seed=11, distribution="power", concentration=1.2
        )

    def test_cp_als_on_4_gpu_cluster_matches_single_gpu(self, tensor):
        cluster = ClusterSpec.homogeneous(TITAN_X, 4)
        single = cp_als(
            tensor,
            4,
            engine=UnifiedGPUEngine(),
            max_iterations=2,
            seed=0,
            compute_fit=False,
        )
        multi = cp_als(
            tensor,
            4,
            engine=UnifiedGPUEngine(cluster=cluster),
            max_iterations=2,
            seed=0,
            compute_fit=False,
        )
        for single_f, multi_f in zip(single.factors, multi.factors):
            np.testing.assert_allclose(single_f, multi_f, rtol=1e-9, atol=1e-12)
        np.testing.assert_allclose(single.weights, multi.weights, rtol=1e-9)
        # Per-device timelines cover every device; efficiency is a fraction.
        assert set(multi.device_time_by_device) == {0, 1, 2, 3}
        assert all(t > 0 for t in multi.device_time_by_device.values())
        assert 0.0 < multi.parallel_efficiency <= 1.0
        assert single.device_time_by_device is None
        assert single.parallel_efficiency is None

    def test_engine_devices_shorthand(self, tensor):
        engine = UnifiedGPUEngine(devices=2)
        result = cp_als(tensor, 3, engine=engine, max_iterations=1, seed=1, compute_fit=False)
        assert set(result.device_time_by_device) == {0, 1}
        assert 0.0 < result.parallel_efficiency <= 1.0

    def test_engine_reuse_does_not_leak_timelines(self, tensor):
        engine = UnifiedGPUEngine(devices=2)
        first = cp_als(tensor, 3, engine=engine, max_iterations=1, seed=1, compute_fit=False)
        second = cp_als(tensor, 3, engine=engine, max_iterations=1, seed=1, compute_fit=False)
        # Identical runs must report identical (not accumulated) timelines.
        for slot, busy in first.device_time_by_device.items():
            assert second.device_time_by_device[slot] == pytest.approx(busy)
        assert second.parallel_efficiency == pytest.approx(first.parallel_efficiency)

    def test_tucker_on_cluster_matches_single_gpu(self, tensor):
        single = tucker_hooi(tensor, (3, 3, 3), max_iterations=1, seed=0)
        multi = tucker_hooi(tensor, (3, 3, 3), max_iterations=1, seed=0, devices=4)
        np.testing.assert_allclose(multi.core, single.core, rtol=1e-8, atol=1e-10)
        for single_f, multi_f in zip(single.factors, multi.factors):
            np.testing.assert_allclose(
                np.abs(single_f), np.abs(multi_f), rtol=1e-8, atol=1e-10
            )
        assert 0.0 < multi.parallel_efficiency <= 1.0
        assert set(multi.device_time_by_device) == {0, 1, 2, 3}
        assert single.parallel_efficiency is None


class TestTunerDeviceAxis:
    @pytest.fixture(scope="class")
    def tensor(self):
        return random_sparse_tensor((40, 300, 30), 15_000, seed=0, distribution="power")

    def test_device_axis_shape_and_compat(self, tensor):
        result = tune_unified(
            tensor,
            "spmttkrp",
            0,
            rank=4,
            block_sizes=(64, 128),
            threadlens=(8, 16),
            device_counts=(1, 2, 4),
        )
        assert result.times_grid.shape == (2, 2, 1, 1, 3)
        # The 4-D and 2-D views stay exactly as before for existing callers.
        assert result.times_full.shape == (2, 2, 1, 1)
        assert result.times.shape == (2, 2)
        assert np.isfinite(result.times_grid).all()
        bs, tl, ns, cn, dc = result.best_full_config
        assert dc in (1, 2, 4)
        assert "device count" in result.render()

    def test_default_axis_is_singleton(self, tensor):
        result = tune_unified(
            tensor, "spttm", 2, rank=4, block_sizes=(128,), threadlens=(8,)
        )
        assert result.device_counts == (1,)
        assert result.times_grid.shape == (1, 1, 1, 1, 1)

    def test_empty_device_axis_rejected(self, tensor):
        with pytest.raises(ValueError):
            tune_unified(tensor, "spttm", 2, rank=4, device_counts=())


class TestScalingHarness:
    def test_analog_interconnect_projection(self):
        link = analog_interconnect(PCIE3_P2P, time_scale=1e-3, payload_scale=0.1)
        assert link.latency_s == pytest.approx(PCIE3_P2P.latency_s * 1e-3)
        assert link.bandwidth_bytes_per_s == pytest.approx(
            PCIE3_P2P.bandwidth_bytes_per_s * 100.0
        )
        # Default payload scale: payloads shrink like time, bandwidth unchanged.
        same_bw = analog_interconnect(PCIE3_P2P, time_scale=1e-3)
        assert same_bw.bandwidth_bytes_per_s == pytest.approx(
            PCIE3_P2P.bandwidth_bytes_per_s
        )
        with pytest.raises(ValueError):
            analog_interconnect(PCIE3_P2P, time_scale=0.0)

    def test_strong_scaling_structure(self):
        result = run_scaling(
            rank=4, datasets=["brainq"], device_counts=(1, 2, 4), seed=0
        )
        assert result.kind == "strong"
        for op in ("spttm", "spmttkrp", "spttmc"):
            curve = result.rows_for(op, "brainq")
            assert [r.num_devices for r in curve] == [1, 2, 4]
            assert curve[0].speedup == pytest.approx(1.0)
            for row in curve:
                assert 0.0 < row.efficiency <= 1.0
        assert "strong scaling" in result.render()

    def test_weak_scaling_structure(self):
        result = run_weak_scaling(rank=4, device_counts=(1, 2), seed=0)
        assert result.kind == "weak"
        for op in ("spttm", "spmttkrp", "spttmc"):
            curve = result.rows_for(op)
            assert [r.num_devices for r in curve] == [1, 2]
            for row in curve:
                assert 0.0 < row.speedup <= 1.05
        assert "weak scaling" in result.render()

    def test_unknown_operation_rejected(self):
        with pytest.raises(ValueError):
            run_scaling(rank=4, operations=("spmv",), datasets=["brainq"])


# ---------------------------------------------------------------------- #
# Hypothesis sweep (the nightly CI profile raises max_examples)
# ---------------------------------------------------------------------- #


class TestShardedHypothesis:
    """Arbitrary tensors x device counts: sharded == one-shot.

    The parametrized corpus above pins the known-adversarial shapes; this
    sweep searches the space around them under the active Hypothesis
    profile (per-PR default, or the nightly high-examples profile).
    """

    @given(
        dims=st.tuples(*(st.integers(min_value=2, max_value=14),) * 3),
        nnz=st.integers(min_value=1, max_value=220),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        num_devices=st.integers(min_value=2, max_value=4),
    )
    def test_sharded_equals_one_shot(self, dims, nnz, seed, num_devices):
        tensor = random_sparse_tensor(dims, nnz, seed=seed)
        factors = [np.asarray(f) for f in random_factors(dims, RANK, seed=seed)]
        one_shot = run_kernel(unified_spmttkrp, tensor, factors, 0, streamed=False)
        sharded = run_kernel(
            unified_spmttkrp, tensor, factors, 0, devices=num_devices
        )
        np.testing.assert_allclose(
            sharded.output, one_shot.output, rtol=1e-10, atol=1e-12
        )
