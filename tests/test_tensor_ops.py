"""Tests for the dense reference operations in repro.tensor.ops."""

import numpy as np
import pytest

from repro.tensor.dense import unfold_dense
from repro.tensor.ops import cp_reconstruct, mttkrp_dense, ttm_dense, ttmc_dense
from repro.tensor.products import khatri_rao


@pytest.fixture
def dense_tensor():
    rng = np.random.default_rng(0)
    return rng.random((4, 5, 6))


@pytest.fixture
def factors(dense_tensor):
    rng = np.random.default_rng(1)
    return [rng.random((s, 3)) for s in dense_tensor.shape]


class TestTTM:
    def test_tensordot_equivalence_every_mode(self, dense_tensor):
        rng = np.random.default_rng(2)
        for mode in range(3):
            u = rng.random((dense_tensor.shape[mode], 2))
            result = ttm_dense(dense_tensor, u, mode)
            expected = np.moveaxis(
                np.tensordot(dense_tensor, u, axes=([mode], [0])), -1, mode
            )
            np.testing.assert_allclose(result, expected)

    def test_paper_equation3(self, dense_tensor):
        """Y(i, j, :) = sum_k X(i, j, k) U(k, :) for mode 2."""
        rng = np.random.default_rng(3)
        u = rng.random((6, 4))
        y = ttm_dense(dense_tensor, u, 2)
        manual = np.zeros((4, 5, 4))
        for k in range(6):
            manual += dense_tensor[:, :, k][:, :, None] * u[k, None, None, :]
        np.testing.assert_allclose(y, manual)

    def test_transpose_flag(self, dense_tensor):
        rng = np.random.default_rng(4)
        u = rng.random((3, dense_tensor.shape[0]))
        np.testing.assert_allclose(
            ttm_dense(dense_tensor, u, 0, transpose=True),
            ttm_dense(dense_tensor, u.T, 0),
        )

    def test_shape_mismatch(self, dense_tensor):
        with pytest.raises(ValueError):
            ttm_dense(dense_tensor, np.ones((3, 2)), 0)

    def test_output_shape(self, dense_tensor):
        u = np.ones((5, 7))
        assert ttm_dense(dense_tensor, u, 1).shape == (4, 7, 6)


class TestMTTKRP:
    def test_matches_khatri_rao_formulation(self, dense_tensor, factors):
        for mode in range(3):
            other = [m for m in range(3) if m != mode]
            kr = None
            for m in reversed(other):
                kr = factors[m] if kr is None else khatri_rao(kr, factors[m])
            expected = unfold_dense(dense_tensor, mode) @ kr
            np.testing.assert_allclose(mttkrp_dense(dense_tensor, factors, mode), expected)

    def test_matches_einsum_third_order(self, dense_tensor, factors):
        expected = np.einsum("ijk,jr,kr->ir", dense_tensor, factors[1], factors[2])
        np.testing.assert_allclose(mttkrp_dense(dense_tensor, factors, 0), expected)

    def test_fourth_order(self):
        rng = np.random.default_rng(5)
        x = rng.random((3, 4, 2, 5))
        factors = [rng.random((s, 2)) for s in x.shape]
        expected = np.einsum("ijkl,jr,kr,lr->ir", x, factors[1], factors[2], factors[3])
        np.testing.assert_allclose(mttkrp_dense(x, factors, 0), expected)

    def test_wrong_factor_count(self, dense_tensor, factors):
        with pytest.raises(ValueError):
            mttkrp_dense(dense_tensor, factors[:2], 0)

    def test_rank_mismatch(self, dense_tensor, factors):
        bad = list(factors)
        bad[1] = np.ones((5, 7))
        with pytest.raises(ValueError):
            mttkrp_dense(dense_tensor, bad, 0)


class TestTTMc:
    def test_matches_einsum(self, dense_tensor, factors):
        expected = np.einsum("ijk,jr,ks->irs", dense_tensor, factors[1], factors[2])
        expected = expected.reshape(4, -1, order="F")
        np.testing.assert_allclose(ttmc_dense(dense_tensor, factors, 0), expected)

    def test_output_shape(self, dense_tensor, factors):
        assert ttmc_dense(dense_tensor, factors, 1).shape == (5, 9)

    def test_wrong_factor_count(self, dense_tensor):
        with pytest.raises(ValueError):
            ttmc_dense(dense_tensor, [np.ones((4, 2))], 0)


class TestCPReconstruct:
    def test_rank_one(self):
        a = np.array([[1.0], [2.0]])
        b = np.array([[3.0], [4.0]])
        c = np.array([[5.0], [6.0]])
        x = cp_reconstruct([a, b, c])
        assert x[1, 0, 1] == pytest.approx(2 * 3 * 6)

    def test_weights(self):
        a = np.ones((2, 2))
        b = np.ones((3, 2))
        x = cp_reconstruct([a, b], weights=np.array([2.0, 3.0]))
        np.testing.assert_allclose(x, np.full((2, 3), 5.0))

    def test_matches_einsum(self):
        rng = np.random.default_rng(6)
        factors = [rng.random((4, 3)), rng.random((5, 3)), rng.random((6, 3))]
        weights = rng.random(3)
        expected = np.einsum("r,ir,jr,kr->ijk", weights, *factors)
        np.testing.assert_allclose(cp_reconstruct(factors, weights), expected)

    def test_bad_weights(self):
        with pytest.raises(ValueError):
            cp_reconstruct([np.ones((2, 2))], weights=np.ones(3))
