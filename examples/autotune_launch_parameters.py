"""Reproduce the launch-parameter tuning of Figure 5 / Table V.

Sweeps BLOCK_SIZE x threadlen for the unified SpMTTKRP kernel on the brainq
and nell1 analogs, prints the tuning surfaces, and reports the best
configuration per dataset next to the values the paper's Table V lists for
the real hardware.

Run with:  python examples/autotune_launch_parameters.py
"""

from __future__ import annotations

from repro import load_dataset, tune_unified
from repro.bench.tuning import PAPER_TABLE5
from repro.util.formatting import format_table


def main() -> None:
    rows = []
    for name in ("brainq", "nell1"):
        tensor = load_dataset(name)
        result = tune_unified(tensor, "spmttkrp", 0, rank=16)
        print(result.render(title=f"SpMTTKRP mode-1 tuning surface on {name} (seconds)"))
        print()
        best = result.best
        paper = PAPER_TABLE5["spmttkrp"][name]
        rows.append([name, f"({best[0]}, {best[1]})", f"({paper[0]}, {paper[1]})"])

    print(
        format_table(
            ["dataset", "best on simulated Titan X", "paper Table V (measured hardware)"],
            rows,
            title="Best (BLOCK_SIZE, threadlen) for SpMTTKRP mode-1",
        )
    )
    print(
        "\nNote: the simulated optimum is flatter than on real hardware — the"
        " cost model captures occupancy and carry overheads but not every"
        " microarchitectural effect that shapes the paper's Figure 5."
    )


if __name__ == "__main__":
    main()
