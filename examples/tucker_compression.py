"""Tucker (HOOI) compression of a sparse tensor with the unified SpTTMc kernel.

The paper sketches (Section IV-D) that the same unified approach implements
the Tucker decomposition, whose bottleneck is the TTMc kernel.  This example
compresses the nell2 analog to a small core tensor, reports the fit achieved
per iteration and the simulated kernel times per mode, and compares the
storage of the Tucker model against the original tensor.

Run with:  python examples/tucker_compression.py
"""

from __future__ import annotations

import numpy as np

from repro import load_dataset, tucker_hooi
from repro.util.formatting import format_bytes, format_seconds, format_table


def main() -> None:
    tensor = load_dataset("nell2")
    ranks = (12, 12, 12)
    print(f"Tucker/HOOI on {tensor} with multilinear rank {ranks}\n")

    result = tucker_hooi(tensor, ranks, max_iterations=3, tolerance=0.0, seed=0)

    rows = [
        [it + 1, f"{fit:.4f}"] for it, fit in enumerate(result.fits)
    ]
    print(format_table(["iteration", "fit"], rows, title="HOOI convergence"))

    print()
    print(
        format_table(
            ["mode", "SpTTMc time (simulated)"],
            [[m + 1, format_seconds(t)] for m, t in result.ttmc_time_by_mode.items()],
            title="Per-mode SpTTMc cost",
        )
    )

    original_bytes = tensor.nnz * (tensor.order * 4 + 4)
    core_bytes = int(np.prod(ranks)) * 4
    factor_bytes = sum(s * r * 4 for s, r in zip(tensor.shape, ranks))
    print(
        f"\nstorage: original COO {format_bytes(original_bytes)}  ->  "
        f"Tucker model {format_bytes(core_bytes + factor_bytes)} "
        f"(core {format_bytes(core_bytes)} + factors {format_bytes(factor_bytes)}), "
        f"fit {result.final_fit:.4f}"
    )


if __name__ == "__main__":
    main()
