"""Quickstart: sparse tensors, F-COO, and the unified kernels.

Builds a small sparse tensor, encodes it in the paper's F-COO format, runs
the unified SpTTM and SpMTTKRP kernels on the simulated GPU, checks them
against the dense reference implementations, and prints the simulated
performance profile of each kernel.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    FCOOTensor,
    OperationKind,
    random_factors,
    unified_spmttkrp,
    unified_spttm,
)
from repro.tensor.ops import mttkrp_dense, ttm_dense
from repro.tensor.random import random_sparse_tensor
from repro.util.formatting import format_bytes, format_seconds


def main() -> None:
    # ------------------------------------------------------------------ #
    # 1. Build a sparse tensor (here: random; see repro.data for the
    #    paper's dataset analogs and the FROSTT .tns reader).
    # ------------------------------------------------------------------ #
    tensor = random_sparse_tensor((200, 300, 150), nnz=20_000, seed=0)
    print(f"input tensor : {tensor}")

    rank = 16
    factors = [np.asarray(f) for f in random_factors(tensor.shape, rank, seed=1)]

    # ------------------------------------------------------------------ #
    # 2. Encode the tensor in F-COO.  The encoding depends on the operation
    #    and target mode (Table I of the paper): SpTTM stores the product
    #    mode index, SpMTTKRP stores the two product-mode indices, and the
    #    remaining modes are compressed into the bit-flag array.
    # ------------------------------------------------------------------ #
    fcoo_spttm = FCOOTensor.from_sparse(tensor, OperationKind.SPTTM, mode=2)
    fcoo_mttkrp = FCOOTensor.from_sparse(tensor, OperationKind.SPMTTKRP, mode=0)
    print(
        f"F-COO (SpTTM mode-3)    : {fcoo_spttm.num_segments} fibers, "
        f"{format_bytes(fcoo_spttm.storage_bytes(threadlen=8))}"
    )
    print(
        f"F-COO (SpMTTKRP mode-1) : {fcoo_mttkrp.num_segments} slices, "
        f"{format_bytes(fcoo_mttkrp.storage_bytes(threadlen=8))}"
    )

    # ------------------------------------------------------------------ #
    # 3. Run the unified kernels (numerically exact, cost charged to the
    #    simulated Titan X).
    # ------------------------------------------------------------------ #
    spttm = unified_spttm(fcoo_spttm, factors[2], mode=2, block_size=128, threadlen=8)
    mttkrp = unified_spmttkrp(fcoo_mttkrp, factors, mode=0, block_size=128, threadlen=8)

    # ------------------------------------------------------------------ #
    # 4. Verify against the dense reference implementations.
    # ------------------------------------------------------------------ #
    dense = tensor.to_dense()
    assert np.allclose(
        spttm.output.to_dense(), ttm_dense(dense, factors[2], 2), rtol=1e-4, atol=1e-5
    )
    assert np.allclose(mttkrp.output, mttkrp_dense(dense, factors, 0), rtol=1e-4, atol=1e-5)
    print("numerical check vs dense reference: OK")

    # ------------------------------------------------------------------ #
    # 5. Inspect the simulated profiles.
    # ------------------------------------------------------------------ #
    for name, result in [("SpTTM", spttm), ("SpMTTKRP", mttkrp)]:
        counters = result.profile.counters
        print(
            f"{name:9s}: {format_seconds(result.estimated_time_s)} simulated, "
            f"{format_bytes(counters.gmem_total_bytes)} of device traffic, "
            f"{int(counters.atomic_ops)} atomics, "
            f"footprint {format_bytes(result.profile.device_memory_bytes)}"
        )


if __name__ == "__main__":
    main()
