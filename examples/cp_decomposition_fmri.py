"""CP decomposition of an fMRI-style tensor (the paper's brainq scenario).

The brainq dataset is a dense, oddly shaped noun x voxel x subject tensor
from fMRI measurements; CP decomposition extracts latent components that
relate words to brain-activity patterns.  This example decomposes the brainq
analog with both CP-ALS engines — the unified F-COO GPU engine (the paper's
contribution) and the SPLATT CSF CPU engine — and prints the Figure-10 style
per-mode timing breakdown together with the decomposition fit.

Run with:  python examples/cp_decomposition_fmri.py
"""

from __future__ import annotations

from repro import SplattCPUEngine, UnifiedGPUEngine, cp_als, load_dataset
from repro.util.formatting import format_seconds, format_table


def main() -> None:
    tensor = load_dataset("brainq")
    rank = 8  # the paper fixes rank 8: brainq's third mode has only 9 indices
    iterations = 5
    print(f"decomposing {tensor} at rank {rank} ({iterations} ALS iterations)\n")

    rows = []
    results = {}
    for engine in (UnifiedGPUEngine(), SplattCPUEngine()):
        result = cp_als(
            tensor,
            rank,
            engine=engine,
            max_iterations=iterations,
            tolerance=0.0,
            seed=0,
            compute_fit=True,
        )
        results[engine.name] = result
        rows.append(
            [
                engine.name,
                *(format_seconds(result.mttkrp_time_by_mode[m]) for m in range(tensor.order)),
                format_seconds(result.other_time_s),
                format_seconds(result.total_time_s),
                f"{result.final_fit:.4f}",
            ]
        )

    print(
        format_table(
            ["engine", "mode1-mttkrp", "mode2-mttkrp", "mode3-mttkrp", "other", "total", "fit"],
            rows,
            title="CP-ALS breakdown (Figure 10 reproduction)",
        )
    )

    unified = results["unified-gpu"]
    splatt = results["splatt-cpu"]
    speedup = splatt.total_time_s / unified.total_time_s
    balance = max(unified.mttkrp_time_by_mode.values()) / min(
        unified.mttkrp_time_by_mode.values()
    )
    print(
        f"\nunified GPU engine is {speedup:.1f}x faster than SPLATT; "
        f"its per-mode MTTKRP times agree within {balance:.2f}x "
        f"(the mode-insensitivity the paper claims)."
    )
    print(
        "fit history (unified engine):",
        ", ".join(f"{fit:.4f}" for fit in unified.fits),
    )


if __name__ == "__main__":
    main()
