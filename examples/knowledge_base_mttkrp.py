"""SpMTTKRP on a knowledge-base tensor: unified vs every baseline.

The NELL tensors (noun x verb x noun triplets from the Never-Ending Language
Learning project) are the paper's motivating large-scale workload.  This
example runs the mode-1 SpMTTKRP — the bottleneck of CP — on the nell2
analog with all four implementations, prints the Figure-6b style comparison,
and shows the Figure-9 style memory footprints including the out-of-memory
projection for the paper-scale tensors.

Run with:  python examples/knowledge_base_mttkrp.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    load_dataset,
    parti_gpu_spmttkrp,
    parti_omp_spmttkrp,
    random_factors,
    splatt_mttkrp,
    unified_spmttkrp,
)
from repro.bench.memory import paper_scale_spmttkrp_footprints, spmttkrp_footprints
from repro.data.registry import DATASETS
from repro.gpusim.device import TITAN_X
from repro.util.formatting import format_bytes, format_seconds, format_table


def main() -> None:
    dataset = "nell2"
    tensor = load_dataset(dataset)
    rank = 16
    factors = [np.asarray(f) for f in random_factors(tensor.shape, rank, seed=0)]
    print(f"SpMTTKRP on mode 1 of the {dataset} analog: {tensor}\n")

    # ------------------------------------------------------------------ #
    # Run all four implementations and verify they agree.
    # ------------------------------------------------------------------ #
    implementations = {
        "Unified (GPU, F-COO)": unified_spmttkrp(tensor, factors, 0),
        "ParTI-GPU (COO + atomics)": parti_gpu_spmttkrp(tensor, factors, 0),
        "SPLATT (CPU, CSF)": splatt_mttkrp(tensor, factors, 0),
        "ParTI-omp (CPU, COO)": parti_omp_spmttkrp(tensor, factors, 0),
    }
    reference = implementations["Unified (GPU, F-COO)"].output
    for name, result in implementations.items():
        assert np.allclose(result.output, reference, rtol=1e-3, atol=1e-4), name

    baseline = implementations["ParTI-omp (CPU, COO)"].estimated_time_s
    rows = [
        [
            name,
            format_seconds(result.estimated_time_s),
            f"{baseline / result.estimated_time_s:.1f}x",
        ]
        for name, result in implementations.items()
    ]
    print(
        format_table(
            ["implementation", "simulated time", "speedup vs ParTI-omp"],
            rows,
            title=f"Figure 6b reproduction on {dataset} (rank={rank})",
        )
    )

    # ------------------------------------------------------------------ #
    # Memory footprints (Figure 9) and the paper-scale OOM projection.
    # ------------------------------------------------------------------ #
    print()
    mem_rows = []
    for name in DATASETS:
        analog = load_dataset(name)
        unified_bytes, parti_bytes = spmttkrp_footprints(analog, rank)
        unified_paper, parti_paper = paper_scale_spmttkrp_footprints(DATASETS[name], rank)
        mem_rows.append(
            [
                name,
                format_bytes(unified_bytes),
                format_bytes(parti_bytes),
                format_bytes(parti_paper),
                "OOM" if parti_paper > TITAN_X.global_mem_bytes else "fits",
            ]
        )
    print(
        format_table(
            [
                "dataset",
                "unified (analog)",
                "ParTI-GPU (analog)",
                "ParTI-GPU at paper scale",
                "on a 12 GB Titan X",
            ],
            mem_rows,
            title="Figure 9 reproduction: SpMTTKRP device memory",
        )
    )


if __name__ == "__main__":
    main()
