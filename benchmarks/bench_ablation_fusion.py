"""Ablation: kernel fusion and the read-only data cache (Section IV-D).

The paper lists kernel fusion (via adjacent synchronisation) and read-only
data-cache factor accesses among its GPU-specific optimisations but does not
quantify them separately; DESIGN.md calls this ablation out explicitly.  The
benchmark compares the fused unified SpMTTKRP against the unfused variant
(partial products spilled to global memory between the product and scan
stages) on every dataset.
"""

import pytest

from bench_common import run_once
from repro.data.registry import DATASETS, load_dataset
from repro.kernels.unified import unified_spmttkrp
from repro.tensor.random import random_factors
from repro.util.formatting import format_table


def _run_ablation(rank=16):
    rows = []
    for name in DATASETS:
        tensor = load_dataset(name)
        factors = random_factors(tensor.shape, rank, seed=0)
        fused = unified_spmttkrp(tensor, factors, 0, fused=True)
        unfused = unified_spmttkrp(tensor, factors, 0, fused=False)
        rows.append(
            {
                "dataset": name,
                "fused_s": fused.estimated_time_s,
                "unfused_s": unfused.estimated_time_s,
                "fusion_speedup": unfused.estimated_time_s / fused.estimated_time_s,
            }
        )
    return rows


@pytest.mark.benchmark(group="ablation")
def test_ablation_kernel_fusion(benchmark):
    rows = run_once(benchmark, _run_ablation, rank=16)
    print()
    print(
        format_table(
            ["dataset", "fused (s)", "unfused (s)", "fusion speedup"],
            [
                [r["dataset"], r["fused_s"], r["unfused_s"], f"{r['fusion_speedup']:.2f}x"]
                for r in rows
            ],
            title="Ablation: kernel fusion for unified SpMTTKRP (rank=16)",
        )
    )
    for r in rows:
        assert r["fusion_speedup"] >= 1.0
