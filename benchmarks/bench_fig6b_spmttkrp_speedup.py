"""Figure 6b: SpMTTKRP (mode 1, rank 16) speedup over ParTI-omp.

Paper reference points: Unified achieves 8.1x (nell1) to 102.5x (brainq)
over ParTI-omp, 23.7x (nell2) / 30.6x (brainq) over ParTI-GPU, and 1.4x
(nell2) / 12.5x (brainq) over SPLATT; ParTI-GPU runs out of memory on nell1
and delicious.
"""

import pytest

from bench_common import run_once
from repro.bench import run_fig6b


@pytest.mark.benchmark(group="fig6b")
def test_fig6b_spmttkrp_speedup(benchmark):
    result = run_once(benchmark, run_fig6b, rank=16)
    print()
    print(result.render())
    rows = {r.dataset: r for r in result.rows}

    for row in result.rows:
        assert row.unified_speedup > 1.0
        assert row.speedup_over_omp(row.splatt_time_s) > 1.0

    # ParTI-GPU cannot hold the two largest tensors (Section V-A).
    assert rows["nell1"].parti_gpu_time_s is None
    assert rows["delicious"].parti_gpu_time_s is None
    # Where ParTI-GPU runs, unified beats it by an order of magnitude.
    for name in ("brainq", "nell2"):
        assert rows[name].unified_over_parti_gpu > 10.0
    # The densest tensor (brainq) shows the largest gain over the CPU baseline.
    assert rows["brainq"].unified_speedup == max(r.unified_speedup for r in result.rows)
