"""Figure 10: CP decomposition (rank 8) time breakdown, Unified vs SPLATT.

Paper claims: the unified GPU implementation is 14.9x (brainq) / 2.9x
(nell2) faster than SPLATT; its per-mode MTTKRP times are well balanced
while SPLATT's differ per mode; most of the time goes to the MTTKRPs.
"""

import pytest

from bench_common import run_once
from repro.bench import run_fig10


@pytest.mark.benchmark(group="fig10")
def test_fig10_cp_decomposition(benchmark):
    result = run_once(
        benchmark, run_fig10, rank=8, iterations=5, datasets=("brainq", "nell2")
    )
    print()
    print(result.render())
    for dataset in ("brainq", "nell2"):
        assert result.speedup(dataset) > 1.0
        unified = result.row(dataset, "unified-gpu")
        splatt = result.row(dataset, "splatt-cpu")
        # Unified's per-mode MTTKRP times are nearly identical; SPLATT's are not.
        assert unified.mode_balance < 1.2
        assert unified.mode_balance <= splatt.mode_balance
        # The MTTKRPs dominate the unified decomposition time (Figure 10).
        mttkrp_total = sum(unified.mttkrp_time_by_mode.values())
        assert mttkrp_total > unified.other_time_s
        # Both engines converge to the same factorisation quality.
        assert unified.final_fit == pytest.approx(splatt.final_fit, rel=1e-3)
