"""Figure 8: SpTTM execution time versus rank (brainq and nell2).

Paper claim: ParTI-GPU's time grows faster with the rank than the unified
method's (its thread-block shape depends on the rank), and unified stays
faster across the whole sweep (3.7x-4.3x on brainq, 2.1x-2.4x on nell2).
"""

import pytest

from bench_common import run_once
from repro.bench import run_fig8


@pytest.mark.benchmark(group="fig8")
def test_fig8_rank_behavior(benchmark):
    result = run_once(benchmark, run_fig8, datasets=("brainq", "nell2"), ranks=(8, 16, 32, 64))
    print()
    print(result.render())
    for dataset in ("brainq", "nell2"):
        unified = result.series_for(dataset, "Unified")
        parti = result.series_for(dataset, "ParTI-GPU")
        # Unified is faster at every rank.
        for u, p in zip(unified.times_s, parti.times_s):
            assert u < p
        # ParTI's time grows at least as fast as unified's with the rank.
        assert parti.growth_factor >= unified.growth_factor * 0.95
