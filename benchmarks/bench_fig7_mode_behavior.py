"""Figure 7: mode behaviour of SpTTM and SpMTTKRP on brainq (rank 16).

Paper claim: the unified method's running time is essentially the same on
every mode, while ParTI-GPU (and SPLATT for MTTKRP) vary strongly because
their parallelism and locality depend on the mode being operated on.
"""

import pytest

from bench_common import run_once
from repro.bench import run_fig7


@pytest.mark.benchmark(group="fig7")
def test_fig7a_spttm_mode_behavior(benchmark):
    result = run_once(benchmark, run_fig7, "spttm", dataset="brainq", rank=16)
    print()
    print(result.render())
    assert len(result.rows) == 3
    # ParTI's worst mode is the one with the fewest fibers (mode 2 of brainq).
    parti_times = [r.parti_gpu_time_s for r in result.rows]
    assert max(parti_times) == parti_times[1]


@pytest.mark.benchmark(group="fig7")
def test_fig7b_spmttkrp_mode_behavior(benchmark):
    result = run_once(benchmark, run_fig7, "spmttkrp", dataset="brainq", rank=16)
    print()
    print(result.render())
    # The unified kernel is the least mode-sensitive implementation.
    assert result.variation("unified") < result.variation("parti_gpu")
    assert result.variation("unified") < result.variation("splatt")
    assert result.variation("unified") < 1.5
