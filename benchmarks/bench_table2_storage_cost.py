"""Table II: storage cost of COO vs F-COO for SpTTM and SpMTTKRP.

Regenerates the per-non-zero byte costs for every dataset and checks the
paper's headline numbers: 16 B/nnz for COO, ~8.1 B/nnz for F-COO under
SpTTM and ~12.1 B/nnz under SpMTTKRP.
"""

import pytest

from bench_common import run_once
from repro.bench import run_table2


@pytest.mark.benchmark(group="table2")
def test_table2_storage_cost(benchmark):
    result = run_once(benchmark, run_table2, threadlen=8)
    print()
    print(result.render())
    for row in result.rows:
        assert row.coo_bytes_per_nnz_measured == pytest.approx(16.0)
        if "SpTTM" in row.operation:
            assert row.fcoo_bytes_per_nnz_measured == pytest.approx(8.14, abs=0.05)
        else:
            assert row.fcoo_bytes_per_nnz_measured == pytest.approx(12.14, abs=0.05)
        assert row.reduction_factor > 1.3
