"""Table V: best (BLOCK_SIZE, threadlen) per dataset for SpTTM and SpMTTKRP."""

import pytest

from bench_common import run_once
from repro.bench import run_table5
from repro.data.registry import DATASETS


@pytest.mark.benchmark(group="table5")
def test_table5_best_parameters(benchmark):
    result = run_once(benchmark, run_table5, rank=16)
    print()
    print(result.render())
    for op in ("spttm", "spmttkrp"):
        assert set(result.best[op]) == set(DATASETS)
        for block_size, threadlen in result.best[op].values():
            assert block_size >= 32
            assert threadlen >= 1
