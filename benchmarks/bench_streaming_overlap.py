"""Out-of-core streaming: transfer/compute overlap vs a no-overlap baseline.

The paper partitions over-capacity tensors and overlaps host-to-device
copies with compute via CUDA streams (Section IV-D) but publishes no
dedicated figure for it; this benchmark wraps the extension runner
:func:`repro.bench.streaming.run_streaming` and checks the pipeline
invariants: multi-stream execution beats the serial baseline and lands
between the ideal-overlap and no-overlap bounds.
"""

import pytest

from bench_common import run_once
from repro.bench.streaming import run_streaming


@pytest.mark.benchmark(group="streaming")
def test_streaming_overlap(benchmark):
    result = run_once(benchmark, run_streaming, rank=16)
    print()
    print(result.render())

    by_dataset = {}
    for row in result.rows:
        by_dataset.setdefault(row.dataset, {})[row.num_streams] = row

    for dataset, rows in by_dataset.items():
        serial = rows[1]
        overlapped = rows[2]
        # The pipelined schedule must land strictly between full overlap
        # (max of the totals) and no overlap (their sum).
        assert overlapped.ideal_s < overlapped.streamed_s < overlapped.serial_s, dataset
        # Overlap must beat the single-stream baseline's makespan.
        assert overlapped.streamed_s < serial.streamed_s, dataset
        assert serial.overlap_speedup == pytest.approx(1.0)
