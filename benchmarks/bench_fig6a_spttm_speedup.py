"""Figure 6a: SpTTM (last mode, rank 16) speedup over ParTI-omp.

Paper reference points: Unified achieves 5.3x (nell1) to 215.7x (brainq)
over ParTI-omp and 1.1x (nell1) to 3.7x (brainq) over ParTI-GPU.  The
reproduction checks the *shape*: Unified wins against both baselines on
every dataset.
"""

import pytest

from bench_common import run_once
from repro.bench import run_fig6a


@pytest.mark.benchmark(group="fig6a")
def test_fig6a_spttm_speedup(benchmark):
    result = run_once(benchmark, run_fig6a, rank=16)
    print()
    print(result.render())
    for row in result.rows:
        # Unified beats the CPU baseline and the GPU baseline everywhere.
        assert row.unified_speedup > 1.0
        assert row.unified_over_parti_gpu is not None
        assert row.unified_over_parti_gpu > 1.0
        # ParTI-GPU itself beats the CPU (both are GPU codes after all).
        assert row.speedup_over_omp(row.parti_gpu_time_s) > 1.0
