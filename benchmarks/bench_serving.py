"""Multi-tenant serving over the simulated cluster.

The paper measures one kernel at a time; this extension benchmark serves a
seeded 100-job multi-tenant workload on the default heterogeneous analog
node and checks the structural invariants of the serving report: every job
terminates exactly once, the schedule is deterministic, latency
percentiles are ordered, utilisation is a true fraction, the preprocessing
cache hits on repeat submissions, and every execution path (one-shot,
capability-weighted sharded, decompositions, admission rejects) appears.
"""

import numpy as np
import pytest

from bench_common import run_once
from repro.bench.serving import run_serving


@pytest.mark.benchmark(group="serving")
def test_serving_default_workload(benchmark):
    report = run_once(benchmark, run_serving, num_jobs=100, seed=0)
    print()
    print(report.render())

    # Every submitted job terminates exactly once.
    assert len(report.results) == 100
    assert len(report.completed) + len(report.rejected) == 100
    assert len(report.completed) > 0 and len(report.rejected) > 0

    # Latency metrics are ordered and positive.
    assert 0.0 < report.p50_latency_s <= report.p99_latency_s
    assert report.makespan_s > 0.0
    assert report.throughput_jobs_per_s > 0.0

    # Utilisation is a true fraction on every device and overall.
    for u in report.device_utilization.values():
        assert 0.0 <= u <= 1.0
    assert 0.0 < report.overall_utilization <= 1.0

    # The shared tensor pool makes repeat submissions hit the cache.
    assert report.cache_stats.encode_hits > 0
    assert report.cache_stats.encode_hit_rate > 0.5

    # The default workload exercises the one-shot, sharded and
    # decomposition paths (whales shard; CP/Tucker jobs run end to end).
    counts = report.execution_counts()
    assert counts.get("one-shot", 0) > 0
    assert counts.get("sharded", 0) > 0
    assert counts.get("decomposition", 0) > 0


@pytest.mark.benchmark(group="serving")
def test_serving_deterministic(benchmark):
    first = run_serving(num_jobs=40, seed=0)
    second = run_once(benchmark, run_serving, num_jobs=40, seed=0)
    np.testing.assert_array_equal(first.latencies_s, second.latencies_s)
    assert first.makespan_s == second.makespan_s
    assert first.device_utilization == second.device_utilization
