"""Shared configuration for the benchmark suite.

Each benchmark wraps one experiment runner from :mod:`repro.bench` (one per
table/figure of the paper) with ``pytest-benchmark``; see ``bench_common.py``
for the single-round execution helper.
"""

from __future__ import annotations

import os
import sys

# Allow running the benchmarks from a source checkout without installation and
# make ``bench_common`` importable regardless of the pytest import mode.
_HERE = os.path.dirname(os.path.abspath(__file__))
_SRC = os.path.join(os.path.dirname(_HERE), "src")
for path in (_SRC, _HERE):
    if path not in sys.path:  # pragma: no cover - environment dependent
        sys.path.insert(0, path)
