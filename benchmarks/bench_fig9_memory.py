"""Figure 9: GPU global-memory consumption of SpMTTKRP mode-1 (rank 16).

Paper claim: the one-shot unified method needs far less device memory than
ParTI-GPU (68.6 % less on nell1, 88.6 % less on brainq) because it stores no
intermediate semi-sparse tensor; at paper scale ParTI exceeds the Titan X's
12 GB on nell1 and delicious.
"""

import pytest

from bench_common import run_once
from repro.bench import run_fig9


@pytest.mark.benchmark(group="fig9")
def test_fig9_memory_consumption(benchmark):
    result = run_once(benchmark, run_fig9, rank=16)
    print()
    print(result.render())
    rows = {r.dataset: r for r in result.rows}
    for row in result.rows:
        assert row.unified_bytes < row.parti_bytes
        assert row.unified_paper_scale_bytes < row.parti_paper_scale_bytes
        assert row.reduction_percent > 25.0
    assert rows["nell1"].parti_oom_at_paper_scale
    assert rows["delicious"].parti_oom_at_paper_scale
    assert not rows["brainq"].parti_oom_at_paper_scale
    assert not rows["nell2"].parti_oom_at_paper_scale
