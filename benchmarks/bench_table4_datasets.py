"""Table IV: the evaluation datasets (paper statistics and synthetic analogs)."""

import pytest

from bench_common import run_once
from repro.bench import run_table4
from repro.data.registry import DATASETS


@pytest.mark.benchmark(group="table4")
def test_table4_datasets(benchmark):
    text = run_once(benchmark, run_table4, include_analog=True)
    print()
    print(text)
    for name in DATASETS:
        assert name in text
