"""Table III: the simulated platform configuration."""

import pytest

from bench_common import run_once
from repro.bench import platform_report


@pytest.mark.benchmark(group="table3")
def test_table3_platform(benchmark):
    text = run_once(benchmark, platform_report)
    print()
    print(text)
    assert "Titan X" in text
    assert "336 GB/s" in text
    assert "68 GB/s" in text
