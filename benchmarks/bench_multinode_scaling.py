"""Multi-node scaling of the hierarchically sharded unified kernels.

The multi-GPU benchmark stops at one node; this extension benchmark grows
the *node count* of a two-tier cluster (intra-node P2P vs inter-node NIC,
:mod:`repro.bench.multinode`) and checks the structural invariants: the
one-node baseline is exact (speedup 1), node-level efficiency stays a true
fraction and decays with the node count, and — the tentpole property — the
modeled hierarchical collective is never costlier than the topology-
oblivious flat ring when the NIC is the slower tier.
"""

import pytest

from bench_common import run_once
from repro.bench.multinode import run_multinode_scaling


@pytest.mark.benchmark(group="multinode")
def test_multinode_scaling(benchmark):
    result = run_once(benchmark, run_multinode_scaling, rank=16)
    print()
    print(result.render())

    for op in ("spttm", "spmttkrp", "spttmc"):
        curve = result.rows_for(op, "brainq")
        assert [r.num_nodes for r in curve] == [1, 2, 4], op
        baseline = curve[0]
        assert baseline.speedup == pytest.approx(1.0)
        assert baseline.efficiency == pytest.approx(1.0)
        for row in curve[1:]:
            # Node-level parallel efficiency is a true fraction.
            assert 0.0 < row.efficiency <= 1.0, (op, row.num_nodes)
            # The tentpole: the selected collective never loses to the
            # flat ring (the default NIC is the slower tier here).
            assert row.reduction_s <= row.flat_reduction_s + 1e-15, (
                op,
                row.num_nodes,
                row.reduction_s,
                row.flat_reduction_s,
            )
        efficiencies = [r.efficiency for r in curve]
        assert all(
            later <= earlier + 1e-9
            for earlier, later in zip(efficiencies, efficiencies[1:])
        ), (op, efficiencies)

    # The all-reduce kernels genuinely exercise the hierarchical schedule.
    assert any(
        row.reduction_algorithm == "hierarchical"
        for row in result.rows
        if row.operation in ("spmttkrp", "spttmc") and row.num_nodes > 1
    )
