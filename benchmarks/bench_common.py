"""Helpers shared by the benchmark entries."""

from __future__ import annotations


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under pytest-benchmark and return its result.

    The experiment runners are deterministic simulations, so repeated rounds
    would only re-measure Python overhead; a single round keeps the full
    benchmark suite fast while still recording a wall-clock figure per
    experiment.
    """
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
