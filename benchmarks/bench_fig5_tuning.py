"""Figure 5: tuning threadlen and BLOCK_SIZE for SpMTTKRP on mode-1.

Regenerates the two tuning surfaces (brainq and nell1) the paper plots and
reports the best configuration found by the simulated sweep.
"""

import pytest

from bench_common import run_once
from repro.bench import run_fig5


@pytest.mark.benchmark(group="fig5")
def test_fig5_tuning_surfaces(benchmark):
    result = run_once(benchmark, run_fig5, datasets=("brainq", "nell1"), rank=16)
    print()
    print(result.render())
    for name, surface in result.surfaces.items():
        assert surface.times.shape == (len(surface.block_sizes), len(surface.threadlens))
        assert surface.best_time > 0
        # The sweep must actually discriminate between configurations.
        assert surface.times.max() > surface.times.min()
