"""Multi-GPU scaling of the sharded unified kernels.

The paper runs on one Titan X; this extension benchmark shards the F-COO
non-zero stream across a simulated multi-GPU node
(:mod:`repro.kernels.unified.sharded`) and reports strong- and weak-scaling
curves for all three unified kernels, checking the structural invariants:
the single-GPU baseline is exact (speedup 1), strong-scaling efficiency
stays in (0, 1] and decays monotonically with the device count, and the
modeled reduction grows with the cluster size for the all-reduce kernels.
"""

import pytest

from bench_common import run_once
from repro.bench.scaling import run_scaling, run_weak_scaling


@pytest.mark.benchmark(group="scaling")
def test_strong_scaling(benchmark):
    result = run_once(benchmark, run_scaling, rank=16)
    print()
    print(result.render())

    for op in ("spttm", "spmttkrp", "spttmc"):
        for workload in ("brainq", "nell2"):
            curve = result.rows_for(op, workload)
            assert [r.num_devices for r in curve] == [1, 2, 4, 8], (op, workload)
            baseline = curve[0]
            assert baseline.speedup == pytest.approx(1.0)
            assert baseline.efficiency == pytest.approx(1.0)
            for row in curve[1:]:
                # Parallel efficiency is a true fraction of linear scaling.
                assert 0.0 < row.efficiency <= 1.0, (op, workload, row.num_devices)
            # Efficiency can only decay as devices are added.
            efficiencies = [r.efficiency for r in curve]
            assert all(
                later <= earlier + 1e-9
                for earlier, later in zip(efficiencies, efficiencies[1:])
            ), (op, workload, efficiencies)


@pytest.mark.benchmark(group="scaling")
def test_weak_scaling(benchmark):
    result = run_once(benchmark, run_weak_scaling, rank=16)
    print()
    print(result.render())

    for op in ("spmttkrp", "spttmc"):
        curve = result.rows_for(op)
        # The all-reduce payload grows with the cluster, so the modeled
        # reduction must grow too.
        reductions = [r.reduction_s for r in curve]
        assert all(b >= a for a, b in zip(reductions, reductions[1:])), (op, reductions)
    for row in result.rows:
        # T(1)/T(N) stays near or below 1 (tiny overshoot is duplicate-merge
        # noise in the synthetic workload's realised nnz).
        assert 0.0 < row.speedup <= 1.05, (row.operation, row.num_devices, row.speedup)
