"""Command-line interface: regenerate the paper's tables and figures.

Usage::

    python -m repro list                 # show available experiments
    python -m repro table2               # one experiment
    python -m repro fig6b fig9           # several experiments
    python -m repro all                  # everything
    python -m repro fig10 --rank 8 --iterations 3
    python -m repro serve --jobs 100     # multi-tenant serving report
    python -m repro scaling --nodes 4    # multi-node hierarchical scaling
    python -m repro serve --nodes 2      # multi-node serving (NIC tier)
    python -m repro serve --nodes 2 --chaos-seed 1   # seeded node-loss
                                              # chaos (jobs re-queued onto
                                              # the surviving nodes)
    python -m repro serve --trace out.json    # export the serving run's
                                              # timeline as a Chrome trace
    python -m repro scaling --trace out.json  # ditto for a sharded-kernel
                                              # sequence (chrome://tracing)
    python -m repro serve --metrics out.prom  # Prometheus-style metrics
                                              # exposition of the run
    python -m repro serve --events out.jsonl  # structured scheduler event
                                              # log, one JSON line per event
    python -m repro serve --adaptive --nic-policy fair  # closed-loop
                                              # scheduling: observed times
                                              # feed the placer/tuner, NIC
                                              # collectives queue fairly

Each experiment prints the same rows/series the paper reports, rendered as a
plain-text table (see :mod:`repro.bench`).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Callable, Dict, List, Optional, Sequence

from repro.backends import BACKEND_ENV_VAR, available_backends
from repro.bench import (
    collect_scaling_trace,
    platform_report,
    run_fig5,
    run_fig6a,
    run_fig6b,
    run_fig7,
    run_fig8,
    run_fig9,
    run_fig10,
    run_multinode_scaling,
    run_scaling,
    run_serving,
    run_streaming,
    run_table2,
    run_table4,
    run_table5,
    run_weak_scaling,
)
from repro.context import TimedResult
from repro.serve.autoscale import AutoscalerSpec

__all__ = ["main", "EXPERIMENTS"]


def _render_fig7(args: argparse.Namespace) -> str:
    parts = [
        run_fig7("spttm", rank=args.rank).render(),
        run_fig7("spmttkrp", rank=args.rank).render(),
    ]
    return "\n\n".join(parts)


def _write_trace(source, path: str) -> str:
    """Write a run's timeline to ``path`` as a Chrome trace.

    ``source`` is a bare :class:`~repro.gpusim.timeline.Timeline` or any
    :class:`~repro.context.TimedResult` (serving report, decomposition
    result, schedule outcome) — the protocol carries the timeline plus the
    recovery/preemption ledgers, so there is no per-type unpacking here.
    """
    extras = []
    timeline = source
    if isinstance(source, TimedResult):
        timeline = source.timeline
        if source.recoveries:
            extras.append(f"{len(source.recoveries)} recoveries")
        if source.preemptions:
            extras.append(f"{len(source.preemptions)} preemptions")
    timeline.write_chrome_trace(path)
    if extras:
        return (
            f"timeline trace written to {path} "
            f"({len(timeline.events)} events, {', '.join(extras)}; "
            f"open in chrome://tracing)"
        )
    return (
        f"timeline trace written to {path} "
        f"({len(timeline.events)} events; open in chrome://tracing)"
    )


def _render_scaling(args: argparse.Namespace) -> str:
    if args.nodes and args.nodes > 1:
        # Power-of-two curve up to the requested count, which is always
        # included exactly (mirroring how `serve --nodes N` honors N).
        node_counts = tuple(
            sorted({m for m in (1, 2, 4, 8) if m < args.nodes} | {args.nodes})
        )
        parts = [run_multinode_scaling(rank=args.rank, node_counts=node_counts).render()]
    else:
        parts = [
            run_scaling(rank=args.rank).render(),
            run_weak_scaling(rank=args.rank).render(),
        ]
    if args.trace:
        # Trace the same topology the tables above ran: a two-tier
        # multi-node cluster under --nodes, the single-node default
        # otherwise (2 GPUs per node mirrors `scaling --nodes`).
        num_nodes = args.nodes if args.nodes and args.nodes > 1 else 1
        timeline = collect_scaling_trace(
            rank=min(args.rank, 8),
            num_nodes=num_nodes,
            num_devices=2 if num_nodes > 1 else 4,
        )
        parts.append(_write_trace(timeline, args.trace))
    return "\n\n".join(parts)


def _render_serve(args: argparse.Namespace) -> str:
    autoscale = AutoscalerSpec(min_devices=args.autoscale) if args.autoscale else None
    report = run_serving(
        num_jobs=args.jobs,
        seed=args.seed,
        policy=args.policy,
        nodes=args.nodes or None,
        chaos_seed=args.chaos_seed,
        fail_node=args.fail_node,
        slo_fraction=args.slo,
        deadline_slack=args.slo_slack,
        autoscale=autoscale,
        adaptive=args.adaptive,
        nic_policy=args.nic_policy,
    )
    parts = [report.render()]
    if args.trace:
        parts.append(_write_trace(report, args.trace))
    if args.metrics:
        report.metrics.write_prometheus(args.metrics)
        parts.append(
            f"metrics exposition written to {args.metrics} "
            f"({len(report.metrics.metrics)} metric series)"
        )
    if args.events:
        report.events.write(args.events)
        parts.append(
            f"event log written to {args.events} "
            f"({len(report.events)} events, one JSON object per line)"
        )
    return "\n\n".join(parts)


#: experiment name -> callable(parsed args) -> rendered text
EXPERIMENTS: Dict[str, Callable[[argparse.Namespace], str]] = {
    "table2": lambda args: run_table2().render(),
    "table3": lambda args: platform_report(),
    "table4": lambda args: run_table4(),
    "fig5": lambda args: run_fig5(rank=args.rank).render(),
    "table5": lambda args: run_table5(rank=args.rank).render(),
    "fig6a": lambda args: run_fig6a(rank=args.rank).render(),
    "fig6b": lambda args: run_fig6b(rank=args.rank).render(),
    "fig7": _render_fig7,
    "fig8": lambda args: run_fig8().render(),
    "fig9": lambda args: run_fig9(rank=args.rank).render(),
    "fig10": lambda args: run_fig10(iterations=args.iterations).render(),
    "streaming": lambda args: run_streaming(rank=args.rank).render(),
    "scaling": _render_scaling,
    "serve": _render_serve,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=(
            "Reproduce the evaluation of 'A Unified Optimization Approach for "
            "Sparse Tensor Operations on GPUs' (Liu et al., CLUSTER 2017)."
        ),
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="EXPERIMENT",
        help="experiments to run: %s, 'all', or 'list'" % ", ".join(EXPERIMENTS),
    )
    parser.add_argument(
        "--rank",
        type=int,
        default=16,
        help="decomposition rank / factor columns for the kernel experiments (default 16)",
    )
    parser.add_argument(
        "--iterations",
        type=int,
        default=5,
        help="CP-ALS iterations for fig10 (default 5)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=100,
        help="workload size for the serve experiment (default 100)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="workload seed for the serve experiment (default 0)",
    )
    parser.add_argument(
        "--policy",
        choices=["priority", "fifo", "deadline"],
        default="priority",
        help=(
            "queueing policy for the serve experiment (default priority); "
            "'deadline' serves earliest-deadline-first and preempts batch "
            "jobs at streamed chunk boundaries to meet latency SLOs"
        ),
    )
    parser.add_argument(
        "--slo",
        type=float,
        default=0.0,
        metavar="FRACTION",
        help=(
            "for the serve experiment: fraction of the workload submitted "
            "as latency tenants carrying a deadline SLO (default 0, which "
            "keeps the workload identical to earlier releases)"
        ),
    )
    parser.add_argument(
        "--slo-slack",
        type=float,
        default=None,
        metavar="MULTIPLE",
        help=(
            "with --slo: deadline scale as a multiple of the mean "
            "interarrival time (default: the workload generator's 12; "
            "tighter slack overloads every policy, looser slack is where "
            "the deadline policy's preemption pays off)"
        ),
    )
    parser.add_argument(
        "--autoscale",
        type=int,
        default=0,
        metavar="MIN_DEVICES",
        help=(
            "for the serve experiment: enable the device-pool autoscaler, "
            "starting from this many active devices (default 0 = off)"
        ),
    )
    parser.add_argument(
        "--adaptive",
        action="store_true",
        help=(
            "for the serve experiment: hedged closed-loop scheduling — "
            "observed execution times feed the placer and tuner, and the "
            "adaptive schedule is kept only when its trial makespan "
            "strictly beats the static one (adaptive never loses; outputs "
            "are bit-identical either way)"
        ),
    )
    parser.add_argument(
        "--nic-policy",
        choices=["fifo", "fair", "priority"],
        default="fifo",
        help=(
            "for the serve experiment: NIC queue discipline for cross-node "
            "collectives — 'fifo' (arrival order, the default), 'fair' "
            "(round-robin by consumed NIC seconds per job), or 'priority' "
            "(deadline jobs first, then by queue priority)"
        ),
    )
    parser.add_argument(
        "--nodes",
        type=int,
        default=0,
        help=(
            "multi-node mode for the scaling and serve experiments: run on this "
            "many simulated nodes over a two-tier interconnect (NIC vs intra-node "
            "P2P); 0 keeps the single-node experiments (default 0)"
        ),
    )
    parser.add_argument(
        "--chaos-seed",
        type=int,
        default=None,
        metavar="SEED",
        help=(
            "for the serve experiment with --nodes >= 2: inject one seeded "
            "node-loss event mid-run (the scheduler re-queues the victims "
            "onto surviving nodes); the chaos RNG stream is independent of "
            "the workload's, so the job list is unchanged"
        ),
    )
    parser.add_argument(
        "--fail-node",
        type=int,
        default=None,
        metavar="NODE",
        help=(
            "pin the --chaos-seed failure to this node index instead of "
            "drawing the victim from the chaos stream"
        ),
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help=(
            "for the serve and scaling experiments: export the run's unified "
            "timeline (per-device copy/compute engines, link/NIC collectives) "
            "as a Chrome chrome://tracing JSON file at PATH"
        ),
    )
    parser.add_argument(
        "--metrics",
        metavar="PATH",
        default=None,
        help=(
            "for the serve experiment: write the run's metrics registry as a "
            "Prometheus-style text exposition to PATH (deterministic for a "
            "fixed seed; see README 'Observability')"
        ),
    )
    parser.add_argument(
        "--events",
        metavar="PATH",
        default=None,
        help=(
            "for the serve experiment: write the scheduler's structured "
            "event log to PATH as JSON Lines (one admission/dispatch/"
            "preemption/failure/scale record per line)"
        ),
    )
    parser.add_argument(
        "--backend",
        choices=sorted(available_backends()),
        default=None,
        help=(
            "numeric-execution backend for every kernel in the run "
            "(default: the REPRO_BACKEND environment variable, else "
            "'reference'); backends are bit-identical, so this changes "
            "wall-clock speed only — results and simulated seconds are "
            "unchanged"
        ),
    )
    return parser


def _validate_output_path(
    parser: argparse.ArgumentParser, flag: str, path: str
) -> None:
    """Fail fast on an unwritable output path, before any experiment runs.

    Shared by ``--trace`` / ``--metrics`` / ``--events``: probing with an
    append-mode open (created if missing, content untouched) surfaces
    permission and missing-directory errors up front instead of after
    minutes of simulation.
    """
    try:
        with open(path, "a", encoding="utf-8"):
            pass
    except OSError as exc:
        parser.error(f"cannot write {flag} file {path!r}: {exc}")


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.backend:
        # Every entry point resolves ExecContext(backend=None) against
        # REPRO_BACKEND at call time, so setting the variable here threads
        # the selection through all experiments without touching them.
        os.environ[BACKEND_ENV_VAR] = args.backend

    requested: List[str] = [name.lower() for name in args.experiments]
    if not requested or requested == ["list"]:
        print("available experiments:")
        for name in EXPERIMENTS:
            print(f"  {name}")
        print("  all")
        return 0

    if requested == ["all"]:
        requested = list(EXPERIMENTS)

    unknown = [name for name in requested if name not in EXPERIMENTS]
    if unknown:
        parser.error(
            f"unknown experiment(s): {', '.join(unknown)}; "
            f"choose from {', '.join(EXPERIMENTS)} or 'all'"
        )

    if args.fail_node is not None and args.chaos_seed is None:
        parser.error("--fail-node requires --chaos-seed (it pins the drawn failure)")
    if args.chaos_seed is not None:
        # Chaos is a multi-node serving feature: a failure needs survivor
        # nodes to re-admit the victims on.
        if "serve" not in requested:
            parser.error("--chaos-seed only applies to the 'serve' experiment")
        if args.nodes < 2:
            parser.error(
                "--chaos-seed requires --nodes >= 2 (a node loss needs "
                "surviving nodes to re-queue onto)"
            )

    if not 0.0 <= args.slo <= 1.0:
        parser.error(f"--slo must be a fraction in [0, 1], got {args.slo}")
    if args.slo and "serve" not in requested:
        parser.error("--slo only applies to the 'serve' experiment")
    if args.slo_slack is not None:
        if args.slo_slack <= 0.0:
            parser.error(f"--slo-slack must be positive, got {args.slo_slack}")
        if not args.slo:
            parser.error("--slo-slack requires --slo (it scales the SLO deadlines)")
    if args.autoscale < 0:
        parser.error(f"--autoscale must be non-negative, got {args.autoscale}")
    if args.autoscale and "serve" not in requested:
        parser.error("--autoscale only applies to the 'serve' experiment")
    if args.adaptive and "serve" not in requested:
        parser.error("--adaptive only applies to the 'serve' experiment")
    if args.nic_policy != "fifo" and "serve" not in requested:
        parser.error("--nic-policy only applies to the 'serve' experiment")

    if args.trace:
        # --trace belongs to exactly one timeline-producing experiment per
        # run: several would silently overwrite each other's file, and an
        # experiment without a timeline would leave an empty "trace".
        consumers = [name for name in requested if name in ("serve", "scaling")]
        if len(consumers) != 1:
            parser.error(
                "--trace requires exactly one of the 'serve' or 'scaling' "
                f"experiments in the run; got {requested}"
            )
        _validate_output_path(parser, "--trace", args.trace)
    for flag, path in (("--metrics", args.metrics), ("--events", args.events)):
        if not path:
            continue
        # Telemetry files come from the serving run; one serve per run
        # keeps the file's provenance unambiguous (mirroring --trace).
        if requested.count("serve") != 1:
            parser.error(f"{flag} requires exactly one 'serve' experiment in the run")
        _validate_output_path(parser, flag, path)

    for i, name in enumerate(requested):
        if i:
            print()
        print(EXPERIMENTS[name](args))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
