"""Synthetic analogs of the paper's FROSTT datasets (Table IV).

The four evaluation tensors cannot be redistributed and are far beyond
laptop scale (11M–144M non-zeros), so each generator here produces a
scaled-down tensor that preserves the property the paper's analysis hangs
on:

=============  =====================================================================
dataset        preserved characteristics
=============  =====================================================================
``brainq``     "oddly shaped" (one tiny mode of size 9, one small, one large),
               *dense* (density ~10^-1), uniform occupancy — factor matrices fit
               the GPU caches, mode-2 has very few fibers.
``nell2``      moderately sparse (density ~10^-5), roughly balanced mode sizes,
               mild skew.
``delicious``  hyper-sparse (density < 10^-8), one extremely long mode, heavy
               power-law skew (user–item–tag data) — factor rows are scattered far
               beyond any cache.
``nell1``      hyper-sparse, three large modes, power-law skew — the hardest case
               for GPU caching and the one where ParTI-GPU's intermediate data
               exceeds device memory for SpMTTKRP.
=============  =====================================================================

The default sizes keep every benchmark run in seconds on a laptop; pass a
larger ``nnz``/``shape`` to approach paper scale if resources allow.
"""

from __future__ import annotations

from typing import Sequence

from repro.tensor.random import random_sparse_tensor
from repro.tensor.sparse import SparseTensor
from repro.util.rng import SeedLike

__all__ = [
    "make_brainq_like",
    "make_nell2_like",
    "make_nell1_like",
    "make_delicious_like",
]


def make_brainq_like(
    *,
    shape: Sequence[int] = (25, 2500, 9),
    nnz: int = 220_000,
    seed: SeedLike = 2017,
) -> SparseTensor:
    """Analog of ``brainq`` (fMRI noun × voxel × subject, paper: 60×70K×9, 11M nnz).

    Dense (density ~10^-1) and oddly shaped: the third mode has only 9
    indices, so mode-2 SpTTM exposes very little fiber-level parallelism —
    the case where ParTI-GPU launches only a few hundred threads (Figure 7).
    Coordinates are drawn uniformly; duplicates merge, so the realised nnz is
    somewhat below ``nnz`` at this density, exactly as with real dense-ish
    measurement data.
    """
    return random_sparse_tensor(
        shape,
        nnz,
        seed=seed,
        distribution="uniform",
        ensure_no_empty_first_mode=True,
    )


def make_nell2_like(
    *,
    shape: Sequence[int] = (1200, 900, 2900),
    nnz: int = 78_000,
    seed: SeedLike = 2018,
) -> SparseTensor:
    """Analog of ``nell2`` (noun × verb × noun, paper: 12K×9K×29K, 77M nnz).

    The paper's shape divided by ten with the non-zero count chosen to keep
    the density in the 10^-5 class.  Mildly skewed occupancy (natural
    language co-occurrence data follows a power law).
    """
    return random_sparse_tensor(
        shape,
        nnz,
        seed=seed,
        distribution="power",
        concentration=0.7,
        ensure_no_empty_first_mode=True,
    )


def make_delicious_like(
    *,
    shape: Sequence[int] = (5_000, 173_000, 25_000),
    nnz: int = 140_000,
    seed: SeedLike = 2019,
) -> SparseTensor:
    """Analog of ``delicious`` (user × item × tag, paper: 0.5M×17.3M×2.5M, 140M nnz).

    Hyper-sparse with one very long mode and heavy power-law skew; the
    factor-row working set of the long modes is far larger than the GPU's
    read-only cache, which is what limits the unified method's advantage on
    this dataset class (Section V-A).
    """
    return random_sparse_tensor(
        shape,
        nnz,
        seed=seed,
        distribution="power",
        concentration=1.1,
        ensure_no_empty_first_mode=True,
    )


def make_nell1_like(
    *,
    shape: Sequence[int] = (29_000, 21_000, 255_000),
    nnz: int = 144_000,
    seed: SeedLike = 2020,
) -> SparseTensor:
    """Analog of ``nell1`` (noun × verb × noun, paper: 2.9M×2.1M×25.5M, 144M nnz).

    The hardest dataset in the paper: hyper-sparse (density ~10^-13 at paper
    scale), three large modes, power-law skew.  Almost every fiber holds a
    single non-zero and almost every factor-row access misses the caches, so
    every implementation is DRAM-bound and the unified method's edge over
    ParTI-GPU shrinks to ~1.1x (Figure 6a).
    """
    return random_sparse_tensor(
        shape,
        nnz,
        seed=seed,
        distribution="power",
        concentration=1.05,
        ensure_no_empty_first_mode=True,
    )
