"""Datasets: FROSTT I/O, synthetic analogs and the evaluation registry.

The paper evaluates on four FROSTT tensors (Table IV): brainq, nell2,
delicious and nell1.  Those files are between 11M and 144M non-zeros and are
not redistributable here, so :mod:`repro.data.synthetic` generates
scaled-down analogs that preserve each tensor's order, relative mode shape
and density class, and :mod:`repro.data.registry` exposes them under the
paper's names together with the original (paper-scale) statistics so the
benchmark harness can reason about both scales.  Real FROSTT ``.tns`` files
can be loaded with :func:`repro.data.frostt.read_tns` and substituted
directly.
"""

from repro.data.frostt import read_tns, write_tns
from repro.data.synthetic import (
    make_brainq_like,
    make_nell2_like,
    make_nell1_like,
    make_delicious_like,
)
from repro.data.registry import DatasetSpec, DATASETS, load_dataset, dataset_table

__all__ = [
    "read_tns",
    "write_tns",
    "make_brainq_like",
    "make_nell2_like",
    "make_nell1_like",
    "make_delicious_like",
    "DatasetSpec",
    "DATASETS",
    "load_dataset",
    "dataset_table",
]
