"""Dataset registry: the paper's evaluation tensors and their analogs.

The registry maps the paper's dataset names to (i) the original tensor's
statistics as reported in Table IV and (ii) a generator for the synthetic
analog used by this reproduction.  The benchmark harness uses the original
statistics to *project* device-memory footprints back to paper scale (for
the out-of-memory behaviour of Figure 6b and the footprints of Figure 9)
while running the kernels on the analog.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, Dict, Tuple

from repro.data.synthetic import (
    make_brainq_like,
    make_delicious_like,
    make_nell1_like,
    make_nell2_like,
)
from repro.tensor.sparse import SparseTensor
from repro.util.formatting import format_table

__all__ = ["DatasetSpec", "DATASETS", "load_dataset", "dataset_table"]


@dataclass(frozen=True)
class DatasetSpec:
    """One evaluation dataset: paper-scale statistics plus the analog generator.

    Attributes
    ----------
    name:
        The paper's dataset name (``brainq``, ``nell2``, ``delicious``,
        ``nell1``).
    paper_shape / paper_nnz / paper_density:
        The original FROSTT tensor's statistics (Table IV).
    description:
        One-line provenance note.
    generator:
        Zero-argument callable building the synthetic analog.
    """

    name: str
    paper_shape: Tuple[int, ...]
    paper_nnz: int
    paper_density: float
    description: str
    generator: Callable[[], SparseTensor]

    @property
    def order(self) -> int:
        """Tensor order."""
        return len(self.paper_shape)

    @property
    def nnz_scale(self) -> float:
        """Ratio of the analog's non-zero count to the paper's (lazy: builds the analog)."""
        return load_dataset(self.name).nnz / self.paper_nnz


#: The four tensors of Table IV in the order the paper's figures use.
DATASETS: Dict[str, DatasetSpec] = {
    "nell1": DatasetSpec(
        name="nell1",
        paper_shape=(2_900_000, 2_100_000, 25_500_000),
        paper_nnz=144_000_000,
        paper_density=9.3e-13,
        description="NELL knowledge-base noun-verb-noun triplets (large)",
        generator=make_nell1_like,
    ),
    "delicious": DatasetSpec(
        name="delicious",
        paper_shape=(500_000, 17_300_000, 2_500_000),
        paper_nnz=140_000_000,
        paper_density=6.1e-12,
        description="delicious.com user-item-tag bookmarks",
        generator=make_delicious_like,
    ),
    "nell2": DatasetSpec(
        name="nell2",
        paper_shape=(12_000, 9_000, 29_000),
        paper_nnz=77_000_000,
        paper_density=2.5e-05,
        description="NELL knowledge-base noun-verb-noun triplets (dense subset)",
        generator=make_nell2_like,
    ),
    "brainq": DatasetSpec(
        name="brainq",
        paper_shape=(60, 70_000, 9),
        paper_nnz=11_000_000,
        paper_density=2.9e-01,
        description="fMRI noun-voxel-subject measurements",
        generator=make_brainq_like,
    ),
}


@lru_cache(maxsize=None)
def load_dataset(name: str) -> SparseTensor:
    """Build (and memoise) the synthetic analog of a registered dataset."""
    key = name.lower()
    if key not in DATASETS:
        valid = ", ".join(sorted(DATASETS))
        raise KeyError(f"unknown dataset {name!r}; available: {valid}")
    return DATASETS[key].generator()


def dataset_table(*, include_analog: bool = True) -> str:
    """Render the Table IV reproduction (paper statistics, plus the analogs)."""
    headers = ["dataset", "order", "paper mode sizes", "paper nnz", "paper density"]
    if include_analog:
        headers += ["analog mode sizes", "analog nnz", "analog density"]
    rows = []
    for spec in DATASETS.values():
        row = [
            spec.name,
            spec.order,
            "x".join(str(s) for s in spec.paper_shape),
            spec.paper_nnz,
            f"{spec.paper_density:.1e}",
        ]
        if include_analog:
            analog = load_dataset(spec.name)
            row += [
                "x".join(str(s) for s in analog.shape),
                analog.nnz,
                f"{analog.density:.1e}",
            ]
        rows.append(row)
    return format_table(headers, rows, title="Table IV: sparse tensor datasets")
