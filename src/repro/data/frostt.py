"""Reader/writer for the FROSTT ``.tns`` coordinate text format.

FROSTT (http://frostt.io) distributes sparse tensors as whitespace-separated
text: each line holds the 1-based coordinates of one non-zero followed by its
value; lines starting with ``#`` are comments.  The paper's datasets
(Table IV) come from FROSTT; users with access to the originals can load
them here and pass the resulting :class:`~repro.tensor.SparseTensor`
anywhere the synthetic analogs are used.
"""

from __future__ import annotations

import io
import os
from typing import Optional, Sequence, Union

import numpy as np

from repro.tensor.sparse import SparseTensor
from repro.util.validation import check_shape

__all__ = ["read_tns", "write_tns"]

PathLike = Union[str, os.PathLike]


def read_tns(
    path_or_file: Union[PathLike, io.TextIOBase],
    *,
    shape: Optional[Sequence[int]] = None,
) -> SparseTensor:
    """Read a FROSTT ``.tns`` file into a :class:`SparseTensor`.

    Parameters
    ----------
    path_or_file:
        File path or an open text file object.
    shape:
        Optional explicit tensor shape.  When omitted the shape is inferred
        as the per-mode maximum coordinate (the FROSTT convention).

    Notes
    -----
    Coordinates in ``.tns`` files are 1-based; they are converted to the
    0-based convention used throughout this library.
    """
    if hasattr(path_or_file, "read"):
        text = path_or_file.read()
    else:
        with open(path_or_file, "r", encoding="utf-8") as handle:
            text = handle.read()

    rows = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        parts = stripped.split()
        if len(parts) < 2:
            raise ValueError(f"line {lineno}: expected at least one index and a value")
        rows.append(parts)

    if not rows:
        if shape is None:
            raise ValueError("cannot infer the shape of an empty .tns file; pass shape=")
        return SparseTensor.empty(shape)

    order = len(rows[0]) - 1
    for lineno, parts in enumerate(rows, start=1):
        if len(parts) != order + 1:
            raise ValueError(
                f"inconsistent column count: expected {order + 1} fields, "
                f"got {len(parts)} on data line {lineno}"
            )
    data = np.array(rows, dtype=np.float64)
    indices = data[:, :order].astype(np.int64) - 1
    values = data[:, order]
    if (indices < 0).any():
        raise ValueError(".tns coordinates must be 1-based and positive")
    if shape is None:
        shape = tuple(int(m) + 1 for m in indices.max(axis=0))
    else:
        shape = check_shape(shape)
        if len(shape) != order:
            raise ValueError(
                f"shape has order {len(shape)} but the file has {order} index columns"
            )
    return SparseTensor(indices, values, shape, sum_duplicates=True, sort=True)


def write_tns(
    tensor: SparseTensor,
    path_or_file: Union[PathLike, io.TextIOBase],
    *,
    value_format: str = "%.17g",
    header: Optional[str] = None,
) -> None:
    """Write a :class:`SparseTensor` as a FROSTT ``.tns`` file (1-based indices)."""
    own_handle = False
    if hasattr(path_or_file, "write"):
        handle = path_or_file
    else:
        handle = open(path_or_file, "w", encoding="utf-8")
        own_handle = True
    try:
        if header:
            for line in header.splitlines():
                handle.write(f"# {line}\n")
        indices = np.asarray(tensor.indices) + 1
        values = np.asarray(tensor.values)
        for row, value in zip(indices, values):
            coords = " ".join(str(int(c)) for c in row)
            handle.write(f"{coords} {value_format % value}\n")
    finally:
        if own_handle:
            handle.close()
