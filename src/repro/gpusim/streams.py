"""Multi-stream transfer/compute overlap model — compatibility shim.

.. deprecated::
    The pipeline model now lives in :mod:`repro.gpusim.timeline`, the
    unified simulated-time resource engine: the copy and compute engines
    are ordinary :class:`~repro.gpusim.timeline.Resource` s of a
    :class:`~repro.gpusim.timeline.Timeline`, and the ``num_streams``
    buffer bound is a dependency gate on the booking of the chunk
    ``num_streams`` positions earlier.  This module re-exports the public
    surface unchanged so downstream imports (bench runners, example
    scripts, the serving scheduler's documentation references) keep
    working; new code should import from :mod:`repro.gpusim.timeline`.

The modeled semantics are exactly the originals: transfers on different
streams serialise on the DMA engine, kernels serialise on the compute
engine, a chunk's transfer may only start once the buffer of the chunk
``num_streams`` positions earlier has been freed, and the resolved times
are bit-identical to the pre-refactor event-driven recurrence (the
property harness in ``tests/test_timeline.py`` proves it).
"""

from __future__ import annotations

import warnings

from repro.gpusim.timeline import (
    ChunkTiming,
    StreamSchedule,
    pipeline_time,
    schedule_chunks,
)

__all__ = ["ChunkTiming", "StreamSchedule", "schedule_chunks", "pipeline_time"]

# Module-level so the warning fires exactly once per import of this path
# (Python caches the module; re-imports are free and silent).
warnings.warn(
    "repro.gpusim.streams is deprecated; import ChunkTiming, StreamSchedule, "
    "schedule_chunks and pipeline_time from repro.gpusim.timeline instead",
    DeprecationWarning,
    stacklevel=2,
)
