"""Multi-stream transfer/compute overlap model for out-of-core execution.

The paper targets tensors larger than device memory by partitioning the
non-zero stream, shipping each partition over PCIe on its own CUDA stream,
and overlapping the host-to-device copy of partition ``i + 1`` with the
kernel execution of partition ``i`` (Section IV-D, "employing CUDA streams
to optimize the data communication and computation overlap").  This module
models that pipeline.

Two serial resources exist:

* the **copy engine(s)** — transfers on different streams still serialise on
  the DMA engines (one on consumer Maxwell parts), and
* the **compute engine** — the chunks' kernels execute back-to-back.

``num_streams`` bounds how many chunks are *in flight*: a chunk's transfer
may only start once the buffer of the chunk ``num_streams`` positions
earlier has been freed by its kernel completing.  With one stream the
pipeline degenerates to fully serial execution (transfer, compute, transfer,
compute, ...); with two or more streams each pipelined chunk is charged
``max(transfer, compute)`` instead of their sum, which is exactly the
overlap benefit the paper claims.

The schedule is computed by event-driven recurrence, not a closed form, so
uneven chunk sizes (the tail chunk is almost always short) are handled
exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.util.validation import check_positive_int

__all__ = ["ChunkTiming", "StreamSchedule", "schedule_chunks", "pipeline_time"]


@dataclass(frozen=True)
class ChunkTiming:
    """Transfer and compute cost of one pipelined chunk (seconds)."""

    transfer_s: float
    compute_s: float

    def __post_init__(self) -> None:
        if self.transfer_s < 0 or self.compute_s < 0:
            raise ValueError(
                f"chunk times must be non-negative, got "
                f"transfer={self.transfer_s}, compute={self.compute_s}"
            )

    @property
    def serial_s(self) -> float:
        """Cost when transfer and compute cannot overlap."""
        return self.transfer_s + self.compute_s


@dataclass(frozen=True)
class StreamSchedule:
    """Resolved pipeline schedule for a sequence of chunks.

    Attributes
    ----------
    num_streams:
        Buffers/streams in flight (1 disables overlap).
    timings:
        The per-chunk :class:`ChunkTiming` inputs, in execution order.
    transfer_ends / compute_ends:
        Absolute completion times of each chunk's copy and kernel.
    """

    num_streams: int
    timings: Tuple[ChunkTiming, ...]
    transfer_ends: Tuple[float, ...]
    compute_ends: Tuple[float, ...]

    # ------------------------------------------------------------------ #
    @property
    def total_time_s(self) -> float:
        """Makespan of the pipeline (last kernel completion)."""
        return self.compute_ends[-1] if self.compute_ends else 0.0

    @property
    def transfer_time_s(self) -> float:
        """Total PCIe busy time (sum of chunk transfers)."""
        return sum(t.transfer_s for t in self.timings)

    @property
    def compute_time_s(self) -> float:
        """Total kernel busy time (sum of chunk computes)."""
        return sum(t.compute_s for t in self.timings)

    @property
    def serial_time_s(self) -> float:
        """Time with no overlap at all: ``sum(transfer + compute)``."""
        return self.transfer_time_s + self.compute_time_s

    @property
    def ideal_time_s(self) -> float:
        """Perfect-overlap lower bound: ``max(sum transfer, sum compute)``.

        Unattainable in full — the first transfer and the last kernel can
        never be hidden — so a real schedule lands strictly between this and
        :attr:`serial_time_s` whenever there are at least two chunks with
        non-trivial costs on both sides.
        """
        return max(self.transfer_time_s, self.compute_time_s)

    @property
    def overlap_saved_s(self) -> float:
        """Wall-clock seconds the pipeline saved over serial execution."""
        return self.serial_time_s - self.total_time_s

    @property
    def overlap_efficiency(self) -> float:
        """Fraction of the ideal overlap saving actually achieved (0..1).

        Clamped below at 0: a serial schedule's saving is exactly zero, but
        the two sides are accumulated in different orders and may differ by
        a few ulps.
        """
        attainable = self.serial_time_s - self.ideal_time_s
        if attainable <= 0.0:
            return 1.0
        return max(0.0, self.overlap_saved_s / attainable)


def schedule_chunks(
    timings: Sequence[ChunkTiming],
    num_streams: int,
) -> StreamSchedule:
    """Resolve the pipelined schedule of ``timings`` with ``num_streams`` buffers.

    Recurrence per chunk ``i`` (times are absolute):

    * the transfer starts when the copy engine is free **and** the buffer of
      chunk ``i - num_streams`` has been released by its kernel;
    * the kernel starts when the transfer has landed **and** the compute
      engine is free.

    Returns a :class:`StreamSchedule`; an empty ``timings`` yields a schedule
    with ``total_time_s == 0``.
    """
    num_streams = check_positive_int(num_streams, "num_streams")
    transfer_ends: List[float] = []
    compute_ends: List[float] = []
    for i, timing in enumerate(timings):
        if not isinstance(timing, ChunkTiming):
            raise TypeError(f"timings[{i}] must be a ChunkTiming, got {type(timing).__name__}")
        copy_free = transfer_ends[i - 1] if i >= 1 else 0.0
        buffer_free = compute_ends[i - num_streams] if i >= num_streams else 0.0
        transfer_end = max(copy_free, buffer_free) + timing.transfer_s
        compute_free = compute_ends[i - 1] if i >= 1 else 0.0
        compute_end = max(transfer_end, compute_free) + timing.compute_s
        transfer_ends.append(transfer_end)
        compute_ends.append(compute_end)
    return StreamSchedule(
        num_streams=num_streams,
        timings=tuple(timings),
        transfer_ends=tuple(transfer_ends),
        compute_ends=tuple(compute_ends),
    )


def pipeline_time(
    transfer_times: Sequence[float],
    compute_times: Sequence[float],
    num_streams: int,
) -> float:
    """Makespan of a chunk pipeline given parallel per-chunk time lists.

    Convenience wrapper over :func:`schedule_chunks` for callers that keep
    transfers and computes in separate arrays.
    """
    if len(transfer_times) != len(compute_times):
        raise ValueError(
            f"transfer_times and compute_times must have equal length, "
            f"got {len(transfer_times)} and {len(compute_times)}"
        )
    timings = [ChunkTiming(float(t), float(c)) for t, c in zip(transfer_times, compute_times)]
    return schedule_chunks(timings, num_streams).total_time_s
