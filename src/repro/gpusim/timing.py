"""Conversion of a kernel's work ledger into an estimated execution time.

The timing model is a roofline-style bound with three serialised components:

``time = (max(compute, memory) + atomics) * imbalance + launch overhead + PCIe``

* **compute** — FLOPs divided by the device's peak throughput scaled by the
  achieved utilisation (occupancy × active-thread fill).
* **memory** — effective global traffic divided by the achievable bandwidth,
  also derated by utilisation (a device that is 2 % occupied cannot saturate
  DRAM either — this is what makes ParTI's 540-fiber launch slow in the
  Figure 7 reproduction).
* **atomics** — serialised atomic operations divided by the conflict-free
  atomic throughput; serialisation with the rest of the kernel is the
  conservative choice and reflects that heavily-contended atomics stall the
  issuing warps.
* **imbalance** — a statically-partitioned kernel finishes when its busiest
  thread does.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.gpusim.counters import KernelCounters, KernelProfile
from repro.gpusim.device import DeviceSpec
from repro.gpusim.launch import LaunchConfig
from repro.util.formatting import format_bytes

__all__ = ["estimate_kernel_time", "OutOfDeviceMemory", "check_device_fit"]


class OutOfDeviceMemory(RuntimeError):
    """Raised when a kernel's operands do not fit in device global memory.

    The paper reports exactly this failure for ParTI-GPU's SpMTTKRP on the
    nell1 and delicious tensors (Section V-A); the benchmark harness catches
    the exception and reports "OOM" for that configuration, as the paper
    does.
    """

    def __init__(self, required_bytes: float, available_bytes: float, what: str = "") -> None:
        self.required_bytes = float(required_bytes)
        self.available_bytes = float(available_bytes)
        msg = (
            f"{what or 'kernel operands'} require {format_bytes(required_bytes)} "
            f"but the device has {format_bytes(available_bytes)}"
        )
        super().__init__(msg)


def check_device_fit(required_bytes: float, device: DeviceSpec, *, what: str = "") -> None:
    """Raise :class:`OutOfDeviceMemory` when ``required_bytes`` exceeds capacity."""
    if required_bytes < 0:
        raise ValueError(f"required_bytes must be non-negative, got {required_bytes}")
    if required_bytes > device.global_mem_bytes:
        raise OutOfDeviceMemory(required_bytes, device.global_mem_bytes, what=what)


def estimate_kernel_time(
    counters: KernelCounters,
    launch: LaunchConfig,
    device: DeviceSpec,
    *,
    include_transfers: bool = True,
) -> Tuple[float, Dict[str, float]]:
    """Estimate the execution time of a kernel ledger on a device.

    Returns the total time in seconds plus a named breakdown
    (``compute`` / ``memory`` / ``atomic`` / ``launch`` / ``transfer``).
    """
    util = launch.utilization(device, counters.active_threads)
    if util <= 0.0:
        util = 1e-6

    compute_time = counters.flops / (device.peak_flops * util)
    # Memory bandwidth needs roughly half the device's resident-thread
    # capacity in flight to be saturated (memory-level parallelism); below
    # that the achieved bandwidth falls off proportionally.  This is what
    # makes a launch with only a few hundred active threads (ParTI's
    # fiber-parallel SpTTM on brainq's mode-2) slow even though its traffic
    # is small.
    bandwidth_util = min(1.0, util / 0.5)
    bandwidth_util = max(bandwidth_util, 0.05)
    memory_time = counters.gmem_total_bytes / (
        device.achievable_bandwidth_bytes_per_s * bandwidth_util
    )
    # Shared-memory traffic is an order of magnitude faster than DRAM; charge
    # it at 8x the global bandwidth so it only matters when it is huge.
    memory_time += counters.smem_bytes / (device.achievable_bandwidth_bytes_per_s * 8.0)
    atomic_time = counters.atomic_serialized_ops / device.atomic_ops_per_second
    launch_time = counters.kernel_launches * device.kernel_launch_overhead_s

    core_time = (max(compute_time, memory_time) + atomic_time) * counters.imbalance_factor
    total = core_time + launch_time

    transfer_time = 0.0
    if include_transfers:
        transfer_time = (
            counters.host_to_device_bytes + counters.device_to_host_bytes
        ) / device.pcie_bandwidth_bytes_per_s
        total += transfer_time

    breakdown = {
        "compute": compute_time * counters.imbalance_factor,
        "memory": memory_time * counters.imbalance_factor,
        "atomic": atomic_time * counters.imbalance_factor,
        "launch": launch_time,
        "transfer": transfer_time,
        "utilization": util,
    }
    return total, breakdown


def profile_from_counters(
    name: str,
    counters: KernelCounters,
    launch: LaunchConfig,
    device: DeviceSpec,
    *,
    device_memory_bytes: float = 0.0,
    include_transfers: bool = True,
) -> KernelProfile:
    """Convenience wrapper building a :class:`KernelProfile` in one call."""
    check_device_fit(device_memory_bytes, device, what=name)
    total, breakdown = estimate_kernel_time(
        counters, launch, device, include_transfers=include_transfers
    )
    return KernelProfile(
        name=name,
        counters=counters,
        estimated_time_s=total,
        device_memory_bytes=device_memory_bytes,
        breakdown=breakdown,
    )
