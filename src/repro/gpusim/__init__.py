"""A deterministic GPU execution/cost model (the "simulated Titan X").

The paper evaluates CUDA kernels on an NVIDIA GeForce GTX Titan X.  This
reproduction has no GPU, so every kernel in :mod:`repro.kernels` runs its
mathematics as vectorised NumPy and *charges* its work to the cost model in
this subpackage, which converts operation counts into an estimated execution
time for a configurable device.

The model is intentionally first-order — the paper's results are driven by
memory traffic, cache behaviour, atomic contention, load balance and
occupancy, not by instruction-level effects — but each of those first-order
effects is modelled explicitly:

* :mod:`~repro.gpusim.device` — device specifications (default: the Titan X
  of Table III) and occupancy limits.
* :mod:`~repro.gpusim.cluster` — multi-GPU cluster specifications (devices
  joined by an interconnect) and the collective cost models used by the
  sharded execution path.
* :mod:`~repro.gpusim.launch` — launch configurations (grid/block/threadlen)
  and occupancy/utilisation computation.
* :mod:`~repro.gpusim.counters` — the ledger of work a kernel performs
  (FLOPs, coalesced global traffic, atomics, imbalance, launches).
* :mod:`~repro.gpusim.memory` — global-memory coalescing and the read-only
  data-cache model used for factor-matrix accesses.
* :mod:`~repro.gpusim.atomics` — atomic-update contention model.
* :mod:`~repro.gpusim.scan` — the segmented-scan primitive (numeric result
  plus cost contribution).
* :mod:`~repro.gpusim.timeline` — the unified simulated-time resource
  engine: serial resources (copy/compute engines, intra-node links,
  per-node NICs) with busy-until bookkeeping, dependency-ordered task
  booking, per-resource utilisation and a Chrome-trace-exportable event
  trace.  The stream pipeline, the cluster collectives and the serving
  scheduler all book time on it.
* :mod:`~repro.gpusim.streams` — compatibility shim re-exporting the
  multi-stream transfer/compute overlap pipeline, which now lives in
  :mod:`~repro.gpusim.timeline`.
* :mod:`~repro.gpusim.timing` — conversion of a counter ledger into
  estimated kernel time on a device.
"""

from repro.gpusim.device import DeviceSpec, TITAN_X, scaled_device
from repro.gpusim.cluster import (
    ClusterLike,
    ClusterSpec,
    ETHERNET_10G,
    INFINIBAND_EDR,
    InterconnectSpec,
    MultiNodeClusterSpec,
    NVLINK1,
    NodeSpec,
    PCIE3_P2P,
    resolve_cluster,
)
from repro.gpusim.launch import LaunchConfig
from repro.gpusim.counters import KernelCounters, KernelProfile
from repro.gpusim.memory import (
    AccessPattern,
    coalesced_traffic_bytes,
    readonly_cache_traffic,
)
from repro.gpusim.atomics import atomic_contention_factor, atomic_cost_ops
from repro.gpusim.scan import segment_reduce, segmented_scan_counters
from repro.gpusim.timeline import (
    Booking,
    ChunkTiming,
    GangBooking,
    Resource,
    SimClock,
    StreamSchedule,
    Timeline,
    device_compute_key,
    device_copy_key,
    pipeline_time,
    schedule_chunks,
)
from repro.gpusim.timing import estimate_kernel_time, OutOfDeviceMemory, check_device_fit

__all__ = [
    "DeviceSpec",
    "TITAN_X",
    "scaled_device",
    "ClusterLike",
    "ClusterSpec",
    "ETHERNET_10G",
    "INFINIBAND_EDR",
    "InterconnectSpec",
    "MultiNodeClusterSpec",
    "NVLINK1",
    "NodeSpec",
    "PCIE3_P2P",
    "resolve_cluster",
    "LaunchConfig",
    "KernelCounters",
    "KernelProfile",
    "AccessPattern",
    "coalesced_traffic_bytes",
    "readonly_cache_traffic",
    "atomic_contention_factor",
    "atomic_cost_ops",
    "segment_reduce",
    "segmented_scan_counters",
    "ChunkTiming",
    "StreamSchedule",
    "pipeline_time",
    "schedule_chunks",
    "Booking",
    "GangBooking",
    "Resource",
    "SimClock",
    "Timeline",
    "device_compute_key",
    "device_copy_key",
    "estimate_kernel_time",
    "OutOfDeviceMemory",
    "check_device_fit",
]
