"""Device specifications for the simulated GPU.

The default device reproduces the NVIDIA GeForce GTX Titan X (Maxwell) used
by the paper (Table III): 3072 CUDA cores at ~1 GHz, 12 GB of GDDR5 at
336 GB/s, 3 MB of L2 and 24 SMs with a 48 KB read-only data cache each.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

__all__ = ["DeviceSpec", "TITAN_X", "scaled_device"]


@dataclass(frozen=True)
class DeviceSpec:
    """Static description of a GPU used by the cost model.

    Attributes
    ----------
    name:
        Human-readable device name.
    num_sms:
        Number of streaming multiprocessors.
    cores_per_sm:
        CUDA cores per SM (single-precision lanes).
    clock_ghz:
        Core clock in GHz.
    warp_size:
        Threads per warp.
    max_threads_per_block:
        Hardware limit on the 1-D block size.
    max_threads_per_sm:
        Resident-thread limit per SM (determines occupancy).
    max_blocks_per_sm:
        Resident-block limit per SM.
    shared_mem_per_block_bytes:
        Shared memory available to one block.
    global_mem_bytes:
        Device memory capacity (what Figure 9 / the OOM checks compare
        against).
    mem_bandwidth_gbps:
        Peak global-memory bandwidth in GB/s.
    achievable_bandwidth_fraction:
        Fraction of peak bandwidth that well-coalesced streaming kernels
        actually reach (DRAM efficiency); sparse kernels rarely exceed
        ~75 % of peak even when perfectly coalesced.
    l2_bytes:
        Last-level cache size.
    readonly_cache_bytes_per_sm:
        Read-only data cache (texture path) per SM — what the unified
        kernels use for factor-matrix rows.
    memory_transaction_bytes:
        Granularity of a global-memory transaction (128-byte cache lines).
    global_latency_cycles:
        Latency of an L2/DRAM access; used for the uncoalesced penalty.
    atomic_ops_per_cycle:
        Global atomics retired per cycle when there is no address conflict.
    atomic_max_conflict_penalty:
        Upper bound on the serialisation factor charged to same-address
        atomics.  Lanes of a warp that collide serialise fully (32x), but the
        L2 atomic units coalesce part of the cross-warp traffic, so the
        effective penalty observed on Maxwell-class parts is roughly half a
        warp; the default of 16 is calibrated to that behaviour.
    kernel_launch_overhead_s:
        Fixed host-side cost per kernel launch.
    pcie_bandwidth_bytes_per_s:
        Effective host-to-device interconnect bandwidth (PCIe 3.0 x16 for the
        Titan X: ~12 GB/s achievable of the 16 GB/s nominal).  Drives both the
        one-time transfer charges and the per-chunk copy times of the
        streamed out-of-core execution path; transfers issued on different
        CUDA streams still serialise on this one link.
    """

    name: str
    num_sms: int
    cores_per_sm: int
    clock_ghz: float
    warp_size: int = 32
    max_threads_per_block: int = 1024
    max_threads_per_sm: int = 2048
    max_blocks_per_sm: int = 32
    shared_mem_per_block_bytes: int = 48 * 1024
    global_mem_bytes: int = 12 * 1024**3
    mem_bandwidth_gbps: float = 336.0
    achievable_bandwidth_fraction: float = 0.75
    l2_bytes: int = 3 * 1024**2
    readonly_cache_bytes_per_sm: int = 48 * 1024
    memory_transaction_bytes: int = 128
    global_latency_cycles: int = 400
    atomic_ops_per_cycle: float = 64.0
    atomic_max_conflict_penalty: float = 16.0
    kernel_launch_overhead_s: float = 5e-6
    pcie_bandwidth_bytes_per_s: float = 12e9

    # ------------------------------------------------------------------ #
    @property
    def total_cores(self) -> int:
        """Total single-precision lanes on the device."""
        return self.num_sms * self.cores_per_sm

    @property
    def peak_flops(self) -> float:
        """Peak single-precision FLOP/s (2 FLOPs per lane per cycle, FMA)."""
        return self.total_cores * self.clock_ghz * 1e9 * 2.0

    @property
    def peak_bandwidth_bytes_per_s(self) -> float:
        """Peak memory bandwidth in bytes/s."""
        return self.mem_bandwidth_gbps * 1e9

    @property
    def achievable_bandwidth_bytes_per_s(self) -> float:
        """Sustained streaming bandwidth in bytes/s."""
        return self.peak_bandwidth_bytes_per_s * self.achievable_bandwidth_fraction

    @property
    def max_resident_threads(self) -> int:
        """Threads resident device-wide at full occupancy."""
        return self.num_sms * self.max_threads_per_sm

    @property
    def readonly_cache_bytes_total(self) -> int:
        """Aggregate read-only data cache across all SMs."""
        return self.num_sms * self.readonly_cache_bytes_per_sm

    @property
    def clock_hz(self) -> float:
        """Core clock in Hz."""
        return self.clock_ghz * 1e9

    @property
    def atomic_ops_per_second(self) -> float:
        """Conflict-free global atomic throughput in ops/s."""
        return self.atomic_ops_per_cycle * self.clock_hz

    def validate(self) -> None:
        """Raise :class:`ValueError` if the specification is inconsistent."""
        positive_fields = [
            ("num_sms", self.num_sms),
            ("cores_per_sm", self.cores_per_sm),
            ("clock_ghz", self.clock_ghz),
            ("warp_size", self.warp_size),
            ("max_threads_per_block", self.max_threads_per_block),
            ("max_threads_per_sm", self.max_threads_per_sm),
            ("global_mem_bytes", self.global_mem_bytes),
            ("mem_bandwidth_gbps", self.mem_bandwidth_gbps),
            ("memory_transaction_bytes", self.memory_transaction_bytes),
            ("pcie_bandwidth_bytes_per_s", self.pcie_bandwidth_bytes_per_s),
        ]
        for name, value in positive_fields:
            if value <= 0:
                raise ValueError(f"DeviceSpec.{name} must be positive, got {value}")
        if not 0 < self.achievable_bandwidth_fraction <= 1:
            raise ValueError(
                "achievable_bandwidth_fraction must be in (0, 1], got "
                f"{self.achievable_bandwidth_fraction}"
            )
        if self.max_threads_per_block > self.max_threads_per_sm:
            raise ValueError("max_threads_per_block cannot exceed max_threads_per_sm")


#: The GPU of the paper's Table III: NVIDIA GeForce GTX Titan X (Maxwell,
#: GM200): 24 SMs × 128 cores = 3072 cores at ~1.0 GHz, 12 GB @ 336 GB/s,
#: 3 MB L2.
TITAN_X = DeviceSpec(
    name="NVIDIA GeForce GTX Titan X (simulated)",
    num_sms=24,
    cores_per_sm=128,
    clock_ghz=1.0,
)


def scaled_device(
    base: DeviceSpec,
    memory_scale: float,
    *,
    bandwidth_scale: Optional[float] = None,
    name_suffix: str = "scaled",
) -> DeviceSpec:
    """Return ``base`` with its memory capacity scaled by ``memory_scale``.

    The paper's datasets have 10^7–10^8 non-zeros; the synthetic analogs in
    :mod:`repro.data` are generated at laptop scale.  To preserve the paper's
    capacity effects (ParTI-GPU running out of memory on nell1/delicious for
    SpMTTKRP) the experiment harness shrinks the device memory by the same
    factor the dataset was shrunk.

    Compute and the bandwidths are left untouched by default: they cancel in
    the speedup ratios the paper reports.  That deliberately includes
    ``pcie_bandwidth_bytes_per_s`` — transfer and kernel times both scale
    with the non-zero count, so their ratio is preserved without touching
    the link.  Experiments that *do* want slower data paths (e.g. modelling
    a weaker host link next to a smaller card) pass ``bandwidth_scale``,
    which scales the DRAM and PCIe bandwidths together so the device stays
    internally consistent.  Every other field is carried over verbatim via
    :func:`dataclasses.replace`, and the derived spec is re-validated so a
    field added to :class:`DeviceSpec` later cannot silently produce an
    inconsistent derived device.
    """
    if memory_scale <= 0:
        raise ValueError(f"memory_scale must be positive, got {memory_scale}")
    new_mem = max(1, int(round(base.global_mem_bytes * memory_scale)))
    changes = dict(global_mem_bytes=new_mem, name=f"{base.name} [{name_suffix}]")
    if bandwidth_scale is not None:
        if bandwidth_scale <= 0:
            raise ValueError(f"bandwidth_scale must be positive, got {bandwidth_scale}")
        changes["mem_bandwidth_gbps"] = base.mem_bandwidth_gbps * bandwidth_scale
        changes["pcie_bandwidth_bytes_per_s"] = (
            base.pcie_bandwidth_bytes_per_s * bandwidth_scale
        )
    derived = replace(base, **changes)
    derived.validate()
    return derived
