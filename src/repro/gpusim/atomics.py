"""Atomic-update contention model.

ParTI's COO-based SpMTTKRP lets every non-zero atomically accumulate its
contribution into the output factor row it maps to.  When many non-zeros
share an output row — which is the normal case, since an output row receives
one update per non-zero of its slice — those atomics serialise at the memory
subsystem.  The paper identifies this as the main cost of the baseline and
the thing the segmented scan removes (Sections I, III-B, IV-D).

The model here charges each atomic operation a *serialisation factor* equal
to the average number of concurrently in-flight updates that target the same
address, capped by how many updates can actually be in flight at once
(roughly the warp size: conflicting lanes of a warp fully serialise, while
conflicts across warps overlap with other work).
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.gpusim.device import DeviceSpec

__all__ = ["atomic_contention_factor", "atomic_cost_ops"]


def atomic_contention_factor(
    updates_per_address: Union[np.ndarray, float],
    device: DeviceSpec,
) -> float:
    """Average serialisation factor for a set of atomic updates.

    Parameters
    ----------
    updates_per_address:
        Either the full histogram (updates per distinct target address) or a
        precomputed mean.  The *update-weighted* mean conflict degree is
        used: an address receiving ``c`` updates contributes ``c`` updates
        each experiencing ``c``-way conflict, so the weighted mean is
        ``sum(c^2) / sum(c)``.
    device:
        Supplies the cap (``atomic_max_conflict_penalty``).

    Returns
    -------
    float
        A factor ``>= 1`` by which the atomic throughput is derated.
    """
    if np.isscalar(updates_per_address):
        mean_conflict = float(updates_per_address)
        if mean_conflict < 0:
            raise ValueError("updates_per_address must be non-negative")
    else:
        counts = np.asarray(updates_per_address, dtype=np.float64)
        if counts.size == 0:
            return 1.0
        if (counts < 0).any():
            raise ValueError("updates_per_address entries must be non-negative")
        total = counts.sum()
        if total == 0:
            return 1.0
        mean_conflict = float((counts**2).sum() / total)
    return float(np.clip(mean_conflict, 1.0, device.atomic_max_conflict_penalty))


def atomic_cost_ops(
    num_atomics: float,
    updates_per_address: Union[np.ndarray, float],
    device: DeviceSpec,
) -> float:
    """Serialised atomic-operation count charged to the timing model.

    ``num_atomics`` raw atomics are multiplied by the contention factor; the
    timing model divides the result by the device's conflict-free atomic
    throughput.
    """
    if num_atomics < 0:
        raise ValueError(f"num_atomics must be non-negative, got {num_atomics}")
    return float(num_atomics) * atomic_contention_factor(updates_per_address, device)
