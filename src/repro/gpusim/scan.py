"""The segmented-scan primitive.

The unified kernels reduce per-non-zero partial products into per-segment
results (one per fiber for SpTTM, one per slice for SpMTTKRP) with a
segmented scan driven by the F-COO bit-flags (paper Section IV-D, citing
Sengupta et al. and the StreamScan adjacent-synchronisation scheme of Yan et
al.).  This removes the atomic updates the COO baseline needs: only the
partial sums that straddle a *block* boundary require a cross-block carry.

Two things are provided here:

* :func:`segment_reduce` — the numeric result: a vectorised, deterministic
  segment-sum used by the simulated unified kernels (the segmented scan's
  final value per segment is exactly the segment sum).
* :func:`segmented_scan_counters` — the work ledger of performing that scan
  on the GPU with warp shuffles inside warps, shared memory across warps of
  a block and adjacent synchronisation across blocks.
"""

from __future__ import annotations

import numpy as np

from repro.gpusim.counters import KernelCounters
from repro.gpusim.device import DeviceSpec
from repro.gpusim.launch import LaunchConfig
from repro.util.validation import check_positive_int

__all__ = ["segment_reduce", "segmented_scan_counters", "validate_segment_inputs"]


def validate_segment_inputs(
    values: np.ndarray,
    segment_ids: np.ndarray,
    num_segments: int,
) -> tuple:
    """Validate and normalise a segment-reduction's inputs.

    Shared by :func:`segment_reduce` and the pluggable execution backends
    (:mod:`repro.backends`) so every implementation enforces the same
    contract with the same error messages.  Returns the ``float64`` values
    array, the segment-id array and the validated segment count.
    """
    values = np.asarray(values, dtype=np.float64)
    segment_ids = np.asarray(segment_ids)
    num_segments = check_positive_int(num_segments, "num_segments") if num_segments else 0
    if segment_ids.ndim != 1:
        raise ValueError(f"segment_ids must be 1-D, got shape {segment_ids.shape}")
    if values.shape[0] != segment_ids.shape[0]:
        raise ValueError(
            f"values and segment_ids must agree on the first dimension, "
            f"got {values.shape[0]} and {segment_ids.shape[0]}"
        )
    if values.ndim not in (1, 2):
        raise ValueError(f"values must be 1-D or 2-D, got ndim={values.ndim}")
    if values.shape[0] and (segment_ids.min() < 0 or segment_ids.max() >= num_segments):
        raise ValueError("segment_ids out of range for num_segments")
    return values, segment_ids, num_segments


def segment_reduce(
    values: np.ndarray,
    segment_ids: np.ndarray,
    num_segments: int,
) -> np.ndarray:
    """Sum ``values`` within each segment.

    This is the *canonical* reduction order of the whole repository: a
    strictly sequential scatter-add (``np.add.at``) over the non-zero
    stream.  Every execution backend (:mod:`repro.backends`) must be
    bit-identical to it.

    Parameters
    ----------
    values:
        ``(n,)`` or ``(n, r)`` array of per-element partial results.
    segment_ids:
        ``(n,)`` non-decreasing integer array assigning each element to a
        segment (the cumulative sum of the F-COO bit-flag, minus one).
    num_segments:
        Total number of segments (rows of the output).

    Returns
    -------
    numpy.ndarray
        ``(num_segments,)`` or ``(num_segments, r)`` array of segment sums.
    """
    values, segment_ids, num_segments = validate_segment_inputs(
        values, segment_ids, num_segments
    )
    if values.shape[0] == 0:
        shape = (num_segments,) if values.ndim == 1 else (num_segments, values.shape[1])
        return np.zeros(shape, dtype=np.float64)

    if values.ndim == 1:
        out = np.zeros(num_segments, dtype=np.float64)
    else:
        out = np.zeros((num_segments, values.shape[1]), dtype=np.float64)
    np.add.at(out, segment_ids, values)
    return out


def segmented_scan_counters(
    num_elements: int,
    num_segments: int,
    rank: int,
    launch: LaunchConfig,
    device: DeviceSpec,
    *,
    fused: bool = True,
    element_bytes: int = 4,
) -> KernelCounters:
    """Work ledger of a warp-shuffle segmented scan over the partial products.

    Parameters
    ----------
    num_elements:
        Number of per-thread partial results entering the scan (one per
        non-zero partition element, per launched column group).
    num_segments:
        Number of reduction segments (fibers/slices).
    rank:
        Factor columns processed (the grid's y extent); partial results are
        ``rank`` values wide in aggregate across the grid.
    launch:
        The launch configuration (supplies block size for the carry count).
    device:
        Target device.
    fused:
        When ``True`` (the unified kernels) the scan runs in the same kernel
        as the product stage: partial results live in registers/shared
        memory and only the per-block carries touch global memory.  When
        ``False`` the scan is a separate kernel pass: partial results are
        written to and re-read from global memory (this is what a
        non-fused implementation would pay and is used by the fusion
        ablation benchmark).
    element_bytes:
        Size of one partial result.
    """
    if num_elements < 0 or num_segments < 0:
        raise ValueError("num_elements and num_segments must be non-negative")
    rank = check_positive_int(rank, "rank")
    if num_elements == 0:
        return KernelCounters()

    warp = device.warp_size
    # log2(warp) shuffle steps per element within warps, then a per-warp and
    # per-block combine: ~2*log2(block) ops per element overall.  Each op is
    # an add plus a flag test; charge 2 FLOPs.
    steps = np.log2(max(warp, 2)) + np.log2(max(launch.block_size // warp, 2))
    flops = 2.0 * float(num_elements) * rank * steps

    # Shared-memory traffic: one value per warp per combine step.
    warps_per_block = max(launch.block_size // warp, 1)
    smem_bytes = float(launch.num_blocks) * warps_per_block * element_bytes * 2.0

    counters = KernelCounters(
        flops=flops,
        smem_bytes=smem_bytes,
        active_threads=float(min(num_elements, launch.total_threads)),
        kernel_launches=0 if fused else 1,
    )

    # Cross-block carries: each block may need to push one partial segment
    # sum per column to its right neighbour (adjacent synchronisation).
    carries = float(launch.grid_x) * rank
    counters.gmem_write_bytes += carries * element_bytes
    counters.gmem_read_bytes += carries * element_bytes
    counters.atomic_ops += carries
    counters.atomic_serialized_ops += carries  # carries target distinct flags

    if not fused:
        # Partial results spill to global memory between the product kernel
        # and the scan kernel.
        spill = float(num_elements) * rank * element_bytes
        counters.gmem_write_bytes += spill
        counters.gmem_read_bytes += spill

    # Final per-segment results are written by the scan stage.
    counters.gmem_write_bytes += float(num_segments) * rank * element_bytes
    return counters
