"""Multi-GPU cluster model: devices joined by an interconnect.

The paper evaluates on a single Titan X; production sparse tensor
factorisation distributes the non-zeros across several GPUs of one node
(the DFacTo / SPLATT distributed-memory line of related work).  This module
models the *node*: a :class:`ClusterSpec` is an ordered set of
:class:`~repro.gpusim.device.DeviceSpec` s joined by an
:class:`InterconnectSpec` with a bandwidth and a per-message latency.

Three collective cost models are provided, all first-order but shaped like
the real algorithms:

* :meth:`ClusterSpec.allreduce_time` — ring all-reduce (reduce-scatter +
  all-gather): each device sends ``2 (N - 1) / N`` of the payload over its
  link, in ``2 (N - 1)`` latency-bound steps.  This is what merging the
  per-device partial MTTKRP/TTMc outputs costs, since every device needs
  the updated dense factor for the next iteration.
* :meth:`ClusterSpec.neighbor_exchange_time` — pairwise exchange of the
  partial segments straddling shard boundaries, for outputs that stay
  partitioned across the devices (the semi-sparse SpTTM fibers).
* :meth:`ClusterSpec.gather_time` — root-ingest gather: the root device
  receives every peer's payload over its single link (the payloads
  serialise there), one latency per peer — for callers that need a
  partitioned output collected on one device.

The models are deliberately symmetric in the devices (a ring does not care
which member is slowest as long as the link is shared); heterogeneous
*compute* is supported by :class:`ClusterSpec` holding arbitrary device
specs, and the sharded execution driver charges each shard on its own
device.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil, log2
from typing import Optional, Sequence, Tuple

from repro.gpusim.device import DeviceSpec, TITAN_X

__all__ = [
    "InterconnectSpec",
    "ClusterSpec",
    "PCIE3_P2P",
    "NVLINK1",
    "resolve_cluster",
]


@dataclass(frozen=True)
class InterconnectSpec:
    """A device-to-device link used by the collective cost models.

    Attributes
    ----------
    name:
        Human-readable link name.
    bandwidth_bytes_per_s:
        Achievable per-direction bandwidth of one device's link.
    latency_s:
        Per-message latency (one collective step costs at least this).
    """

    name: str
    bandwidth_bytes_per_s: float
    latency_s: float

    def validate(self) -> None:
        """Raise :class:`ValueError` if the specification is inconsistent."""
        if self.bandwidth_bytes_per_s <= 0:
            raise ValueError(
                f"InterconnectSpec.bandwidth_bytes_per_s must be positive, got "
                f"{self.bandwidth_bytes_per_s}"
            )
        if self.latency_s < 0:
            raise ValueError(
                f"InterconnectSpec.latency_s must be non-negative, got {self.latency_s}"
            )


#: PCIe 3.0 x16 peer-to-peer through the switch — what a multi-GPU Maxwell
#: node (the paper's era) actually has: the same ~12 GB/s achievable as the
#: host link, with a few microseconds of latency per transfer.
PCIE3_P2P = InterconnectSpec("PCIe 3.0 x16 P2P", 12e9, 5e-6)

#: First-generation NVLink (Pascal-era nodes): ~40 GB/s achievable per
#: direction, noticeably lower latency than PCIe.
NVLINK1 = InterconnectSpec("NVLink 1.0", 40e9, 2e-6)


@dataclass(frozen=True)
class ClusterSpec:
    """An ordered set of GPUs joined by one interconnect.

    Attributes
    ----------
    devices:
        The member :class:`DeviceSpec` s; ``devices[i]`` executes shard ``i``
        of a sharded kernel.
    interconnect:
        The link used by the collective cost models.
    name:
        Human-readable cluster name.
    """

    devices: Tuple[DeviceSpec, ...]
    interconnect: InterconnectSpec = PCIE3_P2P
    name: str = "cluster"

    def __post_init__(self) -> None:
        if not self.devices:
            raise ValueError("ClusterSpec needs at least one device")
        object.__setattr__(self, "devices", tuple(self.devices))
        # Validate eagerly: a zero-throughput member or an inconsistent link
        # would otherwise only surface as a division failure deep inside the
        # sharded execution driver or the capability-weighted partitioner.
        try:
            self.interconnect.validate()
        except ValueError as exc:
            raise ValueError(f"ClusterSpec interconnect is invalid: {exc}") from exc
        seen: dict = {}
        for i, device in enumerate(self.devices):
            try:
                device.validate()
            except ValueError as exc:
                raise ValueError(f"ClusterSpec devices[{i}] is invalid: {exc}") from exc
            previous = seen.get(device.name)
            if previous is not None and previous != device:
                raise ValueError(
                    f"ClusterSpec devices[{i}] reuses the device id {device.name!r} "
                    "with a different specification; give distinct devices distinct "
                    "names (identical repeated specs — a homogeneous cluster — are fine)"
                )
            seen[device.name] = device

    # ------------------------------------------------------------------ #
    @classmethod
    def homogeneous(
        cls,
        device: DeviceSpec = TITAN_X,
        num_devices: int = 4,
        *,
        interconnect: InterconnectSpec = PCIE3_P2P,
        name: Optional[str] = None,
    ) -> "ClusterSpec":
        """A cluster of ``num_devices`` identical ``device`` s."""
        if num_devices <= 0:
            raise ValueError(f"num_devices must be positive, got {num_devices}")
        return cls(
            devices=(device,) * num_devices,
            interconnect=interconnect,
            name=name or f"{num_devices}x {device.name}",
        )

    # ------------------------------------------------------------------ #
    @property
    def num_devices(self) -> int:
        """Number of member GPUs."""
        return len(self.devices)

    @property
    def min_device_memory_bytes(self) -> int:
        """Capacity of the smallest member (bounds an evenly-sharded tensor)."""
        return min(d.global_mem_bytes for d in self.devices)

    @property
    def total_memory_bytes(self) -> int:
        """Aggregate device memory across the cluster."""
        return sum(d.global_mem_bytes for d in self.devices)

    @property
    def max_device_memory_bytes(self) -> int:
        """Capacity of the largest member (bounds a single-device placement)."""
        return max(d.global_mem_bytes for d in self.devices)

    @property
    def is_homogeneous(self) -> bool:
        """Whether every member device has the identical specification."""
        return all(d == self.devices[0] for d in self.devices[1:])

    def capability_scores(self, *, flops_per_byte: float = 0.5) -> Tuple[float, ...]:
        """Per-device roofline throughput scores (bytes/s), unnormalised.

        Each device's score is its roofline throughput at the nominal
        arithmetic intensity of the unified kernels,
        ``min(achievable_bandwidth, peak_flops / flops_per_byte)`` — the
        kernels stream the non-zeros once and gather cached factor rows, so
        at the default intensity of 0.5 FLOP/byte every realistic GPU is
        bandwidth-bound and the score reduces to achievable DRAM bandwidth.
        Single-sourced here so the shard partitioner's weights and the
        serving placer's completion-time estimates cannot diverge.
        """
        if flops_per_byte <= 0:
            raise ValueError(f"flops_per_byte must be positive, got {flops_per_byte}")
        return tuple(
            min(d.achievable_bandwidth_bytes_per_s, d.peak_flops / flops_per_byte)
            for d in self.devices
        )

    def capability_weights(self, *, flops_per_byte: float = 0.5) -> Tuple[float, ...]:
        """Per-device throughput weights, normalised to sum to 1.

        The :meth:`capability_scores` roofline scores, normalised.  A
        homogeneous cluster yields exactly uniform weights.  The
        capability-weighted shard partitioner
        (:func:`repro.kernels.unified.sharded.partition_shards`) sizes each
        device's shard proportional to these weights, and the serving
        placer uses them to rank devices for job placement.
        """
        scores = self.capability_scores(flops_per_byte=flops_per_byte)
        total = sum(scores)
        return tuple(score / total for score in scores)

    def validate(self) -> None:
        """Validate every member device and the interconnect.

        Construction already performs this validation; the method is kept so
        callers holding a spec from any source can re-assert consistency.
        """
        self.interconnect.validate()
        for device in self.devices:
            device.validate()

    # ------------------------------------------------------------------ #
    # Collective cost models
    # ------------------------------------------------------------------ #
    def allreduce_time(self, nbytes: float) -> float:
        """Ring all-reduce of an ``nbytes`` payload resident on every device.

        Reduce-scatter plus all-gather: ``2 (N - 1)`` steps, each moving
        ``nbytes / N`` over every device's link simultaneously, so the
        bandwidth term is ``2 (N - 1) / N * nbytes / bandwidth`` — the
        classic bandwidth-optimal ring.  Zero for a single device.
        """
        if nbytes < 0:
            raise ValueError(f"nbytes must be non-negative, got {nbytes}")
        n = self.num_devices
        if n == 1 or nbytes == 0:
            return 0.0
        steps = 2 * (n - 1)
        bandwidth_term = (2.0 * (n - 1) / n) * nbytes / self.interconnect.bandwidth_bytes_per_s
        return bandwidth_term + steps * self.interconnect.latency_s

    def gather_time(self, nbytes_per_device: Sequence[float]) -> float:
        """Gather per-device payloads onto device 0 (the root).

        The root's ingest link is the serial resource: every peer's payload
        crosses it once, paying one latency per peer.  The root's own
        payload does not move.  Zero for a single device.
        """
        payloads = [float(b) for b in nbytes_per_device]
        if any(b < 0 for b in payloads):
            raise ValueError("per-device payloads must be non-negative")
        if len(payloads) > self.num_devices:
            raise ValueError(
                f"got {len(payloads)} payloads for {self.num_devices} devices"
            )
        if len(payloads) <= 1:
            return 0.0
        incoming = sum(payloads[1:])
        steps = len(payloads) - 1
        bandwidth_term = incoming / self.interconnect.bandwidth_bytes_per_s
        return bandwidth_term + steps * self.interconnect.latency_s

    def neighbor_exchange_time(self, nbytes_per_boundary: Sequence[float]) -> float:
        """Pairwise exchange of boundary payloads between adjacent devices.

        Used when the output stays *partitioned* across the devices (the
        semi-sparse SpTTM result feeding the next pipeline stage in place)
        and only the partial segments straddling a shard boundary must
        merge: payload ``i`` moves point-to-point from device ``i`` to
        device ``i + 1``.  The links are full duplex and the pairs are
        disjoint per direction, so the exchanges overlap: one latency plus
        the largest payload's wire time.  Zero with no straddling
        boundaries.
        """
        payloads = [float(b) for b in nbytes_per_boundary]
        if any(b < 0 for b in payloads):
            raise ValueError("per-boundary payloads must be non-negative")
        if not payloads:
            return 0.0
        return (
            max(payloads) / self.interconnect.bandwidth_bytes_per_s
            + self.interconnect.latency_s
        )

    def broadcast_time(self, nbytes: float) -> float:
        """Binomial-tree broadcast of ``nbytes`` from device 0 to every peer.

        ``ceil(log2 N)`` stages, each shipping the full payload over the
        sender links active in that stage.  Used for staging dense factor
        matrices that every device needs.
        """
        if nbytes < 0:
            raise ValueError(f"nbytes must be non-negative, got {nbytes}")
        n = self.num_devices
        if n == 1 or nbytes == 0:
            return 0.0
        stages = ceil(log2(n))
        return stages * (
            nbytes / self.interconnect.bandwidth_bytes_per_s + self.interconnect.latency_s
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ClusterSpec(name={self.name!r}, num_devices={self.num_devices}, "
            f"interconnect={self.interconnect.name!r})"
        )


def resolve_cluster(
    device: DeviceSpec,
    cluster: Optional[ClusterSpec],
    devices: Optional[int],
) -> Tuple[DeviceSpec, Optional[ClusterSpec]]:
    """Normalise the ``cluster=`` / ``devices=`` kernel parameters.

    The kernels accept either a full :class:`ClusterSpec` or a bare device
    count (which builds a homogeneous cluster of the kernel's ``device``).
    Returns ``(single_device, multi_cluster)`` where exactly one execution
    mode is active: the cluster is ``None`` when execution is effectively
    single-device — no cluster requested, or a cluster/count of one — so
    callers keep the exact single-GPU code path (and its numerics and
    profile shape) in that case, running on the cluster's sole member when
    one was given.
    """
    if cluster is not None and devices is not None and devices != cluster.num_devices:
        raise ValueError(
            f"devices={devices} contradicts the provided cluster of "
            f"{cluster.num_devices} devices; pass one or the other"
        )
    if cluster is None:
        if devices is None:
            return device, None
        if devices <= 0:
            raise ValueError(f"devices must be positive, got {devices}")
        if devices == 1:
            return device, None
        cluster = ClusterSpec.homogeneous(device, devices)
    if cluster.num_devices == 1:
        return cluster.devices[0], None
    return device, cluster
