"""Multi-GPU cluster model: devices joined by an interconnect.

The paper evaluates on a single Titan X; production sparse tensor
factorisation distributes the non-zeros across several GPUs of one node
(the DFacTo / SPLATT distributed-memory line of related work).  This module
models the *node*: a :class:`ClusterSpec` is an ordered set of
:class:`~repro.gpusim.device.DeviceSpec` s joined by an
:class:`InterconnectSpec` with a bandwidth and a per-message latency.

Three collective cost models are provided, all first-order but shaped like
the real algorithms:

* :meth:`ClusterSpec.allreduce_time` — ring all-reduce (reduce-scatter +
  all-gather): each device sends ``2 (N - 1) / N`` of the payload over its
  link, in ``2 (N - 1)`` latency-bound steps.  This is what merging the
  per-device partial MTTKRP/TTMc outputs costs, since every device needs
  the updated dense factor for the next iteration.
* :meth:`ClusterSpec.neighbor_exchange_time` — pairwise exchange of the
  partial segments straddling shard boundaries, for outputs that stay
  partitioned across the devices (the semi-sparse SpTTM fibers).
* :meth:`ClusterSpec.gather_time` — root-ingest gather: the root device
  receives every peer's payload over its single link (the payloads
  serialise there), one latency per peer — for callers that need a
  partitioned output collected on one device.

The models are deliberately symmetric in the devices (a ring does not care
which member is slowest as long as the link is shared); heterogeneous
*compute* is supported by :class:`ClusterSpec` holding arbitrary device
specs, and the sharded execution driver charges each shard on its own
device.

Beyond the single node, :class:`NodeSpec` / :class:`MultiNodeClusterSpec`
model a *cluster of nodes* with two interconnect tiers — intra-node
P2P/NVLink and an inter-node NIC — and hierarchical collectives
(reduce-scatter inside each node, a ring across the nodes, an intra-node
all-gather) whose modeled cost is never worse than the topology-oblivious
flat ring, and strictly better whenever the NIC is the slower tier.

Each collective exists in two forms: the closed-form ``*_time`` scalar
(the cost on idle links) and a ``book_*`` variant that *books* that cost
onto the shared :class:`~repro.gpusim.timeline.Timeline` — the intra-node
links and the per-node NICs are explicit serial resources there, so two
concurrent cross-node collectives queue on the shared NIC instead of each
pricing it as idle.  On an idle timeline the booked end time equals the
closed form exactly; contention can only push it later.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import ceil, log2
from typing import List, Optional, Sequence, Tuple, Union

from repro.gpusim.device import DeviceSpec, TITAN_X
from repro.gpusim.timeline import (
    CollectiveRequest,
    GangBooking,
    NicDiscipline,
    Resource,
    Timeline,
)

__all__ = [
    "InterconnectSpec",
    "ClusterSpec",
    "NodeSpec",
    "MultiNodeClusterSpec",
    "NodeFailure",
    "ClusterLike",
    "PCIE3_P2P",
    "NVLINK1",
    "ETHERNET_10G",
    "INFINIBAND_EDR",
    "collapse_cluster",
    "resolve_cluster",
]


@dataclass(frozen=True)
class InterconnectSpec:
    """A device-to-device link used by the collective cost models.

    Attributes
    ----------
    name:
        Human-readable link name.
    bandwidth_bytes_per_s:
        Achievable per-direction bandwidth of one device's link.
    latency_s:
        Per-message latency (one collective step costs at least this).
    """

    name: str
    bandwidth_bytes_per_s: float
    latency_s: float

    def validate(self) -> None:
        """Raise :class:`ValueError` if the specification is inconsistent."""
        if self.bandwidth_bytes_per_s <= 0:
            raise ValueError(
                f"InterconnectSpec.bandwidth_bytes_per_s must be positive, got "
                f"{self.bandwidth_bytes_per_s}"
            )
        if self.latency_s < 0:
            raise ValueError(
                f"InterconnectSpec.latency_s must be non-negative, got {self.latency_s}"
            )


#: PCIe 3.0 x16 peer-to-peer through the switch — what a multi-GPU Maxwell
#: node (the paper's era) actually has: the same ~12 GB/s achievable as the
#: host link, with a few microseconds of latency per transfer.
PCIE3_P2P = InterconnectSpec("PCIe 3.0 x16 P2P", 12e9, 5e-6)

#: First-generation NVLink (Pascal-era nodes): ~40 GB/s achievable per
#: direction, noticeably lower latency than PCIe.
NVLINK1 = InterconnectSpec("NVLink 1.0", 40e9, 2e-6)

#: 10-gigabit Ethernet NIC: ~1.25 GB/s per direction and tens of
#: microseconds of latency through the kernel network stack — the slow
#: inter-node tier of a commodity cluster.
ETHERNET_10G = InterconnectSpec("10 GbE NIC", 1.25e9, 50e-6)

#: InfiniBand EDR (100 Gb/s): ~12.5 GB/s per direction with RDMA-class
#: latency — the fast inter-node tier of an HPC cluster, still no faster
#: than intra-node PCIe P2P and far below NVLink.
INFINIBAND_EDR = InterconnectSpec("InfiniBand EDR NIC", 12.5e9, 1.5e-6)


@dataclass(frozen=True)
class NodeFailure:
    """A timeline-scheduled loss (and optional return) of one node.

    The failure-domain event of the fault-tolerance layer: at simulated
    time ``time_s`` node ``node_index`` of a
    :class:`MultiNodeClusterSpec` drops out, taking its device slots, its
    intra-node link and its NIC lane with it.  When ``recover_s`` is set
    the node returns to service at that time (already-recovered work is
    not migrated back; the node simply becomes placeable again).

    Lives in the cluster model — not the serving layer — because the
    decomposition drivers (``cp_als`` / ``tucker_hooi``) consume these
    events directly; :func:`repro.serve.workload.generate_chaos` is the
    seeded generator that produces them.
    """

    time_s: float
    node_index: int
    recover_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.time_s < 0:
            raise ValueError(f"time_s must be non-negative, got {self.time_s}")
        if self.node_index < 0:
            raise ValueError(
                f"node_index must be non-negative, got {self.node_index}"
            )
        if self.recover_s is not None and self.recover_s <= self.time_s:
            raise ValueError(
                f"recover_s must follow time_s, got recover_s={self.recover_s} "
                f"<= time_s={self.time_s}"
            )


@dataclass(frozen=True)
class ClusterSpec:
    """An ordered set of GPUs joined by one interconnect.

    Attributes
    ----------
    devices:
        The member :class:`DeviceSpec` s; ``devices[i]`` executes shard ``i``
        of a sharded kernel.
    interconnect:
        The link used by the collective cost models.
    name:
        Human-readable cluster name.
    """

    devices: Tuple[DeviceSpec, ...]
    interconnect: InterconnectSpec = PCIE3_P2P
    name: str = "cluster"

    def __post_init__(self) -> None:
        if not self.devices:
            raise ValueError("ClusterSpec needs at least one device")
        object.__setattr__(self, "devices", tuple(self.devices))
        # Validate eagerly: a zero-throughput member or an inconsistent link
        # would otherwise only surface as a division failure deep inside the
        # sharded execution driver or the capability-weighted partitioner.
        try:
            self.interconnect.validate()
        except ValueError as exc:
            raise ValueError(f"ClusterSpec interconnect is invalid: {exc}") from exc
        seen: dict = {}
        for i, device in enumerate(self.devices):
            try:
                device.validate()
            except ValueError as exc:
                raise ValueError(f"ClusterSpec devices[{i}] is invalid: {exc}") from exc
            previous = seen.get(device.name)
            if previous is not None and previous != device:
                raise ValueError(
                    f"ClusterSpec devices[{i}] reuses the device id {device.name!r} "
                    "with a different specification; give distinct devices distinct "
                    "names (identical repeated specs — a homogeneous cluster — are fine)"
                )
            seen[device.name] = device

    # ------------------------------------------------------------------ #
    @classmethod
    def homogeneous(
        cls,
        device: DeviceSpec = TITAN_X,
        num_devices: int = 4,
        *,
        interconnect: InterconnectSpec = PCIE3_P2P,
        name: Optional[str] = None,
    ) -> "ClusterSpec":
        """A cluster of ``num_devices`` identical ``device`` s."""
        if num_devices <= 0:
            raise ValueError(f"num_devices must be positive, got {num_devices}")
        return cls(
            devices=(device,) * num_devices,
            interconnect=interconnect,
            name=name or f"{num_devices}x {device.name}",
        )

    # ------------------------------------------------------------------ #
    @property
    def num_devices(self) -> int:
        """Number of member GPUs."""
        return len(self.devices)

    @property
    def min_device_memory_bytes(self) -> int:
        """Capacity of the smallest member (bounds an evenly-sharded tensor)."""
        return min(d.global_mem_bytes for d in self.devices)

    @property
    def total_memory_bytes(self) -> int:
        """Aggregate device memory across the cluster."""
        return sum(d.global_mem_bytes for d in self.devices)

    @property
    def max_device_memory_bytes(self) -> int:
        """Capacity of the largest member (bounds a single-device placement)."""
        return max(d.global_mem_bytes for d in self.devices)

    @property
    def is_homogeneous(self) -> bool:
        """Whether every member device has the identical specification."""
        return all(d == self.devices[0] for d in self.devices[1:])

    def capability_scores(self, *, flops_per_byte: float = 0.5) -> Tuple[float, ...]:
        """Per-device roofline throughput scores (bytes/s), unnormalised.

        Each device's score is its roofline throughput at the nominal
        arithmetic intensity of the unified kernels,
        ``min(achievable_bandwidth, peak_flops / flops_per_byte)`` — the
        kernels stream the non-zeros once and gather cached factor rows, so
        at the default intensity of 0.5 FLOP/byte every realistic GPU is
        bandwidth-bound and the score reduces to achievable DRAM bandwidth.
        Single-sourced here so the shard partitioner's weights and the
        serving placer's completion-time estimates cannot diverge.
        """
        if flops_per_byte <= 0:
            raise ValueError(f"flops_per_byte must be positive, got {flops_per_byte}")
        return tuple(
            min(d.achievable_bandwidth_bytes_per_s, d.peak_flops / flops_per_byte)
            for d in self.devices
        )

    def capability_weights(self, *, flops_per_byte: float = 0.5) -> Tuple[float, ...]:
        """Per-device throughput weights, normalised to sum to 1.

        The :meth:`capability_scores` roofline scores, normalised.  A
        homogeneous cluster yields exactly uniform weights.  The
        capability-weighted shard partitioner
        (:func:`repro.kernels.unified.sharded.partition_shards`) sizes each
        device's shard proportional to these weights, and the serving
        placer uses them to rank devices for job placement.
        """
        scores = self.capability_scores(flops_per_byte=flops_per_byte)
        total = sum(scores)
        return tuple(score / total for score in scores)

    def validate(self) -> None:
        """Validate every member device and the interconnect.

        Construction already performs this validation; the method is kept so
        callers holding a spec from any source can re-assert consistency.
        """
        self.interconnect.validate()
        for device in self.devices:
            device.validate()

    # ------------------------------------------------------------------ #
    # Collective cost models
    # ------------------------------------------------------------------ #
    def allreduce_time(self, nbytes: float) -> float:
        """Ring all-reduce of an ``nbytes`` payload resident on every device.

        Reduce-scatter plus all-gather: ``2 (N - 1)`` steps, each moving
        ``nbytes / N`` over every device's link simultaneously, so the
        bandwidth term is ``2 (N - 1) / N * nbytes / bandwidth`` — the
        classic bandwidth-optimal ring.  Zero for a single device.
        """
        if nbytes < 0:
            raise ValueError(f"nbytes must be non-negative, got {nbytes}")
        n = self.num_devices
        if n == 1 or nbytes == 0:
            return 0.0
        steps = 2 * (n - 1)
        bandwidth_term = (2.0 * (n - 1) / n) * nbytes / self.interconnect.bandwidth_bytes_per_s
        return bandwidth_term + steps * self.interconnect.latency_s

    def gather_time(self, nbytes_per_device: Sequence[float]) -> float:
        """Gather per-device payloads onto device 0 (the root).

        The root's ingest link is the serial resource: every peer's payload
        crosses it once, paying one latency per peer.  The root's own
        payload does not move.  Zero for a single device.
        """
        payloads = [float(b) for b in nbytes_per_device]
        if any(b < 0 for b in payloads):
            raise ValueError("per-device payloads must be non-negative")
        if len(payloads) > self.num_devices:
            raise ValueError(
                f"got {len(payloads)} payloads for {self.num_devices} devices"
            )
        if len(payloads) <= 1:
            return 0.0
        incoming = sum(payloads[1:])
        steps = len(payloads) - 1
        bandwidth_term = incoming / self.interconnect.bandwidth_bytes_per_s
        return bandwidth_term + steps * self.interconnect.latency_s

    def neighbor_exchange_time(self, nbytes_per_boundary: Sequence[float]) -> float:
        """Pairwise exchange of boundary payloads between adjacent devices.

        Used when the output stays *partitioned* across the devices (the
        semi-sparse SpTTM result feeding the next pipeline stage in place)
        and only the partial segments straddling a shard boundary must
        merge: payload ``i`` moves point-to-point from device ``i`` to
        device ``i + 1``.  The links are full duplex and the pairs are
        disjoint per direction, so the exchanges overlap: one latency plus
        the largest payload's wire time.  Zero with no straddling
        boundaries.
        """
        payloads = [float(b) for b in nbytes_per_boundary]
        if any(b < 0 for b in payloads):
            raise ValueError("per-boundary payloads must be non-negative")
        if not payloads:
            return 0.0
        return (
            max(payloads) / self.interconnect.bandwidth_bytes_per_s
            + self.interconnect.latency_s
        )

    def broadcast_time(self, nbytes: float) -> float:
        """Binomial-tree broadcast of ``nbytes`` from device 0 to every peer.

        ``ceil(log2 N)`` stages, each shipping the full payload over the
        sender links active in that stage.  Used for staging dense factor
        matrices that every device needs.
        """
        if nbytes < 0:
            raise ValueError(f"nbytes must be non-negative, got {nbytes}")
        n = self.num_devices
        if n == 1 or nbytes == 0:
            return 0.0
        stages = ceil(log2(n))
        return stages * (
            nbytes / self.interconnect.bandwidth_bytes_per_s + self.interconnect.latency_s
        )

    # ------------------------------------------------------------------ #
    # Timeline bookings: collectives as occupancy of the shared link
    # ------------------------------------------------------------------ #
    def link_resource_key(self) -> str:
        """Resource key of this cluster's shared device-to-device link.

        Keyed by the cluster *name*, so a node viewed through
        :meth:`NodeSpec.as_cluster` books the same link resource as the
        enclosing :class:`MultiNodeClusterSpec` does for that node — a
        node-local collective and a cluster-wide one contend correctly on
        a shared timeline.
        """
        return f"link:{self.name}"

    def collective_resources(self, timeline: Timeline) -> Tuple[Resource, ...]:
        """The timeline resources a collective of this cluster occupies."""
        return (timeline.resource(self.link_resource_key(), category="link"),)

    def book_collective(
        self,
        timeline: Timeline,
        duration_s: float,
        *,
        ready_s: float = 0.0,
        label: str = "collective",
        discipline: Optional[NicDiscipline] = None,
        request: Optional[CollectiveRequest] = None,
    ) -> GangBooking:
        """Book a pre-priced collective of ``duration_s`` onto the link.

        The booking starts at ``max(ready_s, link free)``: on an idle
        timeline it ends exactly ``duration_s`` after ``ready_s`` — the
        closed-form cost — and a busy link delays it, which is how
        link/NIC *contention* between concurrent jobs falls out of the
        shared timeline instead of each job pricing the link as idle.

        A caller serving several jobs under a NIC queue ``discipline``
        passes it (with the job's :class:`CollectiveRequest`) so the
        discipline's per-job service ledger stays accurate; the booking
        arithmetic itself is discipline-free — reordering is the
        *scheduler's* move (it releases and re-books queued gangs), never
        this primitive's.
        """
        gang = timeline.book_together(
            self.collective_resources(timeline),
            duration_s,
            ready_s=ready_s,
            label=label,
        )
        if discipline is not None and request is not None:
            discipline.note_dispatch(request)
        return gang

    def book_allreduce(
        self, timeline: Timeline, nbytes: float, *, ready_s: float = 0.0, label: str = "allreduce"
    ) -> GangBooking:
        """Book a ring all-reduce (:meth:`allreduce_time`) onto the link."""
        return self.book_collective(
            timeline, self.allreduce_time(nbytes), ready_s=ready_s, label=label
        )

    def book_gather(
        self,
        timeline: Timeline,
        nbytes_per_device: Sequence[float],
        *,
        ready_s: float = 0.0,
        label: str = "gather",
    ) -> GangBooking:
        """Book a root gather (:meth:`gather_time`) onto the link."""
        return self.book_collective(
            timeline, self.gather_time(nbytes_per_device), ready_s=ready_s, label=label
        )

    def book_neighbor_exchange(
        self,
        timeline: Timeline,
        nbytes_per_boundary: Sequence[float],
        *,
        ready_s: float = 0.0,
        label: str = "boundary-exchange",
    ) -> GangBooking:
        """Book a boundary exchange (:meth:`neighbor_exchange_time`)."""
        return self.book_collective(
            timeline,
            self.neighbor_exchange_time(nbytes_per_boundary),
            ready_s=ready_s,
            label=label,
        )

    def book_broadcast(
        self, timeline: Timeline, nbytes: float, *, ready_s: float = 0.0, label: str = "broadcast"
    ) -> GangBooking:
        """Book a broadcast (:meth:`broadcast_time`) onto the link."""
        return self.book_collective(
            timeline, self.broadcast_time(nbytes), ready_s=ready_s, label=label
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ClusterSpec(name={self.name!r}, num_devices={self.num_devices}, "
            f"interconnect={self.interconnect.name!r})"
        )


@dataclass(frozen=True)
class NodeSpec:
    """One node of a multi-node cluster: GPUs joined by the intra-node tier.

    Attributes
    ----------
    devices:
        The node's member :class:`DeviceSpec` s.
    interconnect:
        The intra-node device-to-device link (P2P/NVLink) — the *fast*
        tier of a :class:`MultiNodeClusterSpec`.
    name:
        Human-readable node name.
    """

    devices: Tuple[DeviceSpec, ...]
    interconnect: InterconnectSpec = PCIE3_P2P
    name: str = "node"

    def __post_init__(self) -> None:
        object.__setattr__(self, "devices", tuple(self.devices))
        # Construction-time validation with ClusterSpec's exact rules: a
        # node *is* a single-interconnect cluster, viewed in isolation.
        self.as_cluster()

    @classmethod
    def homogeneous(
        cls,
        device: DeviceSpec = TITAN_X,
        num_devices: int = 4,
        *,
        interconnect: InterconnectSpec = PCIE3_P2P,
        name: Optional[str] = None,
    ) -> "NodeSpec":
        """A node of ``num_devices`` identical ``device`` s."""
        if num_devices <= 0:
            raise ValueError(f"num_devices must be positive, got {num_devices}")
        return cls(
            devices=(device,) * num_devices,
            interconnect=interconnect,
            name=name or f"{num_devices}x {device.name}",
        )

    @property
    def num_devices(self) -> int:
        """Number of member GPUs."""
        return len(self.devices)

    def as_cluster(self) -> ClusterSpec:
        """This node viewed as a standalone single-interconnect cluster.

        The returned :class:`ClusterSpec` is what a node-local sharded
        placement executes on — its collectives never touch the NIC — and
        what every degenerate one-node :class:`MultiNodeClusterSpec`
        reduces to.
        """
        return ClusterSpec(
            devices=self.devices, interconnect=self.interconnect, name=self.name
        )


@dataclass(frozen=True)
class MultiNodeClusterSpec:
    """Nodes joined by a NIC: the two-tier interconnect hierarchy.

    ``devices`` flattens node-by-node, so flat device slot ``i`` is
    comparable to a :class:`ClusterSpec` slot; the sharded execution
    driver and the serving scheduler index the flat order throughout.

    The collective cost models come in two algorithms, mirroring what real
    collective libraries (NCCL & friends) choose between:

    * **flat ring** — one ring over all ``N`` devices laid out
      node-by-node.  Every step is synchronised, so the per-step cost is
      governed by the *slowest* link in the ring — the NIC, whenever there
      is more than one node.
    * **hierarchical** — reduce-scatter inside each node over the P2P
      tier, a ring across the nodes over the NIC (each device's chunk
      rides its own NIC lane, the rail-optimised layout of modern GPU
      clusters), then an intra-node all-gather.  The expensive NIC tier
      carries only the inter-node ring, so for equal-sized nodes the
      hierarchical schedule is never slower than the flat ring whenever
      the NIC is the slower, higher-latency tier — and strictly faster as
      soon as the P2P tier has bandwidth to spare.

    :meth:`allreduce_time` models the library's algorithm selection: it
    charges whichever schedule is cheaper, so the modeled collective is
    *never* costlier than the flat ring.
    """

    nodes: Tuple[NodeSpec, ...]
    nic: InterconnectSpec = INFINIBAND_EDR
    name: str = "multi-node cluster"
    #: Flat node index of every flat device slot (derived, not an input).
    device_node: Tuple[int, ...] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if not self.nodes:
            raise ValueError("MultiNodeClusterSpec needs at least one node")
        object.__setattr__(self, "nodes", tuple(self.nodes))
        try:
            self.nic.validate()
        except ValueError as exc:
            raise ValueError(f"MultiNodeClusterSpec NIC is invalid: {exc}") from exc
        for i, node in enumerate(self.nodes):
            if not isinstance(node, NodeSpec):
                raise ValueError(
                    f"MultiNodeClusterSpec nodes[{i}] must be a NodeSpec, "
                    f"got {type(node).__name__}"
                )
        # Device ids must be consistent across nodes too, not just within
        # one: the serving cache and the ledgers key on device names.
        seen: dict = {}
        for i, node in enumerate(self.nodes):
            for device in node.devices:
                previous = seen.get(device.name)
                if previous is not None and previous != device:
                    raise ValueError(
                        f"MultiNodeClusterSpec nodes[{i}] reuses the device id "
                        f"{device.name!r} with a different specification"
                    )
                seen[device.name] = device
        object.__setattr__(
            self,
            "device_node",
            tuple(i for i, node in enumerate(self.nodes) for _ in node.devices),
        )

    # ------------------------------------------------------------------ #
    @classmethod
    def homogeneous(
        cls,
        device: DeviceSpec = TITAN_X,
        num_nodes: int = 2,
        devices_per_node: int = 4,
        *,
        intra: InterconnectSpec = PCIE3_P2P,
        nic: InterconnectSpec = INFINIBAND_EDR,
        name: Optional[str] = None,
    ) -> "MultiNodeClusterSpec":
        """``num_nodes`` identical nodes of ``devices_per_node`` GPUs."""
        if num_nodes <= 0:
            raise ValueError(f"num_nodes must be positive, got {num_nodes}")
        node = NodeSpec.homogeneous(device, devices_per_node, interconnect=intra)
        return cls(
            nodes=tuple(
                NodeSpec(
                    devices=node.devices,
                    interconnect=intra,
                    name=f"node{i}: {node.name}",
                )
                for i in range(num_nodes)
            ),
            nic=nic,
            name=name
            or f"{num_nodes} nodes x {devices_per_node}x {device.name} over {nic.name}",
        )

    # ------------------------------------------------------------------ #
    @property
    def num_nodes(self) -> int:
        """Number of member nodes."""
        return len(self.nodes)

    @property
    def devices(self) -> Tuple[DeviceSpec, ...]:
        """Every member GPU, flattened node-by-node."""
        return tuple(d for node in self.nodes for d in node.devices)

    @property
    def num_devices(self) -> int:
        """Total GPUs across all nodes."""
        return sum(node.num_devices for node in self.nodes)

    def node_slots(self, node_index: int) -> Tuple[int, ...]:
        """The flat device slots belonging to node ``node_index``."""
        if not 0 <= node_index < self.num_nodes:
            raise ValueError(
                f"node_index must be in [0, {self.num_nodes}), got {node_index}"
            )
        start = sum(node.num_devices for node in self.nodes[:node_index])
        return tuple(range(start, start + self.nodes[node_index].num_devices))

    @property
    def min_device_memory_bytes(self) -> int:
        """Capacity of the smallest member across all nodes."""
        return min(d.global_mem_bytes for d in self.devices)

    @property
    def max_device_memory_bytes(self) -> int:
        """Capacity of the largest member across all nodes."""
        return max(d.global_mem_bytes for d in self.devices)

    @property
    def total_memory_bytes(self) -> int:
        """Aggregate device memory across every node."""
        return sum(d.global_mem_bytes for d in self.devices)

    @property
    def is_homogeneous(self) -> bool:
        """Whether every member device (across all nodes) is identical."""
        devices = self.devices
        return all(d == devices[0] for d in devices[1:])

    def capability_scores(self, *, flops_per_byte: float = 0.5) -> Tuple[float, ...]:
        """Per-device roofline scores in flat slot order (bytes/s).

        The same formula as :meth:`ClusterSpec.capability_scores`, so
        node-local and cluster-wide placement decisions rank devices
        identically.
        """
        if flops_per_byte <= 0:
            raise ValueError(f"flops_per_byte must be positive, got {flops_per_byte}")
        return tuple(
            min(d.achievable_bandwidth_bytes_per_s, d.peak_flops / flops_per_byte)
            for d in self.devices
        )

    def capability_weights(self, *, flops_per_byte: float = 0.5) -> Tuple[float, ...]:
        """Per-device throughput weights in flat slot order, summing to 1."""
        scores = self.capability_scores(flops_per_byte=flops_per_byte)
        total = sum(scores)
        return tuple(score / total for score in scores)

    def node_capability_weights(self, *, flops_per_byte: float = 0.5) -> Tuple[float, ...]:
        """Per-*node* throughput weights (member scores summed), summing to 1.

        The topology-aware shard partitioner sizes each node's contiguous
        span of the non-zero stream proportional to these weights before
        subdividing the span across the node's devices.
        """
        scores = self.capability_scores(flops_per_byte=flops_per_byte)
        node_scores = []
        start = 0
        for node in self.nodes:
            node_scores.append(sum(scores[start : start + node.num_devices]))
            start += node.num_devices
        total = sum(node_scores)
        return tuple(score / total for score in node_scores)

    def without_node(self, node_index: int) -> "ClusterLike":
        """The survivor topology after losing node ``node_index``.

        Drops the node (its devices, intra-node link and NIC lane) and
        returns the remaining cluster; with exactly one node left the
        result collapses to that node's plain :class:`ClusterSpec` — the
        survivor has no NIC tier to model, matching
        :func:`collapse_cluster` semantics everywhere else.
        """
        if not 0 <= node_index < self.num_nodes:
            raise ValueError(
                f"node_index must be in [0, {self.num_nodes}), got {node_index}"
            )
        if self.num_nodes == 1:
            raise ValueError("cannot drop the only node of a cluster")
        survivors = tuple(
            node for i, node in enumerate(self.nodes) if i != node_index
        )
        return collapse_cluster(
            MultiNodeClusterSpec(
                nodes=survivors,
                nic=self.nic,
                name=f"{self.name} [-node{node_index}]",
            )
        )

    def surviving_slots(self, node_index: int) -> Tuple[int, ...]:
        """Original flat slots that survive the loss of node ``node_index``.

        Survivor-local slot ``i`` (the indexing of
        :meth:`without_node`'s result) corresponds to original flat slot
        ``surviving_slots(node_index)[i]`` — the mapping recovery logic
        uses to keep booking the correct physical lanes after a failure.
        """
        failed = set(self.node_slots(node_index))
        return tuple(s for s in range(self.num_devices) if s not in failed)

    def validate(self) -> None:
        """Re-assert consistency of every node and the NIC."""
        self.nic.validate()
        for node in self.nodes:
            node.as_cluster().validate()

    # ------------------------------------------------------------------ #
    # Two-tier collective cost models
    # ------------------------------------------------------------------ #
    def _slowest_link(self) -> InterconnectSpec:
        """The bottleneck link of a flat ring laid out node-by-node: the
        NIC when the ring crosses nodes, the slowest P2P tier otherwise."""
        links = [node.interconnect for node in self.nodes]
        if self.num_nodes > 1:
            links.append(self.nic)
        return min(links, key=lambda link: (link.bandwidth_bytes_per_s, -link.latency_s))

    def flat_allreduce_time(self, nbytes: float) -> float:
        """Topology-oblivious ring all-reduce over all ``N`` devices.

        The classic ``2 (N - 1)`` step ring, with every synchronised step
        paying the *slowest* link's wire time and latency — for a ring
        laid out node-by-node, the inter-node NIC hop whenever there is
        more than one node.  This is the cost a single-tier
        :class:`ClusterSpec` model would charge, kept as the comparison
        baseline (and as a real algorithm choice for NVLink-style nodes
        whose NIC is *not* the slower tier).
        """
        if nbytes < 0:
            raise ValueError(f"nbytes must be non-negative, got {nbytes}")
        n = self.num_devices
        if n == 1 or nbytes == 0:
            return 0.0
        slowest = self._slowest_link()
        latency = max(
            [node.interconnect.latency_s for node in self.nodes]
            + ([self.nic.latency_s] if self.num_nodes > 1 else [])
        )
        steps = 2 * (n - 1)
        bandwidth_term = (2.0 * (n - 1) / n) * nbytes / slowest.bandwidth_bytes_per_s
        return bandwidth_term + steps * latency

    def hierarchical_allreduce_time(self, nbytes: float) -> float:
        """Three-phase hierarchical all-reduce.

        1. **Intra-node reduce-scatter** over each node's P2P tier (nodes
           run concurrently; the slowest node gates the phase): device
           ``j`` of an ``n``-device node ends up owning the node-reduced
           chunk ``j`` of the payload.
        2. **Inter-node ring** over the NIC: chunk ``j`` all-reduces
           around the ``M`` node leaders' ``j``-th devices.  Each chunk's
           ring rides its own device's NIC lane (the rail-optimised
           layout), so the rings run concurrently and each moves
           ``2 (M - 1) / M`` of its ``nbytes / n_min`` chunk.
        3. **Intra-node all-gather** over the P2P tier, mirroring phase 1.

        A one-node cluster degenerates to exactly
        :meth:`ClusterSpec.allreduce_time` of that node (the inter phase
        vanishes and reduce-scatter + all-gather *is* the ring).
        """
        if nbytes < 0:
            raise ValueError(f"nbytes must be non-negative, got {nbytes}")
        if self.num_devices == 1 or nbytes == 0:
            return 0.0
        intra = 0.0
        for node in self.nodes:
            n = node.num_devices
            if n == 1:
                continue
            link = node.interconnect
            phase = (n - 1) / n * nbytes / link.bandwidth_bytes_per_s + (n - 1) * link.latency_s
            intra = max(intra, 2.0 * phase)  # reduce-scatter + all-gather
        m = self.num_nodes
        if m == 1:
            return intra
        n_min = min(node.num_devices for node in self.nodes)
        inter = (
            2.0 * (m - 1) / m * (nbytes / n_min) / self.nic.bandwidth_bytes_per_s
            + 2 * (m - 1) * self.nic.latency_s
        )
        return intra + inter

    def allreduce_time(self, nbytes: float) -> float:
        """All-reduce under algorithm selection: the cheaper of the
        hierarchical and flat-ring schedules, so the modeled collective is
        never costlier than the flat ring — and genuinely cheaper whenever
        the NIC is the slower, higher-latency tier."""
        return min(self.hierarchical_allreduce_time(nbytes), self.flat_allreduce_time(nbytes))

    def allreduce_algorithm(self, nbytes: float) -> str:
        """Which schedule :meth:`allreduce_time` charges for ``nbytes``
        (``"hierarchical"`` or ``"flat-ring"``; ties go hierarchical)."""
        hier = self.hierarchical_allreduce_time(nbytes)
        return "hierarchical" if hier <= self.flat_allreduce_time(nbytes) else "flat-ring"

    def gather_time(self, nbytes_per_slot: Sequence[float]) -> float:
        """Hierarchical gather onto flat device slot 0.

        Within each node the peers' payloads serialise into the node
        leader over the P2P tier (nodes run concurrently); the non-root
        leaders' node aggregates then serialise into the root's NIC.  A
        one-node cluster degenerates to exactly
        :meth:`ClusterSpec.gather_time`.
        """
        payloads = [float(b) for b in nbytes_per_slot]
        if any(b < 0 for b in payloads):
            raise ValueError("per-slot payloads must be non-negative")
        if len(payloads) != self.num_devices:
            raise ValueError(
                f"got {len(payloads)} payloads for {self.num_devices} devices"
            )
        if self.num_devices <= 1:
            return 0.0
        intra = 0.0
        node_totals = []
        start = 0
        for node in self.nodes:
            n = node.num_devices
            slot_payloads = payloads[start : start + n]
            start += n
            node_totals.append(sum(slot_payloads))
            incoming = sum(slot_payloads[1:])
            if n > 1:
                link = node.interconnect
                intra = max(
                    intra,
                    incoming / link.bandwidth_bytes_per_s + (n - 1) * link.latency_s,
                )
        if self.num_nodes == 1:
            return intra
        crossing = sum(node_totals[1:])
        inter = (
            crossing / self.nic.bandwidth_bytes_per_s
            + (self.num_nodes - 1) * self.nic.latency_s
        )
        return intra + inter

    def neighbor_exchange_time(
        self,
        nbytes_per_boundary: Sequence[float],
        *,
        slots: Optional[Sequence[int]] = None,
        sources: Optional[Sequence[int]] = None,
    ) -> float:
        """Pairwise boundary exchange, priced per tier.

        ``slots[i]`` is the flat device slot *receiving* boundary payload
        ``i``, and ``sources[i]`` the slot sending it — by default the
        adjacent ``slots[i] - 1``, but the sharded execution driver passes
        the previous *executed* shard's slot, which can sit further left
        (or in another node) when empty placeholder shards lie between
        them.  A boundary between devices of different nodes crosses the
        NIC, one within a node rides that node's P2P tier.  The pairs are
        disjoint and full duplex, so the exchanges overlap and the worst
        boundary gates the phase.  Without ``slots`` every boundary
        conservatively pays the slowest tier.
        """
        payloads = [float(b) for b in nbytes_per_boundary]
        if any(b < 0 for b in payloads):
            raise ValueError("per-boundary payloads must be non-negative")
        if not payloads:
            return 0.0
        if slots is None:
            if sources is not None:
                raise ValueError("sources requires slots")
            slowest = self._slowest_link()
            return max(payloads) / slowest.bandwidth_bytes_per_s + slowest.latency_s
        if len(slots) != len(payloads):
            raise ValueError(
                f"got {len(slots)} slots for {len(payloads)} boundary payloads"
            )
        if sources is None:
            sources = [slot - 1 for slot in slots]
        if len(sources) != len(slots):
            raise ValueError(
                f"got {len(sources)} sources for {len(slots)} boundary slots"
            )
        worst = 0.0
        for payload, slot, source in zip(payloads, slots, sources):
            if not 1 <= slot < self.num_devices:
                raise ValueError(
                    f"boundary slot must be in [1, {self.num_devices}), got {slot}"
                )
            if not 0 <= source < slot:
                raise ValueError(
                    f"boundary source must be in [0, {slot}), got {source}"
                )
            if self.device_node[source] != self.device_node[slot]:
                link = self.nic
            else:
                link = self.nodes[self.device_node[slot]].interconnect
            worst = max(worst, payload / link.bandwidth_bytes_per_s + link.latency_s)
        return worst

    def broadcast_time(self, nbytes: float) -> float:
        """Two-tier broadcast from flat slot 0 to every device.

        A binomial tree over the node leaders on the NIC, then concurrent
        intra-node binomial trees on the P2P tier.  A one-node cluster
        degenerates to exactly :meth:`ClusterSpec.broadcast_time`.
        """
        if nbytes < 0:
            raise ValueError(f"nbytes must be non-negative, got {nbytes}")
        if self.num_devices == 1 or nbytes == 0:
            return 0.0
        m = self.num_nodes
        inter = 0.0
        if m > 1:
            inter = ceil(log2(m)) * (
                nbytes / self.nic.bandwidth_bytes_per_s + self.nic.latency_s
            )
        intra = 0.0
        for node in self.nodes:
            n = node.num_devices
            if n == 1:
                continue
            link = node.interconnect
            intra = max(
                intra,
                ceil(log2(n)) * (nbytes / link.bandwidth_bytes_per_s + link.latency_s),
            )
        return inter + intra

    # ------------------------------------------------------------------ #
    # Timeline bookings: collectives occupy every participating tier
    # ------------------------------------------------------------------ #
    def nic_resource_key(self, node_index: int) -> str:
        """Resource key of one node's NIC (the inter-node serial resource)."""
        return f"nic:{self.nodes[node_index].name}"

    def collective_resources(self, timeline: Timeline) -> Tuple[Resource, ...]:
        """The timeline resources a cluster-wide collective occupies.

        Every multi-device node's intra-node link (keyed exactly as that
        node's standalone :meth:`ClusterSpec.link_resource_key`, so
        node-local jobs contend with cluster-wide ones) plus — whenever
        the cluster spans nodes — every node's NIC.  A collective holds
        all of them for its window: the intra phases ride the links, the
        inter-node ring rides the NIC lanes, and no second collective can
        slot into either tier meanwhile.
        """
        resources: List[Resource] = [
            timeline.resource(node.as_cluster().link_resource_key(), category="link")
            for node in self.nodes
            if node.num_devices > 1
        ]
        if self.num_nodes > 1:
            resources.extend(
                timeline.resource(self.nic_resource_key(i), category="nic")
                for i in range(self.num_nodes)
            )
        return tuple(resources)

    def book_collective(
        self,
        timeline: Timeline,
        duration_s: float,
        *,
        ready_s: float = 0.0,
        label: str = "collective",
        discipline: Optional[NicDiscipline] = None,
        request: Optional[CollectiveRequest] = None,
    ) -> GangBooking:
        """Book a pre-priced collective onto every participating tier.

        On an idle timeline the booking ends exactly ``duration_s`` after
        ``ready_s`` — the closed-form cost.  When another job's collective
        already holds a shared NIC, this one waits for it: shared-NIC
        *congestion* under concurrent cross-node jobs, with the idle model
        as the exact lower bound (and the degenerate single-job case).

        ``discipline``/``request`` mirror
        :meth:`ClusterSpec.book_collective`: the NIC queue discipline's
        per-job service ledger is updated, while any reordering stays the
        scheduler's move.
        """
        gang = timeline.book_together(
            self.collective_resources(timeline),
            duration_s,
            ready_s=ready_s,
            label=label,
        )
        if discipline is not None and request is not None:
            discipline.note_dispatch(request)
        return gang

    def book_allreduce(
        self, timeline: Timeline, nbytes: float, *, ready_s: float = 0.0, label: str = "allreduce"
    ) -> GangBooking:
        """Book an all-reduce (:meth:`allreduce_time`, algorithm-selected)."""
        return self.book_collective(
            timeline, self.allreduce_time(nbytes), ready_s=ready_s, label=label
        )

    def book_gather(
        self,
        timeline: Timeline,
        nbytes_per_slot: Sequence[float],
        *,
        ready_s: float = 0.0,
        label: str = "gather",
    ) -> GangBooking:
        """Book a hierarchical gather (:meth:`gather_time`)."""
        return self.book_collective(
            timeline, self.gather_time(nbytes_per_slot), ready_s=ready_s, label=label
        )

    def book_neighbor_exchange(
        self,
        timeline: Timeline,
        nbytes_per_boundary: Sequence[float],
        *,
        ready_s: float = 0.0,
        label: str = "boundary-exchange",
        slots: Optional[Sequence[int]] = None,
        sources: Optional[Sequence[int]] = None,
    ) -> GangBooking:
        """Book a boundary exchange (:meth:`neighbor_exchange_time`)."""
        return self.book_collective(
            timeline,
            self.neighbor_exchange_time(nbytes_per_boundary, slots=slots, sources=sources),
            ready_s=ready_s,
            label=label,
        )

    def book_broadcast(
        self, timeline: Timeline, nbytes: float, *, ready_s: float = 0.0, label: str = "broadcast"
    ) -> GangBooking:
        """Book a two-tier broadcast (:meth:`broadcast_time`)."""
        return self.book_collective(
            timeline, self.broadcast_time(nbytes), ready_s=ready_s, label=label
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MultiNodeClusterSpec(name={self.name!r}, num_nodes={self.num_nodes}, "
            f"num_devices={self.num_devices}, nic={self.nic.name!r})"
        )


#: Anything the sharded execution driver and the serving placer accept as
#: "the cluster": one node's GPUs, or several nodes over a NIC.
ClusterLike = Union[ClusterSpec, MultiNodeClusterSpec]


def collapse_cluster(cluster: ClusterLike) -> ClusterLike:
    """Collapse a one-*node* multi-node spec to its node's :class:`ClusterSpec`.

    There is no NIC tier to model in a one-node cluster, and the
    single-node cost path is bit-identical by construction; collapsing
    eagerly keeps every consumer (kernels, placer, scheduler, reports) on
    the exact single-tier code path.  Idempotent; anything else passes
    through unchanged.
    """
    if isinstance(cluster, MultiNodeClusterSpec) and cluster.num_nodes == 1:
        return cluster.nodes[0].as_cluster()
    return cluster


def resolve_cluster(
    device: DeviceSpec,
    cluster: Optional[ClusterLike],
    devices: Optional[int],
) -> Tuple[DeviceSpec, Optional[ClusterLike]]:
    """Normalise the ``cluster=`` / ``devices=`` kernel parameters.

    The kernels accept a full :class:`ClusterSpec`, a two-tier
    :class:`MultiNodeClusterSpec`, or a bare device count (which builds a
    homogeneous single-node cluster of the kernel's ``device``).  Returns
    ``(single_device, multi_cluster)`` where exactly one execution mode is
    active: the cluster is ``None`` when execution is effectively
    single-device — no cluster requested, or a cluster/count of one — so
    callers keep the exact single-GPU code path (and its numerics and
    profile shape) in that case, running on the cluster's sole member when
    one was given.  A one-*node* multi-node cluster likewise collapses to
    its node's plain :class:`ClusterSpec` — there is no NIC tier to model,
    and the single-node cost path is bit-identical by construction.
    """
    if cluster is not None and devices is not None and devices != cluster.num_devices:
        raise ValueError(
            f"devices={devices} contradicts the provided cluster of "
            f"{cluster.num_devices} devices; pass one or the other"
        )
    if cluster is None:
        if devices is None:
            return device, None
        if devices <= 0:
            raise ValueError(f"devices must be positive, got {devices}")
        if devices == 1:
            return device, None
        cluster = ClusterSpec.homogeneous(device, devices)
    cluster = collapse_cluster(cluster)
    if cluster.num_devices == 1:
        return cluster.devices[0], None
    return device, cluster
