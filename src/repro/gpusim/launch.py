"""Kernel launch configurations and occupancy.

The unified kernels launch a two-dimensional *grid* of one-dimensional
thread blocks (paper Figure 4): the x dimension of the grid covers the
non-zero partitions (``ceil(nnz / (BLOCK_SIZE * threadlen))`` blocks), the
y dimension covers the factor-matrix columns (the rank).  ``threadlen`` is
the number of non-zeros processed by each thread; together with
``BLOCK_SIZE`` it is the tunable of Figure 5 / Table V.
"""

from __future__ import annotations

from dataclasses import dataclass
from repro.gpusim.device import DeviceSpec
from repro.util.validation import check_positive_int

__all__ = ["LaunchConfig"]


@dataclass(frozen=True)
class LaunchConfig:
    """A 2-D grid of 1-D thread blocks plus the per-thread work size.

    Attributes
    ----------
    block_size:
        Threads per (1-D) block — the paper's ``BLOCK_SIZE``.
    grid_x:
        Number of blocks along x (non-zero partitions).
    grid_y:
        Number of blocks along y (one per factor column group; the unified
        kernels use ``grid_y = rank``).
    threadlen:
        Non-zeros processed per thread — the paper's ``threadlen``.
    """

    block_size: int
    grid_x: int
    grid_y: int = 1
    threadlen: int = 1

    def __post_init__(self) -> None:
        check_positive_int(self.block_size, "block_size")
        check_positive_int(self.grid_x, "grid_x")
        check_positive_int(self.grid_y, "grid_y")
        check_positive_int(self.threadlen, "threadlen")

    # ------------------------------------------------------------------ #
    @classmethod
    def for_nnz(
        cls,
        nnz: int,
        rank: int,
        *,
        block_size: int = 128,
        threadlen: int = 8,
    ) -> "LaunchConfig":
        """Unified-kernel launch covering ``nnz`` non-zeros and ``rank`` columns.

        ``grid_x`` is the number of partitions of ``block_size * threadlen``
        non-zeros; ``grid_y`` equals the rank (paper Figure 4).
        """
        nnz = check_positive_int(nnz, "nnz")
        rank = check_positive_int(rank, "rank")
        per_block = block_size * threadlen
        grid_x = -(-nnz // per_block)
        return cls(block_size=block_size, grid_x=grid_x, grid_y=rank, threadlen=threadlen)

    # ------------------------------------------------------------------ #
    @property
    def num_blocks(self) -> int:
        """Total thread blocks in the grid."""
        return self.grid_x * self.grid_y

    @property
    def total_threads(self) -> int:
        """Total threads launched."""
        return self.num_blocks * self.block_size

    @property
    def nnz_capacity(self) -> int:
        """Non-zeros covered along the x dimension (``grid_x·block_size·threadlen``)."""
        return self.grid_x * self.block_size * self.threadlen

    def validate_against(self, device: DeviceSpec) -> None:
        """Raise if this launch exceeds the device's per-block limits."""
        if self.block_size > device.max_threads_per_block:
            raise ValueError(
                f"block_size {self.block_size} exceeds device limit "
                f"{device.max_threads_per_block}"
            )
        if self.block_size % device.warp_size != 0:
            raise ValueError(
                f"block_size {self.block_size} must be a multiple of the warp size "
                f"({device.warp_size})"
            )

    def occupancy(self, device: DeviceSpec) -> float:
        """Fraction of the device's resident-thread capacity this launch can fill.

        Determined by the smaller of the thread- and block-count limits per
        SM, then capped by how many threads the grid actually provides.  A
        launch with very few blocks (e.g. ParTI's fiber-parallel SpTTM on a
        mode with 540 fibers) cannot fill the device regardless of block
        size — that is the under-utilisation the paper describes for
        Figure 7.
        """
        self.validate_against(device)
        blocks_per_sm_by_threads = device.max_threads_per_sm // self.block_size
        blocks_per_sm = min(device.max_blocks_per_sm, blocks_per_sm_by_threads)
        if blocks_per_sm == 0:
            return 0.0
        resident_threads_limit = blocks_per_sm * self.block_size * device.num_sms
        resident_threads_limit = min(resident_threads_limit, device.max_resident_threads)
        usable_threads = min(self.total_threads, resident_threads_limit)
        return usable_threads / device.max_resident_threads

    def utilization(self, device: DeviceSpec, active_threads: float) -> float:
        """Fraction of device lanes doing useful work.

        ``active_threads`` is the number of threads with real work (from the
        kernel's ledger); utilisation is additionally capped by occupancy.
        """
        if active_threads < 0:
            raise ValueError(f"active_threads must be non-negative, got {active_threads}")
        occ = self.occupancy(device)
        if occ == 0.0:
            return 0.0
        thread_fill = min(1.0, active_threads / device.max_resident_threads)
        return max(min(occ, thread_fill), 1e-6)
