"""Work ledgers recorded by simulated kernels.

Every simulated kernel produces a :class:`KernelCounters` ledger describing
the work it performed — floating-point operations, *effective* (post
coalescing) global-memory traffic, shared-memory traffic, atomics, the
degree of load imbalance, and the number of device kernel launches.  The
ledger is converted to an estimated execution time by
:func:`repro.gpusim.timing.estimate_kernel_time`.

``KernelProfile`` bundles the ledger with the launch configuration, the
estimated time and the device-memory footprint, and is the object the
benchmark harness consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict, Optional

__all__ = ["KernelCounters", "KernelProfile"]


@dataclass
class KernelCounters:
    """Accumulated work of one (or several fused) simulated kernel(s).

    All traffic fields are *effective* byte counts, i.e. they already account
    for coalescing waste (a random 4-byte access that transfers a 32-byte
    sector is charged 32 bytes).

    Attributes
    ----------
    flops:
        Floating-point operations (multiply and add counted separately).
    gmem_read_bytes / gmem_write_bytes:
        Effective global-memory traffic.
    smem_bytes:
        Shared-memory traffic (cheap, but contributes when kernels are not
        fused and intermediate data spills to global memory instead).
    atomic_ops:
        Number of atomic read-modify-write operations issued.
    atomic_serialized_ops:
        Atomics after applying the contention factor — what the timing model
        charges (see :mod:`repro.gpusim.atomics`).
    active_threads:
        Number of threads that actually have work; drives occupancy /
        utilisation.
    imbalance_factor:
        ``>= 1``; ratio of the busiest thread's work to the mean.  Static
        work distribution multiplies the whole kernel time by this factor.
    kernel_launches:
        Number of device kernel launches (fixed host overhead each).
    host_to_device_bytes / device_to_host_bytes:
        PCIe traffic (format conversions, result copies) charged separately.
    """

    flops: float = 0.0
    gmem_read_bytes: float = 0.0
    gmem_write_bytes: float = 0.0
    smem_bytes: float = 0.0
    atomic_ops: float = 0.0
    atomic_serialized_ops: float = 0.0
    active_threads: float = 0.0
    imbalance_factor: float = 1.0
    kernel_launches: int = 0
    host_to_device_bytes: float = 0.0
    device_to_host_bytes: float = 0.0

    def __post_init__(self) -> None:
        for f in fields(self):
            value = getattr(self, f.name)
            if f.name == "imbalance_factor":
                if value < 1.0:
                    raise ValueError(f"imbalance_factor must be >= 1, got {value}")
            elif value < 0:
                raise ValueError(f"{f.name} must be non-negative, got {value}")

    # ------------------------------------------------------------------ #
    @property
    def gmem_total_bytes(self) -> float:
        """Total effective global traffic (reads + writes)."""
        return self.gmem_read_bytes + self.gmem_write_bytes

    def merge(self, other: "KernelCounters") -> "KernelCounters":
        """Combine two ledgers (e.g. the stages of a fused kernel).

        Traffic, FLOPs and atomics add; ``active_threads`` takes the maximum
        (phases share the same grid); ``imbalance_factor`` takes the
        work-weighted maximum as a conservative bound.
        """
        if not isinstance(other, KernelCounters):
            raise TypeError("merge expects another KernelCounters")
        return KernelCounters(
            flops=self.flops + other.flops,
            gmem_read_bytes=self.gmem_read_bytes + other.gmem_read_bytes,
            gmem_write_bytes=self.gmem_write_bytes + other.gmem_write_bytes,
            smem_bytes=self.smem_bytes + other.smem_bytes,
            atomic_ops=self.atomic_ops + other.atomic_ops,
            atomic_serialized_ops=self.atomic_serialized_ops + other.atomic_serialized_ops,
            active_threads=max(self.active_threads, other.active_threads),
            imbalance_factor=max(self.imbalance_factor, other.imbalance_factor),
            kernel_launches=self.kernel_launches + other.kernel_launches,
            host_to_device_bytes=self.host_to_device_bytes + other.host_to_device_bytes,
            device_to_host_bytes=self.device_to_host_bytes + other.device_to_host_bytes,
        )

    def __add__(self, other: "KernelCounters") -> "KernelCounters":
        return self.merge(other)

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view (used by the benchmark harness for reporting)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


@dataclass
class KernelProfile:
    """A simulated kernel execution: ledger + launch + estimated time.

    Attributes
    ----------
    name:
        Kernel name (e.g. ``"unified-spmttkrp-mode0"``).
    counters:
        The work ledger.
    estimated_time_s:
        Estimated execution time on the target device.
    device_memory_bytes:
        Peak device-memory footprint of the kernel's operands (inputs,
        outputs and any intermediate tensors).
    breakdown:
        Optional named sub-times (compute/memory/atomic/launch) for
        reporting.
    streaming:
        When the kernel executed out-of-core, the
        :class:`repro.kernels.unified.streaming.StreamedExecution` ledger
        (per-chunk counters plus the resolved transfer/compute pipeline);
        ``None`` for one-shot executions.
    sharded:
        When the kernel executed across a multi-GPU cluster, the
        :class:`repro.kernels.unified.sharded.ShardedExecution` ledger
        (per-device shard counters plus the modeled reduction); ``None``
        for single-device executions.
    """

    name: str
    counters: KernelCounters
    estimated_time_s: float
    device_memory_bytes: float = 0.0
    breakdown: Dict[str, float] = field(default_factory=dict)
    streaming: Optional[object] = None
    sharded: Optional[object] = None

    def __post_init__(self) -> None:
        if self.estimated_time_s < 0:
            raise ValueError(f"estimated_time_s must be non-negative, got {self.estimated_time_s}")
        if self.device_memory_bytes < 0:
            raise ValueError(
                f"device_memory_bytes must be non-negative, got {self.device_memory_bytes}"
            )

    def combined(self, other: "KernelProfile", *, name: Optional[str] = None) -> "KernelProfile":
        """Sequentially compose two profiles (times add, footprints max)."""
        merged_breakdown = dict(self.breakdown)
        for key, value in other.breakdown.items():
            merged_breakdown[key] = merged_breakdown.get(key, 0.0) + value
        return KernelProfile(
            name=name or f"{self.name}+{other.name}",
            counters=self.counters.merge(other.counters),
            estimated_time_s=self.estimated_time_s + other.estimated_time_s,
            device_memory_bytes=max(self.device_memory_bytes, other.device_memory_bytes),
            breakdown=merged_breakdown,
        )
