"""The unified simulated-time resource engine.

Every layer of this reproduction models time the same way: some *serial
resource* (a DMA copy engine, a compute engine, an intra-node P2P link, a
per-node NIC) is busy for a while, and work that needs the resource waits
until it frees.  Before this module existed the bookkeeping lived in three
disconnected places — the two-resource copy/compute recurrence of the
out-of-core stream pipeline, the closed-form collective pricing of the
cluster model, and a re-implementation of per-device engine horizons inside
the serving scheduler.  This module is the one timeline they all book now:

* :class:`Resource` — a serial resource with *busy-until* bookkeeping: a
  booking starts at ``max(ready, free)`` and occupies the resource for its
  duration.  Dependency-ordered task booking is expressed through the
  ``ready_s`` argument (pass the completion time of whatever the task
  depends on).
* :class:`Timeline` — the registry of resources plus the queryable event
  trace.  It answers per-resource busy time and utilisation, gang-books a
  set of resources together (the collective primitive: an all-reduce
  occupies every participating link/NIC for the same window), and exports
  the trace in Chrome ``chrome://tracing`` JSON for visual inspection
  (``python -m repro serve --trace out.json``).
* :class:`SimClock` — a monotone simulated-time clock for event-driven
  drivers (the serving scheduler advances one).

The out-of-core stream pipeline of Section IV-D lives here too
(:class:`ChunkTiming` / :class:`StreamSchedule` / :func:`schedule_chunks`):
it *is* two resources of one timeline — the copy engine and the compute
engine of one device — with the ``num_streams`` buffer bound expressed as a
dependency on the kernel completion of the chunk ``num_streams`` positions
earlier.  ``repro.gpusim.streams`` remains as a thin compatibility shim
re-exporting these names.

Booking arithmetic is deliberately bit-stable: ``start = max(ready, free)``
and ``end = start + duration`` are exactly the operations the pre-refactor
recurrences performed, so refactored layers reproduce their old modeled
seconds bit for bit on idle resources; only *contention* (a busy NIC) or
*overlap* (a collective riding the links while compute proceeds) moves
modeled time, and only in the direction the resource model dictates.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.util.validation import check_positive_int

__all__ = [
    "SimClock",
    "Span",
    "SPAN_PHASES",
    "Booking",
    "GangBooking",
    "Resource",
    "Timeline",
    "NIC_POLICIES",
    "CollectiveRequest",
    "NicDiscipline",
    "FairDiscipline",
    "PriorityDiscipline",
    "make_nic_discipline",
    "device_copy_key",
    "device_compute_key",
    "ChunkTiming",
    "StreamSchedule",
    "schedule_chunks",
    "pipeline_time",
]


def device_copy_key(slot: int) -> str:
    """Resource key of device ``slot``'s copy (DMA/staging) engine."""
    return f"dev{slot}.copy"


def device_compute_key(slot: int) -> str:
    """Resource key of device ``slot``'s compute engine."""
    return f"dev{slot}.compute"


class SimClock:
    """A monotone simulated-time clock.

    Event-driven drivers (the serving scheduler) keep their "now" here.
    :meth:`advance_to` only ever moves forward: a target already in the
    past is a no-op returning the unchanged "now" (schedulers routinely
    clamp to ``max(now, event time)`` — this is that clamp), so the clock
    can never run backwards; non-finite targets raise.
    """

    def __init__(self, now_s: float = 0.0) -> None:
        if not math.isfinite(now_s) or now_s < 0.0:
            raise ValueError(f"now_s must be finite and non-negative, got {now_s}")
        self._now_s = float(now_s)

    @property
    def now_s(self) -> float:
        """The current simulated time."""
        return self._now_s

    def advance_to(self, t_s: float) -> float:
        """Move the clock forward to ``t_s`` (no-op when already past it)."""
        if not math.isfinite(t_s):
            raise ValueError(f"cannot advance the clock to {t_s}")
        if t_s > self._now_s:
            self._now_s = float(t_s)
        return self._now_s

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SimClock(now_s={self._now_s})"


#: The attribution phases a :class:`Span` may carry.  ``nic_wait`` never
#: appears on a booking — queueing delay is derived per booking from
#: ``start - ready`` (see :attr:`Booking.wait_s`) — but it is a phase of
#: the attribution output, so it is part of the closed vocabulary.
SPAN_PHASES = ("stage", "compute", "collective", "nic_wait", "resume", "recovery")


@dataclass(frozen=True)
class Span:
    """Attribution tag for a booking: which job/kernel/phase incurred it.

    Telemetry-only — a span never changes booking arithmetic.  The
    observability layer (:mod:`repro.obs.attribution`) folds the event
    trace by span into per-job and per-resource cost breakdowns.
    """

    job_id: str
    kernel: str = ""
    phase: str = ""

    def __post_init__(self) -> None:
        if self.phase and self.phase not in SPAN_PHASES:
            raise ValueError(
                f"span phase must be one of {SPAN_PHASES}, got {self.phase!r}"
            )


@dataclass(frozen=True)
class Booking:
    """One task's occupancy of one resource (an event of the trace).

    ``busy=False`` marks a *reservation* rather than work: the resource is
    held (nothing else may book it) but the interval does not count toward
    its busy time — e.g. a compute engine waiting on the collective its
    device participates in.

    ``ready_s`` records when the booked work *became* ready (the caller's
    dependency instant, before the serial-resource gate), so ``start_s -
    ready_s`` is the queueing delay the work suffered at this resource.
    ``span`` optionally attributes the booking to a job/kernel/phase.
    Both are record-only: they never alter ``start``/``end`` arithmetic.
    """

    resource: str
    label: str
    category: str
    start_s: float
    end_s: float
    busy: bool = True
    ready_s: float = 0.0
    span: Optional[Span] = None

    @property
    def duration_s(self) -> float:
        """Length of the booked interval."""
        return self.end_s - self.start_s

    @property
    def wait_s(self) -> float:
        """Queueing delay: seconds between ready and start (never negative)."""
        return max(0.0, self.start_s - self.ready_s)


@dataclass(frozen=True)
class GangBooking:
    """A set of resources booked together for one shared window.

    The collective primitive: an all-reduce occupies every participating
    link and NIC for the same interval, so the window starts only when the
    *last* participant frees.
    """

    start_s: float
    end_s: float
    bookings: Tuple[Booking, ...]

    @property
    def duration_s(self) -> float:
        """Length of the shared window."""
        return self.end_s - self.start_s


class Resource:
    """A serial resource with busy-until bookkeeping.

    Created through :meth:`Timeline.resource`; not constructed directly so
    every booking lands in its timeline's trace.
    """

    def __init__(self, timeline: "Timeline", key: str, category: str) -> None:
        self._timeline = timeline
        self.key = key
        self.category = category
        self.free_s = 0.0  # busy-until horizon: earliest start of a new booking
        self.busy_s = 0.0  # accumulated busy-marked booking seconds
        self.wait_s = 0.0  # accumulated queueing delay (start - ready) seconds
        self.num_bookings = 0
        self._bookings: List[Booking] = []  # this resource's bookings, in order

    def book(
        self,
        duration_s: float,
        *,
        ready_s: float = 0.0,
        label: str = "",
        busy: bool = True,
        span: Optional[Span] = None,
        queued_from_s: Optional[float] = None,
    ) -> Booking:
        """Book ``duration_s`` seconds, no earlier than ``ready_s``.

        The booking starts at ``max(ready_s, free)`` — the dependency gate
        and the serial-resource gate — and advances the resource's horizon
        to its end.  Returns the recorded :class:`Booking`.

        ``span`` attributes the booking (telemetry-only).  ``queued_from_s``
        overrides the instant recorded as the work's readiness for wait
        accounting — gang bookings pass the caller's *original* ready
        through it, because the gang start (which becomes each member's
        ``ready_s`` gate) already includes the queueing delay being
        measured.  Neither changes start/end arithmetic.
        """
        if not math.isfinite(duration_s) or duration_s < 0.0:
            raise ValueError(
                f"booking duration must be finite and non-negative, got {duration_s}"
            )
        if not math.isfinite(ready_s) or ready_s < 0.0:
            raise ValueError(f"ready_s must be finite and non-negative, got {ready_s}")
        start = max(ready_s, self.free_s)
        end = start + duration_s
        queued_from = ready_s if queued_from_s is None else queued_from_s
        if not math.isfinite(queued_from) or queued_from < 0.0:
            raise ValueError(
                f"queued_from_s must be finite and non-negative, got {queued_from}"
            )
        booking = Booking(
            resource=self.key,
            label=label,
            category=self.category,
            start_s=start,
            end_s=end,
            busy=busy,
            ready_s=queued_from,
            span=span,
        )
        self.free_s = end
        if busy:
            self.busy_s += duration_s
        self.wait_s += booking.wait_s
        self.num_bookings += 1
        self._bookings.append(booking)
        self._timeline._record(booking)
        return booking

    @property
    def bookings(self) -> Tuple[Booking, ...]:
        """This resource's bookings, in booking order."""
        return tuple(self._bookings)

    @property
    def last_booking(self) -> Optional[Booking]:
        """The most recent booking on this resource (``None`` when idle)."""
        return self._bookings[-1] if self._bookings else None

    def is_tail(self, bookings: Sequence[Booking]) -> bool:
        """Whether ``bookings`` are exactly this resource's newest bookings.

        Tail-ness is what makes a release sound: rolling the busy-until
        horizon back is only meaningful when nothing was booked *after*
        the released work.
        """
        tail = self._bookings[len(self._bookings) - len(bookings):]
        if len(tail) != len(bookings):
            return False
        return {id(b) for b in bookings} == {id(b) for b in tail}

    @property
    def wait_time(self) -> float:
        """Accumulated queueing delay across this resource's bookings.

        The per-resource congestion signal: seconds work spent ready but
        blocked behind earlier bookings (``start - ready`` summed over
        bookings).  Service time is :attr:`busy_s`; the two never mix.
        """
        return self.wait_s

    def utilization(self, makespan_s: Optional[float] = None) -> float:
        """Busy fraction of ``makespan_s`` (the timeline's by default).

        Deliberately *unclamped*: a serial resource's busy time can never
        legitimately exceed the span it was booked within, so a value
        above 1 is an accounting bug (double-booked busy seconds) that a
        ``min(1.0, ...)`` would silently mask.  See
        :meth:`Timeline.violations`.
        """
        span = self._timeline.makespan_s if makespan_s is None else makespan_s
        if span <= 0.0:
            return 0.0
        return self.busy_s / span

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Resource(key={self.key!r}, category={self.category!r}, "
            f"free_s={self.free_s}, busy_s={self.busy_s})"
        )


ResourceLike = Union[str, Resource]


@dataclass
class Timeline:
    """One simulated timeline: the resource registry plus the event trace.

    Resources are created on demand by :meth:`resource` and identified by
    string keys (:func:`device_copy_key` / :func:`device_compute_key` for
    device engines; the cluster model derives ``link:<node>`` /
    ``nic:<node>`` keys for its interconnect tiers).  Layers that share a
    timeline therefore share its resources: a serving scheduler and the
    collectives of the jobs it dispatches contend for the same NICs.
    """

    clock: SimClock = field(default_factory=SimClock)
    events: List[Booking] = field(default_factory=list)
    _resources: Dict[str, Resource] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    def _record(self, booking: Booking) -> None:
        self.events.append(booking)

    def resource(self, key: str, *, category: str = "") -> Resource:
        """The resource registered under ``key`` (created on first use)."""
        existing = self._resources.get(key)
        if existing is None:
            existing = self._resources[key] = Resource(self, key, category)
        return existing

    def has_resource(self, key: str) -> bool:
        """Whether ``key`` has been booked or created on this timeline."""
        return key in self._resources

    @property
    def resources(self) -> Tuple[Resource, ...]:
        """Every registered resource, in creation order."""
        return tuple(self._resources.values())

    def _resolve(self, resource: ResourceLike) -> Resource:
        if isinstance(resource, Resource):
            if resource._timeline is not self:
                raise ValueError(
                    f"resource {resource.key!r} belongs to a different timeline"
                )
            return resource
        return self.resource(resource)

    # ------------------------------------------------------------------ #
    def book(
        self,
        resource: ResourceLike,
        duration_s: float,
        *,
        ready_s: float = 0.0,
        label: str = "",
        busy: bool = True,
        span: Optional[Span] = None,
        queued_from_s: Optional[float] = None,
    ) -> Booking:
        """Book one resource (see :meth:`Resource.book`)."""
        return self._resolve(resource).book(
            duration_s,
            ready_s=ready_s,
            label=label,
            busy=busy,
            span=span,
            queued_from_s=queued_from_s,
        )

    def book_together(
        self,
        resources: Sequence[ResourceLike],
        duration_s: float,
        *,
        ready_s: float = 0.0,
        label: str = "",
        busy: bool = True,
        span: Optional[Span] = None,
        queued_from_s: Optional[float] = None,
    ) -> GangBooking:
        """Gang-book ``resources`` for one shared window.

        The window starts at ``max(ready_s, every participant's free
        horizon)`` — a collective cannot begin until its slowest member is
        available — and every participant is occupied until it ends.

        Each member's recorded readiness for wait accounting is the
        caller's ``ready_s`` (or explicit ``queued_from_s``), *not* the
        resolved gang start: the delay between the work becoming ready and
        the slowest member freeing is exactly the queueing the collective
        suffered, and passing the gang start through as the gate would
        erase it.
        """
        members = [self._resolve(r) for r in resources]
        if not members:
            raise ValueError("book_together needs at least one resource")
        start = ready_s
        for member in members:
            start = max(start, member.free_s)
        queued_from = ready_s if queued_from_s is None else queued_from_s
        bookings = tuple(
            member.book(
                duration_s,
                ready_s=start,
                label=label,
                busy=busy,
                span=span,
                queued_from_s=queued_from,
            )
            for member in members
        )
        return GangBooking(
            start_s=bookings[0].start_s, end_s=bookings[0].end_s, bookings=bookings
        )

    # ------------------------------------------------------------------ #
    # Releasable bookings (the preemption primitive)
    # ------------------------------------------------------------------ #
    def release(self, bookings: Sequence[Booking]) -> float:
        """Release ``bookings`` back to their resources.

        The inverse of :meth:`book`, making bookings *checkpointable*: a
        deadline-aware scheduler preempts a job by releasing its not-yet-
        consumed bookings, which rolls each resource's busy-until horizon
        back so a latency-class job can book the freed window, and later
        re-books the victim's remaining work from its released ledger.

        Per resource, the released set must be exactly that resource's
        newest bookings (see :meth:`Resource.is_tail`): releasing an
        interior booking would leave later bookings floating on a horizon
        that no longer exists.  Raises :class:`ValueError` otherwise, and
        releases nothing.  Returns the total *busy* seconds given back.
        """
        by_resource: Dict[str, List[Booking]] = {}
        for booking in bookings:
            by_resource.setdefault(booking.resource, []).append(booking)
        resolved: List[Tuple[Resource, List[Booking]]] = []
        for key, group in by_resource.items():
            existing = self._resources.get(key)
            if existing is None:
                raise ValueError(f"unknown resource {key!r}")
            if not existing.is_tail(group):
                raise ValueError(
                    f"can only release the tail of {key!r}: later bookings "
                    f"exist past the requested ones"
                )
            resolved.append((existing, group))
        released_ids = {id(b) for b in bookings}
        if len(released_ids) != len(bookings):
            raise ValueError("duplicate bookings in release set")
        released_busy = 0.0
        for resource, group in resolved:
            keep = len(resource._bookings) - len(group)
            for stale in resource._bookings[keep:]:
                if stale.busy:
                    resource.busy_s -= stale.duration_s
                    released_busy += stale.duration_s
                resource.wait_s -= stale.wait_s
            del resource._bookings[keep:]
            resource.num_bookings -= len(group)
            resource.free_s = resource._bookings[-1].end_s if keep else 0.0
        self.events[:] = [e for e in self.events if id(e) not in released_ids]
        return released_busy

    def truncate(self, booking: Booking, end_s: float) -> Booking:
        """Shorten an in-flight tail booking to end at ``end_s``.

        The chunk-boundary half of preemption: a streamed job's compute
        booking that straddles the preemption instant is cut at the first
        chunk boundary past it; the work before the cut stands, the rest
        is given back.  ``booking`` must be the newest booking on its
        resource and ``end_s`` must fall inside it.  Returns the shortened
        replacement :class:`Booking` (the original is dropped from the
        trace).
        """
        existing = self._resources.get(booking.resource)
        if existing is None or existing.last_booking is not booking:
            raise ValueError(
                f"can only truncate the newest booking of {booking.resource!r}"
            )
        if not (booking.start_s <= end_s <= booking.end_s):
            raise ValueError(
                f"truncation point {end_s} outside booking "
                f"[{booking.start_s}, {booking.end_s}]"
            )
        shortened = replace(booking, end_s=end_s)
        existing._bookings[-1] = shortened
        existing.free_s = end_s
        if booking.busy:
            existing.busy_s -= booking.end_s - end_s
        for i in range(len(self.events) - 1, -1, -1):
            if self.events[i] is booking:
                self.events[i] = shortened
                break
        else:  # pragma: no cover - _bookings and events always agree
            raise ValueError("booking missing from the event trace")
        return shortened

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    @property
    def makespan_s(self) -> float:
        """Completion time of the last booking (0 on an empty timeline)."""
        return max((e.end_s for e in self.events), default=0.0)

    def busy_s(self, key: str) -> float:
        """Accumulated busy seconds of one resource (0 when never booked)."""
        existing = self._resources.get(key)
        return existing.busy_s if existing is not None else 0.0

    def wait_s(self, key: str) -> float:
        """Accumulated queueing delay of one resource (0 when never booked)."""
        existing = self._resources.get(key)
        return existing.wait_s if existing is not None else 0.0

    def free_s(self, key: str) -> float:
        """Busy-until horizon of one resource (0 when never booked)."""
        existing = self._resources.get(key)
        return existing.free_s if existing is not None else 0.0

    def utilization(self, key: str, *, makespan_s: Optional[float] = None) -> float:
        """Busy fraction of one resource over the makespan, in ``[0, 1]``."""
        existing = self._resources.get(key)
        if existing is None:
            return 0.0
        return existing.utilization(makespan_s)

    def utilizations(self, *, category: Optional[str] = None) -> Dict[str, float]:
        """Per-resource busy fractions (optionally one category only)."""
        span = self.makespan_s
        return {
            r.key: r.utilization(span)
            for r in self._resources.values()
            if category is None or r.category == category
        }

    def violations(self, *, makespan_s: Optional[float] = None) -> Dict[str, float]:
        """Resources whose busy time exceeds the span they were booked in.

        A serial resource accumulates busy seconds only through bookings
        that fit inside the makespan, so ``busy_s > makespan`` is an
        over-booking bug (double-counted busy time), never a legitimate
        state.  Returns ``{key: busy_s - span}`` for every offender — an
        empty dict on a healthy timeline.  A tiny relative epsilon absorbs
        float summation noise across many bookings.
        """
        span = self.makespan_s if makespan_s is None else makespan_s
        tolerance = 1e-9 * max(span, 1.0)
        return {
            r.key: r.busy_s - span
            for r in self._resources.values()
            if r.busy_s > span + tolerance
        }

    def events_for(
        self,
        *,
        resource: Optional[str] = None,
        category: Optional[str] = None,
        busy_only: bool = False,
    ) -> List[Booking]:
        """The trace, filtered by resource key and/or category."""
        return [
            e
            for e in self.events
            if (resource is None or e.resource == resource)
            and (category is None or e.category == category)
            and (not busy_only or e.busy)
        ]

    # ------------------------------------------------------------------ #
    # Chrome tracing export
    # ------------------------------------------------------------------ #
    def chrome_trace(self) -> Dict[str, object]:
        """The trace as a Chrome ``chrome://tracing`` JSON object.

        One trace thread per resource (named by its key), one complete
        (``ph: "X"``) event per booking, timestamps in microseconds.  Load
        the file in ``chrome://tracing`` or https://ui.perfetto.dev.
        """
        tids = {key: i for i, key in enumerate(self._resources)}
        trace_events: List[Dict[str, object]] = [
            {
                "ph": "M",
                "pid": 0,
                "tid": tid,
                "name": "thread_name",
                "args": {"name": key},
            }
            for key, tid in tids.items()
        ]
        for event in self.events:
            args: Dict[str, object] = {"busy": event.busy}
            if event.span is not None:
                args["job_id"] = event.span.job_id
                if event.span.kernel:
                    args["kernel"] = event.span.kernel
                if event.span.phase:
                    args["phase"] = event.span.phase
            trace_events.append(
                {
                    "ph": "X",
                    "pid": 0,
                    "tid": tids[event.resource],
                    "name": event.label or event.resource,
                    "cat": event.category or "task",
                    "ts": event.start_s * 1e6,
                    "dur": event.duration_s * 1e6,
                    "args": args,
                }
            )
        return {"displayTimeUnit": "ms", "traceEvents": trace_events}

    def write_chrome_trace(self, path: str) -> None:
        """Write :meth:`chrome_trace` to ``path`` as JSON."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.chrome_trace(), handle, indent=1)
            handle.write("\n")


# ---------------------------------------------------------------------- #
# NIC queue disciplines (pluggable collective ordering)
# ---------------------------------------------------------------------- #
#: The NIC queue disciplines a scheduler may select.  ``fifo`` is the
#: booking engine's native order (bookings serve in arrival order) and the
#: default everywhere; ``fair`` and ``priority`` let a *not-yet-started*
#: queued collective be overtaken.
NIC_POLICIES: Tuple[str, ...] = ("fifo", "fair", "priority")


@dataclass(frozen=True)
class CollectiveRequest:
    """One job's pending collective, as a discipline sees it.

    ``duration_s`` is the modeled transfer time, ``priority`` the job's
    class (lower is more urgent), ``has_deadline`` whether it carries a
    latency SLO.  Disciplines rank requests; they never price them.
    """

    job_id: int
    duration_s: float
    priority: int = 1
    has_deadline: bool = False


class NicDiscipline:
    """Base (FIFO) NIC queue discipline: never reorders anything.

    A discipline answers one question — should a newly-arriving queued
    collective overtake an already-queued (but not yet started) one? —
    and keeps whatever per-job state the answer needs.  Reordering
    semantics (and the feasibility guards that keep gang bookings sound)
    live with the caller; the discipline is pure policy.
    """

    policy = "fifo"

    def precedes(
        self, newcomer: CollectiveRequest, incumbent: CollectiveRequest
    ) -> bool:
        """Whether ``newcomer`` should be served before ``incumbent``.

        FIFO: never.  Subclasses return ``True`` only on a *strict* win,
        so ties always keep arrival order and the schedule stays
        deterministic.
        """
        return False

    def note_dispatch(self, request: CollectiveRequest) -> None:
        """Record that ``request`` was dispatched (service accounting)."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(policy={self.policy!r})"


class FairDiscipline(NicDiscipline):
    """Deficit-style fair sharing: jobs that have consumed the least NIC
    time go first.

    Ranking key is ``(consumed NIC seconds so far, pending duration,
    job id)``: a job that has already moved a lot of collective traffic
    yields to one that has barely used the NIC, with the shorter pending
    transfer (then the smaller job id) breaking ties — round-robin-by-job
    in effect, shortest-job-first among equals, and fully deterministic.
    """

    policy = "fair"

    def __init__(self) -> None:
        self._consumed: Dict[int, float] = {}

    def precedes(
        self, newcomer: CollectiveRequest, incumbent: CollectiveRequest
    ) -> bool:
        def key(request: CollectiveRequest) -> Tuple[float, float, int]:
            return (
                self._consumed.get(request.job_id, 0.0),
                request.duration_s,
                request.job_id,
            )

        return key(newcomer) < key(incumbent)

    def note_dispatch(self, request: CollectiveRequest) -> None:
        self._consumed[request.job_id] = (
            self._consumed.get(request.job_id, 0.0) + request.duration_s
        )


class PriorityDiscipline(NicDiscipline):
    """SLO-class priority: deadline-carrying jobs first, then the lower
    priority class; ties keep arrival order."""

    policy = "priority"

    def precedes(
        self, newcomer: CollectiveRequest, incumbent: CollectiveRequest
    ) -> bool:
        def key(request: CollectiveRequest) -> Tuple[int, int]:
            return (0 if request.has_deadline else 1, request.priority)

        return key(newcomer) < key(incumbent)


def make_nic_discipline(policy: str) -> NicDiscipline:
    """Instantiate the discipline named ``policy`` (fresh state)."""
    if policy == "fifo":
        return NicDiscipline()
    if policy == "fair":
        return FairDiscipline()
    if policy == "priority":
        return PriorityDiscipline()
    raise ValueError(
        f"unknown NIC policy {policy!r}; choose from {NIC_POLICIES}"
    )


# ---------------------------------------------------------------------- #
# The out-of-core stream pipeline, expressed as timeline bookings
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class ChunkTiming:
    """Transfer and compute cost of one pipelined chunk (seconds)."""

    transfer_s: float
    compute_s: float

    def __post_init__(self) -> None:
        if self.transfer_s < 0 or self.compute_s < 0:
            raise ValueError(
                f"chunk times must be non-negative, got "
                f"transfer={self.transfer_s}, compute={self.compute_s}"
            )

    @property
    def serial_s(self) -> float:
        """Cost when transfer and compute cannot overlap."""
        return self.transfer_s + self.compute_s


@dataclass(frozen=True)
class StreamSchedule:
    """Resolved pipeline schedule for a sequence of chunks.

    Attributes
    ----------
    num_streams:
        Buffers/streams in flight (1 disables overlap).
    timings:
        The per-chunk :class:`ChunkTiming` inputs, in execution order.
    transfer_ends / compute_ends:
        Absolute completion times of each chunk's copy and kernel.
    timeline:
        The :class:`Timeline` the pipeline was booked on — the copy and
        compute engines of the executing device, with one booking per
        chunk transfer/kernel (queryable, Chrome-trace exportable).
    """

    num_streams: int
    timings: Tuple[ChunkTiming, ...]
    transfer_ends: Tuple[float, ...]
    compute_ends: Tuple[float, ...]
    timeline: Optional[Timeline] = None

    # ------------------------------------------------------------------ #
    @property
    def total_time_s(self) -> float:
        """Makespan of the pipeline (last kernel completion)."""
        return self.compute_ends[-1] if self.compute_ends else 0.0

    @property
    def transfer_time_s(self) -> float:
        """Total PCIe busy time (sum of chunk transfers)."""
        return sum(t.transfer_s for t in self.timings)

    @property
    def compute_time_s(self) -> float:
        """Total kernel busy time (sum of chunk computes)."""
        return sum(t.compute_s for t in self.timings)

    @property
    def serial_time_s(self) -> float:
        """Time with no overlap at all: ``sum(transfer + compute)``."""
        return self.transfer_time_s + self.compute_time_s

    @property
    def ideal_time_s(self) -> float:
        """Perfect-overlap lower bound: ``max(sum transfer, sum compute)``.

        Unattainable in full — the first transfer and the last kernel can
        never be hidden — so a real schedule lands strictly between this and
        :attr:`serial_time_s` whenever there are at least two chunks with
        non-trivial costs on both sides.
        """
        return max(self.transfer_time_s, self.compute_time_s)

    @property
    def overlap_saved_s(self) -> float:
        """Wall-clock seconds the pipeline saved over serial execution."""
        return self.serial_time_s - self.total_time_s

    @property
    def overlap_efficiency(self) -> float:
        """Fraction of the ideal overlap saving actually achieved (0..1).

        Clamped below at 0: a serial schedule's saving is exactly zero, but
        the two sides are accumulated in different orders and may differ by
        a few ulps.
        """
        attainable = self.serial_time_s - self.ideal_time_s
        if attainable <= 0.0:
            return 1.0
        return max(0.0, self.overlap_saved_s / attainable)


def schedule_chunks(
    timings: Sequence[ChunkTiming],
    num_streams: int,
    *,
    timeline: Optional[Timeline] = None,
    device_slot: int = 0,
    span: Optional[Span] = None,
) -> StreamSchedule:
    """Resolve the pipelined schedule of ``timings`` with ``num_streams`` buffers.

    The pipeline is booked on a device's two serial resources:

    * chunk ``i``'s **transfer** books the copy engine, dependency-gated on
      the kernel completion of chunk ``i - num_streams`` (its buffer must
      have been released);
    * chunk ``i``'s **kernel** books the compute engine, dependency-gated
      on its own transfer landing.

    This is exactly the pre-refactor two-resource recurrence — ``start =
    max(ready, engine free)`` per task — so the resolved times are
    bit-identical to it.  Pass ``timeline`` to book onto a shared timeline
    (default: a fresh one, returned on the schedule); ``device_slot``
    selects which device's copy/compute resources are booked.

    Returns a :class:`StreamSchedule`; an empty ``timings`` yields a
    schedule with ``total_time_s == 0``.  A ``span`` attributes the
    bookings: transfers carry its ``stage`` phase, kernels ``compute``.
    """
    num_streams = check_positive_int(num_streams, "num_streams")
    timeline = timeline if timeline is not None else Timeline()
    copy_engine = timeline.resource(device_copy_key(device_slot), category="copy")
    compute_engine = timeline.resource(
        device_compute_key(device_slot), category="compute"
    )
    stage_span = replace(span, phase="stage") if span is not None else None
    compute_span = replace(span, phase="compute") if span is not None else None
    transfer_ends: List[float] = []
    compute_ends: List[float] = []
    for i, timing in enumerate(timings):
        if not isinstance(timing, ChunkTiming):
            raise TypeError(f"timings[{i}] must be a ChunkTiming, got {type(timing).__name__}")
        buffer_free = compute_ends[i - num_streams] if i >= num_streams else 0.0
        transfer = copy_engine.book(
            timing.transfer_s,
            ready_s=buffer_free,
            label=f"transfer:chunk{i}",
            span=stage_span,
        )
        kernel = compute_engine.book(
            timing.compute_s,
            ready_s=transfer.end_s,
            label=f"kernel:chunk{i}",
            span=compute_span,
        )
        transfer_ends.append(transfer.end_s)
        compute_ends.append(kernel.end_s)
    return StreamSchedule(
        num_streams=num_streams,
        timings=tuple(timings),
        transfer_ends=tuple(transfer_ends),
        compute_ends=tuple(compute_ends),
        timeline=timeline,
    )


def pipeline_time(
    transfer_times: Sequence[float],
    compute_times: Sequence[float],
    num_streams: int,
) -> float:
    """Makespan of a chunk pipeline given parallel per-chunk time lists.

    Convenience wrapper over :func:`schedule_chunks` for callers that keep
    transfers and computes in separate arrays.
    """
    if len(transfer_times) != len(compute_times):
        raise ValueError(
            f"transfer_times and compute_times must have equal length, "
            f"got {len(transfer_times)} and {len(compute_times)}"
        )
    timings = [ChunkTiming(float(t), float(c)) for t, c in zip(transfer_times, compute_times)]
    return schedule_chunks(timings, num_streams).total_time_s
