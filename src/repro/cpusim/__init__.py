"""Multicore CPU cost model used by the ParTI-omp and SPLATT baselines.

The paper's CPU baselines run with 12 OpenMP threads on an Intel Core
i7-5820K (Table III: 6 physical cores / 12 threads, 3.3 GHz, 56.72 GFLOP/s
single-precision peak, 68 GB/s of memory bandwidth, 15 MB LLC).  The model
here mirrors :mod:`repro.gpusim` at lower fidelity — a roofline bound with a
load-imbalance multiplier and a last-level-cache model for the factor
matrices — because the CPU numbers only enter the evaluation as the
*denominator* of the speedup plots (Figure 6) and the SPLATT comparison
(Figures 7 and 10).
"""

from repro.cpusim.cpu import CpuSpec, CPU_I7_5820K, CpuCounters, estimate_cpu_time, cpu_profile

__all__ = [
    "CpuSpec",
    "CPU_I7_5820K",
    "CpuCounters",
    "estimate_cpu_time",
    "cpu_profile",
]
