"""CPU specification, work ledger and roofline timing for CPU baselines."""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict, Optional, Tuple

__all__ = ["CpuSpec", "CPU_I7_5820K", "CpuCounters", "estimate_cpu_time", "cpu_profile"]


@dataclass(frozen=True)
class CpuSpec:
    """Static description of a multicore CPU.

    Attributes
    ----------
    name:
        Human-readable name.
    physical_cores / threads:
        Core and hardware-thread counts; the paper runs 12 threads on 6
        cores, which helps hide memory latency but does not add FLOPs.
    clock_ghz:
        Sustained all-core clock.
    peak_sp_gflops:
        Peak single-precision GFLOP/s (Table III reports 56.72 for the
        i7-5820K; sparse kernels reach a small fraction of this).
    mem_bandwidth_gbps:
        Peak memory bandwidth (GB/s).
    achievable_bandwidth_fraction:
        Fraction of peak bandwidth irregular sparse kernels sustain.
    llc_bytes:
        Last-level cache size, used for the factor-matrix reuse model.
    scalar_ops_per_cycle:
        Sustained scalar operations per cycle per core for non-vectorised
        gather/scatter inner loops (index arithmetic, dependent loads,
        branches).  Sparse tensor baselines such as ParTI's COO kernels run
        as scalar code and are bound by this, not by the SIMD peak.
    """

    name: str
    physical_cores: int
    threads: int
    clock_ghz: float
    peak_sp_gflops: float
    mem_bandwidth_gbps: float
    achievable_bandwidth_fraction: float = 0.6
    llc_bytes: int = 15 * 1024**2
    scalar_ops_per_cycle: float = 2.0

    @property
    def peak_flops(self) -> float:
        """Peak single-precision FLOP/s."""
        return self.peak_sp_gflops * 1e9

    @property
    def achievable_bandwidth_bytes_per_s(self) -> float:
        """Sustained bandwidth for irregular streaming access, bytes/s."""
        return self.mem_bandwidth_gbps * 1e9 * self.achievable_bandwidth_fraction

    @property
    def scalar_ops_per_second_per_core(self) -> float:
        """Scalar-operation throughput of one core, ops/s."""
        return self.scalar_ops_per_cycle * self.clock_ghz * 1e9


#: The CPU of the paper's Table III (Intel Core i7-5820K, Haswell-E).
CPU_I7_5820K = CpuSpec(
    name="Intel Core i7-5820K (simulated)",
    physical_cores=6,
    threads=12,
    clock_ghz=3.3,
    peak_sp_gflops=56.72,
    mem_bandwidth_gbps=68.0,
)


@dataclass
class CpuCounters:
    """Work ledger of a CPU baseline kernel.

    Attributes
    ----------
    flops:
        Floating-point operations (vectorisable arithmetic, bound by the
        SIMD peak).
    scalar_ops:
        Scalar operations in non-vectorised inner loops (index arithmetic,
        integer division, dependent gathers); bound by
        ``CpuSpec.scalar_ops_per_cycle`` per core.
    mem_read_bytes / mem_write_bytes:
        Bytes that actually reach DRAM (after the LLC reuse model).
    parallel_fraction:
        Fraction of the work that runs in the OpenMP-parallel region
        (Amdahl); format construction and mode switching count as serial.
    imbalance_factor:
        >= 1, ratio of the busiest thread's share of work to the mean.
    used_threads:
        Threads with any work (a parallel loop over 60 slices cannot use
        more than 60 threads).
    """

    flops: float = 0.0
    scalar_ops: float = 0.0
    mem_read_bytes: float = 0.0
    mem_write_bytes: float = 0.0
    parallel_fraction: float = 1.0
    imbalance_factor: float = 1.0
    used_threads: Optional[int] = None

    def __post_init__(self) -> None:
        for f in fields(self):
            value = getattr(self, f.name)
            if value is None:
                continue
            if f.name == "imbalance_factor":
                if value < 1.0:
                    raise ValueError(f"imbalance_factor must be >= 1, got {value}")
            elif f.name == "parallel_fraction":
                if not 0.0 <= value <= 1.0:
                    raise ValueError(f"parallel_fraction must be in [0, 1], got {value}")
            elif value < 0:
                raise ValueError(f"{f.name} must be non-negative, got {value}")

    @property
    def mem_total_bytes(self) -> float:
        """Total DRAM traffic."""
        return self.mem_read_bytes + self.mem_write_bytes

    def merge(self, other: "CpuCounters") -> "CpuCounters":
        """Sequentially compose two ledgers (work adds, imbalance maxes)."""
        total_self = self.flops + self.mem_total_bytes
        total_other = other.flops + other.mem_total_bytes
        total = total_self + total_other
        if total > 0:
            par = (
                self.parallel_fraction * total_self + other.parallel_fraction * total_other
            ) / total
        else:
            par = 1.0
        used = None
        if self.used_threads is not None or other.used_threads is not None:
            used = min(
                self.used_threads if self.used_threads is not None else 10**9,
                other.used_threads if other.used_threads is not None else 10**9,
            )
        return CpuCounters(
            flops=self.flops + other.flops,
            scalar_ops=self.scalar_ops + other.scalar_ops,
            mem_read_bytes=self.mem_read_bytes + other.mem_read_bytes,
            mem_write_bytes=self.mem_write_bytes + other.mem_write_bytes,
            parallel_fraction=par,
            imbalance_factor=max(self.imbalance_factor, other.imbalance_factor),
            used_threads=used,
        )

    def __add__(self, other: "CpuCounters") -> "CpuCounters":
        return self.merge(other)


def estimate_cpu_time(
    counters: CpuCounters,
    cpu: CpuSpec,
    *,
    num_threads: Optional[int] = None,
) -> Tuple[float, Dict[str, float]]:
    """Roofline time estimate for a CPU ledger.

    ``time = serial + parallel / speedup`` where the parallel part is the
    roofline max of compute and memory time and the parallel speedup is
    limited by thread count, usable threads, memory-bandwidth saturation and
    the imbalance factor.
    """
    threads = num_threads if num_threads is not None else cpu.threads
    if threads <= 0:
        raise ValueError(f"num_threads must be positive, got {threads}")
    if counters.used_threads is not None:
        threads = max(1, min(threads, counters.used_threads))

    # Single-thread roofline.  A single core sustains 1/num_cores of the
    # chip's SIMD peak for vectorisable arithmetic, its scalar throughput for
    # non-vectorised inner loops, and about a quarter of the socket's
    # bandwidth.
    single_flops = cpu.peak_flops / cpu.physical_cores
    single_scalar = cpu.scalar_ops_per_second_per_core
    single_bw = cpu.achievable_bandwidth_bytes_per_s / 4.0

    compute_1t = counters.flops / single_flops
    scalar_1t = counters.scalar_ops / single_scalar
    memory_1t = counters.mem_total_bytes / single_bw
    serial_time = (1.0 - counters.parallel_fraction) * max(compute_1t, scalar_1t, memory_1t)

    # Parallel part: arithmetic scales with physical cores (capped by
    # threads), memory scales until the socket bandwidth saturates.
    cores = min(threads, cpu.physical_cores)
    par_compute = counters.parallel_fraction * compute_1t / cores
    par_scalar = counters.parallel_fraction * scalar_1t / cores
    socket_bw_gain = cpu.achievable_bandwidth_bytes_per_s / single_bw
    par_memory = counters.parallel_fraction * memory_1t / min(threads, socket_bw_gain)
    parallel_time = max(par_compute, par_scalar, par_memory) * counters.imbalance_factor

    total = serial_time + parallel_time
    breakdown = {
        "serial": serial_time,
        "compute": par_compute * counters.imbalance_factor,
        "scalar": par_scalar * counters.imbalance_factor,
        "memory": par_memory * counters.imbalance_factor,
        "threads": float(threads),
    }
    return total, breakdown


@dataclass
class CpuProfile:
    """A simulated CPU execution: ledger, estimated time and breakdown."""

    name: str
    counters: CpuCounters
    estimated_time_s: float
    breakdown: Dict[str, float] = field(default_factory=dict)


def cpu_profile(
    name: str,
    counters: CpuCounters,
    cpu: CpuSpec,
    *,
    num_threads: Optional[int] = None,
) -> CpuProfile:
    """Convenience wrapper building a :class:`CpuProfile` in one call."""
    total, breakdown = estimate_cpu_time(counters, cpu, num_threads=num_threads)
    return CpuProfile(name=name, counters=counters, estimated_time_s=total, breakdown=breakdown)
