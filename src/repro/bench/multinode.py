"""Multi-node scaling of the hierarchically sharded unified kernels.

The multi-GPU scaling runner (:mod:`repro.bench.scaling`) stops at one
node; this runner grows the *node count* of a two-tier
:class:`~repro.gpusim.cluster.MultiNodeClusterSpec` — intra-node P2P vs an
inter-node NIC — and reports, per unified kernel and dataset analog:

* the strong-scaling curve over 1/2/4 nodes (the one-node point is the
  exact single-node sharded path — a one-node cluster collapses to its
  :class:`~repro.gpusim.cluster.ClusterSpec` inside ``resolve_cluster``);
* the modeled reduction under hierarchical collectives next to what the
  topology-oblivious **flat ring** would have charged, and which algorithm
  the cost model selected — making the tentpole claim ("hierarchical is
  never costlier than the flat ring when the NIC is the slower tier")
  visible in the table and checkable by the CI regression gate.

Both interconnect tiers are projected to analog scale per dataset exactly
like the single-node runner (see
:func:`repro.bench.scaling.analog_interconnect`), so the NIC keeps its
paper-scale proportion to compute.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.data.registry import DATASETS, load_dataset
from repro.formats.fcoo import FCOOTensor
from repro.gpusim.cluster import (
    ETHERNET_10G,
    InterconnectSpec,
    MultiNodeClusterSpec,
    PCIE3_P2P,
)
from repro.gpusim.device import DeviceSpec, TITAN_X
from repro.bench.scaling import (
    SCALING_OPERATIONS,
    _OPERATION_KINDS,
    _effective_rank,
    _run_operation,
    analog_interconnect,
)
from repro.tensor.random import random_factors
from repro.util.formatting import format_seconds, format_table

__all__ = [
    "MultiNodeRow",
    "MultiNodeScalingResult",
    "run_multinode_scaling",
    "DEFAULT_NODE_COUNTS",
]

#: The node counts of the default multi-node scaling curve.
DEFAULT_NODE_COUNTS: Tuple[int, ...] = (1, 2, 4)


@dataclass(frozen=True)
class MultiNodeRow:
    """One (operation, workload, node count) point of the scaling curve."""

    operation: str
    workload: str
    num_nodes: int
    num_devices: int
    nnz: int
    time_s: float
    baseline_s: float
    max_shard_s: float
    reduction_s: float
    flat_reduction_s: float
    reduction_algorithm: str

    @property
    def speedup(self) -> float:
        """``T(baseline) / T(this)`` — above 1 is a win.

        The baseline is the curve's *first* point (the same convention as
        the single-node scaling runner): the one-node point for the
        default ascending ``node_counts``.
        """
        return self.baseline_s / self.time_s if self.time_s else 1.0

    @property
    def efficiency(self) -> float:
        """Parallel efficiency across nodes: speedup over the node count."""
        return self.speedup / self.num_nodes


@dataclass
class MultiNodeScalingResult:
    """All rows of one multi-node scaling experiment."""

    rank: int
    node_counts: Tuple[int, ...]
    devices_per_node: int
    rows: List[MultiNodeRow]

    def rows_for(
        self, operation: str, workload: Optional[str] = None
    ) -> List[MultiNodeRow]:
        """The curve of one operation (optionally restricted to a workload)."""
        return [
            r
            for r in self.rows
            if r.operation == operation and (workload is None or r.workload == workload)
        ]

    def render(self) -> str:
        headers = [
            "kernel",
            "workload",
            "nodes",
            "GPUs",
            "time",
            "speedup",
            "efficiency",
            "slowest shard",
            "reduction",
            "flat ring",
            "algorithm",
        ]
        body = []
        for r in self.rows:
            body.append(
                [
                    r.operation,
                    r.workload,
                    r.num_nodes,
                    r.num_devices,
                    format_seconds(r.time_s),
                    f"{r.speedup:.2f}x",
                    f"{r.efficiency * 100.0:.0f}%",
                    format_seconds(r.max_shard_s),
                    format_seconds(r.reduction_s),
                    format_seconds(r.flat_reduction_s),
                    r.reduction_algorithm,
                ]
            )
        return format_table(
            headers,
            body,
            title=(
                f"Multi-node scaling of the unified kernels "
                f"(rank={self.rank}, "
                f"{'/'.join(str(m) for m in self.node_counts)} nodes x "
                f"{self.devices_per_node} GPUs, two-tier analog interconnects)"
            ),
        )


def run_multinode_scaling(
    *,
    rank: int = 16,
    datasets: Optional[Sequence[str]] = None,
    operations: Sequence[str] = SCALING_OPERATIONS,
    node_counts: Sequence[int] = DEFAULT_NODE_COUNTS,
    devices_per_node: int = 2,
    device: DeviceSpec = TITAN_X,
    intra: InterconnectSpec = PCIE3_P2P,
    nic: InterconnectSpec = ETHERNET_10G,
    block_size: int = 128,
    threadlen: int = 8,
    spttmc_rank: Optional[int] = None,
    seed: int = 0,
) -> MultiNodeScalingResult:
    """Strong scaling across nodes with hierarchical collectives.

    Every (operation, dataset) pair runs the mode-0 kernel on a growing
    number of ``devices_per_node``-GPU nodes; the curve's *first* point is
    its baseline (the one-node point for the default ascending
    ``node_counts`` — pass them smallest-first, like the single-node
    runner's ``device_counts``).  Both tiers are projected to the dataset's analog
    scale, preserving the NIC-vs-P2P bandwidth and latency ratios; the
    ``flat ring`` column prices the same all-reduce payload over the
    topology-oblivious single-tier ring for comparison (``-`` priced at
    zero for the boundary-exchange SpTTM, whose output never all-reduces).
    """
    names = list(datasets) if datasets is not None else ["brainq"]
    for op in operations:
        if op not in _OPERATION_KINDS:
            raise ValueError(
                f"unknown operation {op!r}; choose from {sorted(_OPERATION_KINDS)}"
            )
    if devices_per_node <= 0:
        raise ValueError(f"devices_per_node must be positive, got {devices_per_node}")
    mode = 0
    rows: List[MultiNodeRow] = []
    for name in names:
        spec = DATASETS[name]
        tensor = load_dataset(name)
        time_scale = tensor.nnz / spec.paper_nnz
        dense_payload_scale = tensor.shape[mode] / spec.paper_shape[mode]
        for op in operations:
            op_rank = _effective_rank(op, rank, spttmc_rank)
            factors = [
                np.asarray(f) for f in random_factors(tensor.shape, op_rank, seed=seed)
            ]
            fcoo = FCOOTensor.from_sparse(tensor, _OPERATION_KINDS[op], mode)
            payload_scale = None if op == "spttm" else dense_payload_scale
            scaled_intra = analog_interconnect(
                intra,
                time_scale=time_scale,
                payload_scale=payload_scale,
                name_suffix=f"analog {name}",
            )
            scaled_nic = analog_interconnect(
                nic,
                time_scale=time_scale,
                payload_scale=payload_scale,
                name_suffix=f"analog {name}",
            )
            baseline_s: Optional[float] = None
            for m in node_counts:
                m = int(m)
                cluster = MultiNodeClusterSpec.homogeneous(
                    device,
                    m,
                    devices_per_node,
                    intra=scaled_intra,
                    nic=scaled_nic,
                )
                result = _run_operation(
                    op,
                    fcoo,
                    factors,
                    mode,
                    cluster=cluster,
                    device=device,
                    block_size=block_size,
                    threadlen=threadlen,
                )
                execution = getattr(result.profile, "sharded", None)
                if op == "spttm" or m == 1:
                    flat_reduction_s = (
                        execution.reduction_time_s if execution is not None else 0.0
                    )
                    algorithm = "boundary" if op == "spttm" else "single-node"
                else:
                    output_bytes = execution.reduction_bytes
                    flat_reduction_s = cluster.flat_allreduce_time(output_bytes)
                    algorithm = cluster.allreduce_algorithm(output_bytes)
                if baseline_s is None:
                    baseline_s = result.estimated_time_s
                rows.append(
                    MultiNodeRow(
                        operation=op,
                        workload=name,
                        num_nodes=m,
                        num_devices=m * devices_per_node,
                        nnz=fcoo.nnz,
                        time_s=result.estimated_time_s,
                        baseline_s=baseline_s,
                        max_shard_s=(
                            execution.max_shard_time_s
                            if execution is not None
                            else result.estimated_time_s
                        ),
                        reduction_s=(
                            execution.reduction_time_s if execution is not None else 0.0
                        ),
                        flat_reduction_s=flat_reduction_s,
                        reduction_algorithm=algorithm,
                    )
                )
    return MultiNodeScalingResult(
        rank=rank,
        node_counts=tuple(int(m) for m in node_counts),
        devices_per_node=devices_per_node,
        rows=rows,
    )
