"""Experiment harness: one runner per table/figure of the paper's evaluation.

Every runner builds the relevant workloads from :mod:`repro.data`, executes
the unified kernels and the baselines on the simulated devices, and returns
a result object with the same rows/series the paper reports plus a
``render()`` method producing a plain-text table.  The ``benchmarks/``
directory wraps each runner in a pytest-benchmark entry, and
``EXPERIMENTS.md`` records the paper-vs-measured comparison.

Runner ↔ paper mapping
----------------------
==============================  ===========================================
runner                          paper artefact
==============================  ===========================================
:func:`run_table2`              Table II — COO vs F-COO storage cost
:func:`platform_report`         Table III — platform configuration
:func:`run_table4`              Table IV — dataset description
:func:`run_fig5`                Figure 5 — (BLOCK_SIZE, threadlen) tuning
:func:`run_table5`              Table V — best launch parameters
:func:`run_fig6a`               Figure 6a — SpTTM speedup over ParTI-omp
:func:`run_fig6b`               Figure 6b — SpMTTKRP speedup over ParTI-omp
:func:`run_fig7`                Figure 7 — mode behaviour on brainq
:func:`run_fig8`                Figure 8 — rank behaviour of SpTTM
:func:`run_fig9`                Figure 9 — GPU memory for SpMTTKRP
:func:`run_fig10`               Figure 10 — CP decomposition breakdown
:func:`run_streaming`           Section IV-D streams — out-of-core overlap
                                (extension; no dedicated paper figure)
:func:`run_scaling`             multi-GPU strong scaling of the sharded
                                kernels (extension; no paper figure)
:func:`run_weak_scaling`        multi-GPU weak scaling (extension)
:func:`run_multinode_scaling`   multi-node scaling with hierarchical
                                collectives over a two-tier interconnect
                                (extension)
:func:`run_serving`             multi-tenant serving over the simulated
                                cluster (extension)
==============================  ===========================================
"""

from repro.bench.platform import platform_report
from repro.bench.storage import Table2Result, run_table2
from repro.bench.datasets_table import run_table4
from repro.bench.tuning import Fig5Result, Table5Result, run_fig5, run_table5
from repro.bench.speedups import Fig6Result, run_fig6a, run_fig6b
from repro.bench.modes import Fig7Result, run_fig7
from repro.bench.ranks import Fig8Result, run_fig8
from repro.bench.memory import Fig9Result, run_fig9
from repro.bench.cp_bench import Fig10Result, run_fig10
from repro.bench.streaming import StreamingResult, run_streaming
from repro.bench.scaling import (
    ScalingResult,
    collect_scaling_trace,
    run_scaling,
    run_weak_scaling,
)
from repro.bench.multinode import MultiNodeScalingResult, run_multinode_scaling
from repro.bench.serving import run_serving

__all__ = [
    "platform_report",
    "Table2Result",
    "run_table2",
    "run_table4",
    "Fig5Result",
    "Table5Result",
    "run_fig5",
    "run_table5",
    "Fig6Result",
    "run_fig6a",
    "run_fig6b",
    "Fig7Result",
    "run_fig7",
    "Fig8Result",
    "run_fig8",
    "Fig9Result",
    "run_fig9",
    "Fig10Result",
    "run_fig10",
    "StreamingResult",
    "run_streaming",
    "ScalingResult",
    "collect_scaling_trace",
    "run_scaling",
    "run_weak_scaling",
    "MultiNodeScalingResult",
    "run_multinode_scaling",
    "run_serving",
]
