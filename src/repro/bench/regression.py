"""Benchmark-regression gate for CI.

The simulated kernel times are *deterministic* — they are cost-model
arithmetic, not wall-clock measurements — so they make a noise-free
regression signal: if a code change makes a modeled hot path slower (more
traffic, a lost overlap, a worse reduction), the simulated seconds move and
CI can fail on it without flaky-timer tolerance games.

``collect_metrics()`` runs a quick-mode subset of the scaling, streaming
and serving experiments and flattens them into named scalar metrics
(seconds; lower is better — the serving suite reports latency percentiles,
the makespan and seconds-per-job, i.e. inverse throughput, so a throughput
regression fails the gate too).  The committed baselines live in
``benchmarks/baselines/`` as ``BENCH_scaling.json`` /
``BENCH_streaming.json`` / ``BENCH_serving.json``; the CI ``bench`` job
re-collects the metrics, uploads them as artifacts, and fails when any
metric regresses by more than the tolerance (default 20 %).  Improvements
never fail; refresh the baseline with ``--update`` when a change is an
intentional model shift.

Usage::

    python -m repro.bench.regression --check             # compare vs baseline
    python -m repro.bench.regression --update            # rewrite the baseline
    python -m repro.bench.regression --check --out-dir bench-artifacts
    python -m repro.bench.regression --check --suite wallclock   # wall time

One suite is *not* simulated time: ``wallclock`` (see
:mod:`repro.bench.wallclock`) measures real host seconds per execution
backend.  It is excluded from the default ``--check`` run — wall time is
noisy and the suite takes minutes — and runs in its own CI job via
``--suite wallclock``, with a wide ratio band (``SUITE_TOLERANCES``) plus
zero-tolerance identity/speedup counts.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro._version import __version__
from repro.bench.multinode import run_multinode_scaling
from repro.bench.scaling import run_scaling, run_weak_scaling
from repro.bench.serving import DEFAULT_CROSS_NODE_EVERY, run_serving
from repro.bench.streaming import run_streaming
from repro.gpusim.timeline import Timeline
from repro.serve.autoscale import AutoscalerSpec

__all__ = [
    "DEFAULT_BASELINE_DIR",
    "DEFAULT_TOLERANCE",
    "DEFAULT_SUITES",
    "SUITE_TOLERANCES",
    "collect_metrics",
    "compare_metrics",
    "main",
]

#: Where the committed baselines live, relative to the repository root.
DEFAULT_BASELINE_DIR = Path("benchmarks") / "baselines"

#: Maximum tolerated slowdown of any single metric (0.2 == +20 %).
DEFAULT_TOLERANCE = 0.20

#: The artifact files, keyed by suite name.
ARTIFACT_FILES = {
    "scaling": "BENCH_scaling.json",
    "multinode": "BENCH_multinode.json",
    "streaming": "BENCH_streaming.json",
    "serving": "BENCH_serving.json",
    "timeline": "BENCH_timeline.json",
    "faults": "BENCH_faults.json",
    "slo": "BENCH_slo.json",
    "obs": "BENCH_obs.json",
    "adaptive": "BENCH_adaptive.json",
    "wallclock": "BENCH_wallclock.json",
}

#: The deterministic simulated-time suites — what ``--check`` runs when no
#: ``--suite`` is given.  The ``wallclock`` suite measures real host time
#: (noisy, and minutes-long), so it runs only on explicit request: the CI
#: ``wallclock`` job passes ``--suite wallclock``.
DEFAULT_SUITES = tuple(s for s in ARTIFACT_FILES if s != "wallclock")

#: Per-suite tolerance floors.  Wall-clock ratios on shared runners need a
#: far wider band than the noise-free simulated seconds; the effective
#: tolerance for a suite is ``max(--tolerance, SUITE_TOLERANCES[suite])``.
#: (Counts stay zero-tolerance everywhere — the band never applies to them.)
SUITE_TOLERANCES = {"wallclock": 0.50}


def _scaling_metrics() -> Dict[str, float]:
    """Quick-mode multi-GPU scaling subset: one dataset, three kernels."""
    metrics: Dict[str, float] = {}
    strong = run_scaling(
        rank=8, datasets=["brainq"], device_counts=(1, 2, 4), seed=0
    )
    for row in strong.rows:
        key = f"strong/{row.operation}/{row.workload}/gpus={row.num_devices}"
        metrics[key] = row.time_s
    weak = run_weak_scaling(rank=8, device_counts=(1, 2, 4), seed=0)
    for row in weak.rows:
        key = f"weak/{row.operation}/gpus={row.num_devices}"
        metrics[key] = row.time_s
    return metrics


def _multinode_metrics() -> Dict[str, float]:
    """Quick-mode multi-node subset: one dataset, 1/2/4 nodes of 2 GPUs.

    Beyond the per-point kernel times, the suite tracks the modeled
    hierarchical reduction seconds of the largest cluster per all-reduce
    kernel, and ``.../hier_minus_flat_count`` pseudo-counts — 0 while the
    hierarchical collective is no costlier than the flat ring on every
    row, 1 the moment any row regresses past it (counts fail on any
    increase, so the gate pins the tentpole property).
    """
    metrics: Dict[str, float] = {}
    result = run_multinode_scaling(
        rank=8, datasets=["brainq"], node_counts=(1, 2, 4), devices_per_node=2, seed=0
    )
    violations = 0
    for row in result.rows:
        key = f"multinode/{row.operation}/{row.workload}/nodes={row.num_nodes}"
        metrics[key] = row.time_s
        if row.num_nodes > 1:
            metrics[f"{key}/reduction"] = row.reduction_s
            if row.reduction_s > row.flat_reduction_s + 1e-15:
                # Count every offending row, not just the first: a refresh
                # after a model change should see the full damage at once.
                violations += 1
    metrics["multinode/hier_minus_flat_count"] = float(violations)
    return metrics


def _streaming_metrics() -> Dict[str, float]:
    """Quick-mode out-of-core subset: the smaller dataset analogs."""
    metrics: Dict[str, float] = {}
    result = run_streaming(rank=8, datasets=["brainq", "nell2"])
    for row in result.rows:
        key = f"streamed/{row.dataset}/streams={row.num_streams}"
        metrics[key] = row.streamed_s
    return metrics


def _serving_metrics() -> Dict[str, float]:
    """Quick-mode serving subset: a 40-job workload on the default node.

    Most metrics are simulated seconds (lower is better): the latency
    percentiles and makespan catch latency regressions, and seconds-per-
    completed-job is the throughput inverse, so slower serving fails the
    gate from either direction.  ``serve/rejected_jobs_count`` is a
    *count* (see :func:`compare_metrics`: any increase over the baseline
    fails, no ratio tolerance): wrongly refusing traffic makes every
    latency metric look better — the rejected jobs leave the population —
    so the rejection count itself must not grow.
    """
    report = run_serving(num_jobs=40, seed=0)
    completed = max(len(report.completed), 1)
    return {
        "serve/p50_latency": report.p50_latency_s,
        "serve/p99_latency": report.p99_latency_s,
        "serve/makespan": report.makespan_s,
        "serve/seconds_per_job": report.makespan_s / completed,
        "serve/mean_queue_wait": report.mean_queue_wait_s,
        "serve/rejected_jobs_count": float(len(report.rejected)),
    }


def _timeline_metrics() -> Dict[str, float]:
    """Unified-timeline suite: NIC congestion and intra-kernel overlap.

    Two deterministic scenarios pin the tentpole properties of the
    simulated-time resource engine:

    * **congestion** — two cross-node all-reduces booked concurrently on a
      shared two-node timeline.  ``.../congestion_slowdown_ratio`` is the
      second collective's finish over the idle-NIC closed form (larger
      means the contention model got more pessimistic, which the ratio
      tolerance flags), and ``.../contended_lt_idle_count`` counts — over
      a payload/topology sweep — any booked collective finishing *earlier*
      than the idle model, which must never happen (``_count``: any
      increase fails).
    * **overlap** — a sharded CP-ALS run with ``overlap_modes`` on vs off
      (identical factors by construction).  ``.../overlap_makespan`` is
      the overlapped modeled makespan (seconds, lower is better) and
      ``.../overlap_time_ratio`` is overlapped over sequential makespan —
      at most 1, the inverse of the overlap speedup.  The ratio tolerance
      alone cannot catch a *silently disabled* overlap (the ratio is
      bounded by 1.0, inside +20 % of any healthy baseline), so two
      zero-tolerance counts pin the property:
      ``.../overlap_gt_sequential_count`` — the overlapped makespan
      exceeded the sequential one (the engine guarantee broke) — and
      ``.../overlap_lost_count`` — the scenario, constructed to hide well
      over 1 % of the sequential makespan, saved 1 % or less, i.e.
      ``overlap_modes`` stopped overlapping anything.
    """
    from repro.algorithms.cp import UnifiedGPUEngine, cp_als
    from repro.context import ExecContext
    from repro.gpusim.cluster import ETHERNET_10G, MultiNodeClusterSpec
    from repro.tensor.random import random_sparse_tensor

    metrics: Dict[str, float] = {}
    contended_violations = 0

    def contended_ends(num_nodes: int, nbytes: float) -> Tuple[float, float]:
        cluster = MultiNodeClusterSpec.homogeneous(
            num_nodes=num_nodes, devices_per_node=2, nic=ETHERNET_10G
        )
        idle = cluster.allreduce_time(nbytes)
        timeline = Timeline()
        first = cluster.book_allreduce(timeline, nbytes)
        second = cluster.book_allreduce(timeline, nbytes)
        return idle, max(first.end_s, second.end_s)

    for num_nodes in (2, 3):
        for nbytes in (64 * 1024, 1 << 20, 8 << 20):
            idle, contended = contended_ends(num_nodes, float(nbytes))
            if contended < idle:
                contended_violations += 1
    idle, contended = contended_ends(2, float(8 << 20))
    metrics["timeline/congestion_slowdown_ratio"] = contended / idle
    metrics["timeline/contended_lt_idle_count"] = float(contended_violations)

    cluster = MultiNodeClusterSpec.homogeneous(
        num_nodes=2, devices_per_node=2, nic=ETHERNET_10G
    )
    # A tall mode-0 makes the dense update big enough to hide a visible
    # fraction of the collective behind, so a lost overlap moves the ratio.
    tensor = random_sparse_tensor((60_000, 60, 50), 12_000, seed=3)
    sequential = cp_als(
        tensor,
        16,
        engine=UnifiedGPUEngine(ctx=ExecContext(cluster=cluster)),
        max_iterations=2,
        compute_fit=False,
    )
    overlapped = cp_als(
        tensor,
        16,
        engine=UnifiedGPUEngine(ctx=ExecContext(cluster=cluster)),
        max_iterations=2,
        compute_fit=False,
        ctx=ExecContext(overlap_modes=True),
    )
    ratio = overlapped.makespan_s / sequential.makespan_s
    metrics["timeline/overlap_makespan"] = overlapped.makespan_s
    metrics["timeline/overlap_time_ratio"] = ratio
    metrics["timeline/overlap_gt_sequential_count"] = float(
        overlapped.makespan_s > sequential.makespan_s
    )
    metrics["timeline/overlap_lost_count"] = float(ratio > 0.99)
    return metrics


def _faults_metrics() -> Dict[str, float]:
    """Fault-tolerance suite: checkpoint/replay under seeded node loss.

    Three scenarios pin the tentpole property — a run that loses a node
    mid-flight must produce *bit-identical* numerics to its failure-free
    twin, at a modeled recovery cost:

    * **CP-ALS / Tucker-HOOI** — a two-node sharded decomposition with one
      node killed mid-sweep.  ``faults/identity_violation_count`` counts
      any factor/weight/core array that is not ``np.array_equal`` to the
      failure-free run's (zero tolerance: any increase fails), and
      ``faults/recovery_cost_missing_count`` fires when a recovery was
      recorded with no positive modeled restage cost — recovery must never
      be free.  ``faults/cp_recovery_overhead_ratio`` records the
      recovered-over-clean makespan ratio; note it may be *below* 1 — the
      survivor topology drops the slow NIC collective — so it is tracked
      with the ordinary ratio tolerance, never asserted > 1.
    * **serving** — the 40-job multi-node workload with one seeded node
      loss.  ``faults/serve_lost_jobs_count`` (zero tolerance) is the
      number of jobs the chaos run completed *fewer* than the clean run —
      a node loss may delay work, never lose it — and
      ``faults/serve_requeued_jobs`` tracks the re-queue volume.
    """
    import numpy as np

    from repro.algorithms.cp import UnifiedGPUEngine, cp_als
    from repro.algorithms.tucker import tucker_hooi
    from repro.context import ExecContext
    from repro.gpusim.cluster import ETHERNET_10G, MultiNodeClusterSpec, NodeFailure
    from repro.tensor.random import random_sparse_tensor

    def two_nodes() -> MultiNodeClusterSpec:
        return MultiNodeClusterSpec.homogeneous(
            num_nodes=2, devices_per_node=2, nic=ETHERNET_10G
        )

    metrics: Dict[str, float] = {}
    identity_violations = 0
    missing_cost = 0
    tensor = random_sparse_tensor((300, 40, 30), 6_000, seed=11)

    clean_cp = cp_als(
        tensor,
        8,
        engine=UnifiedGPUEngine(ctx=ExecContext(cluster=two_nodes())),
        max_iterations=3,
        compute_fit=False,
    )
    failure = NodeFailure(time_s=clean_cp.makespan_s * 0.4, node_index=0)
    faulty_cp = cp_als(
        tensor,
        8,
        engine=UnifiedGPUEngine(ctx=ExecContext(cluster=two_nodes())),
        max_iterations=3,
        compute_fit=False,
        ctx=ExecContext(chaos=(failure,)),
    )
    identity_violations += sum(
        not np.array_equal(a, b)
        for a, b in zip(clean_cp.factors, faulty_cp.factors)
    )
    identity_violations += not np.array_equal(clean_cp.weights, faulty_cp.weights)
    missing_cost += not (
        faulty_cp.recoveries and faulty_cp.recovery_overhead_s > 0.0
    )
    metrics["faults/cp_restage"] = faulty_cp.recovery_overhead_s
    metrics["faults/cp_recovered_makespan"] = faulty_cp.makespan_s
    metrics["faults/cp_recovery_overhead_ratio"] = (
        faulty_cp.makespan_s / clean_cp.makespan_s
    )

    clean_tk = tucker_hooi(
        tensor, (6, 6, 6), ctx=ExecContext(cluster=two_nodes()), max_iterations=2
    )
    tk_failure = NodeFailure(time_s=clean_tk.makespan_s * 0.4, node_index=1)
    faulty_tk = tucker_hooi(
        tensor,
        (6, 6, 6),
        ctx=ExecContext(cluster=two_nodes(), chaos=(tk_failure,)),
        max_iterations=2,
    )
    identity_violations += sum(
        not np.array_equal(a, b)
        for a, b in zip(clean_tk.factors, faulty_tk.factors)
    )
    identity_violations += not np.array_equal(clean_tk.core, faulty_tk.core)
    missing_cost += not (
        faulty_tk.recoveries and faulty_tk.recovery_overhead_s > 0.0
    )
    metrics["faults/tucker_restage"] = faulty_tk.recovery_overhead_s

    clean_serve = run_serving(num_jobs=40, seed=0, nodes=2)
    # chaos_seed=4 draws a failure instant that catches jobs in flight on
    # node 0, so the re-queue path is genuinely exercised (requeues > 0).
    chaos_serve = run_serving(num_jobs=40, seed=0, nodes=2, chaos_seed=4, fail_node=0)
    metrics["faults/serve_lost_jobs_count"] = float(
        max(0, len(clean_serve.completed) - len(chaos_serve.completed))
    )
    metrics["faults/serve_requeued_jobs"] = float(chaos_serve.requeued_jobs)
    metrics["faults/serve_chaos_makespan"] = chaos_serve.makespan_s

    metrics["faults/identity_violation_count"] = float(identity_violations)
    metrics["faults/recovery_cost_missing_count"] = float(missing_cost)
    return metrics


def _comparable_arrays(output) -> List[object]:
    """The comparable ndarrays of any job output type.

    Shared by the SLO and adaptive suites' bit-identity gates: a dense
    kernel output is one array, a semi-sparse output its coordinate and
    value arrays, and a decomposition its factors plus weights/core.
    """
    import numpy as np

    if output is None:
        return []
    if isinstance(output, np.ndarray):
        return [output]
    if hasattr(output, "fiber_values"):  # SemiSparseTensor
        return [output.fiber_coords, output.fiber_values]
    out: List[object] = []  # CPResult / TuckerResult
    out.extend(getattr(output, "factors", []) or [])
    for attr in ("weights", "core"):
        value = getattr(output, attr, None)
        if value is not None:
            out.append(value)
    return out


def _slo_metrics() -> Dict[str, float]:
    """SLO-driven serving suite: deadline economics and preemption.

    A 100-job workload with 30 % latency tenants (each carrying a
    deadline) is served under the three policies on identical job lists.
    Two zero-tolerance counts pin the tentpole properties:

    * ``slo/preempted_identity_violation_count`` — every job the deadline
      policy completed (preempted-and-resumed victims included) must be
      ``np.array_equal`` to its twin from the preemption-free priority
      run.  Preemption moves work in *time*, never in *value*.
    * ``slo/deadline_unsound_count`` — the deadline policy's miss rate
      exceeded FIFO's on the same workload, i.e. deadline awareness made
      deadlines *worse*; must never happen.

    The remaining metrics track the economics with the ordinary ratio
    tolerance: miss rates per policy, the SLO-grade p99.9 latency, the
    modeled preemption overhead (victims' resume latency + factor
    re-stages), and the autoscaled run's makespan and scale-up volume
    (the pool starts at one device, so a loaded run must scale up).
    """
    import numpy as np

    slo_kwargs = dict(num_jobs=100, seed=0, slo_fraction=0.3, deadline_slack=30.0)
    edf = run_serving(policy="deadline", **slo_kwargs)
    fifo = run_serving(policy="fifo", **slo_kwargs)
    priority = run_serving(policy="priority", **slo_kwargs)

    arrays = _comparable_arrays

    twin = {r.job.job_id: r for r in priority.results if r.completed}
    identity_violations = 0
    for result in edf.results:
        other = twin.get(result.job.job_id)
        if not result.completed or other is None:
            continue
        ours, theirs = arrays(result.output), arrays(other.output)
        identity_violations += len(ours) != len(theirs) or any(
            not np.array_equal(a, b) for a, b in zip(ours, theirs)
        )

    autoscaled = run_serving(
        policy="deadline",
        autoscale=AutoscalerSpec(min_devices=1),
        **slo_kwargs,
    )
    scale_ups = sum(1 for e in autoscaled.scale_events if e.action == "up")

    return {
        "slo/deadline_miss_rate": edf.deadline_miss_rate,
        "slo/fifo_miss_rate": fifo.deadline_miss_rate,
        "slo/deadline_unsound_count": float(
            edf.deadline_miss_rate > fifo.deadline_miss_rate + 1e-12
        ),
        "slo/preempted_identity_violation_count": float(identity_violations),
        "slo/preemptions": float(len(edf.preemptions)),
        "slo/preemption_overhead": edf.preemption_overhead_s,
        "slo/p999_latency": edf.p999_latency_s,
        "slo/makespan": edf.makespan_s,
        "slo/autoscale_makespan": autoscaled.makespan_s,
        "slo/autoscale_scale_ups": float(scale_ups),
        "slo/autoscale_never_scaled_count": float(scale_ups == 0),
    }


def _obs_metrics() -> Dict[str, float]:
    """Observability suite: span attribution soundness and determinism.

    A 40-job multi-node serving run is collected twice with full
    telemetry.  Three zero-tolerance counts pin the tentpole properties:

    * ``obs/attribution_gap_count`` — resources whose span-attributed plus
      untagged busy seconds do not reconcile with the timeline's busy
      time.  The attribution fold must account for every booked second; a
      single unreconciled resource fails the gate.
    * ``obs/untagged_busy_count`` — busy scheduler bookings carrying no
      span.  Every busy booking the serving path makes is tagged; an
      untagged one means a new code path forgot its span.
    * ``obs/metrics_nondeterminism_count`` — the two runs' Prometheus
      expositions or JSONL event logs differed byte for byte.  Telemetry
      is pure simulated-time arithmetic; any nondeterminism is a bug.

    The per-phase attributed seconds and the total NIC queueing wait ride
    along under the ordinary ratio tolerance, so attribution drift (e.g. a
    phase silently absorbing another's seconds) also surfaces.
    """
    first = run_serving(num_jobs=40, seed=0, nodes=2)
    second = run_serving(num_jobs=40, seed=0, nodes=2)
    attribution = first.attribution
    totals = attribution.phase_totals()
    nondeterminism = float(
        first.metrics.to_prometheus() != second.metrics.to_prometheus()
        or first.events.to_jsonl() != second.events.to_jsonl()
    )
    return {
        "obs/attribution_gap_count": float(attribution.gap_count),
        "obs/untagged_busy_count": float(attribution.untagged_busy_count),
        "obs/metrics_nondeterminism_count": nondeterminism,
        "obs/stage_attributed": totals.get("stage", 0.0),
        "obs/compute_attributed": totals.get("compute", 0.0),
        "obs/collective_attributed": totals.get("collective", 0.0),
        "obs/nic_wait": sum(c.nic_wait_s for c in attribution.jobs.values()),
        "obs/scheduler_events": float(len(first.events)),
    }


def _adaptive_metrics() -> Dict[str, float]:
    """Closed-loop scheduling suite: adaptive must never lose to static.

    Each scenario serves the same 40-job workload twice through one
    engine — the first run warms the preprocessing cache *and* the
    observation store, the second run is measured with the feedback loop
    closed — once static (FIFO NIC, feedback never consumed) and once
    adaptive (hedged run, plus a non-FIFO NIC discipline on the
    multi-node scenarios).  Three zero-tolerance counts pin the tentpole
    properties:

    * ``adaptive/regression_count`` — a measured adaptive makespan
      exceeded its static twin's.  The hedged engine trial-schedules both
      ways and keeps adaptive only on a strict win, so this must never
      happen by construction.
    * ``adaptive/identity_violation_count`` — a job completed by both
      twins whose outputs are not ``np.array_equal``.  Feedback moves
      work in *time*, never in *value*.
    * ``adaptive/gang_feasibility_violation_count`` — the adaptive runs'
      timelines reported booking violations (a displaced collective gang
      torn apart or double-booked); must stay empty under every NIC
      discipline.

    The per-scenario improvement ratios (adaptive over static makespan,
    at most 1.0 when the hedge holds) ride along as ungated ``_info``
    trend metrics, and the measured adaptive makespans are gated with the
    ordinary ratio tolerance.
    """
    import numpy as np

    from repro.serve.engine import ServingEngine
    from repro.serve.workload import (
        WorkloadSpec,
        default_multinode_serving_cluster,
        generate_workload,
    )

    def measure(make_cluster, jobs, *, adaptive: bool, nic_policy: str = "fifo"):
        engine = ServingEngine(
            make_cluster(),
            autotune=True,
            adaptive=adaptive,
            nic_policy=nic_policy,
        )
        engine.run(jobs)  # warm-up: fills the cache and observation store
        return engine.run(jobs)

    single_jobs = generate_workload(WorkloadSpec(num_jobs=40, seed=0))
    multi_jobs = generate_workload(
        WorkloadSpec(
            num_jobs=40, seed=0, cross_node_every=DEFAULT_CROSS_NODE_EVERY
        )
    )
    single = lambda: None  # noqa: E731 - default serving node
    multi = lambda: default_multinode_serving_cluster(2)  # noqa: E731

    scenarios = {
        "serving": (
            measure(single, single_jobs, adaptive=False),
            measure(single, single_jobs, adaptive=True),
        ),
        "multinode_fair": (
            measure(multi, multi_jobs, adaptive=False),
            measure(multi, multi_jobs, adaptive=True, nic_policy="fair"),
        ),
        "multinode_priority": (
            measure(multi, multi_jobs, adaptive=False),
            measure(multi, multi_jobs, adaptive=True, nic_policy="priority"),
        ),
    }

    metrics: Dict[str, float] = {}
    regressions = 0
    identity_violations = 0
    infeasible = 0
    for name, (static, adaptive) in scenarios.items():
        regressions += adaptive.makespan_s > static.makespan_s + 1e-12
        twin = {r.job.job_id: r for r in static.results if r.completed}
        for result in adaptive.results:
            other = twin.get(result.job.job_id)
            if not result.completed or other is None:
                continue
            ours = _comparable_arrays(result.output)
            theirs = _comparable_arrays(other.output)
            identity_violations += len(ours) != len(theirs) or any(
                not np.array_equal(a, b) for a, b in zip(ours, theirs)
            )
        if adaptive.timeline is not None:
            infeasible += len(adaptive.timeline.violations())
        metrics[f"adaptive/{name}_makespan"] = adaptive.makespan_s
        metrics[f"adaptive/{name}_improvement_ratio_info"] = (
            adaptive.makespan_s / static.makespan_s if static.makespan_s else 1.0
        )
    metrics["adaptive/regression_count"] = float(regressions)
    metrics["adaptive/identity_violation_count"] = float(identity_violations)
    metrics["adaptive/gang_feasibility_violation_count"] = float(infeasible)
    return metrics


def _wallclock_metrics() -> Dict[str, float]:
    """Wall-clock suite (quick mode): see :mod:`repro.bench.wallclock`.

    The only suite measuring real host seconds.  Ratios are gated with the
    wide ``SUITE_TOLERANCES["wallclock"]`` band, the ``_count`` metrics
    (identity violations, SpMTTKRP speedup < 2×) are zero-tolerance, and
    the ``_info`` absolute medians are recorded but never gated.
    """
    from repro.bench.wallclock import run_wallclock

    return run_wallclock(quick=True)


_SUITE_COLLECTORS = {
    "scaling": _scaling_metrics,
    "multinode": _multinode_metrics,
    "streaming": _streaming_metrics,
    "serving": _serving_metrics,
    "timeline": _timeline_metrics,
    "faults": _faults_metrics,
    "slo": _slo_metrics,
    "obs": _obs_metrics,
    "adaptive": _adaptive_metrics,
    "wallclock": _wallclock_metrics,
}


def collect_metrics(
    suites: Optional[Sequence[str]] = None,
) -> Dict[str, Dict[str, float]]:
    """Regression metrics grouped by suite; default: the simulated suites."""
    selected = tuple(suites) if suites else DEFAULT_SUITES
    unknown = [s for s in selected if s not in _SUITE_COLLECTORS]
    if unknown:
        raise ValueError(
            f"unknown suite(s): {', '.join(unknown)}; "
            f"choose from {', '.join(_SUITE_COLLECTORS)}"
        )
    return {suite: _SUITE_COLLECTORS[suite]() for suite in selected}


def compare_metrics(
    baseline: Dict[str, float],
    current: Dict[str, float],
    *,
    tolerance: float = DEFAULT_TOLERANCE,
) -> Tuple[List[str], List[str]]:
    """Compare one suite against its baseline.

    Returns ``(regressions, notes)``: a metric regresses when it is more
    than ``tolerance`` slower than the baseline; metrics added or removed
    relative to the baseline are reported as notes (they fail nothing —
    they mean the baseline needs an ``--update``).  Metrics whose name
    ends in ``_count`` are integer counts, not seconds: *any* increase
    over the baseline fails, with no ratio tolerance (a ratio of a small
    count is meaningless), while decreases pass as improvements.  Metrics
    ending in ``_info`` are recorded for trend artifacts but never gated
    (the wall-clock suite uses this for absolute medians, which are
    machine-dependent).
    """
    if tolerance < 0:
        raise ValueError(f"tolerance must be non-negative, got {tolerance}")
    regressions: List[str] = []
    notes: List[str] = []
    for name in sorted(set(baseline) | set(current)):
        if name.endswith("_info"):
            continue
        if name not in current:
            notes.append(f"metric disappeared (baseline has it): {name}")
            continue
        if name not in baseline:
            notes.append(f"new metric (not in baseline): {name}")
            continue
        base, now = baseline[name], current[name]
        if name.endswith("_count"):
            if now > base:
                regressions.append(
                    f"{name}: {base:.0f} -> {now:.0f} (count may not increase)"
                )
            continue
        if base <= 0.0:
            # A zero-cost baseline cannot express a ratio; only flag it
            # when the metric became non-trivially expensive.
            if now > 1e-12:
                regressions.append(f"{name}: baseline 0 s -> {now:.3e} s")
            continue
        ratio = now / base
        if ratio > 1.0 + tolerance:
            regressions.append(
                f"{name}: {base:.3e} s -> {now:.3e} s (+{(ratio - 1.0) * 100.0:.1f}%)"
            )
    return regressions, notes


def _payload(suite: str, metrics: Dict[str, float]) -> Dict[str, object]:
    if suite == "wallclock":
        return {
            "version": __version__,
            "tolerance": SUITE_TOLERANCES["wallclock"],
            "unit": (
                "wall-clock seconds (noisy; ratios banded, _count zero-"
                "tolerance, _info ungated)"
            ),
            "metrics": metrics,
        }
    return {
        "version": __version__,
        "tolerance": DEFAULT_TOLERANCE,
        "unit": "simulated seconds (deterministic; lower is better)",
        "metrics": metrics,
    }


def _write_suite(path: Path, suite: str, metrics: Dict[str, float]) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(_payload(suite, metrics), indent=2, sort_keys=True) + "\n"
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code (non-zero on regression)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.regression",
        description="Deterministic benchmark-regression gate for CI.",
    )
    action = parser.add_mutually_exclusive_group()
    action.add_argument(
        "--check", action="store_true", help="compare current metrics to the baseline"
    )
    action.add_argument(
        "--update", action="store_true", help="rewrite the committed baseline files"
    )
    parser.add_argument(
        "--baseline-dir",
        type=Path,
        default=DEFAULT_BASELINE_DIR,
        help=f"directory of the committed baselines (default: {DEFAULT_BASELINE_DIR})",
    )
    parser.add_argument(
        "--out-dir",
        type=Path,
        default=None,
        help="also write the freshly collected metrics here (the CI artifacts)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help=f"maximum tolerated slowdown ratio (default {DEFAULT_TOLERANCE})",
    )
    parser.add_argument(
        "--suite",
        action="append",
        dest="suite",
        metavar="NAME",
        default=None,
        help=(
            "suite(s) to run (repeatable); default: every simulated-time "
            "suite.  The 'wallclock' suite measures real host time and runs "
            "only when requested explicitly; see --list-suites"
        ),
    )
    parser.add_argument(
        "--list-suites",
        action="store_true",
        help="print the known suite names (one per line) and exit",
    )
    args = parser.parse_args(argv)

    if args.list_suites:
        for suite in ARTIFACT_FILES:
            print(suite)
        return 0
    if not (args.check or args.update):
        parser.error("one of the arguments --check --update is required")

    if args.suite:
        unknown = [s for s in args.suite if s not in ARTIFACT_FILES]
        if unknown:
            parser.error(
                f"unknown suite(s): {', '.join(unknown)}; "
                f"valid suites: {', '.join(ARTIFACT_FILES)} "
                "(see --list-suites)"
            )

    suites = collect_metrics(args.suite)

    if args.out_dir is not None:
        for suite, metrics in suites.items():
            _write_suite(args.out_dir / ARTIFACT_FILES[suite], suite, metrics)

    if args.update:
        for suite, metrics in suites.items():
            path = args.baseline_dir / ARTIFACT_FILES[suite]
            _write_suite(path, suite, metrics)
            print(f"wrote {path} ({len(metrics)} metrics)")
        return 0

    total_violations = 0
    failed_suites: List[str] = []
    for suite, metrics in suites.items():
        suite_tolerance = max(args.tolerance, SUITE_TOLERANCES.get(suite, 0.0))
        path = args.baseline_dir / ARTIFACT_FILES[suite]
        if not path.exists():
            print(f"FAIL [{suite}] missing baseline {path}; run with --update")
            failed_suites.append(suite)
            total_violations += 1
            continue
        baseline = json.loads(path.read_text())["metrics"]
        regressions, notes = compare_metrics(
            baseline, metrics, tolerance=suite_tolerance
        )
        for note in notes:
            print(f"note [{suite}] {note}")
        if regressions:
            failed_suites.append(suite)
            total_violations += len(regressions)
            for regression in regressions:
                print(f"FAIL [{suite}] {regression}")
        else:
            print(
                f"ok   [{suite}] {len(metrics)} metrics within "
                f"{suite_tolerance * 100.0:.0f}% of baseline"
            )
    if failed_suites:
        # Every violation has already been printed above — one CI round
        # sees the complete damage; this is the roll-up.
        print(
            f"FAIL {total_violations} violation(s) across "
            f"{len(failed_suites)} suite(s): {', '.join(failed_suites)}"
        )
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CI
    sys.exit(main())
