"""Figure 8: rank behaviour of SpTTM (Unified vs ParTI-GPU).

The paper sweeps the rank over {8, 16, 32, 64} on the two smallest tensors
(brainq and nell2) and shows that ParTI-GPU's time grows faster with the
rank than the unified method's — its thread-block shape depends on the rank,
degrading coalescing and causing divergence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.data.registry import load_dataset
from repro.gpusim.device import DeviceSpec, TITAN_X
from repro.kernels.baselines.parti_gpu import parti_gpu_spttm
from repro.kernels.unified.spttm import unified_spttm
from repro.tensor.random import random_factors
from repro.util.formatting import format_table

__all__ = ["Fig8Series", "Fig8Result", "run_fig8"]

DEFAULT_RANKS: Tuple[int, ...] = (8, 16, 32, 64)


@dataclass(frozen=True)
class Fig8Series:
    """One line of Figure 8: times per rank for one (dataset, implementation)."""

    dataset: str
    implementation: str
    ranks: Tuple[int, ...]
    times_s: Tuple[float, ...]

    @property
    def growth_factor(self) -> float:
        """Time at the largest rank divided by time at the smallest rank."""
        return self.times_s[-1] / self.times_s[0]


@dataclass
class Fig8Result:
    """All series of the Figure 8 reproduction."""

    mode: int
    series: List[Fig8Series]

    def series_for(self, dataset: str, implementation: str) -> Fig8Series:
        """Look up one line of the plot."""
        for s in self.series:
            if s.dataset == dataset and s.implementation == implementation:
                return s
        raise KeyError(f"no series for ({dataset}, {implementation})")

    def render(self) -> str:
        if not self.series:
            return "Figure 8: no series"
        ranks = self.series[0].ranks
        headers = ["series"] + [f"rank {r} (s)" for r in ranks] + ["growth"]
        body = []
        for s in self.series:
            body.append(
                [f"{s.implementation} ({s.dataset})"]
                + list(s.times_s)
                + [f"{s.growth_factor:.1f}x"]
            )
        return format_table(
            headers, body, title="Figure 8: SpTTM execution time vs rank"
        )


def run_fig8(
    *,
    datasets: Sequence[str] = ("brainq", "nell2"),
    ranks: Sequence[int] = DEFAULT_RANKS,
    mode: Optional[int] = None,
    device: DeviceSpec = TITAN_X,
    seed: int = 0,
) -> Fig8Result:
    """Figure 8: SpTTM time versus rank for Unified and ParTI-GPU."""
    series: List[Fig8Series] = []
    resolved_mode = -1
    for name in datasets:
        tensor = load_dataset(name)
        target_mode = (tensor.order - 1) if mode is None else mode
        resolved_mode = target_mode
        unified_times = []
        parti_times = []
        for rank in ranks:
            matrix = random_factors(tensor.shape, rank, seed=seed)[target_mode]
            unified_times.append(
                unified_spttm(tensor, matrix, target_mode, device=device).estimated_time_s
            )
            parti_times.append(
                parti_gpu_spttm(tensor, matrix, target_mode, device=device).estimated_time_s
            )
        series.append(
            Fig8Series(
                dataset=name,
                implementation="Unified",
                ranks=tuple(int(r) for r in ranks),
                times_s=tuple(unified_times),
            )
        )
        series.append(
            Fig8Series(
                dataset=name,
                implementation="ParTI-GPU",
                ranks=tuple(int(r) for r in ranks),
                times_s=tuple(parti_times),
            )
        )
    return Fig8Result(mode=resolved_mode, series=series)
