"""Figure 7: mode behaviour of SpTTM and SpMTTKRP on the brainq dataset.

The paper runs both operations on every mode of brainq (rank 16) and shows
that the unified method's time barely moves with the mode while ParTI-GPU
and SPLATT vary strongly (brainq is "oddly shaped": 60 × 70K × 9).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.cpusim.cpu import CPU_I7_5820K, CpuSpec
from repro.data.registry import load_dataset
from repro.gpusim.device import DeviceSpec, TITAN_X
from repro.kernels.baselines.parti_gpu import parti_gpu_spmttkrp, parti_gpu_spttm
from repro.kernels.baselines.splatt import splatt_mttkrp
from repro.kernels.unified.spmttkrp import unified_spmttkrp
from repro.kernels.unified.spttm import unified_spttm
from repro.tensor.random import random_factors
from repro.util.formatting import format_table

__all__ = ["Fig7Row", "Fig7Result", "run_fig7"]


@dataclass(frozen=True)
class Fig7Row:
    """Per-mode times (seconds) for every implementation of one operation."""

    mode: int
    parti_gpu_time_s: float
    splatt_time_s: Optional[float]
    unified_time_s: float


@dataclass
class Fig7Result:
    """Mode-behaviour results for one operation on one dataset."""

    operation: str
    dataset: str
    rank: int
    rows: List[Fig7Row]

    def variation(self, implementation: str) -> float:
        """Max/min time ratio across modes for one implementation.

        The paper's claim is that this ratio is close to 1 for the unified
        method and substantially larger for the baselines.
        """
        times = []
        for r in self.rows:
            value = {
                "parti_gpu": r.parti_gpu_time_s,
                "splatt": r.splatt_time_s,
                "unified": r.unified_time_s,
            }[implementation]
            if value is not None:
                times.append(value)
        if not times:
            raise ValueError(f"no times recorded for {implementation}")
        return max(times) / min(times)

    def render(self) -> str:
        headers = ["mode", "ParTI-GPU (s)", "SPLATT (s)", "Unified (s)"]
        body = [
            [
                r.mode + 1,  # the paper labels modes 1-based
                r.parti_gpu_time_s,
                r.splatt_time_s if r.splatt_time_s is not None else "-",
                r.unified_time_s,
            ]
            for r in self.rows
        ]
        table = format_table(
            headers,
            body,
            title=(
                f"Figure 7 ({self.operation} on {self.dataset}, rank={self.rank}): "
                "mode behaviour"
            ),
        )
        footer = (
            f"\nmax/min across modes:  ParTI-GPU {self.variation('parti_gpu'):.2f}x"
            f"   Unified {self.variation('unified'):.2f}x"
        )
        if any(r.splatt_time_s is not None for r in self.rows):
            footer += f"   SPLATT {self.variation('splatt'):.2f}x"
        return table + footer


def run_fig7(
    operation: str = "spmttkrp",
    *,
    dataset: str = "brainq",
    rank: int = 16,
    device: DeviceSpec = TITAN_X,
    cpu: CpuSpec = CPU_I7_5820K,
    seed: int = 0,
) -> Fig7Result:
    """Figure 7: per-mode times on ``dataset`` for SpTTM (7a) or SpMTTKRP (7b)."""
    operation = operation.lower()
    if operation not in ("spttm", "spmttkrp"):
        raise ValueError(f"operation must be 'spttm' or 'spmttkrp', got {operation!r}")
    tensor = load_dataset(dataset)
    factors = random_factors(tensor.shape, rank, seed=seed)

    rows: List[Fig7Row] = []
    for mode in range(tensor.order):
        if operation == "spttm":
            gpu = parti_gpu_spttm(tensor, factors[mode], mode, device=device)
            uni = unified_spttm(tensor, factors[mode], mode, device=device)
            splatt_time = None
        else:
            gpu = parti_gpu_spmttkrp(tensor, factors, mode, device=device)
            uni = unified_spmttkrp(tensor, factors, mode, device=device)
            # SPLATT reuses one CSF tree (rooted at the shortest mode) for
            # every per-mode MTTKRP, exactly as inside its CP-ALS.
            root = int(np.argmin(tensor.shape))
            splatt_time = splatt_mttkrp(
                tensor, factors, mode, cpu=cpu, csf_root_mode=root
            ).estimated_time_s
        rows.append(
            Fig7Row(
                mode=mode,
                parti_gpu_time_s=gpu.estimated_time_s,
                splatt_time_s=splatt_time,
                unified_time_s=uni.estimated_time_s,
            )
        )
    return Fig7Result(
        operation="SpTTM" if operation == "spttm" else "SpMTTKRP",
        dataset=dataset,
        rank=rank,
        rows=rows,
    )
