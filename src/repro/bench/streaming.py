"""Streamed out-of-core execution: overlap efficiency vs a no-overlap baseline.

The paper's kernels target tensors larger than GPU memory by partitioning
the non-zero stream and overlapping host-to-device copies with compute via
CUDA streams (Section IV-D).  The paper does not publish a dedicated figure
for this, so this runner is an extension experiment: each dataset analog is
forced out-of-core by shrinking the simulated device's memory (the same
:func:`~repro.gpusim.device.scaled_device` trick the capacity experiments
use), the mode-1 SpMTTKRP is executed with 1, 2 and 4 streams, and the
report shows the transfer/compute pipeline's makespan against the serial
(no-overlap) and ideal (full-overlap) bounds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.context import ExecContext
from repro.data.registry import DATASETS, load_dataset
from repro.formats.fcoo import FCOOTensor
from repro.formats.mode_encoding import OperationKind
from repro.gpusim.device import DeviceSpec, TITAN_X, scaled_device
from repro.kernels.unified.spmttkrp import spmttkrp_footprint, unified_spmttkrp
from repro.tensor.random import random_factors
from repro.util.formatting import format_seconds, format_table

__all__ = ["StreamingRow", "StreamingResult", "run_streaming"]

#: Fraction of the F-COO stream the shrunken device can hold next to the
#: resident operands; < 1 forces the streamed path with several chunks.
DEFAULT_MEMORY_FRACTION = 0.3


@dataclass(frozen=True)
class StreamingRow:
    """Streamed SpMTTKRP pipeline metrics for one (dataset, num_streams)."""

    dataset: str
    num_streams: int
    num_chunks: int
    chunk_nnz: int
    transfer_s: float
    compute_s: float
    streamed_s: float
    serial_s: float
    ideal_s: float
    overlap_efficiency: float

    @property
    def overlap_speedup(self) -> float:
        """Speedup of the pipelined schedule over no overlap at all."""
        return self.serial_s / self.streamed_s if self.streamed_s else 1.0


@dataclass
class StreamingResult:
    """All rows of the streaming-overlap experiment."""

    rank: int
    memory_fraction: float
    rows: List[StreamingRow]

    def render(self) -> str:
        headers = [
            "dataset",
            "streams",
            "chunks",
            "transfer",
            "compute",
            "streamed",
            "no-overlap",
            "overlap speedup",
            "overlap efficiency",
        ]
        body = [
            [
                r.dataset,
                r.num_streams,
                r.num_chunks,
                format_seconds(r.transfer_s),
                format_seconds(r.compute_s),
                format_seconds(r.streamed_s),
                format_seconds(r.serial_s),
                f"{r.overlap_speedup:.2f}x",
                f"{r.overlap_efficiency * 100.0:.0f}%",
            ]
            for r in self.rows
        ]
        return format_table(
            headers,
            body,
            title=(
                "Out-of-core streamed SpMTTKRP mode-1 "
                f"(rank={self.rank}, device holds {self.memory_fraction:.0%} "
                "of the F-COO stream)"
            ),
        )


def run_streaming(
    *,
    rank: int = 16,
    datasets: Optional[Sequence[str]] = None,
    device: DeviceSpec = TITAN_X,
    num_streams_options: Sequence[int] = (1, 2, 4),
    memory_fraction: float = DEFAULT_MEMORY_FRACTION,
    threadlen: int = 8,
    block_size: int = 128,
) -> StreamingResult:
    """Measure transfer/compute overlap of the streamed unified SpMTTKRP.

    Each dataset runs on a device shrunk until only ``memory_fraction`` of
    its F-COO stream fits next to the dense operands, so the kernel must
    stream; ``num_streams=1`` is the no-overlap baseline the speedup column
    compares against.
    """
    if not 0 < memory_fraction < 1:
        raise ValueError(f"memory_fraction must be in (0, 1), got {memory_fraction}")
    names = list(datasets) if datasets is not None else list(DATASETS)
    rows: List[StreamingRow] = []
    for name in names:
        tensor = load_dataset(name)
        factors = [np.asarray(f) for f in random_factors(tensor.shape, rank, seed=0)]
        fcoo = FCOOTensor.from_sparse(tensor, OperationKind.SPMTTKRP, 0)

        # Shrink the device so the factor matrices and output still fit but
        # only ``memory_fraction`` of the F-COO stream does — the same
        # capacity trick the Figure 6b/9 runners use, aimed at the streamed
        # regime instead of at an OOM failure.  The resident portion comes
        # from the kernel's own accounting so the sizing cannot drift.
        _, resident_bytes = spmttkrp_footprint(
            fcoo, rank, block_size=block_size, threadlen=threadlen
        )
        shrunk_bytes = resident_bytes + memory_fraction * fcoo.storage_bytes(threadlen)
        small = scaled_device(
            device,
            shrunk_bytes / device.global_mem_bytes,
            name_suffix=f"streamed {name}",
        )
        for n_streams in num_streams_options:
            result = unified_spmttkrp(
                fcoo,
                factors,
                0,
                device=small,
                block_size=block_size,
                threadlen=threadlen,
                ctx=ExecContext(num_streams=int(n_streams)),
            )
            execution = result.profile.streaming
            if execution is None:  # pragma: no cover - fraction < 1 forces streaming
                raise RuntimeError(f"{name} unexpectedly fit in the shrunken device")
            schedule = execution.schedule
            rows.append(
                StreamingRow(
                    dataset=name,
                    num_streams=int(n_streams),
                    num_chunks=execution.num_chunks,
                    chunk_nnz=execution.chunk_nnz,
                    transfer_s=schedule.transfer_time_s,
                    compute_s=schedule.compute_time_s,
                    streamed_s=schedule.total_time_s,
                    serial_s=schedule.serial_time_s,
                    ideal_s=schedule.ideal_time_s,
                    overlap_efficiency=schedule.overlap_efficiency,
                )
            )
    return StreamingResult(rank=rank, memory_fraction=memory_fraction, rows=rows)
