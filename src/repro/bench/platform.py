"""Table III: the (simulated) experimental platform configuration."""

from __future__ import annotations

from repro.cpusim.cpu import CPU_I7_5820K, CpuSpec
from repro.gpusim.device import DeviceSpec, TITAN_X
from repro.util.formatting import format_bytes, format_table

__all__ = ["platform_report"]


def platform_report(
    *, cpu: CpuSpec = CPU_I7_5820K, gpu: DeviceSpec = TITAN_X
) -> str:
    """Render the platform-configuration table (paper Table III).

    The values are the *model parameters* of the simulated devices; they
    deliberately mirror the paper's hardware so the cost models operate in
    the same regime (compute/bandwidth ratios, cache sizes, memory capacity).
    """
    rows = [
        ["Microarchitecture", "Haswell (model)", "Maxwell (model)"],
        ["Frequency", f"{cpu.clock_ghz:.1f} GHz", f"{gpu.clock_ghz:.1f} GHz"],
        ["Physical cores", cpu.physical_cores, gpu.total_cores],
        [
            "Peak SP performance",
            f"{cpu.peak_sp_gflops:.2f} Gflops",
            f"{gpu.peak_flops / 1e9:.0f} Gflops",
        ],
        ["Last-level cache", format_bytes(cpu.llc_bytes), format_bytes(gpu.l2_bytes)],
        ["Memory size", "64 GB (host)", format_bytes(gpu.global_mem_bytes)],
        [
            "Memory bandwidth",
            f"{cpu.mem_bandwidth_gbps:.0f} GB/s",
            f"{gpu.mem_bandwidth_gbps:.0f} GB/s",
        ],
    ]
    return format_table(
        ["Parameters", cpu.name, gpu.name],
        rows,
        title="Table III: experimental platform configuration (simulated)",
    )
