"""Multi-tenant serving over the simulated cluster (extension experiment).

The paper measures one kernel at a time; the ROADMAP's north star is a
system *serving* a stream of them.  This runner generates a seeded
synthetic multi-tenant workload (see
:class:`repro.serve.workload.WorkloadSpec`), serves it through the
:class:`repro.serve.ServingEngine` on the default heterogeneous analog
node, and reports throughput, latency percentiles, per-device utilisation
and preprocessing-cache effectiveness.  Everything is simulated time from
the deterministic cost models, so the numbers are reproducible bit for bit
and feed the CI regression gate (``repro.bench.regression``).
"""

from __future__ import annotations

from typing import Optional

from repro.gpusim.cluster import ClusterLike
from repro.serve.autoscale import AutoscalerSpec
from repro.serve.cache import PreprocCache
from repro.serve.engine import ServingEngine, ServingReport
from repro.serve.workload import (
    ChaosSpec,
    WorkloadSpec,
    default_multinode_serving_cluster,
    generate_chaos,
    generate_workload,
)

__all__ = ["run_serving", "DEFAULT_CROSS_NODE_EVERY"]

#: Cross-node tenant cadence of the multi-node serving mode: every n-th job
#: submits the tensor that exceeds any single node's aggregate memory.
DEFAULT_CROSS_NODE_EVERY = 14


def run_serving(
    *,
    num_jobs: int = 100,
    seed: int = 0,
    policy: str = "priority",
    cluster: Optional[ClusterLike] = None,
    nodes: Optional[int] = None,
    autotune: bool = True,
    max_batch: int = 4,
    max_queue_depth: Optional[int] = None,
    cache_capacity_bytes: Optional[int] = None,
    chaos_seed: Optional[int] = None,
    fail_node: Optional[int] = None,
    recover_after_s: Optional[float] = None,
    slo_fraction: float = 0.0,
    deadline_slack: Optional[float] = None,
    autoscale: Optional[AutoscalerSpec] = None,
    adaptive: bool = False,
    nic_policy: str = "fifo",
) -> ServingReport:
    """Serve a seeded synthetic workload and return the full report.

    Parameters
    ----------
    num_jobs / seed:
        Workload size and seed (the default 100-job workload exercises
        every path: one-shot, streamed, capability-weighted sharded,
        decompositions, batching, cache hits and admission rejects).
    policy:
        ``"priority"``, ``"fifo"`` or ``"deadline"`` (earliest deadline
        first with chunk-boundary preemption of batch jobs).
    cluster:
        Serving node; defaults to the heterogeneous
        :func:`~repro.serve.workload.default_serving_cluster`.
    nodes:
        Multi-node serving mode: with ``nodes >= 2`` (and no explicit
        ``cluster``) the engine runs on
        :func:`~repro.serve.workload.default_multinode_serving_cluster`
        and the workload adds cross-node tenants every
        :data:`DEFAULT_CROSS_NODE_EVERY` jobs, so the report exercises
        node-local sharding (off the NIC) *and* NIC-spanning jobs.
    autotune:
        Reuse tuned launch parameters through the preprocessing cache.
    max_batch / max_queue_depth / cache_capacity_bytes:
        Scheduler batching bound, admission queue bound, and cache budget.
    chaos_seed / fail_node / recover_after_s:
        Seeded chaos layer: with ``chaos_seed`` set, one node-loss event is
        drawn (:func:`~repro.serve.workload.generate_chaos`) inside the
        workload's arrival window and injected into the run — the
        scheduler tears down jobs in flight on the dead node and re-admits
        them on survivors.  ``fail_node`` pins the victim node instead of
        drawing it; ``recover_after_s`` returns the node to the placement
        pool that long after the failure.  Chaos draws from its own RNG
        stream, so the job list is identical to the failure-free run.
    slo_fraction / deadline_slack:
        SLO-driven serving: ``slo_fraction`` of the jobs become latency
        tenants with a deadline (see
        :attr:`~repro.serve.workload.WorkloadSpec.latency_slo_fraction`);
        ``deadline_slack`` overrides the workload's deadline tightness.
        The SLO draws are gated on the fraction, so ``slo_fraction=0``
        (the default) keeps the workload byte-identical to earlier PRs.
    autoscale:
        Optional :class:`~repro.serve.autoscale.AutoscalerSpec` enabling
        the device-pool autoscaler.
    adaptive / nic_policy:
        Closed-loop feedback scheduling: ``adaptive`` turns on the hedged
        adaptive run (observed times feed the placer and tuner; static
        wins ties, so adaptive never loses the makespan), ``nic_policy``
        selects the NIC queue discipline (``"fifo"``, ``"fair"``,
        ``"priority"``).  Both default off, keeping earlier baselines
        byte-identical.
    """
    cross_node_every = 0
    if nodes is not None and nodes >= 2:
        if cluster is None:
            cluster = default_multinode_serving_cluster(nodes)
        cross_node_every = DEFAULT_CROSS_NODE_EVERY
    engine = ServingEngine(
        cluster,
        cache=PreprocCache(capacity_bytes=cache_capacity_bytes),
        policy=policy,
        max_batch=max_batch,
        max_queue_depth=max_queue_depth,
        autotune=autotune,
        autoscale=autoscale,
        adaptive=adaptive,
        nic_policy=nic_policy,
    )
    spec_kwargs = dict(
        num_jobs=num_jobs,
        seed=seed,
        cross_node_every=cross_node_every,
        latency_slo_fraction=slo_fraction,
    )
    if deadline_slack is not None:
        spec_kwargs["deadline_slack"] = deadline_slack
    jobs = generate_workload(WorkloadSpec(**spec_kwargs))
    chaos = None
    if chaos_seed is not None:
        num_targets = (
            nodes
            if nodes is not None and nodes >= 2
            else engine.cluster.num_devices
        )
        # Strike inside the arrival window, so jobs are still in flight.
        window_s = max((j.arrival_s for j in jobs), default=0.0) or 1e-3
        chaos = generate_chaos(
            ChaosSpec(
                seed=chaos_seed,
                num_failures=1,
                window_s=window_s,
                fail_node=fail_node,
                recover_after_s=recover_after_s,
            ),
            num_nodes=num_targets,
        )
    return engine.run(jobs, chaos=chaos)
