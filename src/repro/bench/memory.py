"""Figure 9: GPU global-memory consumption of SpMTTKRP (Unified vs ParTI-GPU).

The paper measures (or computes by hand, for the configurations that do not
fit) the device memory needed by the mode-1 SpMTTKRP of each dataset.  The
unified one-shot method stores only the F-COO arrays, the factor matrices
and the output; ParTI additionally holds the full COO arrays and the
intermediate semi-sparse tensor of the two-step formulation, which is why it
exceeds the 12 GB of the Titan X on nell1 and delicious.

Two numbers are reported per implementation:

* the footprint measured on the synthetic analog, and
* the footprint computed analytically for the paper-scale tensor from the
  data structures each implementation allocates (the same "computed by
  hand from the open-source code" procedure the paper itself uses for the
  configurations that do not fit) — the quantity comparable to the paper's
  figure and used for the out-of-memory determination.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from typing import List, Optional, Sequence

from repro.data.registry import DATASETS, DatasetSpec, load_dataset
from repro.formats.coo import COOTensor
from repro.formats.fcoo import FCOOTensor
from repro.formats.mode_encoding import OperationKind
from repro.formats.storage_cost import fcoo_storage_bytes
from repro.gpusim.device import DeviceSpec, TITAN_X
from repro.tensor.sparse import SparseTensor
from repro.util.formatting import format_bytes, format_table

__all__ = [
    "Fig9Row",
    "Fig9Result",
    "run_fig9",
    "spmttkrp_footprints",
    "paper_scale_spmttkrp_footprints",
    "parti_paper_scale_footprint",
]


@dataclass(frozen=True)
class Fig9Row:
    """Memory footprints (bytes) for one dataset."""

    dataset: str
    rank: int
    unified_bytes: float
    parti_bytes: float
    unified_paper_scale_bytes: float
    parti_paper_scale_bytes: float
    parti_oom_at_paper_scale: bool

    @property
    def reduction_percent(self) -> float:
        """Memory reduction of unified vs ParTI (the paper quotes 68.6–88.6 %)."""
        return 100.0 * (1.0 - self.unified_bytes / self.parti_bytes)


@dataclass
class Fig9Result:
    """All rows of the Figure 9 reproduction."""

    rank: int
    device: DeviceSpec
    rows: List[Fig9Row]

    def render(self) -> str:
        headers = [
            "dataset",
            "Unified (analog)",
            "ParTI-GPU (analog)",
            "reduction",
            "Unified (paper scale)",
            "ParTI-GPU (paper scale)",
            "ParTI-GPU fits 12 GB?",
        ]
        body = [
            [
                r.dataset,
                format_bytes(r.unified_bytes),
                format_bytes(r.parti_bytes),
                f"{r.reduction_percent:.1f}%",
                format_bytes(r.unified_paper_scale_bytes),
                format_bytes(r.parti_paper_scale_bytes),
                "OOM" if r.parti_oom_at_paper_scale else "yes",
            ]
            for r in self.rows
        ]
        return format_table(
            headers,
            body,
            title=f"Figure 9: GPU memory consumption for SpMTTKRP mode-1 (rank={self.rank})",
        )


def spmttkrp_footprints(
    tensor: SparseTensor, rank: int, *, mode: int = 0, threadlen: int = 8
) -> tuple:
    """Device-memory footprints (unified_bytes, parti_bytes) for one tensor.

    Unified: F-COO arrays + product-mode factor matrices + output.
    ParTI:   COO arrays (64-bit indices, as in ParTI's GPU code) + factor
    matrices + intermediate semi-sparse tensor (one dense fiber per
    non-empty fiber of the last product mode, with 64-bit coordinates) +
    output.
    """
    order = tensor.order
    product_modes = [m for m in range(order) if m != mode]
    factor_bytes = sum(tensor.shape[m] * rank * 4.0 for m in product_modes)
    output_bytes = tensor.shape[mode] * rank * 4.0

    fcoo = FCOOTensor.from_sparse(tensor, OperationKind.SPMTTKRP, mode)
    unified_bytes = fcoo.storage_bytes(threadlen) + factor_bytes + output_bytes

    coo = COOTensor.from_sparse(tensor, sort_mode=mode, index_dtype=np.uint64)
    last_product = product_modes[-1]
    intermediate_fibers = tensor.num_fibers(last_product)
    intermediate_bytes = intermediate_fibers * (rank * 4.0 + (order - 1) * 8.0)
    parti_bytes = coo.storage_bytes() + factor_bytes + intermediate_bytes + output_bytes
    return unified_bytes, parti_bytes


def _expected_distinct_cells(cells: float, nnz: int) -> float:
    """Expected number of distinct cells hit by ``nnz`` uniform draws.

    Standard occupancy formula ``cells · (1 - exp(-nnz / cells))``; for the
    hyper-sparse tensors (cells >> nnz) this is essentially ``nnz`` and for
    the dense ones it saturates at ``cells``.
    """
    if cells <= 0:
        return 0.0
    return float(cells) * (1.0 - float(np.exp(-float(nnz) / float(cells))))


def paper_scale_spmttkrp_footprints(
    spec: DatasetSpec, rank: int, *, mode: int = 0, threadlen: int = 8
) -> tuple:
    """(unified_bytes, parti_bytes) for the *paper-scale* tensor, analytically.

    Uses the same data-structure inventory as :func:`spmttkrp_footprints`
    but with the original tensor's shape and non-zero count (Table IV): the
    F-COO byte model of Table II for unified, and 64-bit COO plus the
    two-step intermediate tensor for ParTI, with the number of intermediate
    fibers estimated by the uniform-occupancy formula.  This mirrors the
    paper's own by-hand computation for the configurations that do not fit
    on the device.
    """
    shape = spec.paper_shape
    nnz = spec.paper_nnz
    order = len(shape)
    product_modes = [m for m in range(order) if m != mode]
    factor_bytes = sum(shape[m] * rank * 4.0 for m in product_modes)
    output_bytes = shape[mode] * rank * 4.0

    unified = (
        fcoo_storage_bytes(
            nnz, order, OperationKind.SPMTTKRP, mode, threadlen=threadlen
        )
        + factor_bytes
        + output_bytes
    )

    coo_bytes = float(nnz) * (order * 8.0 + 4.0)
    last_product = product_modes[-1]
    fiber_cells = 1.0
    for m in range(order):
        if m != last_product:
            fiber_cells *= float(shape[m])
    fibers = _expected_distinct_cells(fiber_cells, nnz)
    intermediate_bytes = fibers * (rank * 4.0 + (order - 1) * 8.0)
    parti = coo_bytes + factor_bytes + intermediate_bytes + output_bytes
    return unified, parti


def parti_paper_scale_footprint(
    dataset: str, rank: int, *, mode: int = 0, threadlen: int = 8
) -> float:
    """ParTI-GPU's SpMTTKRP footprint at paper scale (bytes).

    Shared by the Figure 6b runner (to decide which bars are "OOM") and the
    Figure 9 runner so the two experiments agree on the computation.
    """
    _, parti = paper_scale_spmttkrp_footprints(
        DATASETS[dataset], rank, mode=mode, threadlen=threadlen
    )
    return parti


def run_fig9(
    *,
    rank: int = 16,
    datasets: Optional[Sequence[str]] = None,
    device: DeviceSpec = TITAN_X,
    threadlen: int = 8,
) -> Fig9Result:
    """Figure 9: memory consumption of SpMTTKRP mode-1, Unified vs ParTI-GPU."""
    names = list(datasets) if datasets is not None else list(DATASETS)
    rows: List[Fig9Row] = []
    for name in names:
        spec = DATASETS[name]
        tensor = load_dataset(name)
        unified_bytes, parti_bytes = spmttkrp_footprints(
            tensor, rank, mode=0, threadlen=threadlen
        )
        unified_paper, parti_paper = paper_scale_spmttkrp_footprints(
            spec, rank, mode=0, threadlen=threadlen
        )

        rows.append(
            Fig9Row(
                dataset=name,
                rank=rank,
                unified_bytes=unified_bytes,
                parti_bytes=parti_bytes,
                unified_paper_scale_bytes=unified_paper,
                parti_paper_scale_bytes=parti_paper,
                parti_oom_at_paper_scale=parti_paper > device.global_mem_bytes,
            )
        )
    return Fig9Result(rank=rank, device=device, rows=rows)
