"""The repository's first *wall-clock* measurement layer.

Everything else in ``repro.bench`` measures **simulated** seconds — cost-model
arithmetic that is deterministic and gated byte-for-byte.  This module times
the *actual host compute* of the three unified kernels and CP-ALS at fixed
sizes and seeds, once per numeric-execution backend
(:mod:`repro.backends`), and pairs the timings with a backend **identity
sweep**: the vectorized backend re-runs the repository's topology harnesses
(one-shot, chunked, sharded, multi-node, decompositions, the serving
scheduler) and every output is compared ``np.array_equal`` against the
reference backend's.

Wall time is noisy where simulated time is not, so the regression gate
(:mod:`repro.bench.regression`, suite ``wallclock``) treats the two metric
families differently:

* ``.../vec_over_ref_ratio`` — vectorized median over reference median per
  kernel; gated with a *wide* ratio band (the suite tolerance is 50 %).
* ``.../speedup_below_2x_count`` and ``backend_identity_violation_count``
  — zero-tolerance counts: the quick-mode SpMTTKRP speedup must stay ≥ 2×
  and the backends must stay bit-identical, on every run.
* ``.../{ref,vec}_median_s_info`` — absolute medians; recorded in the
  artifact for trend plots (the nightly ``wallclock-trend`` job) but never
  gated — absolute wall time on a shared runner is not a signal.

Timing protocol: every measurement runs ``warmup`` throwaway iterations and
reports the median of ``repeat`` timed iterations (``time.perf_counter``),
with inputs pre-generated and pre-encoded outside the timed region.

Usage::

    python -m repro.bench.wallclock                 # quick mode, table
    python -m repro.bench.wallclock --full          # nightly sizes
    python -m repro.bench.wallclock --json out.json # machine-readable
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.backends import BACKEND_ENV_VAR, get_backend
from repro.context import ExecContext
from repro.formats.fcoo import FCOOTensor
from repro.formats.mode_encoding import OperationKind
from repro.tensor.random import random_factors, random_sparse_tensor
from repro.tensor.sparse import SparseTensor

__all__ = [
    "QUICK_REPEAT",
    "QUICK_WARMUP",
    "FULL_REPEAT",
    "FULL_WARMUP",
    "run_wallclock",
    "main",
]

#: Quick mode (the CI ``wallclock`` job): median of 3 after 1 warmup.
QUICK_REPEAT, QUICK_WARMUP = 3, 1
#: Full mode (the nightly trend job): median of 5 after 2 warmups.
FULL_REPEAT, FULL_WARMUP = 5, 2


# ---------------------------------------------------------------------- #
# Workloads
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class _KernelCase:
    """One timed kernel workload at a fixed size and seed."""

    kernel: str
    shape: Tuple[int, ...]
    nnz: int
    rank: int
    seed: int


def _cases(quick: bool) -> List[_KernelCase]:
    """The timed workloads; sizes chosen so the interpreted path's per-
    non-zero overhead (not allocator noise) dominates the measurement."""
    if quick:
        # SpMTTKRP uses rank 32: the gate demands a ≥2× end-to-end speedup
        # *through the full kernel entry point*, whose cost-model stage is
        # backend-independent overhead — a wider factor keeps the numeric
        # core dominant so the measured margin stays comfortably above 2×.
        return [
            _KernelCase("spmttkrp", (30_000, 2_000, 1_500), 400_000, 32, 101),
            _KernelCase("spttm", (20_000, 1_500, 1_200), 250_000, 16, 102),
            _KernelCase("spttmc", (8_000, 600, 500), 120_000, 8, 103),
            _KernelCase("cp_als", (5_000, 600, 500), 150_000, 16, 104),
        ]
    return [
        _KernelCase("spmttkrp", (80_000, 4_000, 3_000), 1_200_000, 32, 101),
        _KernelCase("spttm", (50_000, 3_000, 2_500), 800_000, 16, 102),
        _KernelCase("spttmc", (16_000, 1_000, 800), 400_000, 8, 103),
        _KernelCase("cp_als", (12_000, 1_200, 1_000), 500_000, 16, 104),
    ]


def _median_time(fn: Callable[[], object], *, repeat: int, warmup: int) -> float:
    for _ in range(warmup):
        fn()
    samples = []
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return float(np.median(samples))


def _timed_runner(case: _KernelCase, backend: str) -> Callable[[], object]:
    """Build the closure the timer drives: inputs generated and F-COO
    encoded *outside* the timed region, backend threaded via ``ctx``."""
    from repro.algorithms.cp import cp_als
    from repro.kernels.unified.spmttkrp import unified_spmttkrp
    from repro.kernels.unified.spttm import unified_spttm
    from repro.kernels.unified.spttmc import unified_spttmc

    tensor = random_sparse_tensor(case.shape, case.nnz, seed=case.seed)
    ctx = ExecContext(backend=backend)
    if case.kernel == "spmttkrp":
        fcoo = FCOOTensor.from_sparse(tensor, OperationKind.SPMTTKRP, 0)
        factors = [np.array(f) for f in random_factors(case.shape, case.rank, seed=1)]
        return lambda: unified_spmttkrp(fcoo, factors, 0, ctx=ctx)
    if case.kernel == "spttm":
        fcoo = FCOOTensor.from_sparse(tensor, OperationKind.SPTTM, 0)
        matrix = np.array(random_factors(case.shape, case.rank, seed=1)[0])
        return lambda: unified_spttm(fcoo, matrix, 0, ctx=ctx)
    if case.kernel == "spttmc":
        fcoo = FCOOTensor.from_sparse(tensor, OperationKind.SPTTMC, 0)
        factors = [np.array(f) for f in random_factors(case.shape, case.rank, seed=1)]
        return lambda: unified_spttmc(fcoo, factors, 0, ctx=ctx)
    if case.kernel == "cp_als":
        return lambda: cp_als(
            tensor, case.rank, max_iterations=2, compute_fit=False, seed=7, ctx=ctx
        )
    raise ValueError(f"unknown kernel {case.kernel!r}")


# ---------------------------------------------------------------------- #
# Identity sweep
# ---------------------------------------------------------------------- #
def _outputs_under(backend: str, tensor: SparseTensor) -> List[np.ndarray]:
    """Every harness output under one backend, as a flat array list.

    Covers the repository's existing topology harnesses: one-shot, chunked
    (streamed), sharded (2 GPUs), multi-node (2×2), both decompositions,
    and the serving scheduler (which exercises batching, preemption and
    the preprocessing cache on top of the kernels).
    """
    from repro.algorithms.cp import cp_als
    from repro.algorithms.tucker import tucker_hooi
    from repro.bench.serving import run_serving
    from repro.kernels.unified.spmttkrp import unified_spmttkrp
    from repro.kernels.unified.spttm import unified_spttm
    from repro.kernels.unified.spttmc import unified_spttmc

    factors = [np.array(f) for f in random_factors(tensor.shape, 8, seed=2)]
    arrays: List[np.ndarray] = []

    for ctx in (
        ExecContext(backend=backend),
        ExecContext(backend=backend, streamed=True, chunk_nnz=512),
        ExecContext(backend=backend, devices=2),
    ):
        arrays.append(unified_spmttkrp(tensor, factors, 0, ctx=ctx).output)
        arrays.append(unified_spttm(tensor, factors[1], 1, ctx=ctx).output.fiber_values)
        arrays.append(unified_spttmc(tensor, factors, 0, ctx=ctx).output)

    cp = cp_als(
        tensor, 8, max_iterations=2, compute_fit=False, seed=5,
        ctx=ExecContext(backend=backend, devices=2),
    )
    arrays.extend(cp.factors)
    arrays.append(cp.weights)
    tk = tucker_hooi(
        tensor, (4, 4, 4), max_iterations=1, seed=5,
        ctx=ExecContext(backend=backend, devices=2),
    )
    arrays.extend(tk.factors)
    arrays.append(tk.core)

    # Scheduled path: the serving engine builds its own contexts, so the
    # backend rides the REPRO_BACKEND default the way the CI matrix sets it.
    previous = os.environ.get(BACKEND_ENV_VAR)
    os.environ[BACKEND_ENV_VAR] = backend
    try:
        report = run_serving(num_jobs=12, seed=0)
    finally:
        if previous is None:
            os.environ.pop(BACKEND_ENV_VAR, None)
        else:
            os.environ[BACKEND_ENV_VAR] = previous
    for result in report.results:
        output = result.output
        if output is None:
            continue
        if isinstance(output, np.ndarray):
            arrays.append(output)
        elif hasattr(output, "fiber_values"):
            arrays.append(output.fiber_values)
        else:
            arrays.extend(getattr(output, "factors", []) or [])
            for attr in ("weights", "core"):
                value = getattr(output, attr, None)
                if value is not None:
                    arrays.append(value)
    return arrays


def _identity_violations() -> int:
    """Arrays on which the vectorized backend diverges from the reference."""
    tensor = random_sparse_tensor((400, 60, 50), 8_000, seed=21)
    reference = _outputs_under("reference", tensor)
    vectorized = _outputs_under("vectorized", tensor)
    if len(reference) != len(vectorized):
        # Structural divergence (different job/array counts) is itself a
        # violation per missing/extra array.
        return abs(len(reference) - len(vectorized)) + sum(
            not np.array_equal(a, b) for a, b in zip(reference, vectorized)
        )
    return sum(not np.array_equal(a, b) for a, b in zip(reference, vectorized))


# ---------------------------------------------------------------------- #
# Suite driver
# ---------------------------------------------------------------------- #
def run_wallclock(
    *,
    quick: bool = True,
    repeat: Optional[int] = None,
    warmup: Optional[int] = None,
) -> Dict[str, float]:
    """Run the wall-clock suite; returns the flat metric dict the
    regression gate consumes (see the module docstring for the gating
    semantics of each metric family)."""
    if repeat is None:
        repeat = QUICK_REPEAT if quick else FULL_REPEAT
    if warmup is None:
        warmup = QUICK_WARMUP if quick else FULL_WARMUP
    get_backend("reference"), get_backend("vectorized")  # fail fast on registry

    metrics: Dict[str, float] = {}
    for case in _cases(quick):
        medians: Dict[str, float] = {}
        for backend in ("reference", "vectorized"):
            runner = _timed_runner(case, backend)
            medians[backend] = _median_time(runner, repeat=repeat, warmup=warmup)
        ratio = medians["vectorized"] / medians["reference"]
        prefix = f"wallclock/{case.kernel}"
        metrics[f"{prefix}/vec_over_ref_ratio"] = ratio
        metrics[f"{prefix}/ref_median_s_info"] = medians["reference"]
        metrics[f"{prefix}/vec_median_s_info"] = medians["vectorized"]
        if case.kernel == "spmttkrp":
            metrics[f"{prefix}/speedup_below_2x_count"] = float(ratio > 0.5)

    metrics["wallclock/backend_identity_violation_count"] = float(
        _identity_violations()
    )
    return metrics


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.wallclock",
        description="Wall-clock benchmark of the unified kernels per backend.",
    )
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument(
        "--quick", action="store_true", help="CI sizes (the default)"
    )
    mode.add_argument(
        "--full", action="store_true", help="nightly sizes (larger, slower)"
    )
    parser.add_argument(
        "--repeat", type=int, default=None, help="timed iterations (median taken)"
    )
    parser.add_argument(
        "--warmup", type=int, default=None, help="throwaway iterations before timing"
    )
    parser.add_argument(
        "--json", metavar="PATH", default=None, help="also write the metrics as JSON"
    )
    args = parser.parse_args(argv)
    if args.repeat is not None and args.repeat < 1:
        parser.error(f"--repeat must be >= 1, got {args.repeat}")
    if args.warmup is not None and args.warmup < 0:
        parser.error(f"--warmup must be >= 0, got {args.warmup}")

    metrics = run_wallclock(
        quick=not args.full, repeat=args.repeat, warmup=args.warmup
    )
    for name in sorted(metrics):
        print(f"{name:55s} {metrics[name]:.6g}")
    if args.json:
        parent = os.path.dirname(args.json)
        if parent:
            os.makedirs(parent, exist_ok=True)
        payload = {
            "mode": "full" if args.full else "quick",
            "unit": "wall-clock seconds (noisy; ratios gated, _info recorded)",
            "metrics": metrics,
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json}")
    violations = metrics["wallclock/backend_identity_violation_count"]
    return 1 if violations else 0


if __name__ == "__main__":  # pragma: no cover - exercised via CI
    sys.exit(main())
