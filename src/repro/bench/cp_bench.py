"""Figure 10: CP decomposition time breakdown, Unified (GPU) vs SPLATT (CPU).

The paper fixes the rank at 8 (brainq's third mode has only 9 indices),
decomposes brainq and nell2, and reports the total time split into the three
per-mode MTTKRPs plus "other" (dense linear algebra).  Two claims are made:
the unified method is 14.9× / 2.9× faster than SPLATT, and its per-mode
MTTKRP times are well balanced while SPLATT's are not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.algorithms.cp import SplattCPUEngine, UnifiedGPUEngine, cp_als
from repro.cpusim.cpu import CPU_I7_5820K, CpuSpec
from repro.data.registry import load_dataset
from repro.gpusim.device import DeviceSpec, TITAN_X
from repro.util.formatting import format_table

__all__ = ["Fig10Row", "Fig10Result", "run_fig10"]


@dataclass(frozen=True)
class Fig10Row:
    """CP-ALS timing breakdown for one (dataset, engine) pair."""

    dataset: str
    engine: str
    mttkrp_time_by_mode: Dict[int, float]
    other_time_s: float
    iterations: int
    final_fit: Optional[float]

    @property
    def total_time_s(self) -> float:
        """Total decomposition time (MTTKRPs + dense updates)."""
        return sum(self.mttkrp_time_by_mode.values()) + self.other_time_s

    @property
    def mode_balance(self) -> float:
        """Max/min ratio of the per-mode MTTKRP times (1 = perfectly balanced)."""
        times = [t for t in self.mttkrp_time_by_mode.values() if t > 0]
        if not times:
            return 1.0
        return max(times) / min(times)


@dataclass
class Fig10Result:
    """All rows of the Figure 10 reproduction."""

    rank: int
    iterations: int
    rows: List[Fig10Row]

    def speedup(self, dataset: str) -> float:
        """Unified's speedup over SPLATT on one dataset."""
        unified = self.row(dataset, "unified-gpu")
        splatt = self.row(dataset, "splatt-cpu")
        return splatt.total_time_s / unified.total_time_s

    def row(self, dataset: str, engine: str) -> Fig10Row:
        """Look up one bar of the figure."""
        for r in self.rows:
            if r.dataset == dataset and r.engine == engine:
                return r
        raise KeyError(f"no row for ({dataset}, {engine})")

    def render(self) -> str:
        n_modes = max(len(r.mttkrp_time_by_mode) for r in self.rows)
        headers = (
            ["dataset", "engine"]
            + [f"mode{m + 1}-mttkrp (s)" for m in range(n_modes)]
            + ["other (s)", "total (s)", "mode balance"]
        )
        body = []
        for r in self.rows:
            body.append(
                [r.dataset, r.engine]
                + [r.mttkrp_time_by_mode.get(m, 0.0) for m in range(n_modes)]
                + [r.other_time_s, r.total_time_s, f"{r.mode_balance:.2f}x"]
            )
        table = format_table(
            headers,
            body,
            title=(
                f"Figure 10: CP-ALS (rank={self.rank}, {self.iterations} iterations) "
                "time breakdown"
            ),
        )
        datasets = sorted({r.dataset for r in self.rows})
        footer_parts = []
        for name in datasets:
            try:
                footer_parts.append(
                    f"{name}: unified {self.speedup(name):.1f}x faster than SPLATT"
                )
            except KeyError:
                continue
        return table + ("\n" + "; ".join(footer_parts) if footer_parts else "")


def run_fig10(
    *,
    rank: int = 8,
    iterations: int = 5,
    datasets: Sequence[str] = ("brainq", "nell2"),
    device: DeviceSpec = TITAN_X,
    cpu: CpuSpec = CPU_I7_5820K,
    seed: int = 0,
) -> Fig10Result:
    """Figure 10: CP-ALS breakdown with the unified GPU and SPLATT CPU engines."""
    rows: List[Fig10Row] = []
    for name in datasets:
        tensor = load_dataset(name)
        for engine in (UnifiedGPUEngine(device=device), SplattCPUEngine(cpu=cpu)):
            result = cp_als(
                tensor,
                rank,
                engine=engine,
                max_iterations=iterations,
                tolerance=0.0,  # run a fixed number of iterations for timing
                seed=seed,
                compute_fit=True,
            )
            rows.append(
                Fig10Row(
                    dataset=name,
                    engine=engine.name,
                    mttkrp_time_by_mode=dict(result.mttkrp_time_by_mode),
                    other_time_s=result.other_time_s,
                    iterations=result.iterations,
                    final_fit=result.final_fit,
                )
            )
    return Fig10Result(rank=rank, iterations=iterations, rows=rows)
