"""Table II: storage cost of COO vs F-COO for SpTTM and SpMTTKRP."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.data.registry import DATASETS, load_dataset
from repro.formats.coo import COOTensor
from repro.formats.fcoo import FCOOTensor
from repro.formats.mode_encoding import OperationKind
from repro.formats.storage_cost import coo_storage_bytes, fcoo_storage_bytes
from repro.util.formatting import format_table

__all__ = ["Table2Row", "Table2Result", "run_table2"]


@dataclass(frozen=True)
class Table2Row:
    """One dataset × operation storage comparison.

    ``*_model`` columns come from the analytic Table II formulas;
    ``*_measured`` from the byte sizes of the actual in-memory structures.
    """

    dataset: str
    operation: str
    nnz: int
    threadlen: int
    coo_bytes_per_nnz_model: float
    fcoo_bytes_per_nnz_model: float
    coo_bytes_per_nnz_measured: float
    fcoo_bytes_per_nnz_measured: float

    @property
    def reduction_factor(self) -> float:
        """How many times smaller F-COO is than COO (measured)."""
        return self.coo_bytes_per_nnz_measured / self.fcoo_bytes_per_nnz_measured


@dataclass
class Table2Result:
    """All rows of the Table II reproduction."""

    rows: List[Table2Row]

    def render(self) -> str:
        headers = [
            "dataset",
            "operation",
            "nnz",
            "threadlen",
            "COO B/nnz (model)",
            "F-COO B/nnz (model)",
            "COO B/nnz (measured)",
            "F-COO B/nnz (measured)",
            "reduction",
        ]
        body = [
            [
                r.dataset,
                r.operation,
                r.nnz,
                r.threadlen,
                r.coo_bytes_per_nnz_model,
                r.fcoo_bytes_per_nnz_model,
                r.coo_bytes_per_nnz_measured,
                r.fcoo_bytes_per_nnz_measured,
                f"{r.reduction_factor:.2f}x",
            ]
            for r in self.rows
        ]
        return format_table(headers, body, title="Table II: storage cost of COO vs F-COO")


def run_table2(
    *,
    datasets: Optional[Sequence[str]] = None,
    threadlen: int = 8,
) -> Table2Result:
    """Reproduce Table II on the registered datasets.

    For each dataset two rows are produced: SpTTM on the last mode (the
    paper's "SpTTM on mode-3") and SpMTTKRP on the first mode ("on mode-1").
    """
    names = list(datasets) if datasets is not None else list(DATASETS)
    rows: List[Table2Row] = []
    for name in names:
        tensor = load_dataset(name)
        order = tensor.order
        cases: List[Tuple[str, OperationKind, int]] = [
            (f"SpTTM mode-{order}", OperationKind.SPTTM, order - 1),
            ("SpMTTKRP mode-1", OperationKind.SPMTTKRP, 0),
        ]
        coo = COOTensor.from_sparse(tensor)
        for label, op, mode in cases:
            fcoo = FCOOTensor.from_sparse(tensor, op, mode)
            rows.append(
                Table2Row(
                    dataset=name,
                    operation=label,
                    nnz=tensor.nnz,
                    threadlen=threadlen,
                    coo_bytes_per_nnz_model=coo_storage_bytes(tensor.nnz, order) / tensor.nnz,
                    fcoo_bytes_per_nnz_model=fcoo_storage_bytes(
                        tensor.nnz, order, op, mode, threadlen=threadlen
                    )
                    / tensor.nnz,
                    coo_bytes_per_nnz_measured=coo.storage_bytes() / tensor.nnz,
                    fcoo_bytes_per_nnz_measured=fcoo.storage_bytes(threadlen) / tensor.nnz,
                )
            )
    return Table2Result(rows=rows)
