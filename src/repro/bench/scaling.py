"""Multi-GPU scaling of the sharded unified kernels (extension experiment).

The paper evaluates on one Titan X; this runner measures how the sharded
execution path scales when the F-COO non-zero stream is partitioned across
a simulated multi-GPU node:

* **strong scaling** (:func:`run_scaling`) — a fixed dataset analog on 1-8
  GPUs; the speedup column is ``T(1 GPU) / T(N GPUs)`` and the parallel
  efficiency is ``speedup / N``.
* **weak scaling** (:func:`run_weak_scaling`) — the problem grows with the
  device count (``N`` times the base non-zeros on ``N`` GPUs); the
  efficiency column is ``T(1 GPU) / T(N GPUs)``, which would be 1 under
  perfect scaling.

Like the capacity experiments (which shrink the simulated device memory by
the dataset's shrink factor), the interconnect must be projected to analog
scale: the analogs carry 100-1000x fewer non-zeros than the paper's
tensors, so kernel times shrink by that factor while a real NIC latency
would not — charging 5 us of latency against a 10 us kernel would say
nothing about paper-scale behaviour.  :func:`analog_interconnect` shrinks
the latency by the dataset's *time* scale (analog nnz / paper nnz) and
rescales the bandwidth by the payload-to-time ratio, so the modeled
reduction keeps the same proportion to compute that it would have at paper
scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.context import ExecContext
from repro.data.registry import DATASETS, load_dataset
from repro.formats.fcoo import FCOOTensor
from repro.formats.mode_encoding import OperationKind
from repro.gpusim.cluster import (
    ETHERNET_10G,
    ClusterSpec,
    InterconnectSpec,
    MultiNodeClusterSpec,
    PCIE3_P2P,
)
from repro.gpusim.device import DeviceSpec, TITAN_X
from repro.gpusim.timeline import Timeline, device_compute_key
from repro.kernels.unified.spmttkrp import unified_spmttkrp
from repro.kernels.unified.spttm import unified_spttm
from repro.kernels.unified.spttmc import unified_spttmc
from repro.tensor.random import random_factors, random_sparse_tensor
from repro.tensor.sparse import SparseTensor
from repro.util.formatting import format_seconds, format_table

__all__ = [
    "ScalingRow",
    "ScalingResult",
    "analog_interconnect",
    "collect_scaling_trace",
    "run_scaling",
    "run_weak_scaling",
    "DEFAULT_DEVICE_COUNTS",
    "SCALING_OPERATIONS",
]

#: The device counts of the scaling curves (a typical 8-GPU node).
DEFAULT_DEVICE_COUNTS: Tuple[int, ...] = (1, 2, 4, 8)

#: All three unified kernels, in the order the tables report them.
SCALING_OPERATIONS: Tuple[str, ...] = ("spttm", "spmttkrp", "spttmc")

#: Paper-scale non-zero count the weak-scaling synthetic workloads model
#: (the magnitude of the paper's large tensors: nell1/delicious, ~1.4e8).
NOMINAL_PAPER_NNZ = 1.0e8


def analog_interconnect(
    base: InterconnectSpec,
    *,
    time_scale: float,
    payload_scale: Optional[float] = None,
    name_suffix: str = "analog",
) -> InterconnectSpec:
    """Project an interconnect onto an analog-scale workload.

    ``time_scale`` is how much faster the analog's kernels run than the
    paper-scale original (its non-zero shrink factor); the latency shrinks
    by it so collective steps keep their paper-scale proportion to compute.
    ``payload_scale`` is how much smaller the analog's collective payloads
    are (its *shape* shrink factor for dense outputs); the bandwidth is
    rescaled by ``payload_scale / time_scale`` so the bandwidth term also
    keeps its paper-scale proportion.  ``payload_scale=None`` means the
    payload shrinks like the time (true for per-fiber outputs, which are
    proportional to nnz), leaving the bandwidth untouched.
    """
    if not 0 < time_scale:
        raise ValueError(f"time_scale must be positive, got {time_scale}")
    if payload_scale is None:
        payload_scale = time_scale
    if payload_scale <= 0:
        raise ValueError(f"payload_scale must be positive, got {payload_scale}")
    return InterconnectSpec(
        name=f"{base.name} [{name_suffix}]",
        bandwidth_bytes_per_s=base.bandwidth_bytes_per_s * payload_scale / time_scale,
        latency_s=base.latency_s * time_scale,
    )


@dataclass(frozen=True)
class ScalingRow:
    """One (operation, workload, device count) point of a scaling curve."""

    operation: str
    workload: str
    num_devices: int
    nnz: int
    time_s: float
    baseline_s: float
    max_shard_s: float
    reduction_s: float

    @property
    def speedup(self) -> float:
        """``T(baseline) / T(this)`` — above 1 is a win."""
        return self.baseline_s / self.time_s if self.time_s else 1.0

    @property
    def efficiency(self) -> float:
        """Parallel efficiency: strong scaling divides the speedup by N."""
        return self.speedup / self.num_devices


@dataclass
class ScalingResult:
    """All rows of a scaling experiment (one kind: strong or weak)."""

    rank: int
    kind: str
    device_counts: Tuple[int, ...]
    rows: List[ScalingRow]

    def rows_for(self, operation: str, workload: Optional[str] = None) -> List[ScalingRow]:
        """The curve of one operation (optionally restricted to a workload)."""
        return [
            r
            for r in self.rows
            if r.operation == operation and (workload is None or r.workload == workload)
        ]

    def render(self) -> str:
        headers = [
            "kernel",
            "workload",
            "GPUs",
            "nnz",
            "time",
            "speedup" if self.kind == "strong" else "vs 1 GPU",
            "efficiency",
            "slowest shard",
            "reduction",
        ]
        body = []
        for r in self.rows:
            efficiency = r.efficiency if self.kind == "strong" else r.speedup
            body.append(
                [
                    r.operation,
                    r.workload,
                    r.num_devices,
                    r.nnz,
                    format_seconds(r.time_s),
                    f"{r.speedup:.2f}x",
                    f"{efficiency * 100.0:.0f}%",
                    format_seconds(r.max_shard_s),
                    format_seconds(r.reduction_s),
                ]
            )
        return format_table(
            headers,
            body,
            title=(
                f"Multi-GPU {self.kind} scaling of the unified kernels "
                f"(rank={self.rank}, {'/'.join(str(d) for d in self.device_counts)} GPUs, "
                "analog-scaled interconnect)"
            ),
        )


_OPERATION_KINDS = {
    "spttm": OperationKind.SPTTM,
    "spmttkrp": OperationKind.SPMTTKRP,
    "spttmc": OperationKind.SPTTMC,
}


def _op_payload_scale(operation: str, dense_payload_scale: float) -> Optional[float]:
    """The analog payload-scale rule, single-sourced for every runner.

    SpTTM only exchanges boundary fibers (payload ~ nnz-shaped, shrinking
    like the time scale, so the bandwidth stays untouched); the dense
    factor/unfolding outputs of the other two shrink with the mode size.
    """
    return None if operation == "spttm" else dense_payload_scale


def _run_operation(
    operation: str,
    fcoo: FCOOTensor,
    factors: Sequence[np.ndarray],
    mode: int,
    *,
    cluster: Optional[ClusterSpec],
    device: DeviceSpec,
    block_size: int,
    threadlen: int,
):
    kwargs = dict(
        device=device,
        block_size=block_size,
        threadlen=threadlen,
        ctx=ExecContext(cluster=cluster),
    )
    if operation == "spttm":
        return unified_spttm(fcoo, factors[mode], mode, **kwargs)
    if operation == "spmttkrp":
        return unified_spmttkrp(fcoo, factors, mode, **kwargs)
    return unified_spttmc(fcoo, factors, mode, **kwargs)


def _scaling_point(
    operation: str,
    workload: str,
    fcoo: FCOOTensor,
    factors: Sequence[np.ndarray],
    mode: int,
    num_devices: int,
    baseline_s: Optional[float],
    *,
    device: DeviceSpec,
    interconnect: InterconnectSpec,
    block_size: int,
    threadlen: int,
) -> ScalingRow:
    """One (operation, workload, device count) measurement.

    ``baseline_s=None`` marks the curve's first point, which becomes its
    own baseline.  Shared by the strong- and weak-scaling runners so the
    row construction cannot diverge between the two tables.
    """
    cluster = (
        None
        if num_devices == 1
        else ClusterSpec.homogeneous(device, num_devices, interconnect=interconnect)
    )
    result = _run_operation(
        operation,
        fcoo,
        factors,
        mode,
        cluster=cluster,
        device=device,
        block_size=block_size,
        threadlen=threadlen,
    )
    execution = getattr(result.profile, "sharded", None)
    return ScalingRow(
        operation=operation,
        workload=workload,
        num_devices=num_devices,
        nnz=fcoo.nnz,
        time_s=result.estimated_time_s,
        baseline_s=result.estimated_time_s if baseline_s is None else baseline_s,
        max_shard_s=(
            execution.max_shard_time_s
            if execution is not None
            else result.estimated_time_s
        ),
        reduction_s=execution.reduction_time_s if execution is not None else 0.0,
    )


def _scaling_rows(
    operation: str,
    workload: str,
    fcoo: FCOOTensor,
    factors: Sequence[np.ndarray],
    mode: int,
    *,
    device: DeviceSpec,
    interconnect: InterconnectSpec,
    device_counts: Sequence[int],
    block_size: int,
    threadlen: int,
) -> List[ScalingRow]:
    """The strong-scaling curve of one operation on one fixed workload."""
    rows: List[ScalingRow] = []
    baseline_s: Optional[float] = None
    for n in device_counts:
        row = _scaling_point(
            operation,
            workload,
            fcoo,
            factors,
            mode,
            int(n),
            baseline_s,
            device=device,
            interconnect=interconnect,
            block_size=block_size,
            threadlen=threadlen,
        )
        baseline_s = row.baseline_s
        rows.append(row)
    return rows


def _effective_rank(operation: str, rank: int, spttmc_rank: Optional[int]) -> int:
    """SpTTMc's output width is the rank *squared*; cap it by default."""
    if operation != "spttmc":
        return rank
    return spttmc_rank if spttmc_rank is not None else min(rank, 8)


def run_scaling(
    *,
    rank: int = 16,
    datasets: Optional[Sequence[str]] = None,
    operations: Sequence[str] = SCALING_OPERATIONS,
    device_counts: Sequence[int] = DEFAULT_DEVICE_COUNTS,
    device: DeviceSpec = TITAN_X,
    interconnect: InterconnectSpec = PCIE3_P2P,
    block_size: int = 128,
    threadlen: int = 8,
    spttmc_rank: Optional[int] = None,
    seed: int = 0,
) -> ScalingResult:
    """Strong scaling: fixed dataset analogs on growing device counts.

    Every (operation, dataset) pair runs the mode-0 kernel on 1 GPU (the
    exact single-device path — the baseline) and on each larger count
    through the sharded path; the interconnect is projected to analog
    scale per dataset (see :func:`analog_interconnect`).  ``spttmc_rank``
    caps the SpTTMc factor rank (default ``min(rank, 8)``) because its
    output width is the product of the product-mode ranks.
    """
    names = list(datasets) if datasets is not None else ["brainq", "nell2"]
    for op in operations:
        if op not in _OPERATION_KINDS:
            raise ValueError(f"unknown operation {op!r}; choose from {sorted(_OPERATION_KINDS)}")
    mode = 0
    rows: List[ScalingRow] = []
    for name in names:
        spec = DATASETS[name]
        tensor = load_dataset(name)
        time_scale = tensor.nnz / spec.paper_nnz
        dense_payload_scale = tensor.shape[mode] / spec.paper_shape[mode]
        for op in operations:
            op_rank = _effective_rank(op, rank, spttmc_rank)
            factors = [np.asarray(f) for f in random_factors(tensor.shape, op_rank, seed=seed)]
            fcoo = FCOOTensor.from_sparse(tensor, _OPERATION_KINDS[op], mode)
            scaled_link = analog_interconnect(
                interconnect,
                time_scale=time_scale,
                payload_scale=_op_payload_scale(op, dense_payload_scale),
                name_suffix=f"analog {name}",
            )
            rows.extend(
                _scaling_rows(
                    op,
                    name,
                    fcoo,
                    factors,
                    mode,
                    device=device,
                    interconnect=scaled_link,
                    device_counts=device_counts,
                    block_size=block_size,
                    threadlen=threadlen,
                )
            )
    return ScalingResult(
        rank=rank, kind="strong", device_counts=tuple(int(d) for d in device_counts), rows=rows
    )


def collect_scaling_trace(
    *,
    rank: int = 8,
    dataset: str = "brainq",
    num_devices: int = 4,
    num_nodes: int = 1,
    device: DeviceSpec = TITAN_X,
    interconnect: InterconnectSpec = PCIE3_P2P,
    nic: InterconnectSpec = ETHERNET_10G,
    block_size: int = 128,
    threadlen: int = 8,
    spttmc_rank: Optional[int] = None,
    seed: int = 0,
) -> Timeline:
    """Book one sharded run of each kernel onto a shared unified timeline.

    The three unified kernels execute back to back on a sharded cluster
    (the interconnect projected to analog scale with the same
    :func:`_op_payload_scale` rule the scaling tables use) and each
    execution's ledger books its shard computes and partial-output
    collective onto one :class:`~repro.gpusim.timeline.Timeline` through
    :meth:`~repro.kernels.unified.sharded.ShardedExecution.book`.  With
    ``num_nodes > 1`` the cluster is a two-tier
    :class:`~repro.gpusim.cluster.MultiNodeClusterSpec` of
    ``num_nodes x num_devices`` GPUs (matching the topology of ``scaling
    --nodes``), so the trace additionally shows the per-node ``nic:*``
    lanes.  Backs ``python -m repro scaling --trace out.json``:
    per-device compute lanes plus the link/NIC lanes of the reductions,
    viewable in ``chrome://tracing``.
    """
    spec = DATASETS[dataset]
    tensor = load_dataset(dataset)
    mode = 0
    time_scale = tensor.nnz / spec.paper_nnz
    dense_payload_scale = tensor.shape[mode] / spec.paper_shape[mode]
    timeline = Timeline()
    clock = 0.0
    for op in SCALING_OPERATIONS:
        op_rank = _effective_rank(op, rank, spttmc_rank)
        factors = [np.asarray(f) for f in random_factors(tensor.shape, op_rank, seed=seed)]
        fcoo = FCOOTensor.from_sparse(tensor, _OPERATION_KINDS[op], mode)
        payload_scale = _op_payload_scale(op, dense_payload_scale)
        scaled_link = analog_interconnect(
            interconnect,
            time_scale=time_scale,
            payload_scale=payload_scale,
            name_suffix=f"analog {dataset}",
        )
        if num_nodes > 1:
            cluster = MultiNodeClusterSpec.homogeneous(
                device,
                num_nodes,
                num_devices,
                intra=scaled_link,
                nic=analog_interconnect(
                    nic,
                    time_scale=time_scale,
                    payload_scale=payload_scale,
                    name_suffix=f"analog {dataset}",
                ),
            )
        elif num_devices > 1:
            cluster = ClusterSpec.homogeneous(
                device, num_devices, interconnect=scaled_link
            )
        else:
            cluster = None
        result = _run_operation(
            op,
            fcoo,
            factors,
            mode,
            cluster=cluster,
            device=device,
            block_size=block_size,
            threadlen=threadlen,
        )
        execution = getattr(result.profile, "sharded", None)
        if execution is not None:
            _, clock = execution.book(timeline, ready_s=clock, label=op)
        else:
            clock = timeline.book(
                timeline.resource(device_compute_key(0), category="compute"),
                result.estimated_time_s,
                ready_s=clock,
                label=op,
            ).end_s
    return timeline


def run_weak_scaling(
    *,
    rank: int = 16,
    base_shape: Sequence[int] = (128, 160, 120),
    base_nnz: int = 24_000,
    operations: Sequence[str] = SCALING_OPERATIONS,
    device_counts: Sequence[int] = DEFAULT_DEVICE_COUNTS,
    device: DeviceSpec = TITAN_X,
    interconnect: InterconnectSpec = PCIE3_P2P,
    block_size: int = 128,
    threadlen: int = 8,
    spttmc_rank: Optional[int] = None,
    seed: int = 0,
) -> ScalingResult:
    """Weak scaling: the problem grows with the device count.

    The ``N``-GPU workload is a synthetic tensor with ``N`` times the base
    non-zeros and an ``N``-times-longer mode 0 (constant work per device);
    under perfect scaling ``T(N) == T(1)``, so the efficiency column is
    simply ``T(1) / T(N)``.  The interconnect latency is projected by the
    base workload's time scale against :data:`NOMINAL_PAPER_NNZ`.
    """
    for op in operations:
        if op not in _OPERATION_KINDS:
            raise ValueError(f"unknown operation {op!r}; choose from {sorted(_OPERATION_KINDS)}")
    base_shape = tuple(int(s) for s in base_shape)
    scaled_link = analog_interconnect(
        interconnect,
        time_scale=base_nnz / NOMINAL_PAPER_NNZ,
        name_suffix="analog weak",
    )
    tensors: Dict[int, SparseTensor] = {}
    for n in device_counts:
        shape = (base_shape[0] * int(n),) + base_shape[1:]
        tensors[int(n)] = random_sparse_tensor(
            shape, base_nnz * int(n), seed=seed, distribution="power", concentration=0.9
        )

    rows: List[ScalingRow] = []
    for op in operations:
        op_rank = _effective_rank(op, rank, spttmc_rank)
        # The workload grows along mode 0, so the target mode must keep
        # mode 0 among the *index* modes for the work per device to stay
        # constant: growing a product mode would densify the reduction
        # segments instead of adding them.  SpTTM's target mode is its
        # product mode, so it targets the last mode; the other two index
        # their target mode and can keep mode 0.
        mode = tensors[int(device_counts[0])].order - 1 if op == "spttm" else 0
        baseline_s: Optional[float] = None
        for n in device_counts:
            n = int(n)
            tensor = tensors[n]
            factors = [np.asarray(f) for f in random_factors(tensor.shape, op_rank, seed=seed)]
            fcoo = FCOOTensor.from_sparse(tensor, _OPERATION_KINDS[op], mode)
            row = _scaling_point(
                op,
                f"weak x{n}",
                fcoo,
                factors,
                mode,
                n,
                baseline_s,
                device=device,
                interconnect=scaled_link,
                block_size=block_size,
                threadlen=threadlen,
            )
            baseline_s = row.baseline_s
            rows.append(row)
    return ScalingResult(
        rank=rank, kind="weak", device_counts=tuple(int(d) for d in device_counts), rows=rows
    )
