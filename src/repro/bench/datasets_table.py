"""Table IV: description of the sparse tensor datasets."""

from __future__ import annotations

from repro.data.registry import dataset_table

__all__ = ["run_table4"]


def run_table4(*, include_analog: bool = True) -> str:
    """Render the Table IV reproduction (paper statistics plus analog statistics)."""
    return dataset_table(include_analog=include_analog)
