"""Figures 6a/6b: speedup of the GPU implementations over ParTI-omp.

The paper fixes the rank at 16, runs SpTTM on mode-3 and SpMTTKRP on mode-1
on all four datasets, and reports each implementation's speedup over the
12-thread ParTI-omp baseline.  ParTI-GPU is marked out-of-memory for
SpMTTKRP on the two largest tensors — reproduced here by projecting the
measured per-non-zero footprint back to the paper-scale non-zero counts and
comparing against the real Titan X memory capacity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.bench.memory import parti_paper_scale_footprint
from repro.cpusim.cpu import CPU_I7_5820K, CpuSpec
from repro.data.registry import DATASETS, load_dataset
from repro.gpusim.device import DeviceSpec, TITAN_X
from repro.gpusim.timing import OutOfDeviceMemory
from repro.kernels.baselines.parti_gpu import parti_gpu_spmttkrp, parti_gpu_spttm
from repro.kernels.baselines.parti_omp import parti_omp_spmttkrp, parti_omp_spttm
from repro.kernels.baselines.splatt import splatt_mttkrp
from repro.kernels.unified.spmttkrp import unified_spmttkrp
from repro.kernels.unified.spttm import unified_spttm
from repro.tensor.random import random_factors
from repro.util.formatting import format_table

__all__ = ["Fig6Row", "Fig6Result", "run_fig6a", "run_fig6b"]


@dataclass(frozen=True)
class Fig6Row:
    """Per-dataset timings and speedups for one operation.

    ``None`` time means the implementation could not run the configuration
    (ParTI-GPU out of memory at paper scale).
    """

    dataset: str
    parti_omp_time_s: float
    parti_gpu_time_s: Optional[float]
    splatt_time_s: Optional[float]
    unified_time_s: float

    def speedup_over_omp(self, time_s: Optional[float]) -> Optional[float]:
        """Speedup of a given implementation over ParTI-omp."""
        if time_s is None or time_s <= 0:
            return None
        return self.parti_omp_time_s / time_s

    @property
    def unified_speedup(self) -> float:
        """Unified's speedup over ParTI-omp (the paper's headline metric)."""
        return self.parti_omp_time_s / self.unified_time_s

    @property
    def unified_over_parti_gpu(self) -> Optional[float]:
        """Unified's speedup over ParTI-GPU (None when ParTI-GPU is OOM)."""
        if self.parti_gpu_time_s is None:
            return None
        return self.parti_gpu_time_s / self.unified_time_s


@dataclass
class Fig6Result:
    """All rows of a Figure 6 reproduction (one operation)."""

    operation: str
    rank: int
    rows: List[Fig6Row]

    def render(self) -> str:
        headers = [
            "dataset",
            "ParTI-omp (s)",
            "ParTI-GPU (s)",
            "SPLATT (s)",
            "Unified (s)",
            "ParTI-GPU speedup",
            "SPLATT speedup",
            "Unified speedup",
            "Unified / ParTI-GPU",
        ]
        body = []
        for r in self.rows:
            gpu_speedup = r.speedup_over_omp(r.parti_gpu_time_s)
            splatt_speedup = r.speedup_over_omp(r.splatt_time_s)
            rel = r.unified_over_parti_gpu
            body.append(
                [
                    r.dataset,
                    r.parti_omp_time_s,
                    r.parti_gpu_time_s if r.parti_gpu_time_s is not None else "OOM",
                    r.splatt_time_s if r.splatt_time_s is not None else "-",
                    r.unified_time_s,
                    f"{gpu_speedup:.1f}x" if gpu_speedup else "OOM",
                    f"{splatt_speedup:.1f}x" if splatt_speedup else "-",
                    f"{r.unified_speedup:.1f}x",
                    f"{rel:.1f}x" if rel else "OOM",
                ]
            )
        return format_table(
            headers,
            body,
            title=f"Figure 6 ({self.operation}, rank={self.rank}): speedup over ParTI-omp",
        )


def run_fig6a(
    *,
    rank: int = 16,
    datasets: Optional[Sequence[str]] = None,
    device: DeviceSpec = TITAN_X,
    cpu: CpuSpec = CPU_I7_5820K,
    seed: int = 0,
) -> Fig6Result:
    """Figure 6a: SpTTM on the last mode, speedups over ParTI-omp."""
    names = list(datasets) if datasets is not None else list(DATASETS)
    rows: List[Fig6Row] = []
    for name in names:
        tensor = load_dataset(name)
        mode = tensor.order - 1
        matrix = random_factors(tensor.shape, rank, seed=seed)[mode]

        omp = parti_omp_spttm(tensor, matrix, mode, cpu=cpu)
        gpu = parti_gpu_spttm(tensor, matrix, mode, device=device)
        uni = unified_spttm(tensor, matrix, mode, device=device)

        # SpTTM keeps no intermediate tensor, so ParTI-GPU fits in device
        # memory for every dataset (the paper notes the two methods consume
        # nearly the same memory for SpTTM).
        rows.append(
            Fig6Row(
                dataset=name,
                parti_omp_time_s=omp.estimated_time_s,
                parti_gpu_time_s=gpu.estimated_time_s,
                splatt_time_s=None,
                unified_time_s=uni.estimated_time_s,
            )
        )
    return Fig6Result(operation="SpTTM mode-3", rank=rank, rows=rows)


def run_fig6b(
    *,
    rank: int = 16,
    datasets: Optional[Sequence[str]] = None,
    device: DeviceSpec = TITAN_X,
    cpu: CpuSpec = CPU_I7_5820K,
    seed: int = 0,
) -> Fig6Result:
    """Figure 6b: SpMTTKRP on mode-1, speedups over ParTI-omp."""
    names = list(datasets) if datasets is not None else list(DATASETS)
    rows: List[Fig6Row] = []
    for name in names:
        tensor = load_dataset(name)
        mode = 0
        factors = random_factors(tensor.shape, rank, seed=seed)

        omp = parti_omp_spmttkrp(tensor, factors, mode, cpu=cpu)
        splatt = splatt_mttkrp(tensor, factors, mode, cpu=cpu)
        uni = unified_spmttkrp(tensor, factors, mode, device=device)

        gpu_time: Optional[float]
        try:
            gpu = parti_gpu_spmttkrp(tensor, factors, mode, device=device)
        except OutOfDeviceMemory:
            gpu_time = None
        else:
            gpu_time = gpu.estimated_time_s
            # Determine out-of-memory behaviour against the *paper-scale*
            # tensor (the analog is small enough to fit by construction).
            if parti_paper_scale_footprint(name, rank, mode=mode) > device.global_mem_bytes:
                gpu_time = None

        rows.append(
            Fig6Row(
                dataset=name,
                parti_omp_time_s=omp.estimated_time_s,
                parti_gpu_time_s=gpu_time,
                splatt_time_s=splatt.estimated_time_s,
                unified_time_s=uni.estimated_time_s,
            )
        )
    return Fig6Result(operation="SpMTTKRP mode-1", rank=rank, rows=rows)
