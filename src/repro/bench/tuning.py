"""Figure 5 and Table V: launch-parameter tuning for the unified kernels."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.autotune.tuner import (
    DEFAULT_BLOCK_SIZES,
    DEFAULT_THREADLENS,
    TuningResult,
    tune_unified,
)
from repro.data.registry import DATASETS, load_dataset
from repro.formats.mode_encoding import OperationKind
from repro.gpusim.device import DeviceSpec, TITAN_X
from repro.util.formatting import format_table

__all__ = ["Fig5Result", "Table5Result", "run_fig5", "run_table5"]

#: Best parameters the paper reports in Table V, for comparison in the output:
#: {operation: {dataset: (BLOCK_SIZE, threadlen)}}.
PAPER_TABLE5: Dict[str, Dict[str, Tuple[int, int]]] = {
    "spttm": {
        "nell1": (32, 8),
        "delicious": (512, 8),
        "nell2": (256, 64),
        "brainq": (1024, 32),
    },
    "spmttkrp": {
        "nell1": (32, 16),
        "delicious": (32, 8),
        "nell2": (1024, 64),
        "brainq": (128, 64),
    },
}


@dataclass
class Fig5Result:
    """Tuning surfaces for SpMTTKRP mode-1 on the datasets of Figure 5."""

    surfaces: Dict[str, TuningResult]

    def render(self) -> str:
        parts = []
        for name, surface in self.surfaces.items():
            parts.append(
                surface.render(
                    title=f"Figure 5 ({name}): SpMTTKRP mode-1 tuning surface (s)"
                )
            )
            best_bs, best_tl = surface.best
            parts.append(
                f"best configuration for {name}: BLOCK_SIZE={best_bs}, threadlen={best_tl}"
            )
        return "\n\n".join(parts)


@dataclass
class Table5Result:
    """Best (BLOCK_SIZE, threadlen) per dataset for SpTTM and SpMTTKRP."""

    best: Dict[str, Dict[str, Tuple[int, int]]]

    def render(self) -> str:
        headers = ["operation", "dataset", "best (BLOCK_SIZE, threadlen)", "paper Table V"]
        rows = []
        for op, per_dataset in self.best.items():
            for dataset, params in per_dataset.items():
                paper = PAPER_TABLE5.get(op, {}).get(dataset)
                rows.append(
                    [
                        op,
                        dataset,
                        f"({params[0]}, {params[1]})",
                        f"({paper[0]}, {paper[1]})" if paper else "-",
                    ]
                )
        return format_table(headers, rows, title="Table V: best launch parameters")


def run_fig5(
    *,
    datasets: Sequence[str] = ("brainq", "nell1"),
    rank: int = 16,
    device: DeviceSpec = TITAN_X,
    block_sizes: Sequence[int] = DEFAULT_BLOCK_SIZES,
    threadlens: Sequence[int] = DEFAULT_THREADLENS,
) -> Fig5Result:
    """Figure 5: (BLOCK_SIZE, threadlen) surface for SpMTTKRP on mode-1."""
    surfaces = {}
    for name in datasets:
        tensor = load_dataset(name)
        surfaces[name] = tune_unified(
            tensor,
            OperationKind.SPMTTKRP,
            0,
            rank=rank,
            device=device,
            block_sizes=block_sizes,
            threadlens=threadlens,
        )
    return Fig5Result(surfaces=surfaces)


def run_table5(
    *,
    datasets: Optional[Sequence[str]] = None,
    rank: int = 16,
    device: DeviceSpec = TITAN_X,
    block_sizes: Sequence[int] = DEFAULT_BLOCK_SIZES,
    threadlens: Sequence[int] = DEFAULT_THREADLENS,
) -> Table5Result:
    """Table V: tuned launch parameters for SpTTM (last mode) and SpMTTKRP (mode-1)."""
    names = list(datasets) if datasets is not None else list(DATASETS)
    best: Dict[str, Dict[str, Tuple[int, int]]] = {"spttm": {}, "spmttkrp": {}}
    for name in names:
        tensor = load_dataset(name)
        spttm = tune_unified(
            tensor,
            OperationKind.SPTTM,
            tensor.order - 1,
            rank=rank,
            device=device,
            block_sizes=block_sizes,
            threadlens=threadlens,
        )
        spmttkrp = tune_unified(
            tensor,
            OperationKind.SPMTTKRP,
            0,
            rank=rank,
            device=device,
            block_sizes=block_sizes,
            threadlens=threadlens,
        )
        best["spttm"][name] = spttm.best
        best["spmttkrp"][name] = spmttkrp.best
    return Table5Result(best=best)
