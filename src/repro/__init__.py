"""repro — reproduction of "A Unified Optimization Approach for Sparse Tensor
Operations on GPUs" (Liu, Wen, Sarwate, Mehri Dehnavi; IEEE CLUSTER 2017).

The package implements:

* the F-COO storage format and the unified SpTTM / SpMTTKRP / SpTTMc GPU
  kernels built on it (:mod:`repro.formats`, :mod:`repro.kernels.unified`),
  including the out-of-core streamed execution path for tensors larger than
  device memory (:mod:`repro.kernels.unified.streaming`) and the multi-GPU
  sharded execution path (:mod:`repro.kernels.unified.sharded`);
* the substrates those kernels need — sparse tensor algebra
  (:mod:`repro.tensor`), a deterministic GPU execution/cost model
  (:mod:`repro.gpusim`), a multicore CPU model (:mod:`repro.cpusim`);
* the baselines of the paper's evaluation — ParTI-GPU, ParTI-omp and SPLATT
  (:mod:`repro.kernels.baselines`);
* complete tensor algorithms: CP-ALS and Tucker/HOOI
  (:mod:`repro.algorithms`);
* datasets (:mod:`repro.data`), auto-tuning (:mod:`repro.autotune`) and the
  per-figure/table experiment harness (:mod:`repro.bench`);
* a multi-tenant serving subsystem over the simulated cluster
  (:mod:`repro.serve`): an async job scheduler with admission control and
  batching, capability-aware placement, and a preprocessing cache keyed by
  tensor content — surfaced as :class:`~repro.serve.ServingEngine` and
  ``python -m repro serve``.  SLO-driven serving adds per-job deadlines
  (:class:`~repro.context.SLO`), a deadline-aware preempting scheduler and
  a device-pool autoscaler;
* an observability layer (:mod:`repro.obs`): a deterministic
  simulated-time :class:`~repro.obs.MetricsRegistry` (Prometheus text +
  JSON export), span-attributed timelines folded into per-job/per-resource
  cost breakdowns (:func:`~repro.obs.attribute`), and the scheduler's
  structured JSONL :class:`~repro.obs.EventLog` — all record-only, never
  perturbing modeled time;
* the unified execution-context API (:mod:`repro.context`):
  :class:`~repro.context.ExecContext` bundles the execution knobs every
  kernel and driver shares (streaming, cluster, chaos, caches) behind one
  frozen ``ctx=`` parameter, with the legacy per-function keyword
  arguments kept as deprecated aliases.

Quick start
-----------
>>> from repro import SparseTensor, unified_spmttkrp, random_factors
>>> import numpy as np
>>> X = SparseTensor(np.array([[0, 1, 2], [1, 0, 1]]), np.array([1.0, 2.0]), (2, 2, 3))
>>> factors = random_factors(X.shape, rank=4, seed=0)
>>> result = unified_spmttkrp(X, factors, mode=0)
>>> result.output.shape
(2, 4)
"""

from repro._version import __version__
from repro.backends import Backend, ReferenceBackend, VectorizedBackend, get_backend
from repro.context import SLO, ExecContext, TimedResult
from repro.tensor import (
    SparseTensor,
    khatri_rao,
    kronecker,
    hadamard,
    random_sparse_tensor,
    ttm_dense,
    mttkrp_dense,
    ttmc_dense,
)
from repro.tensor.random import random_factors
from repro.formats import (
    COOTensor,
    FCOOTensor,
    FCOOChunk,
    CSFTensor,
    SemiSparseTensor,
    OperationKind,
    mode_roles,
)
from repro.gpusim import (
    ClusterSpec,
    DeviceSpec,
    InterconnectSpec,
    MultiNodeClusterSpec,
    NodeSpec,
    SimClock,
    TITAN_X,
    Timeline,
    LaunchConfig,
    OutOfDeviceMemory,
)
from repro.cpusim import CpuSpec, CPU_I7_5820K
from repro.kernels.unified import (
    ShardedExecution,
    StreamedExecution,
    unified_spttm,
    unified_spmttkrp,
    unified_spttmc,
)
from repro.kernels.baselines import (
    parti_gpu_spttm,
    parti_gpu_spmttkrp,
    parti_omp_spttm,
    parti_omp_spmttkrp,
    splatt_mttkrp,
)
from repro.algorithms import (
    cp_als,
    CPResult,
    UnifiedGPUEngine,
    SplattCPUEngine,
    tucker_hooi,
    TuckerResult,
    cp_fit,
)
from repro.data import load_dataset, DATASETS, read_tns, write_tns
from repro.autotune import tune_unified
from repro.obs import (
    Attribution,
    EventLog,
    MetricsRegistry,
    Span,
    attribute,
)
from repro.serve import (
    AutoscalerSpec,
    Job,
    JobKind,
    JobResult,
    PreemptionRecord,
    PreprocCache,
    ScaleEvent,
    ServingEngine,
    ServingReport,
    WorkloadSpec,
)

__all__ = [
    "__version__",
    # execution context & SLOs
    "ExecContext",
    "SLO",
    "TimedResult",
    # numeric-execution backends
    "Backend",
    "ReferenceBackend",
    "VectorizedBackend",
    "get_backend",
    # tensor substrate
    "SparseTensor",
    "khatri_rao",
    "kronecker",
    "hadamard",
    "random_sparse_tensor",
    "random_factors",
    "ttm_dense",
    "mttkrp_dense",
    "ttmc_dense",
    # storage formats
    "COOTensor",
    "FCOOTensor",
    "FCOOChunk",
    "CSFTensor",
    "SemiSparseTensor",
    "OperationKind",
    "mode_roles",
    # devices
    "DeviceSpec",
    "TITAN_X",
    "ClusterSpec",
    "InterconnectSpec",
    "MultiNodeClusterSpec",
    "NodeSpec",
    "Timeline",
    "SimClock",
    "LaunchConfig",
    "OutOfDeviceMemory",
    "CpuSpec",
    "CPU_I7_5820K",
    # kernels
    "unified_spttm",
    "unified_spmttkrp",
    "unified_spttmc",
    "StreamedExecution",
    "ShardedExecution",
    "parti_gpu_spttm",
    "parti_gpu_spmttkrp",
    "parti_omp_spttm",
    "parti_omp_spmttkrp",
    "splatt_mttkrp",
    # algorithms
    "cp_als",
    "CPResult",
    "UnifiedGPUEngine",
    "SplattCPUEngine",
    "tucker_hooi",
    "TuckerResult",
    "cp_fit",
    # data & tuning
    "load_dataset",
    "DATASETS",
    "read_tns",
    "write_tns",
    "tune_unified",
    # serving
    "Job",
    "JobKind",
    "JobResult",
    "PreprocCache",
    "ServingEngine",
    "ServingReport",
    "WorkloadSpec",
    "PreemptionRecord",
    "AutoscalerSpec",
    "ScaleEvent",
    # observability
    "MetricsRegistry",
    "EventLog",
    "Span",
    "Attribution",
    "attribute",
]
