"""Seeded synthetic serving workloads and the default serving cluster.

A serving benchmark needs a *repeatable* multi-tenant traffic pattern:
:func:`generate_workload` expands a :class:`WorkloadSpec` into a job list
with exponential inter-arrival times, a configurable kind mix, a small
shared tensor pool (so repeat submissions exercise the preprocessing
cache), priority classes, and — optionally — a "whale" tensor larger than
any single device (exercising the capability-weighted sharded path) and an
inadmissible giant whose dense operands exceed every device (exercising
admission control).  Everything derives from one seed; the same spec
always yields the same workload.

:func:`default_serving_cluster` is the heterogeneous node the serving
experiments run on: two full-rate and two half-rate analog GPUs.  Like the
capacity experiments, the devices are memory-scaled to the synthetic
analogs' size (the pool tensors carry thousands of non-zeros, not the
paper's 10^8) so the capacity effects — sharding, streamed fallback,
admission rejects — appear at laptop scale; the interconnect latency is
scaled down by the same reasoning as :func:`repro.bench.scaling.analog_interconnect`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.context import SLO
from repro.gpusim.cluster import (
    ClusterSpec,
    InterconnectSpec,
    MultiNodeClusterSpec,
    NodeFailure,
    NodeSpec,
)
from repro.gpusim.device import TITAN_X, scaled_device
from repro.serve.job import Job, JobKind
from repro.tensor.random import random_sparse_tensor
from repro.tensor.sparse import SparseTensor
from repro.util.validation import check_non_negative_int, check_positive_int

__all__ = [
    "WorkloadSpec",
    "ChaosSpec",
    "generate_workload",
    "generate_chaos",
    "default_serving_cluster",
    "default_multinode_serving_cluster",
    "SERVE_INTERCONNECT",
    "SERVE_NIC",
]

#: The serving experiments' device link: PCIe-P2P bandwidth with the latency
#: scaled to the analog workloads (the pool tensors are ~10^4 smaller than
#: the paper's, so kernel times are microseconds; an unscaled 5 us hop would
#: dominate every collective the way it never would at paper scale).
SERVE_INTERCONNECT = InterconnectSpec("PCIe 3.0 x16 P2P [serving analog]", 12e9, 0.25e-6)

#: The multi-node serving experiments' inter-node tier: a 10 GbE NIC with
#: its latency scaled by the same factor as :data:`SERVE_INTERCONNECT` —
#: roughly a tenth of the P2P bandwidth and 10x the P2P latency, so the NIC
#: is unambiguously the slow tier and node locality genuinely pays.
SERVE_NIC = InterconnectSpec("10 GbE NIC [serving analog]", 1.25e9, 2.5e-6)


def default_serving_cluster() -> ClusterSpec:
    """The default heterogeneous serving node: 2 full-rate + 2 half-rate GPUs.

    The half-rate members have half the DRAM/PCIe bandwidth (so their
    capability weight — and therefore their shard share and placement rank —
    is half the full-rate members') and half the memory.  Memory is scaled
    to the synthetic analog workloads so the default workload's whale
    tensor genuinely exceeds the largest device.
    """
    big = scaled_device(TITAN_X, 2.0e-5, name_suffix="serve big")
    small = scaled_device(
        TITAN_X, 1.0e-5, bandwidth_scale=0.5, name_suffix="serve small"
    )
    return ClusterSpec(
        devices=(big, big, small, small),
        interconnect=SERVE_INTERCONNECT,
        name="serving node (2x full-rate + 2x half-rate)",
    )


def default_multinode_serving_cluster(num_nodes: int = 2) -> MultiNodeClusterSpec:
    """The default multi-node serving cluster: big and small nodes over a NIC.

    Even-indexed nodes hold two full-rate devices, odd-indexed nodes two
    half-rate/half-memory devices — the same device analogs as
    :func:`default_serving_cluster`, regrouped into nodes — joined by the
    :data:`SERVE_NIC` slow tier.  Sized so the default workload's whale
    tensor fits a *big node's* aggregate memory (its shards stay inside
    one node, off the NIC) while the cross-node tensor
    (``WorkloadSpec.cross_node_every``) exceeds every node's aggregate and
    must span the NIC.
    """
    check_positive_int(num_nodes, "num_nodes")
    big = scaled_device(TITAN_X, 2.0e-5, name_suffix="serve big")
    small = scaled_device(
        TITAN_X, 1.0e-5, bandwidth_scale=0.5, name_suffix="serve small"
    )
    nodes = tuple(
        NodeSpec(
            devices=(big, big) if i % 2 == 0 else (small, small),
            interconnect=SERVE_INTERCONNECT,
            name=f"node{i} ({'full' if i % 2 == 0 else 'half'}-rate pair)",
        )
        for i in range(num_nodes)
    )
    return MultiNodeClusterSpec(
        nodes=nodes,
        nic=SERVE_NIC,
        name=f"serving cluster ({num_nodes} nodes over {SERVE_NIC.name})",
    )


def _default_kind_mix() -> Dict[JobKind, float]:
    return {
        JobKind.SPTTM: 0.30,
        JobKind.SPMTTKRP: 0.28,
        JobKind.SPTTMC: 0.20,
        JobKind.CP_ALS: 0.14,
        JobKind.TUCKER: 0.08,
    }


@dataclass(frozen=True)
class WorkloadSpec:
    """Parameters of one synthetic serving workload.

    Attributes
    ----------
    num_jobs / seed:
        Workload size and the seed every random choice derives from.
    num_tenants:
        Tenants round-robin-ish over the tensor pool (tenant names are
        informational; the cache keys on tensor content).
    mean_interarrival_s:
        Mean of the exponential inter-arrival distribution (simulated
        seconds); sized so the default cluster runs moderately loaded.
    kind_mix:
        Relative frequency of each job kind (normalised internally).
    rank_choices:
        Ranks sampled *per pool tensor* (each tenant model has one rank, so
        repeat submissions share tuner entries and batch keys; SpTTMc jobs
        cap theirs at 8 — the unfolding width is the rank to the power
        ``order - 1``).
    pool_tensors:
        Distinct small tensors in the shared pool.
    whale_every:
        Every ``n``-th job submits the pool's whale (an encoding larger
        than any single device, so it shards); 0 disables whales.
    cross_node_every:
        Every ``n``-th job submits the cross-node tensor — larger than any
        single *node's* aggregate memory on the default multi-node serving
        cluster, so its shards must span the NIC (on a single-node cluster
        it simply shards cluster-wide, streaming where needed); 0 (the
        default) disables it, keeping single-node workloads byte-identical
        to previous releases.  These jobs model the cross-node tenants of
        a multi-node deployment.
    giant_every:
        Every ``n``-th job submits the inadmissible giant (dense operands
        exceeding every device, so admission rejects it); 0 disables.
    high_priority_fraction:
        Fraction of jobs in the urgent class (priority 0; the rest are
        priority 1).
    latency_slo_fraction:
        Fraction of jobs carrying a latency :class:`~repro.context.SLO`
        (a hard completion deadline; the job is also forced into the
        urgent priority class and marked non-preemptible).  0 (the
        default) draws no SLOs at all, keeping the RNG stream — and
        therefore the whole workload — byte-identical to pre-SLO
        releases.
    deadline_slack:
        Deadline scale for latency-SLO jobs, as a multiple of
        ``mean_interarrival_s``: each deadline is
        ``mean_interarrival_s * deadline_slack * U(0.75, 1.5)`` past the
        job's arrival.
    """

    num_jobs: int = 100
    seed: int = 0
    num_tenants: int = 6
    mean_interarrival_s: float = 3.0e-6
    kind_mix: Dict[JobKind, float] = field(default_factory=_default_kind_mix)
    rank_choices: Tuple[int, ...] = (4, 8, 16)
    pool_tensors: int = 5
    whale_every: int = 9
    cross_node_every: int = 0
    giant_every: int = 33
    high_priority_fraction: float = 0.15
    latency_slo_fraction: float = 0.0
    deadline_slack: float = 12.0

    def __post_init__(self) -> None:
        check_non_negative_int(self.num_jobs, "num_jobs")
        check_positive_int(self.num_tenants, "num_tenants")
        check_positive_int(self.pool_tensors, "pool_tensors")
        if self.mean_interarrival_s <= 0:
            raise ValueError(
                f"mean_interarrival_s must be positive, got {self.mean_interarrival_s}"
            )
        if not self.kind_mix:
            raise ValueError("kind_mix must not be empty")
        if self.whale_every < 0 or self.giant_every < 0 or self.cross_node_every < 0:
            raise ValueError(
                "whale_every / cross_node_every / giant_every must be non-negative"
            )
        if not 0.0 <= self.high_priority_fraction <= 1.0:
            raise ValueError(
                f"high_priority_fraction must be in [0, 1], got {self.high_priority_fraction}"
            )
        if not 0.0 <= self.latency_slo_fraction <= 1.0:
            raise ValueError(
                f"latency_slo_fraction must be in [0, 1], got {self.latency_slo_fraction}"
            )
        if self.deadline_slack <= 0.0:
            raise ValueError(
                f"deadline_slack must be positive, got {self.deadline_slack}"
            )


def _tensor_pool(spec: WorkloadSpec, rng: np.random.Generator) -> List[SparseTensor]:
    """The shared pool of small tensors (orders 3 and 4, a few thousand nnz)."""
    pool: List[SparseTensor] = []
    for i in range(spec.pool_tensors):
        order = 3 if i % 2 == 0 else 4
        if order == 3:
            shape = tuple(int(rng.integers(24, 64)) for _ in range(3))
            nnz = int(rng.integers(600, 2400))
        else:
            shape = tuple(int(rng.integers(8, 20)) for _ in range(4))
            nnz = int(rng.integers(400, 1200))
        pool.append(
            random_sparse_tensor(
                shape,
                nnz,
                seed=int(rng.integers(0, 2**31 - 1)),
                distribution="power",
                concentration=1.0,
            )
        )
    return pool


def _whale_tensor(rng: np.random.Generator) -> SparseTensor:
    """A tensor whose F-COO encoding exceeds any default serving device."""
    return random_sparse_tensor(
        (160, 200, 140),
        48_000,
        seed=int(rng.integers(0, 2**31 - 1)),
        distribution="power",
        concentration=1.1,
    )


def _cross_node_tensor(rng: np.random.Generator) -> SparseTensor:
    """A tensor bigger than any single *node* of the multi-node cluster.

    Its F-COO encoding (plus a resident replica per member) exceeds even
    the big node's aggregate memory, so the placer cannot keep the job
    node-local: the shards span every node and the partial outputs reduce
    over the NIC — the cross-node tenant the multi-node workload models.
    The dense operands stay small, so the job is always admissible.
    """
    return random_sparse_tensor(
        (240, 280, 200),
        130_000,
        seed=int(rng.integers(0, 2**31 - 1)),
        distribution="power",
        concentration=1.05,
    )


def _giant_tensor(rng: np.random.Generator) -> SparseTensor:
    """A tensor whose *dense operands* exceed every device: inadmissible.

    The huge leading mode makes the factor matrix alone larger than the
    scaled device memories while the non-zero count stays tiny.
    """
    k = 400
    indices = np.stack(
        [
            rng.integers(0, 3_000_000, size=k),
            rng.integers(0, 24, size=k),
            rng.integers(0, 12, size=k),
        ],
        axis=1,
    )
    values = rng.standard_normal(k)
    return SparseTensor(indices, values, (3_000_000, 24, 12))


def generate_workload(spec: WorkloadSpec) -> List[Job]:
    """Expand a :class:`WorkloadSpec` into a deterministic job list.

    Jobs come back sorted by arrival time with ids in arrival order; the
    same spec always produces the same list (tensors, factors and arrivals
    all derive from ``spec.seed``).
    """
    rng = np.random.default_rng(spec.seed)
    pool = _tensor_pool(spec, rng)
    pool_ranks = [int(rng.choice(spec.rank_choices)) for _ in pool]
    whale = _whale_tensor(rng) if spec.whale_every else None
    giant = _giant_tensor(rng) if spec.giant_every else None
    # Drawn only when enabled, so a spec without cross-node tenants keeps
    # the exact RNG stream (and therefore workload) of previous releases.
    cross = _cross_node_tensor(rng) if spec.cross_node_every else None
    whale_rank, giant_rank, cross_rank = 8, 4, 8

    kinds = list(spec.kind_mix)
    mix = np.asarray([spec.kind_mix[k] for k in kinds], dtype=np.float64)
    if (mix < 0).any() or mix.sum() <= 0:
        raise ValueError("kind_mix frequencies must be non-negative and sum > 0")
    mix = mix / mix.sum()

    jobs: List[Job] = []
    clock = 0.0
    for job_id in range(spec.num_jobs):
        clock += float(rng.exponential(spec.mean_interarrival_s))
        kind = kinds[int(rng.choice(len(kinds), p=mix))]
        if spec.giant_every and job_id % spec.giant_every == spec.giant_every - 1:
            tensor, kind, rank = giant, JobKind.SPMTTKRP, giant_rank
        elif (
            spec.cross_node_every
            and job_id % spec.cross_node_every == spec.cross_node_every - 1
        ):
            tensor, rank = cross, cross_rank
            if not kind.is_kernel:
                kind = JobKind.SPMTTKRP  # keep cross-node decompositions out
        elif spec.whale_every and job_id % spec.whale_every == spec.whale_every - 1:
            tensor, rank = whale, whale_rank
            if not kind.is_kernel:
                kind = JobKind.SPMTTKRP  # keep whale decompositions out of quick runs
        else:
            pick = int(rng.integers(0, len(pool)))
            tensor, rank = pool[pick], pool_ranks[pick]
        if kind in (JobKind.SPTTMC, JobKind.TUCKER):
            rank = min(rank, 8)
        mode = int(rng.integers(0, tensor.order))
        priority = 0 if rng.random() < spec.high_priority_fraction else 1
        # SLO draws are gated exactly like the cross-node tensor above: a
        # spec without SLOs performs none, so its RNG stream (and workload)
        # stays byte-identical to pre-SLO releases.
        slo = None
        if spec.latency_slo_fraction and rng.random() < spec.latency_slo_fraction:
            slack = spec.mean_interarrival_s * spec.deadline_slack
            slo = SLO.latency(float(slack * rng.uniform(0.75, 1.5)))
            priority = 0  # latency tenants are by definition interactive
        jobs.append(
            Job(
                job_id=job_id,
                tenant=f"tenant-{int(rng.integers(0, spec.num_tenants))}",
                kind=kind,
                tensor=tensor,
                mode=mode,
                rank=rank,
                priority=priority,
                arrival_s=clock,
                iterations=2,
                factor_seed=int(rng.integers(0, 2**31 - 1)),
                slo=slo,
            )
        )
    return jobs


@dataclass(frozen=True)
class ChaosSpec:
    """Seeded node-failure injection for a serving (or decomposition) run.

    The chaos layer draws its events from its *own* RNG stream
    (``np.random.default_rng(seed)``), completely independent of
    :func:`generate_workload`'s — enabling chaos never perturbs the job
    list, so a chaos run and its failure-free twin schedule the exact same
    work.

    Attributes
    ----------
    seed:
        Seed of the chaos stream.
    num_failures:
        How many failure events to draw.
    window_s:
        Failure times are uniform in ``(0, window_s)`` — size it to the
        modeled makespan of the run under attack so the failures land
        mid-flight.
    fail_node:
        Pin every failure to this node index; ``None`` draws the victim
        uniformly from ``num_nodes``.
    recover_after_s:
        When set, each failed node recovers this many modeled seconds
        after its failure (new work may then place on it again);
        ``None`` means the node stays down for the rest of the run.
    """

    seed: int = 0
    num_failures: int = 1
    window_s: float = 1e-4
    fail_node: Optional[int] = None
    recover_after_s: Optional[float] = None

    def __post_init__(self) -> None:
        check_positive_int(self.num_failures, "num_failures")
        if self.window_s <= 0.0:
            raise ValueError(f"window_s must be positive, got {self.window_s}")
        if self.recover_after_s is not None and self.recover_after_s <= 0.0:
            raise ValueError(
                f"recover_after_s must be positive, got {self.recover_after_s}"
            )


def generate_chaos(spec: ChaosSpec, *, num_nodes: int) -> List[NodeFailure]:
    """Expand a :class:`ChaosSpec` into a sorted list of failure events.

    Deterministic in ``spec.seed``; the stream is independent of the
    workload generator's, so the same workload can be replayed with and
    without chaos.
    """
    num_nodes = check_positive_int(num_nodes, "num_nodes")
    if spec.fail_node is not None and not 0 <= spec.fail_node < num_nodes:
        raise ValueError(
            f"fail_node must be in [0, {num_nodes}), got {spec.fail_node}"
        )
    rng = np.random.default_rng(spec.seed)
    events = []
    for _ in range(spec.num_failures):
        time_s = float(rng.uniform(0.0, spec.window_s))
        node = (
            spec.fail_node
            if spec.fail_node is not None
            else int(rng.integers(0, num_nodes))
        )
        events.append(
            NodeFailure(
                time_s=time_s,
                node_index=node,
                recover_s=(
                    time_s + spec.recover_after_s
                    if spec.recover_after_s is not None
                    else None
                ),
            )
        )
    return sorted(events, key=lambda e: (e.time_s, e.node_index))
