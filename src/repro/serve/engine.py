"""The serving façade: engine + report.

:class:`ServingEngine` wires the subsystem together — one cluster, one
shared :class:`~repro.serve.cache.PreprocCache`, one
:class:`~repro.serve.scheduler.Scheduler` — and turns a job list (or a
:class:`~repro.serve.workload.WorkloadSpec`) into a
:class:`ServingReport`: throughput, latency percentiles, per-device
utilisation, cache effectiveness and the full per-job ledger, rendered as
the same plain-text tables the rest of the benchmark harness emits.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.gpusim.cluster import (
    ClusterLike,
    MultiNodeClusterSpec,
    NodeFailure,
    collapse_cluster,
)
from repro.gpusim.timeline import Timeline, device_compute_key
from repro.obs.attribution import Attribution
from repro.obs.events import EventLog
from repro.obs.metrics import MetricsRegistry
from repro.serve.autoscale import AutoscalerSpec, ScaleEvent
from repro.serve.cache import CacheStats, PreprocCache
from repro.serve.feedback import ObservationStore
from repro.serve.job import Job, JobResult
from repro.serve.scheduler import (
    DeviceTimeline,
    PreemptionRecord,
    ScheduleOutcome,
    Scheduler,
)
from repro.serve.workload import WorkloadSpec, default_serving_cluster, generate_workload
from repro.util.formatting import format_seconds, format_table

__all__ = ["ServingEngine", "ServingReport", "publish_serving_metrics"]


@dataclass
class ServingReport:
    """Everything one serving run produced, plus the derived metrics."""

    cluster: ClusterLike
    policy: str
    results: List[JobResult]
    timelines: List[DeviceTimeline]
    cache_stats: CacheStats
    #: The run's shared simulated-time timeline (per-device copy/compute
    #: engines plus the link/NIC resources booked by sharded collectives).
    #: ``None`` only for reports constructed without a scheduler run.
    timeline: Optional[Timeline] = field(default=None, repr=False)
    #: Chaos node-loss events that fired during the run, in firing order.
    failures: List[NodeFailure] = field(default_factory=list)
    #: Total job re-queues caused by node losses (a job torn down twice
    #: counts twice).
    requeued_jobs: int = 0
    #: Preemptions the deadline policy performed, in firing order.
    preemptions: List[PreemptionRecord] = field(default_factory=list)
    #: Autoscaler actions, in firing order (empty without an autoscaler).
    scale_events: List[ScaleEvent] = field(default_factory=list)
    #: The run's telemetry: the metrics registry every layer published
    #: into, the structured scheduler event log, and the span-folded cost
    #: attribution of the shared timeline (see :mod:`repro.obs`).  All
    #: three are ``None`` only for reports built without a scheduler run.
    metrics: Optional[MetricsRegistry] = field(default=None, repr=False)
    events: Optional[EventLog] = field(default=None, repr=False)
    attribution: Optional[Attribution] = field(default=None, repr=False)

    # ------------------------------------------------------------------ #
    @property
    def completed(self) -> List[JobResult]:
        """Jobs that produced a result, in job-id order."""
        return [r for r in self.results if r.completed]

    @property
    def rejected(self) -> List[JobResult]:
        """Jobs refused by admission control or load shedding."""
        return [r for r in self.results if not r.completed]

    @property
    def makespan_s(self) -> float:
        """Completion time of the last job."""
        return max((r.finish_s for r in self.completed), default=0.0)

    @property
    def throughput_jobs_per_s(self) -> float:
        """Completed jobs per simulated second."""
        makespan = self.makespan_s
        return len(self.completed) / makespan if makespan > 0 else 0.0

    @property
    def latencies_s(self) -> np.ndarray:
        """End-to-end latency of every completed job (arrival to finish)."""
        return np.asarray([r.latency_s for r in self.completed], dtype=np.float64)

    def latency_percentile(self, q: float) -> float:
        """The ``q``-th latency percentile (0 when nothing completed)."""
        lat = self.latencies_s
        return float(np.percentile(lat, q)) if lat.size else 0.0

    @property
    def p50_latency_s(self) -> float:
        """Median end-to-end latency."""
        return self.latency_percentile(50.0)

    @property
    def p99_latency_s(self) -> float:
        """99th-percentile (tail) end-to-end latency."""
        return self.latency_percentile(99.0)

    @property
    def p999_latency_s(self) -> float:
        """99.9th-percentile latency — the SLO-grade tail."""
        return self.latency_percentile(99.9)

    @property
    def recoveries(self) -> List[NodeFailure]:
        """Fired chaos events whose node later recovered (the report is a
        :class:`~repro.context.TimedResult` like every other run result)."""
        return [e for e in self.failures if e.recover_s is not None]

    # ------------------------------------------------------------------ #
    @property
    def slo_jobs(self) -> List[JobResult]:
        """Jobs that carried a latency deadline (completed or not)."""
        return [
            r
            for r in self.results
            if r.job.slo is not None and r.job.slo.has_deadline
        ]

    @property
    def deadline_misses(self) -> int:
        """Deadline-carrying jobs that finished late (or not at all)."""
        return sum(1 for r in self.slo_jobs if r.missed_deadline)

    @property
    def deadline_miss_rate(self) -> float:
        """Fraction of deadline-carrying jobs that missed (0 when none)."""
        slo = self.slo_jobs
        return self.deadline_misses / len(slo) if slo else 0.0

    @property
    def preemption_overhead_s(self) -> float:
        """Total modeled cost of preemption: every victim's resume latency
        (cut point to resumed execution start) plus the factor re-stages."""
        return sum(r.preempted_s for r in self.completed) + sum(
            p.resume_stage_s for p in self.preemptions
        )

    @property
    def mean_queue_wait_s(self) -> float:
        """Mean seconds completed jobs spent between arrival and staging."""
        waits = [r.queue_wait_s for r in self.completed]
        return float(np.mean(waits)) if waits else 0.0

    def _device_busy_s(self, slot: int) -> float:
        """One device's busy seconds, from the shared timeline's compute
        engine resource.

        The utilisation metrics derive from the engine's own per-resource
        busy time — the sum of the busy-marked bookings on the device's
        compute engine — rather than a scheduler-side accumulator, so the
        report cannot drift from the timeline (the pre-timeline
        accumulators could, e.g. under batching).  The
        :class:`~repro.serve.scheduler.DeviceTimeline` views carry the
        same numbers as a fallback for reports built without a timeline.
        """
        if self.timeline is not None:
            return self.timeline.busy_s(device_compute_key(slot))
        return next(t.busy_s for t in self.timelines if t.slot == slot)

    @property
    def device_utilization(self) -> Dict[int, float]:
        """Per-device busy fraction of the makespan, in ``[0, 1]``.

        Busy time is the device's compute-engine resource busy time on the
        shared timeline (see :meth:`_device_busy_s`).
        """
        makespan = self.makespan_s
        if makespan <= 0:
            return {t.slot: 0.0 for t in self.timelines}
        return {
            t.slot: min(1.0, self._device_busy_s(t.slot) / makespan)
            for t in self.timelines
        }

    @property
    def overall_utilization(self) -> float:
        """Cluster busy fraction: total busy over ``N x makespan``.

        ``N`` and the busy totals come from the shared timeline's
        *registered* compute-engine resources rather than the per-device
        view list, so the figure stays honest if the two ever disagree
        (e.g. a report rebuilt with trimmed views); reports without a
        timeline fall back to the views.
        """
        makespan = self.makespan_s
        if makespan <= 0:
            return 0.0
        if self.timeline is not None:
            engines = [r for r in self.timeline.resources if r.category == "compute"]
            if engines:
                busy = sum(r.busy_s for r in engines)
                return min(1.0, busy / (len(engines) * makespan))
        busy = sum(self._device_busy_s(t.slot) for t in self.timelines)
        return min(1.0, busy / (len(self.timelines) * makespan))

    def execution_counts(self) -> Dict[str, int]:
        """Completed jobs per execution path (one-shot/streamed/sharded/...)."""
        counts: Dict[str, int] = {}
        for r in self.completed:
            counts[r.execution] = counts.get(r.execution, 0) + 1
        return counts

    @property
    def batched_jobs(self) -> int:
        """Completed jobs that rode in a batch (leaders included)."""
        return sum(1 for r in self.completed if r.batch_id is not None)

    @property
    def node_local_sharded_jobs(self) -> int:
        """Completed sharded jobs kept inside one node (off the NIC)."""
        return sum(
            1
            for r in self.completed
            if r.placement is not None
            and r.placement.sharded
            and r.placement.node_index is not None
        )

    @property
    def cross_node_jobs(self) -> int:
        """Completed jobs whose shards reduced over the inter-node NIC."""
        return sum(
            1
            for r in self.completed
            if r.placement is not None and r.placement.crosses_nic
        )

    # ------------------------------------------------------------------ #
    def render(self) -> str:
        """Plain-text serving report (summary, latency, devices, cache)."""
        lines: List[str] = []
        lines.append(
            f"Serving report — {self.cluster.name} "
            f"({self.cluster.num_devices} devices, policy={self.policy})"
        )
        counts = self.execution_counts()
        path_summary = ", ".join(f"{k}: {v}" for k, v in sorted(counts.items()))
        lines.append(
            f"jobs: {len(self.results)} submitted, {len(self.completed)} completed "
            f"({path_summary}), {len(self.rejected)} rejected, "
            f"{self.batched_jobs} batched"
        )
        if isinstance(self.cluster, MultiNodeClusterSpec):
            lines.append(
                f"topology: {self.cluster.num_nodes} nodes over "
                f"{self.cluster.nic.name}; sharded jobs: "
                f"{self.node_local_sharded_jobs} node-local (off the NIC), "
                f"{self.cross_node_jobs} cross-node"
            )
        lines.append(
            f"makespan: {format_seconds(self.makespan_s)}  "
            f"throughput: {self.throughput_jobs_per_s:,.0f} jobs/s"
        )
        lines.append(
            f"latency: p50 {format_seconds(self.p50_latency_s)}, "
            f"p99 {format_seconds(self.p99_latency_s)}, "
            f"p99.9 {format_seconds(self.p999_latency_s)}, "
            f"mean queue wait {format_seconds(self.mean_queue_wait_s)}"
        )
        if self.slo_jobs:
            lines.append(
                f"SLO: {len(self.slo_jobs)} deadline jobs, "
                f"{self.deadline_misses} missed "
                f"({self.deadline_miss_rate * 100.0:.0f}%), "
                f"{len(self.preemptions)} preemptions "
                f"(overhead {format_seconds(self.preemption_overhead_s)})"
            )
        if self.scale_events:
            ups = sum(1 for e in self.scale_events if e.action == "up")
            downs = len(self.scale_events) - ups
            lines.append(
                f"autoscaler: {ups} scale-ups, {downs} scale-downs, "
                f"final pool {self.scale_events[-1].active_devices} devices"
            )
        if self.failures:
            recovering = sum(1 for e in self.failures if e.recover_s is not None)
            lines.append(
                f"faults: {len(self.failures)} node losses "
                f"({recovering} with recovery), {self.requeued_jobs} job re-queues"
            )
        stats = self.cache_stats
        lines.append(
            f"preproc cache: {stats.encode_hits}/{stats.encode_hits + stats.encode_misses} "
            f"encoding hits ({stats.encode_hit_rate * 100.0:.0f}%), "
            f"{stats.tuner_hits}/{stats.tuner_hits + stats.tuner_misses} tuner hits, "
            f"{stats.evictions} evictions"
        )
        if self.attribution is not None:
            totals = self.attribution.phase_totals()
            phase_summary = ", ".join(
                f"{phase} {format_seconds(seconds)}"
                for phase, seconds in totals.items()
                if seconds > 0.0
            )
            nic_wait = sum(c.nic_wait_s for c in self.attribution.jobs.values())
            lines.append(
                f"attribution: {phase_summary or 'no busy time'}; "
                f"NIC queueing {format_seconds(nic_wait)}; "
                f"{self.attribution.gap_count} unreconciled resources"
            )
        if self.metrics is not None:
            events_n = len(self.events) if self.events is not None else 0
            lines.append(
                f"telemetry: {len(self.metrics.metrics)} metric series, "
                f"{events_n} events logged"
            )
        utilization = self.device_utilization
        body = [
            [
                t.slot,
                t.device.name,
                t.jobs,
                format_seconds(self._device_busy_s(t.slot)),
                f"{utilization[t.slot] * 100.0:.0f}%",
            ]
            for t in self.timelines
        ]
        lines.append(
            format_table(
                ["slot", "device", "jobs", "busy", "utilization"],
                body,
                title=f"per-device utilization (cluster busy fraction "
                f"{self.overall_utilization * 100.0:.0f}%)",
            )
        )
        if self.rejected:
            reasons: Dict[str, int] = {}
            for r in self.rejected:
                reasons[r.reject_reason or "unknown"] = (
                    reasons.get(r.reject_reason or "unknown", 0) + 1
                )
            for reason, count in sorted(reasons.items()):
                lines.append(f"rejected x{count}: {reason}")
        return "\n".join(lines)


class ServingEngine:
    """Multi-tenant serving over the simulated cluster.

    Parameters
    ----------
    cluster:
        The serving node; defaults to the heterogeneous analog node of
        :func:`~repro.serve.workload.default_serving_cluster`.
    cache:
        Shared preprocessing cache; a fresh unbounded one by default.
    policy / max_batch / max_queue_depth / autotune / num_streams:
        Forwarded to the :class:`~repro.serve.scheduler.Scheduler`.
    block_size / threadlen:
        Default launch parameters (the tuner cache overrides them per job
        shape when ``autotune`` is on).
    autoscale:
        Optional :class:`~repro.serve.autoscale.AutoscalerSpec` enabling
        the device-pool autoscaler; ``None`` keeps the fixed pool.
    adaptive:
        Enables the closed-loop feedback consumers with a *hedged* run
        (see :meth:`run`): each job list is trial-scheduled both ways on
        throwaway cache clones and the adaptive schedule is kept only
        when its makespan is strictly better, so adaptive can never lose
        to static.  Off by default — the engine still *records*
        observations into :attr:`observations` either way, it just never
        consumes them.
    nic_policy:
        NIC queue discipline for the run's collectives (``"fifo"``,
        ``"fair"`` or ``"priority"``); only consulted by the winning
        schedule when ``adaptive`` is on, applied directly otherwise.
    """

    def __init__(
        self,
        cluster: Optional[ClusterLike] = None,
        *,
        cache: Optional[PreprocCache] = None,
        policy: str = "priority",
        max_batch: int = 4,
        max_queue_depth: Optional[int] = None,
        block_size: int = 128,
        threadlen: int = 8,
        autotune: bool = False,
        num_streams: int = 2,
        autoscale: Optional[AutoscalerSpec] = None,
        adaptive: bool = False,
        nic_policy: str = "fifo",
    ) -> None:
        self.cluster = collapse_cluster(
            cluster if cluster is not None else default_serving_cluster()
        )
        self.cache = cache if cache is not None else PreprocCache()
        self.policy = policy
        self.adaptive = adaptive
        self.nic_policy = nic_policy
        #: Cross-run execution/congestion observations; every run records
        #: into this store (the closed loop warms across runs), adaptive
        #: runs additionally consume it.
        self.observations = ObservationStore()
        #: ``True``/``False`` after an adaptive :meth:`run` depending on
        #: which trial schedule won; ``None`` before any, or when
        #: ``adaptive`` is off.
        self.last_adaptive_won: Optional[bool] = None
        self._scheduler_kwargs = dict(
            policy=policy,
            max_batch=max_batch,
            max_queue_depth=max_queue_depth,
            block_size=block_size,
            threadlen=threadlen,
            autotune=autotune,
            num_streams=num_streams,
            autoscale=autoscale,
        )
        self.scheduler = Scheduler(
            self.cluster,
            self.cache,
            observations=self.observations,
            nic_policy=nic_policy,
            **self._scheduler_kwargs,
        )

    # ------------------------------------------------------------------ #
    def run(
        self,
        jobs: Sequence[Job],
        chaos: Optional[Sequence[NodeFailure]] = None,
        *,
        metrics: Optional[MetricsRegistry] = None,
        events: Optional[EventLog] = None,
    ) -> ServingReport:
        """Schedule and execute ``jobs``; returns the full report.

        The report carries *this run's* cache counters (the shared cache's
        deltas over the run), so a warm second run reports its own — near
        perfect — hit rate, and a later run cannot retroactively change an
        earlier report.  ``chaos`` injects seeded node-loss events (see
        :meth:`~repro.serve.scheduler.Scheduler.run`); the report records
        the fired events and the job re-queues they caused.

        Every run is fully instrumented: a fresh
        :class:`~repro.obs.metrics.MetricsRegistry` and
        :class:`~repro.obs.events.EventLog` are created (or the caller's
        own passed as ``metrics`` / ``events``), threaded through the
        scheduler into every kernel and driver a job touches, and returned
        on the report (``report.metrics`` / ``report.events``) alongside
        the span-folded cost attribution.  Telemetry is observation-only:
        results and bookings are bit-identical with or without consumers.

        With ``adaptive`` on, the run is *hedged*: the jobs are first
        trial-scheduled twice on throwaway cache clones — once static
        (FIFO NIC, no observations consumed) and once adaptive (blended
        placement, tuner re-ranking, the engine's NIC policy, a clone of
        the observation store) — with no telemetry sinks.  The adaptive
        configuration is kept only if its trial makespan is *strictly*
        shorter; ties and regressions fall back to the static schedule,
        so a cold store (which makes the adaptive trial collapse to the
        static one under FIFO) reproduces the static run event for
        event.  The winner is then re-run on the real cache with the real
        sinks; observations are recorded into :attr:`observations` either
        way, closing the loop for the next run.
        """
        before = replace(self.cache.stats)
        registry = metrics if metrics is not None else MetricsRegistry()
        log = events if events is not None else EventLog()
        scheduler = self._hedge(jobs, chaos) if self.adaptive else self.scheduler
        outcome = scheduler.run(jobs, chaos=chaos, metrics=registry, events=log)
        report = ServingReport(
            cluster=self.cluster,
            policy=self.policy,
            results=outcome.results,
            timelines=outcome.timelines,
            cache_stats=self.cache.stats.since(before),
            timeline=outcome.timeline,
            failures=outcome.failures,
            requeued_jobs=outcome.requeued_jobs,
            preemptions=outcome.preemptions,
            scale_events=outcome.scale_events,
            metrics=registry,
            events=log,
            attribution=outcome.attribution,
        )
        publish_serving_metrics(registry, report)
        return report

    # ------------------------------------------------------------------ #
    @staticmethod
    def _trial_makespan(outcome: ScheduleOutcome) -> float:
        """Completion time of a trial schedule's last completed job."""
        return max((r.finish_s for r in outcome.results if r.completed), default=0.0)

    def _hedge(
        self, jobs: Sequence[Job], chaos: Optional[Sequence[NodeFailure]]
    ) -> Scheduler:
        """Trial-run ``jobs`` static and adaptive; return the winner.

        Both trials run on :meth:`~repro.serve.cache.PreprocCache.clone`
        copies of the shared cache (and a clone of the observation store)
        with no telemetry sinks, so they leave the engine's real state
        byte-for-byte untouched.  The adaptive configuration wins only on
        a strictly shorter makespan — with no observations and a FIFO NIC
        the two trials are identical, so the tie-break keeps the static
        schedule and the cold-start run is indistinguishable from a
        non-adaptive engine.  The returned scheduler targets the *real*
        cache and observation store, ready for the final instrumented run.
        """
        static_trial = Scheduler(
            self.cluster,
            self.cache.clone(),
            observations=None,
            **self._scheduler_kwargs,
        ).run(jobs, chaos=chaos)
        adaptive_trial = Scheduler(
            self.cluster,
            self.cache.clone(),
            adaptive=True,
            observations=self.observations.clone(),
            nic_policy=self.nic_policy,
            **self._scheduler_kwargs,
        ).run(jobs, chaos=chaos)
        won = bool(
            self._trial_makespan(adaptive_trial) < self._trial_makespan(static_trial)
        )
        self.last_adaptive_won = won
        if won:
            return Scheduler(
                self.cluster,
                self.cache,
                adaptive=True,
                observations=self.observations,
                nic_policy=self.nic_policy,
                **self._scheduler_kwargs,
            )
        return Scheduler(
            self.cluster,
            self.cache,
            observations=self.observations,
            **self._scheduler_kwargs,
        )

    def run_workload(
        self,
        spec: Optional[WorkloadSpec] = None,
        chaos: Optional[Sequence[NodeFailure]] = None,
        *,
        metrics: Optional[MetricsRegistry] = None,
        events: Optional[EventLog] = None,
    ) -> ServingReport:
        """Generate a seeded synthetic workload and serve it."""
        spec = spec if spec is not None else WorkloadSpec()
        return self.run(
            generate_workload(spec), chaos=chaos, metrics=metrics, events=events
        )


def publish_serving_metrics(registry: MetricsRegistry, report: ServingReport) -> None:
    """Publish a finished run's report-level metrics into ``registry``.

    The serving-layer half of the metrics catalogue: job outcomes,
    execution-path counts, latency percentiles, utilisation, fault and
    preemption totals, and the preprocessing-cache hit counters.  Called by
    :meth:`ServingEngine.run` on its per-run registry; callers holding a
    long-lived registry across runs should expect counters to accumulate.
    """
    jobs = registry.counter(
        "repro_serve_jobs_total", "Serving jobs by terminal status.", ("status",)
    )
    jobs.inc(len(report.completed), status="completed")
    jobs.inc(len(report.rejected), status="rejected")
    paths = registry.counter(
        "repro_serve_execution_total",
        "Completed serving jobs by execution path.",
        ("path",),
    )
    for path, count in sorted(report.execution_counts().items()):
        paths.inc(count, path=path)
    registry.gauge(
        "repro_serve_makespan_seconds",
        "Completion time of the serving run's last job (simulated).",
    ).set(report.makespan_s)
    registry.gauge(
        "repro_serve_throughput_jobs_per_second",
        "Completed jobs per simulated second.",
    ).set(report.throughput_jobs_per_s)
    latency = registry.gauge(
        "repro_serve_latency_seconds",
        "End-to-end latency percentiles over completed jobs.",
        ("quantile",),
    )
    latency.set(report.p50_latency_s, quantile="0.5")
    latency.set(report.p99_latency_s, quantile="0.99")
    latency.set(report.p999_latency_s, quantile="0.999")
    registry.gauge(
        "repro_serve_utilization_ratio",
        "Cluster compute busy fraction over the makespan.",
    ).set(report.overall_utilization)
    registry.counter(
        "repro_serve_batched_jobs_total", "Completed jobs that rode in a batch."
    ).inc(report.batched_jobs)
    registry.counter(
        "repro_serve_preemptions_total",
        "Chunk-boundary preemptions the deadline policy performed.",
    ).inc(len(report.preemptions))
    registry.counter(
        "repro_serve_deadline_misses_total",
        "Deadline-carrying jobs that finished late or not at all.",
    ).inc(report.deadline_misses)
    registry.counter(
        "repro_serve_requeues_total", "Job re-queues caused by node losses."
    ).inc(report.requeued_jobs)
    registry.counter(
        "repro_serve_node_failures_total", "Chaos node-loss events that fired."
    ).inc(len(report.failures))
    scale = registry.counter(
        "repro_serve_scale_events_total", "Autoscaler actions by direction.", ("action",)
    )
    for event in report.scale_events:
        scale.inc(action=event.action)
    cache = registry.counter(
        "repro_serve_cache_requests_total",
        "Preprocessing cache lookups by kind and outcome.",
        ("kind", "outcome"),
    )
    stats = report.cache_stats
    cache.inc(stats.encode_hits, kind="encode", outcome="hit")
    cache.inc(stats.encode_misses, kind="encode", outcome="miss")
    cache.inc(stats.tuner_hits, kind="tuner", outcome="hit")
    cache.inc(stats.tuner_misses, kind="tuner", outcome="miss")
