"""Deterministic autoscaling of the serving device pool.

The autoscaler grows and shrinks the set of *active* device slots against
offered load, entirely in simulated time: parked slots are handed to the
placer as excluded slots (exactly the mechanism chaos uses for failed
nodes), so nothing places on them, and the dispatch loop stops waiting on
their copy engines.  Scale-up triggers on queue depth — jobs waiting while
capacity sits parked — and scale-down on idleness: a slot whose copy *and*
compute engines have been free for the configured window is parked.  A
slot with committed future work can never park (its engine horizons extend
past ``now`` by construction, so it is never idle).

Like everything else in the simulator the controller is deterministic: the
same workload and spec produce the same :class:`ScaleEvent` sequence, and
``autoscale=None`` (the default everywhere) keeps the legacy fixed-pool
behavior byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Tuple

from repro.util.validation import check_positive_int

__all__ = ["AutoscalerSpec", "ScaleEvent", "Autoscaler"]


@dataclass(frozen=True)
class AutoscalerSpec:
    """Autoscaling policy knobs.

    Attributes
    ----------
    min_devices / max_devices:
        Bounds on the active pool.  ``max_devices=None`` means the whole
        cluster.  The pool *starts* at ``min_devices`` (the most capable
        slots), so a loaded run records its scale-ups.
    scale_up_queue_depth:
        Queue depth (stage-ready and preprocessing jobs waiting) at which
        one parked slot is unparked.
    scale_down_idle_s:
        A slot parks when both its engines have been free for this many
        simulated seconds.
    cooldown_s:
        Minimum simulated seconds between consecutive scale events, in
        either direction (0 disables the cooldown).
    """

    min_devices: int = 1
    max_devices: Optional[int] = None
    scale_up_queue_depth: int = 2
    scale_down_idle_s: float = 1.0e-5
    cooldown_s: float = 0.0

    def __post_init__(self) -> None:
        check_positive_int(self.min_devices, "min_devices")
        if self.max_devices is not None:
            check_positive_int(self.max_devices, "max_devices")
            if self.max_devices < self.min_devices:
                raise ValueError(
                    f"max_devices ({self.max_devices}) must be at least "
                    f"min_devices ({self.min_devices})"
                )
        check_positive_int(self.scale_up_queue_depth, "scale_up_queue_depth")
        if self.scale_down_idle_s <= 0.0:
            raise ValueError(
                f"scale_down_idle_s must be positive, got {self.scale_down_idle_s}"
            )
        if self.cooldown_s < 0.0:
            raise ValueError(f"cooldown_s must be non-negative, got {self.cooldown_s}")


@dataclass(frozen=True)
class ScaleEvent:
    """One autoscaling action, on the simulated clock."""

    time_s: float
    action: str  #: ``"up"`` (slot unparked) or ``"down"`` (slot parked)
    slot: int
    active_devices: int  #: pool size *after* the action


class Autoscaler:
    """The scale-up/scale-down controller of one scheduler run.

    Mutable run state (unlike the frozen spec): one instance belongs to
    one :meth:`~repro.serve.scheduler.Scheduler.run`.  ``scores`` ranks
    the slots by capability — the pool always keeps the most capable
    slots active, parking the least capable first, so the controller's
    choices are deterministic and match the placer's preferences.
    """

    def __init__(
        self, spec: AutoscalerSpec, scores: Sequence[float]
    ) -> None:
        num_devices = len(scores)
        if num_devices < 1:
            raise ValueError("autoscaler needs at least one device slot")
        self.spec = spec
        self.num_devices = num_devices
        self.max_active = min(
            num_devices,
            spec.max_devices if spec.max_devices is not None else num_devices,
        )
        self.min_active = min(spec.min_devices, num_devices)
        #: Slots by descending capability (ties: lowest slot first) — the
        #: unpark order; parking walks it backwards.
        self._preference: Tuple[int, ...] = tuple(
            sorted(range(num_devices), key=lambda s: (-scores[s], s))
        )
        #: Slots currently parked: everything beyond the initial pool.
        self.parked: Set[int] = set(self._preference[self.min_active :])
        self.events: List[ScaleEvent] = []
        self._last_event_s = -float("inf")

    # ------------------------------------------------------------------ #
    @property
    def active(self) -> int:
        """Active (unparked) slot count."""
        return self.num_devices - len(self.parked)

    def _cooled(self, now_s: float) -> bool:
        return now_s - self._last_event_s >= self.spec.cooldown_s

    def step(
        self,
        now_s: float,
        queue_depth: int,
        copy_free_s: Sequence[float],
        compute_free_s: Sequence[float],
    ) -> List[ScaleEvent]:
        """Apply the policy at ``now_s``; returns the events it emitted.

        At most one action per direction per step: scale-up wins when both
        would fire (waiting work outranks parking idle capacity).
        """
        emitted: List[ScaleEvent] = []
        if (
            queue_depth >= self.spec.scale_up_queue_depth
            and self.parked
            and self.active < self.max_active
            and self._cooled(now_s)
        ):
            slot = next(s for s in self._preference if s in self.parked)
            self.parked.discard(slot)
            event = ScaleEvent(
                time_s=now_s, action="up", slot=slot, active_devices=self.active
            )
            self.events.append(event)
            emitted.append(event)
            self._last_event_s = now_s
            return emitted
        if self.active > self.min_active and self._cooled(now_s):
            horizon = now_s - self.spec.scale_down_idle_s
            idle = [
                s
                for s in reversed(self._preference)
                if s not in self.parked
                and copy_free_s[s] <= horizon
                and compute_free_s[s] <= horizon
            ]
            if idle:
                slot = idle[0]  # least capable idle slot parks first
                self.parked.add(slot)
                event = ScaleEvent(
                    time_s=now_s, action="down", slot=slot, active_devices=self.active
                )
                self.events.append(event)
                emitted.append(event)
                self._last_event_s = now_s
        return emitted
