"""Preprocessing cache: memoised F-COO encodings and tuned launch configs.

The paper performs its preprocessing — sorting the non-zeros and building
the F-COO flag arrays for one (operation, mode) — once on the host before a
decomposition; in a multi-tenant serving setting the same tensors arrive
again and again (repeat tenants, retried jobs, several kernels over one
upload), so the preprocessing is worth memoising *across* jobs.

:class:`PreprocCache` keys encodings by ``(tensor content, operation,
mode)`` — the content key hashes coordinates and values, so two tenants
submitting the same data share an entry regardless of naming — and tuned
``(BLOCK_SIZE, threadlen)`` configurations by ``(tensor content, operation,
mode, rank, device)``.  Encoding entries are LRU-evicted against an
optional host-memory budget; tuner entries are a few integers each and are
kept unconditionally.

Cache *misses* are charged simulated host seconds (the encode is a sort
plus flag construction over the non-zeros; a tuner miss charges the swept
kernel times), cache *hits* are free — this is exactly the latency the
serving report attributes to preprocessing.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple, Union

import numpy as np

from repro.formats.fcoo import FCOOTensor
from repro.formats.mode_encoding import OperationKind
from repro.gpusim.device import DeviceSpec, TITAN_X
from repro.tensor.sparse import SparseTensor

__all__ = ["CacheStats", "PreprocCache"]

#: Host-side F-COO construction cost per non-zero (a lexicographic sort plus
#: vectorised flag/segment-table construction; same order of magnitude as the
#: CSF build charge of the SPLATT CPU engine).
ENCODE_SECONDS_PER_NNZ = 50e-9

#: Reduced tuner axes for serving: a 3x3 sweep around the paper's sweet spot
#: instead of the full Figure 5 grid, so a tuner miss evaluates 9
#: configurations rather than 30.
SERVING_BLOCK_SIZES: Tuple[int, ...] = (64, 128, 256)
SERVING_THREADLENS: Tuple[int, ...] = (8, 16, 32)

#: Host seconds per tuner configuration evaluated on a miss.  The serving
#: tuner is *model-driven* — it ranks configurations with the simulated cost
#: model instead of executing each candidate on the device (the Figure 5
#: sweep measured real kernels once, offline) — so a miss costs a model
#: evaluation per configuration, not a kernel run per configuration.
TUNER_SECONDS_PER_CONFIG = 2e-6


@dataclass
class CacheStats:
    """Hit/miss/eviction counters of one :class:`PreprocCache`."""

    encode_hits: int = 0
    encode_misses: int = 0
    tuner_hits: int = 0
    tuner_misses: int = 0
    evictions: int = 0

    @property
    def encode_hit_rate(self) -> float:
        """Fraction of encoding lookups served from the cache (0 when none)."""
        total = self.encode_hits + self.encode_misses
        return self.encode_hits / total if total else 0.0

    def since(self, earlier: "CacheStats") -> "CacheStats":
        """The counter deltas accumulated after ``earlier`` was snapshotted
        (how the serving engine reports per-run cache effectiveness from
        one shared, ever-warming cache)."""
        return CacheStats(
            encode_hits=self.encode_hits - earlier.encode_hits,
            encode_misses=self.encode_misses - earlier.encode_misses,
            tuner_hits=self.tuner_hits - earlier.tuner_hits,
            tuner_misses=self.tuner_misses - earlier.tuner_misses,
            evictions=self.evictions - earlier.evictions,
        )


@dataclass
class _EncodingEntry:
    encoding: FCOOTensor
    bytes: int


class PreprocCache:
    """LRU cache of F-COO encodings and tuned launch parameters.

    Parameters
    ----------
    capacity_bytes:
        Host-memory budget for cached encodings (Table II storage bytes);
        ``None`` means unbounded.  The least recently used entries are
        evicted when an insert exceeds the budget.
    """

    def __init__(self, capacity_bytes: Optional[int] = None) -> None:
        if capacity_bytes is not None and capacity_bytes <= 0:
            raise ValueError(f"capacity_bytes must be positive, got {capacity_bytes}")
        self.capacity_bytes = capacity_bytes
        self.stats = CacheStats()
        self._encodings: "OrderedDict[Tuple[str, str, int], _EncodingEntry]" = OrderedDict()
        self._tuned: Dict[Tuple[str, str, int, int, str], Tuple[int, int]] = {}
        # Predicted (block, threadlen) time surface of each tuner miss,
        # kept so the feedback loop can re-rank a cached config against
        # observed execution times (see rerank_tuner_config).
        self._surfaces: Dict[
            Tuple[str, str, int, int, str],
            Tuple[Tuple[int, ...], Tuple[int, ...], "np.ndarray"],
        ] = {}
        self._current_bytes = 0

    def clone(self) -> "PreprocCache":
        """An independent shallow copy, for hedged trial runs.

        The clone shares the cached encodings/configs *by reference*
        (they are immutable values) but owns its dicts, stats and byte
        accounting — a trial scheduler warming or re-ranking its clone
        leaves this cache byte-for-byte untouched.
        """
        other = PreprocCache(capacity_bytes=self.capacity_bytes)
        other.stats = CacheStats(
            encode_hits=self.stats.encode_hits,
            encode_misses=self.stats.encode_misses,
            tuner_hits=self.stats.tuner_hits,
            tuner_misses=self.stats.tuner_misses,
            evictions=self.stats.evictions,
        )
        other._encodings = OrderedDict(self._encodings)
        other._tuned = dict(self._tuned)
        other._surfaces = dict(self._surfaces)
        other._current_bytes = self._current_bytes
        return other

    # ------------------------------------------------------------------ #
    @property
    def current_bytes(self) -> int:
        """Bytes of encodings currently resident in the cache."""
        return self._current_bytes

    def __len__(self) -> int:
        return len(self._encodings)

    # ------------------------------------------------------------------ #
    def encoding(
        self,
        tensor: SparseTensor,
        operation: Union[OperationKind, str],
        mode: int,
    ) -> Tuple[FCOOTensor, bool, float]:
        """The F-COO encoding of ``tensor`` for ``(operation, mode)``.

        Returns ``(encoding, hit, host_seconds)``: on a hit the encoding
        comes from the cache and costs nothing; on a miss it is built,
        charged ``nnz * ENCODE_SECONDS_PER_NNZ`` host seconds, inserted,
        and the LRU tail evicted until the budget holds.  An encoding
        larger than ``capacity_bytes`` outright is returned uncached (the
        miss is counted but nothing is inserted or evicted).
        """
        operation = OperationKind.coerce(operation)
        key = (tensor.content_key, operation.value, int(mode))
        entry = self._encodings.get(key)
        if entry is not None:
            self._encodings.move_to_end(key)
            self.stats.encode_hits += 1
            return entry.encoding, True, 0.0

        self.stats.encode_misses += 1
        encoding = FCOOTensor.from_sparse(tensor, operation, mode)
        cost_s = tensor.nnz * ENCODE_SECONDS_PER_NNZ
        nbytes = int(encoding.storage_bytes())
        if self.capacity_bytes is not None and nbytes > self.capacity_bytes:
            # An encoding larger than the whole budget can never be held
            # within it: caching it would pin the cache permanently above
            # budget and evict every other entry for nothing.  Hand it back
            # uncached — the miss is already counted, nothing is inserted,
            # nothing is evicted.
            return encoding, False, cost_s
        self._encodings[key] = _EncodingEntry(encoding=encoding, bytes=nbytes)
        self._current_bytes += nbytes
        if self.capacity_bytes is not None:
            while self._current_bytes > self.capacity_bytes and len(self._encodings) > 1:
                _, evicted = self._encodings.popitem(last=False)
                self._current_bytes -= evicted.bytes
                self.stats.evictions += 1
        return encoding, False, cost_s

    # ------------------------------------------------------------------ #
    def tuner_config(
        self,
        tensor: SparseTensor,
        operation: Union[OperationKind, str],
        mode: int,
        rank: int,
        *,
        device: DeviceSpec = TITAN_X,
        block_sizes: Sequence[int] = SERVING_BLOCK_SIZES,
        threadlens: Sequence[int] = SERVING_THREADLENS,
    ) -> Tuple[Tuple[int, int], bool, float]:
        """The tuned ``(BLOCK_SIZE, threadlen)`` for one job shape.

        Returns ``(config, hit, host_seconds)``.  A miss sweeps the reduced
        serving axes with :func:`repro.autotune.tune_unified` and charges
        :data:`TUNER_SECONDS_PER_CONFIG` per configuration evaluated (the
        serving tuner ranks candidates with the cost model rather than
        executing them); a hit is free — this is the "repeat tenants skip
        preprocessing" half of the cache that covers the tuner.
        """
        from repro.autotune import tune_unified

        operation = OperationKind.coerce(operation)
        key = (tensor.content_key, operation.value, int(mode), int(rank), device.name)
        cached = self._tuned.get(key)
        if cached is not None:
            self.stats.tuner_hits += 1
            return cached, True, 0.0

        self.stats.tuner_misses += 1
        result = tune_unified(
            tensor,
            operation,
            mode,
            rank=rank,
            device=device,
            block_sizes=tuple(block_sizes),
            threadlens=tuple(threadlens),
        )
        config = result.best
        grid = np.asarray(result.times_grid, dtype=np.float64)
        cost_s = float(np.isfinite(grid).sum()) * TUNER_SECONDS_PER_CONFIG
        self._tuned[key] = config
        self._surfaces[key] = (
            tuple(int(b) for b in block_sizes),
            tuple(int(t) for t in threadlens),
            np.asarray(result.times, dtype=np.float64).copy(),
        )
        return config, False, cost_s

    # ------------------------------------------------------------------ #
    def rerank_tuner_config(
        self,
        tensor: SparseTensor,
        operation: Union[OperationKind, str],
        mode: int,
        rank: int,
        *,
        device: DeviceSpec = TITAN_X,
        observed_s: float,
        tolerance: float = 0.25,
    ) -> Tuple[Tuple[int, int], bool]:
        """Re-rank a cached launch config against an observed exec time.

        The feedback half of the tuner: when the observed (simulated)
        execution time of this job shape has drifted more than
        ``tolerance`` (relative) away from what the tuner's model
        predicted for the cached config, the observed value *replaces*
        that config's entry on the stored prediction surface and the
        argmin is retaken — a uniform model error scales every cell alike
        and can never change the winner, so only the substitution can.
        Returns ``(config, changed)``; a miss entry, an in-tolerance
        observation, or a surface swept before this feature simply keeps
        the cached config.
        """
        operation = OperationKind.coerce(operation)
        key = (tensor.content_key, operation.value, int(mode), int(rank), device.name)
        cached = self._tuned.get(key)
        surface = self._surfaces.get(key)
        if cached is None or surface is None:
            return (cached if cached is not None else (0, 0)), False
        block_sizes, threadlens, times = surface
        if cached[0] not in block_sizes or cached[1] not in threadlens:
            return cached, False
        i = block_sizes.index(cached[0])
        j = threadlens.index(cached[1])
        predicted = float(times[i, j])
        if not np.isfinite(predicted) or predicted <= 0.0:
            return cached, False
        if abs(observed_s - predicted) <= tolerance * predicted:
            return cached, False
        adjusted = times.copy()
        adjusted[i, j] = observed_s
        flat = int(np.argmin(np.where(np.isfinite(adjusted), adjusted, np.inf)))
        bi, tj = np.unravel_index(flat, adjusted.shape)
        config = (block_sizes[int(bi)], threadlens[int(tj)])
        self._surfaces[key] = (block_sizes, threadlens, adjusted)
        if config == cached:
            return cached, False
        self._tuned[key] = config
        return config, True
