"""The serving subsystem's unit of work: tenant-submitted jobs.

A :class:`Job` is one request against the simulated cluster — a single
unified kernel invocation (SpTTM / SpMTTKRP / SpTTMc) or a full
decomposition (CP-ALS / Tucker-HOOI).  Jobs carry everything needed to
execute them deterministically: the tensor, the target mode and rank, a
factor seed (the dense operands are regenerated from it, so a job is a
value, not a closure), a tenant id, an arrival time on the simulated clock
and a priority class.

:class:`JobResult` is the scheduler's ledger for one job: the numeric
output, where it ran, which execution path it took (one-shot / streamed /
sharded / decomposition), whether preprocessing hit the cache, and the full
latency breakdown (queue wait, host preprocessing, staging, execution).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

import numpy as np

from repro.context import SLO
from repro.formats.mode_encoding import OperationKind
from repro.tensor.random import random_factors
from repro.tensor.sparse import SparseTensor
from repro.util.validation import check_mode, check_rank

__all__ = ["JobKind", "Job", "JobStatus", "JobResult"]


class JobKind(enum.Enum):
    """What a serving job asks the cluster to compute."""

    SPTTM = "spttm"
    SPMTTKRP = "spmttkrp"
    SPTTMC = "spttmc"
    CP_ALS = "cp_als"
    TUCKER = "tucker"

    @classmethod
    def coerce(cls, value: "JobKind | str") -> "JobKind":
        """Accept either an enum member or its string value."""
        if isinstance(value, cls):
            return value
        try:
            return cls(str(value).lower())
        except ValueError as exc:
            raise ValueError(
                f"unknown job kind {value!r}; choose from "
                f"{[k.value for k in cls]}"
            ) from exc

    @property
    def is_kernel(self) -> bool:
        """Single-kernel jobs (one F-COO encoding, one launch)."""
        return self in (JobKind.SPTTM, JobKind.SPMTTKRP, JobKind.SPTTMC)

    @property
    def operation(self) -> OperationKind:
        """The F-COO encoding this kind preprocesses (decompositions use
        the encoding of their bottleneck kernel)."""
        return {
            JobKind.SPTTM: OperationKind.SPTTM,
            JobKind.SPMTTKRP: OperationKind.SPMTTKRP,
            JobKind.SPTTMC: OperationKind.SPTTMC,
            JobKind.CP_ALS: OperationKind.SPMTTKRP,
            JobKind.TUCKER: OperationKind.SPTTMC,
        }[self]


@dataclass(frozen=True)
class Job:
    """One tenant request against the serving cluster.

    Attributes
    ----------
    job_id:
        Unique id; ties in the queue order break on it, so ids make the
        schedule fully deterministic.
    tenant:
        Submitting tenant (informational; the preprocessing cache is shared
        across tenants and keyed by tensor *content*, so tenants submitting
        the same tensor share its encodings).
    kind:
        What to compute.
    tensor:
        The sparse input.
    mode:
        Target mode for kernel jobs (ignored by decompositions, which sweep
        all modes).
    rank:
        Factor columns for kernels / CP; decompositions clamp per-mode
        ranks to the mode sizes.
    priority:
        Priority class, lower is more urgent (0 = interactive, 1 = batch).
    arrival_s:
        Arrival time on the simulated clock.
    iterations:
        ALS/HOOI sweeps for decomposition jobs.
    factor_seed:
        Seed regenerating the dense operands (kernel factors, decomposition
        initial factors).
    slo:
        Optional :class:`~repro.context.SLO`: a latency deadline (relative
        to arrival), an SLO priority class, and whether the deadline-aware
        scheduler may preempt this job.  ``None`` — the default, and what
        every pre-SLO workload carries — means "batch semantics":
        no deadline, preemptible, priority taken from :attr:`priority`.
    """

    job_id: int
    tenant: str
    kind: JobKind
    tensor: SparseTensor
    mode: int = 0
    rank: int = 8
    priority: int = 1
    arrival_s: float = 0.0
    iterations: int = 2
    factor_seed: int = 0
    slo: Optional[SLO] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "kind", JobKind.coerce(self.kind))
        check_mode(self.mode, self.tensor.order)
        check_rank(self.rank)
        if self.priority < 0:
            raise ValueError(f"priority must be non-negative, got {self.priority}")
        if self.arrival_s < 0:
            raise ValueError(f"arrival_s must be non-negative, got {self.arrival_s}")
        if self.iterations < 1:
            raise ValueError(f"iterations must be positive, got {self.iterations}")
        if not self.kind.is_kernel and self.tensor.nnz == 0:
            raise ValueError("decomposition jobs need a non-empty tensor")

    # ------------------------------------------------------------------ #
    @property
    def operation(self) -> OperationKind:
        """The F-COO operation this job's preprocessing targets."""
        return self.kind.operation

    @property
    def tucker_ranks(self) -> Tuple[int, ...]:
        """Per-mode multilinear rank of a Tucker job (clamped to the shape)."""
        return tuple(min(self.rank, s) for s in self.tensor.shape)

    @property
    def deadline_s(self) -> float:
        """Absolute completion deadline (``inf`` for jobs without one)."""
        if self.slo is None:
            return math.inf
        return self.slo.deadline_for(self.arrival_s)

    @property
    def preemptible(self) -> bool:
        """Whether the deadline-aware policy may preempt this job."""
        return self.slo.preemptible if self.slo is not None else True

    def factors(self) -> List[np.ndarray]:
        """The job's dense operands, regenerated deterministically.

        One ``(I_m, rank)`` factor per mode; kernel jobs use the subset
        their operation reads, CP-ALS uses them as the initial guess.
        """
        factors = random_factors(self.tensor.shape, self.rank, seed=self.factor_seed)
        return [np.asarray(f) for f in factors]

    @property
    def batch_key(self) -> Tuple[str, str, int, int]:
        """Jobs sharing this key may batch on one device: they share one
        F-COO encoding (same tensor content, operation and mode) and the
        same launch geometry (same rank)."""
        return (self.tensor.content_key, self.operation.value, self.mode, self.rank)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Job(id={self.job_id}, tenant={self.tenant!r}, kind={self.kind.value}, "
            f"nnz={self.tensor.nnz}, mode={self.mode}, rank={self.rank}, "
            f"priority={self.priority}, arrival={self.arrival_s:.3e}s)"
        )


class JobStatus(enum.Enum):
    """Terminal state of a job in the serving ledger."""

    COMPLETED = "completed"
    REJECTED = "rejected"


@dataclass
class JobResult:
    """The scheduler's ledger for one job.

    Attributes
    ----------
    job / status / reject_reason:
        The job and how it ended (``reject_reason`` set only for rejects).
    output:
        The numeric result: the kernel output (dense matrix /
        :class:`~repro.formats.semisparse.SemiSparseTensor`) or the
        decomposition result object.  ``None`` for rejected jobs.
    device_slots:
        Cluster slots the job ran on (several for a sharded job).
    execution:
        Path taken: ``"one-shot"``, ``"streamed"``, ``"sharded"`` or
        ``"decomposition"``.
    encode_cache_hit / tuner_cache_hit:
        Whether the F-COO encoding / tuned launch parameters came from the
        preprocessing cache (``tuner_cache_hit`` is ``None`` when the
        engine ran with auto-tuning off).
    batch_id / batch_leader:
        Batch the job executed in (``None`` outside a batch); the leader
        paid the batch's staging.
    preproc_s / stage_s / exec_s:
        Host preprocessing (encode + tune on a miss), host-to-device
        staging, and execution seconds.
    stage_start_s / exec_start_s / finish_s:
        Absolute simulated times of the staging start, kernel start and
        completion.
    placement:
        The :class:`~repro.serve.placement.Placement` the job executed
        with — replaying it through
        :func:`~repro.serve.execute.execute_job` reproduces ``output`` bit
        for bit (the property ``tests/test_serving.py`` asserts).
    requeues:
        How many times the job was torn down by a node failure and
        re-admitted before this (final) run; 0 for an undisturbed job.
    preemptions:
        How many times the deadline-aware policy preempted this job at a
        chunk boundary and later resumed it; 0 for an undisturbed job.
    preempted_s:
        Modeled seconds between the (last) preemption and the resumed
        execution start — the victim-side latency cost of preemption.
    compute_s:
        Busy seconds the job's ``compute``-phase bookings attributed on the
        timeline (first-run kernel time; a resumed job's re-booked chunks
        land in ``preemption_overhead_s`` instead).  Filled by the span
        attribution fold after the run; 0 for rejected jobs.
    nic_wait_s:
        Seconds the job's collectives queued behind other jobs' traffic on
        shared link/NIC resources (``start - queued_from`` of its
        collective bookings) — pure congestion, not transfer time.
    preemption_overhead_s:
        Busy seconds of the job's ``resume`` and ``recovery`` phase
        bookings: the re-staging and re-booked pipeline it paid because it
        was preempted or torn off a failed node.
    """

    job: Job
    status: JobStatus
    reject_reason: Optional[str] = None
    output: Any = None
    device_slots: Tuple[int, ...] = ()
    execution: str = ""
    encode_cache_hit: bool = False
    tuner_cache_hit: Optional[bool] = None
    batch_id: Optional[int] = None
    batch_leader: bool = False
    preproc_s: float = 0.0
    stage_s: float = 0.0
    exec_s: float = 0.0
    stage_start_s: float = 0.0
    exec_start_s: float = 0.0
    finish_s: float = 0.0
    block_size: int = 128
    threadlen: int = 8
    placement: Any = None
    requeues: int = 0
    preemptions: int = 0
    preempted_s: float = 0.0
    compute_s: float = 0.0
    nic_wait_s: float = 0.0
    preemption_overhead_s: float = 0.0

    @property
    def completed(self) -> bool:
        """Whether the job produced a result."""
        return self.status is JobStatus.COMPLETED

    @property
    def missed_deadline(self) -> bool:
        """Whether the job had a deadline and failed it (rejected jobs with
        a deadline count as missed; jobs without one never miss)."""
        if self.job.slo is None or not self.job.slo.has_deadline:
            return False
        if not self.completed:
            return True
        return self.finish_s > self.job.deadline_s

    @property
    def latency_s(self) -> float:
        """End-to-end latency: completion minus arrival."""
        return self.finish_s - self.job.arrival_s

    @property
    def queue_wait_s(self) -> float:
        """Seconds between arrival and the start of staging (host
        preprocessing included — it delays staging)."""
        return max(0.0, self.stage_start_s - self.job.arrival_s)
