"""Observed-time feedback: the store closing ROADMAP item 5's loop.

The measurement substrate (PR 8) records what actually happened on the
simulated timeline — per-job execution seconds, per-resource queueing
delay, collective NIC waits.  This module folds those observations into
exponentially-decayed estimates the *policies* can consume:

* per-``(kernel, tensor content, device class)`` execution estimates —
  the adaptive :class:`~repro.serve.placement.Placer` blends them with
  the static roofline score, and the preprocessing cache re-ranks cached
  launch configs when the observed time drifts off the tuner's
  prediction;
* per-slot congestion scores (compute-lane queueing behind other
  tenants' jobs) — the adaptive placer penalises busy slots;
* per-node NIC congestion scores (collective queueing on the shared
  NIC) — node-local placement steers away from congested nodes.

Everything here is *simulated* seconds and plain dict folds: two runs
observing the same schedule produce byte-identical stores, so the
adaptive policies stay as deterministic as the static ones.  Keys use
the same ``content_key`` as the preprocessing cache, so tenants
submitting the same tensor share observations exactly as they share
encodings.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

__all__ = ["ObservationStore", "DEFAULT_DECAY"]

#: Default EMA weight of the newest observation.  0.25 keeps roughly the
#: last handful of observations relevant — fast enough to follow workload
#: drift, slow enough that one outlier cannot flip a placement.
DEFAULT_DECAY = 0.25

ExecKey = Tuple[str, str, str]


class ObservationStore:
    """Exponentially-decayed execution and congestion estimates.

    One store per :class:`~repro.serve.engine.ServingEngine`: it persists
    across ``run()`` calls (like the preprocessing cache), so a second
    run of a drifted workload places with the first run's observations.
    """

    def __init__(self, *, decay: float = DEFAULT_DECAY) -> None:
        if not 0.0 < decay <= 1.0:
            raise ValueError(f"decay must be in (0, 1], got {decay}")
        self.decay = decay
        # (kernel, content_key, device name) -> EMA of observed exec seconds
        self._exec: Dict[ExecKey, float] = {}
        # cluster slot -> EMA of compute-lane queueing seconds
        self._slot_congestion: Dict[int, float] = {}
        # node index -> EMA of collective NIC-wait seconds
        self._node_congestion: Dict[int, float] = {}
        self._count = 0

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #
    def _fold(self, table: Dict, key, value: float) -> None:
        old = table.get(key)
        if old is None:
            table[key] = float(value)
        else:
            table[key] = (1.0 - self.decay) * old + self.decay * float(value)

    def record(
        self,
        *,
        kind: str,
        content_key: str,
        device_names: Iterable[str],
        slots: Iterable[int],
        nodes: Iterable[int],
        exec_s: float,
        device_wait_s: float,
        nic_wait_s: float,
    ) -> None:
        """Fold one completed job into the estimates.

        ``exec_s`` is the job's modeled kernel time, ``device_wait_s``
        the seconds it queued for its compute lanes behind other jobs,
        ``nic_wait_s`` the seconds its collectives queued on shared
        link/NIC resources.  ``device_names``/``slots``/``nodes`` name
        where it ran — sharded jobs fold into every member.
        """
        for name in device_names:
            self._fold(self._exec, (kind, content_key, name), exec_s)
        for slot in slots:
            self._fold(self._slot_congestion, int(slot), device_wait_s)
        for node in nodes:
            self._fold(self._node_congestion, int(node), nic_wait_s)
        self._count += 1

    # ------------------------------------------------------------------ #
    # Queries (all return exact-zero / None on cold start, so consumers
    # can fall back to the static policy bit-for-bit)
    # ------------------------------------------------------------------ #
    def expected_exec_s(
        self, kind: str, content_key: str, device_name: str
    ) -> Optional[float]:
        """Observed exec-seconds estimate, or ``None`` when never seen."""
        return self._exec.get((kind, content_key, device_name))

    def expected_exec_any(self, kind: str, content_key: str) -> Optional[float]:
        """Device-agnostic estimate: the mean over every device class
        this (kernel, tensor) pair has run on, in sorted key order so the
        fold is deterministic.  ``None`` when never seen."""
        values = [
            self._exec[key]
            for key in sorted(self._exec)
            if key[0] == kind and key[1] == content_key
        ]
        if not values:
            return None
        return sum(values) / len(values)

    def congestion_s(self, slot: int) -> float:
        """Observed compute-lane queueing on ``slot`` (0 when unseen)."""
        return self._slot_congestion.get(int(slot), 0.0)

    def node_congestion_s(self, node: int) -> float:
        """Observed collective NIC wait on ``node`` (0 when unseen)."""
        return self._node_congestion.get(int(node), 0.0)

    # ------------------------------------------------------------------ #
    def clone(self) -> "ObservationStore":
        """An independent copy (the engine's hedged trial runs record
        into a clone, so a discarded trial leaves no trace)."""
        other = ObservationStore(decay=self.decay)
        other._exec = dict(self._exec)
        other._slot_congestion = dict(self._slot_congestion)
        other._node_congestion = dict(self._node_congestion)
        other._count = self._count
        return other

    def __len__(self) -> int:
        """Number of recorded observations (0 == cold start)."""
        return self._count

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ObservationStore(observations={self._count}, "
            f"exec_keys={len(self._exec)}, slots={len(self._slot_congestion)}, "
            f"nodes={len(self._node_congestion)})"
        )
