"""Capability-aware job placement over a heterogeneous cluster.

The placer answers two questions per job, using only host-side tensor
statistics (no encoding is built before admission passes):

* **admission** — can the cluster run this job at all?  The dense operands
  (factor matrices and the output) must stay resident on a device for the
  whole kernel even on the streamed path, so a job whose resident bytes
  plus two minimal chunk buffers exceed *every* device's memory is rejected
  up front with a clear reason instead of dying inside the kernel with
  :class:`~repro.gpusim.timing.OutOfDeviceMemory`.

* **placement** — where should it run?  Jobs whose one-shot footprint fits
  a single device are placed on the device minimising the estimated
  completion time (the device's earliest compute slot plus the job's
  modeled traffic over that device's roofline throughput — so a twice-as-
  fast device is preferred even when slightly busier).  Jobs larger than
  the biggest device shard across the whole cluster through
  :mod:`repro.kernels.unified.sharded`, whose capability-weighted
  partitioner sizes each device's shard proportional to its modeled
  throughput.

On a two-tier :class:`~repro.gpusim.cluster.MultiNodeClusterSpec` the
placer is additionally **node-aware**: an oversize job that fits inside a
single node's aggregate memory shards across *that node only* — its
collectives stay on the fast intra-node P2P tier and never cross the NIC —
choosing among qualifying nodes by estimated completion time (data
locality first, load balance among the local options).  Only a job too
large for every individual node spills to a cluster-wide shard over the
NIC.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import AbstractSet, Dict, FrozenSet, Optional, Sequence, Tuple

from repro.formats.fcoo import FCOOTensor
from repro.gpusim.cluster import ClusterLike, MultiNodeClusterSpec, collapse_cluster
from repro.gpusim.device import DeviceSpec
from repro.serve.feedback import ObservationStore
from repro.serve.job import Job, JobKind

__all__ = ["JobGeometry", "job_geometry", "Placement", "Placer", "ADAPTIVE_BLEND"]

#: Bytes per stored factor/output element (the kernels' single precision).
_VALUE_BYTES = 4.0

#: Weight of the *observed* execution estimate when the adaptive placer
#: blends it with the static roofline cost (0 = pure static, 1 = pure
#: observed).  A constant half keeps the static model as an anchor — one
#: anomalous observation can shift a ranking, never own it.
ADAPTIVE_BLEND = 0.5


@dataclass(frozen=True)
class JobGeometry:
    """Host-side size estimate of one job's device-memory needs.

    Attributes
    ----------
    fcoo_bytes:
        The F-COO encoding's storage (Table II accounting) — the bytes
        staged over PCIe for a resident job, or streamed chunk-by-chunk.
    resident_bytes:
        Dense operands that must stay on-device for the whole kernel: the
        gathered factor matrices plus the output (for decompositions, the
        worst mode's operands).
    output_bytes:
        The output portion of ``resident_bytes`` (what an all-reduce would
        move for a sharded dense-output kernel).
    """

    fcoo_bytes: float
    resident_bytes: float
    output_bytes: float
    nnz: int = 0

    @property
    def footprint_bytes(self) -> float:
        """One-shot device footprint: encoding plus resident operands."""
        return self.fcoo_bytes + self.resident_bytes

    @property
    def factor_bytes(self) -> float:
        """The input half of the resident operands — the dense factor
        matrices that actually cross PCIe (the output is produced on the
        device and only occupies memory there)."""
        return self.resident_bytes - self.output_bytes

    @property
    def bytes_per_nnz(self) -> float:
        """Encoding bytes per non-zero (sizes the minimal streamed chunk)."""
        return self.fcoo_bytes / self.nnz if self.nnz else 0.0


def _kernel_geometry(
    job: Job,
    kind: JobKind,
    mode: int,
    threadlen: int,
    ranks: Optional[Sequence[int]] = None,
) -> JobGeometry:
    """Geometry of one kernel invocation (shared with the decomposition
    estimates, which take the worst mode).  ``ranks`` gives the per-mode
    factor widths (``job.rank`` everywhere by default; Tucker passes its
    shape-clamped multilinear rank)."""
    tensor = job.tensor
    shape = tensor.shape
    order = tensor.order
    if ranks is None:
        ranks = (job.rank,) * order
    product_modes = (
        (mode,) if kind is JobKind.SPTTM else tuple(m for m in range(order) if m != mode)
    )
    nnz = tensor.nnz
    fcoo_bytes = FCOOTensor.estimate_storage_bytes(
        nnz, len(product_modes), threadlen=threadlen
    )

    factor_bytes = sum(shape[m] * ranks[m] * _VALUE_BYTES for m in product_modes)
    if kind is JobKind.SPTTM:
        fibers = tensor.num_fibers(mode)
        rank = ranks[mode]
        output_bytes = fibers * rank * _VALUE_BYTES + fibers * (order - 1) * _VALUE_BYTES
    elif kind is JobKind.SPMTTKRP:
        output_bytes = shape[mode] * ranks[mode] * _VALUE_BYTES
    else:  # SPTTMC: the unfolding's width is the product-mode ranks' product
        out_width = 1
        for m in product_modes:
            out_width *= ranks[m]
        output_bytes = shape[mode] * out_width * _VALUE_BYTES
    return JobGeometry(
        fcoo_bytes=float(fcoo_bytes),
        resident_bytes=float(factor_bytes + output_bytes),
        output_bytes=float(output_bytes),
        nnz=nnz,
    )


def job_geometry(job: Job, *, threadlen: int = 8) -> JobGeometry:
    """Device-memory geometry of a job, from host-side statistics alone.

    Kernel jobs size their one invocation; decomposition jobs take the
    worst per-mode geometry of their bottleneck kernel (CP-ALS runs one
    SpMTTKRP per mode per sweep, Tucker one SpTTMc — with Tucker's
    per-mode ranks clamped to the shape, exactly as ``tucker_hooi``
    clamps them), since every mode's kernel must fit during the
    decomposition.
    """
    if job.kind.is_kernel:
        return _kernel_geometry(job, job.kind, job.mode, threadlen)
    if job.kind is JobKind.CP_ALS:
        inner, ranks = JobKind.SPMTTKRP, None
    else:
        inner, ranks = JobKind.SPTTMC, job.tucker_ranks
    per_mode = [
        _kernel_geometry(job, inner, mode, threadlen, ranks)
        for mode in range(job.tensor.order)
    ]
    worst = max(per_mode, key=lambda g: g.footprint_bytes)
    return worst


@dataclass(frozen=True)
class Placement:
    """Where (and how) one job executes.

    ``cluster`` is ``None`` for a single-device placement (``device_slots``
    then has one entry and ``device`` is that slot's spec).  For a sharded
    placement ``cluster`` is what the kernel executes on: the serving
    cluster itself when the job spans every member, or — on a multi-node
    serving cluster — one node's single-tier
    :class:`~repro.gpusim.cluster.ClusterSpec` for a node-local shard
    (``node_index`` then names the node and ``device_slots`` are the
    node's *flat* serving slots).  ``device`` is ``None`` either way.
    """

    device_slots: Tuple[int, ...]
    cluster: Optional[ClusterLike]
    block_size: int
    threadlen: int
    device: Optional[DeviceSpec] = None
    node_index: Optional[int] = None

    @property
    def sharded(self) -> bool:
        """Whether the job shards across several devices."""
        return self.cluster is not None

    @property
    def crosses_nic(self) -> bool:
        """Whether this placement's execution touches the inter-node NIC.

        Only a sharded placement whose execution cluster is itself a
        multi-node spec reduces over the NIC; single-device and node-local
        placements stay inside one node by construction.
        """
        return isinstance(self.cluster, MultiNodeClusterSpec)

    @property
    def primary_device(self) -> DeviceSpec:
        """The placement's nominal device: the chosen device for a
        single-device placement, the cluster's first member otherwise
        (sharded kernel calls ignore it — the cluster wins inside
        ``resolve_cluster`` — but the decomposition engines and the tuner
        need one definite spec)."""
        if self.device is not None:
            return self.device
        return self.cluster.devices[0]


class Placer:
    """Capability-aware (and, over two tiers, node-aware) placement policy.

    With ``adaptive=True`` and an :class:`ObservationStore`, the static
    roofline ranking blends in what the feedback loop has actually
    observed: per-(kernel, tensor, device) execution estimates replace
    half of the roofline transfer term (:data:`ADAPTIVE_BLEND`), and
    per-slot / per-node congestion estimates penalise busy sites.  Every
    adaptive term is exactly zero (or absent) while the store is empty,
    so a cold-start adaptive placer ranks *bit-identically* to the static
    one — the fallback the regression gate relies on.
    """

    def __init__(
        self,
        cluster: ClusterLike,
        *,
        block_size: int = 128,
        threadlen: int = 8,
        num_streams: int = 2,
        adaptive: bool = False,
        observations: Optional[ObservationStore] = None,
    ) -> None:
        # A one-node "multi-node" cluster has no NIC tier to reason about;
        # collapse it so every decision (and every recorded placement)
        # uses the exact single-node code path.
        cluster = self.cluster = collapse_cluster(cluster)
        self.block_size = block_size
        self.threadlen = threadlen
        self.num_streams = max(1, int(num_streams))
        self.adaptive = bool(adaptive)
        self.observations = observations
        #: Rationale of the most recent single-device :meth:`place` call
        #: (chosen slot, its blended and static completion estimates, the
        #: congestion penalty applied) — the scheduler copies it into the
        #: dispatch event so adaptive decisions are auditable.  ``None``
        #: until a single-device placement is made, and for sharded ones.
        self.last_rationale: Optional[Dict[str, float]] = None
        #: Roofline throughput score per device slot (bytes/s) — the same
        #: scores whose normalisation weights the shard partitioner, so
        #: placement preference and shard sizing cannot diverge.
        self.scores: Tuple[float, ...] = cluster.capability_scores()

    def _feedback(self) -> Optional[ObservationStore]:
        """The store to consult, or ``None`` when placing statically."""
        if self.adaptive and self.observations is not None:
            return self.observations
        return None

    @property
    def multinode(self) -> bool:
        """Whether the serving cluster has an inter-node NIC tier."""
        return isinstance(self.cluster, MultiNodeClusterSpec)

    # ------------------------------------------------------------------ #
    def admit(self, job: Job, geometry: Optional[JobGeometry] = None) -> Optional[str]:
        """Admission control: a rejection reason, or ``None`` to admit.

        A job is admitted when at least one device can hold its resident
        dense operands next to the configured number of minimal streamed
        chunk buffers — the weakest execution mode the kernels support.
        (Sharding does not relax this bound: every shard stages the full
        factor matrices.)  Callers that already sized the job pass its
        ``geometry`` to avoid recomputing it.
        """
        if geometry is None:
            geometry = job_geometry(job, threadlen=self.threadlen)
        needed = geometry.resident_bytes + self._min_chunk_bytes(geometry)
        if needed > self.cluster.max_device_memory_bytes:
            return (
                f"resident operands need {needed:.0f} B but the largest device "
                f"holds {self.cluster.max_device_memory_bytes} B"
            )
        return None

    def _min_chunk_bytes(self, geometry: JobGeometry) -> float:
        """Bytes of the smallest viable streamed chunk buffers: one
        ``threadlen`` partition per in-flight stream."""
        return self.num_streams * self.threadlen * geometry.bytes_per_nnz

    def feasible_slots(
        self, geometry: JobGeometry, excluded: AbstractSet[int] = frozenset()
    ) -> Tuple[int, ...]:
        """Slots whose device can run the job at least in streamed mode.

        ``excluded`` removes slots from consideration — the scheduler
        passes the slots of failed nodes so nothing places on a dead
        device.
        """
        needed = geometry.resident_bytes + self._min_chunk_bytes(geometry)
        return tuple(
            slot
            for slot, device in enumerate(self.cluster.devices)
            if slot not in excluded and needed <= device.global_mem_bytes
        )

    def _node_local_placement(
        self,
        geometry: JobGeometry,
        compute_free_s: Sequence[float],
        now_s: float,
        excluded_nodes: AbstractSet[int] = frozenset(),
    ) -> Optional[Placement]:
        """The best single-node sharded placement, or ``None``.

        A node qualifies when it has devices to shard over, every member
        can hold the resident operands (next to minimal chunk buffers),
        and the node's aggregate memory fits the whole job one-shot — the
        encoding split across the members with each member's replica of
        the dense operands.  Among qualifying nodes the placer minimises
        the estimated completion time ``max(now, node's busiest compute
        slot) + traffic / node aggregate throughput`` — data locality
        first, load balance among the local options.  An adaptive placer
        additionally penalises each node by its observed collective NIC
        wait, steering node-local shards away from congested nodes (zero
        penalty while unobserved, so cold-start ranking is unchanged).
        """
        cluster = self.cluster
        feedback = self._feedback()
        needed = geometry.resident_bytes + self._min_chunk_bytes(geometry)
        best: Optional[Tuple[float, int]] = None
        traffic = geometry.footprint_bytes + geometry.output_bytes
        for index, node in enumerate(cluster.nodes):
            if index in excluded_nodes:
                continue
            if node.num_devices < 2:
                continue
            if needed > min(d.global_mem_bytes for d in node.devices):
                continue
            aggregate = (
                geometry.fcoo_bytes + node.num_devices * geometry.resident_bytes
            )
            if aggregate > sum(d.global_mem_bytes for d in node.devices):
                continue
            slots = cluster.node_slots(index)
            throughput = sum(self.scores[s] for s in slots)
            finish = (
                max([now_s] + [compute_free_s[s] for s in slots])
                + traffic / throughput
            )
            if feedback is not None:
                finish += feedback.node_congestion_s(index)
            if best is None or (finish, index) < best:
                best = (finish, index)
        if best is None:
            return None
        index = best[1]
        return Placement(
            device_slots=cluster.node_slots(index),
            cluster=cluster.nodes[index].as_cluster(),
            block_size=self.block_size,
            threadlen=self.threadlen,
            node_index=index,
        )

    def place(
        self,
        job: Job,
        geometry: JobGeometry,
        compute_free_s: Sequence[float],
        now_s: float,
        excluded_nodes: FrozenSet[int] = frozenset(),
        excluded_slots: FrozenSet[int] = frozenset(),
    ) -> Placement:
        """Choose the execution site of an admitted job.

        Single-device placements minimise the estimated completion time
        ``max(now, device free) + traffic / device roofline throughput``;
        jobs whose one-shot footprint exceeds every device shard — inside
        a single node when one can hold the whole job (the collectives
        then never cross the NIC), across the whole cluster otherwise
        (capability-weighted shards, per-device streamed fallback).

        ``excluded_nodes`` / ``excluded_slots`` remove failed nodes (and
        their flat device slots) from every option: node-local shards skip
        failed nodes, a cluster-spanning shard runs on the survivor
        topology, and single-device placements never pick a dead slot.
        """
        cluster = self.cluster
        self.last_rationale = None
        # Sharding stages the full dense operands on *every* member (only
        # the non-zero stream is split), so it is feasible only when the
        # resident bytes fit the smallest device.
        resident_everywhere = (
            geometry.resident_bytes + self._min_chunk_bytes(geometry)
            <= cluster.min_device_memory_bytes
        )
        if (
            cluster.num_devices > 1
            and geometry.footprint_bytes > cluster.max_device_memory_bytes
        ):
            if self.multinode:
                local = self._node_local_placement(
                    geometry, compute_free_s, now_s, excluded_nodes
                )
                if local is not None:
                    return local
            if resident_everywhere:
                exec_cluster: ClusterLike = cluster
                flat = list(range(cluster.num_devices))
                # Drop failed nodes highest-index first so the remaining
                # node indices stay valid while shrinking.
                for node in sorted(excluded_nodes, reverse=True):
                    if (
                        isinstance(exec_cluster, MultiNodeClusterSpec)
                        and node < exec_cluster.num_nodes
                        and exec_cluster.num_nodes > 1
                    ):
                        survivors = exec_cluster.surviving_slots(node)
                        flat = [flat[s] for s in survivors]
                        exec_cluster = exec_cluster.without_node(node)
                return Placement(
                    device_slots=tuple(flat),
                    cluster=exec_cluster,
                    block_size=self.block_size,
                    threadlen=self.threadlen,
                )
        slots = self.feasible_slots(geometry, excluded=excluded_slots)
        if not slots:  # admit() keeps this unreachable; defensive
            slots = tuple(
                s for s in range(cluster.num_devices) if s not in excluded_slots
            ) or tuple(range(cluster.num_devices))
        traffic = geometry.footprint_bytes + geometry.output_bytes
        feedback = self._feedback()

        def static_cost(s: int) -> float:
            return max(now_s, compute_free_s[s]) + traffic / self.scores[s]

        def blended_cost(s: int) -> float:
            # Static completion estimate, with the roofline transfer term
            # half-replaced by the observed exec time for this exact
            # (kernel, tensor, device) triple when one exists, plus the
            # slot's observed queueing penalty.  Both fall back to the
            # static term / zero while unobserved.
            if feedback is None:
                return static_cost(s)
            work = traffic / self.scores[s]
            observed = feedback.expected_exec_s(
                job.kind.value, job.tensor.content_key, cluster.devices[s].name
            )
            if observed is not None:
                work = (1.0 - ADAPTIVE_BLEND) * work + ADAPTIVE_BLEND * observed
            return (
                max(now_s, compute_free_s[s]) + work + feedback.congestion_s(s)
            )

        # Prefer devices the job fits on one-shot (a streamed fallback
        # re-ships the encoding every execution); among those, minimise the
        # estimated completion time.
        best = min(
            slots,
            key=lambda s: (
                geometry.footprint_bytes > cluster.devices[s].global_mem_bytes,
                blended_cost(s),
                s,
            ),
        )
        self.last_rationale = {
            "slot": float(best),
            "blended_score_s": blended_cost(best),
            "static_score_s": static_cost(best),
            "observed_congestion_s": (
                feedback.congestion_s(best) if feedback is not None else 0.0
            ),
        }
        return Placement(
            device_slots=(best,),
            cluster=None,
            block_size=self.block_size,
            threadlen=self.threadlen,
            device=cluster.devices[best],
        )
