"""Event-driven multi-tenant scheduler over the simulated cluster.

The scheduler turns a stream of :class:`~repro.serve.job.Job` s into a
deterministic simulated-time schedule:

* **admission** — on arrival a job is either shed (optional queue-depth
  bound: a full queue rejects newcomers instead of growing without bound),
  rejected by memory admission control *before* any preprocessing is spent
  (a job whose resident dense operands cannot fit next to two minimal
  streamed chunk buffers on any device — see
  :meth:`~repro.serve.placement.Placer.admit`), or preprocessed: its F-COO
  encoding (and, with ``autotune``, its tuned launch parameters) come from
  the shared :class:`~repro.serve.cache.PreprocCache`.  Preprocessing is
  host work done tenant-side and overlaps freely across jobs; a cache miss
  delays only that job's stage-readiness, never the cluster.

* **queueing** — admitted jobs wait in a priority queue
  (``policy="priority"``: lower priority class first, FIFO within a class;
  ``policy="fifo"``: strict arrival order; ``policy="deadline"``:
  earliest-deadline-first over the jobs' :class:`~repro.context.SLO`
  deadlines, then priority class — on a workload without SLOs every
  deadline is ``inf`` and the policy degenerates to ``"priority"``
  bit for bit).

* **preemption** — under ``policy="deadline"``, a dispatched job that
  would miss its deadline may preempt one committed batch job
  (preemptible, no deadline of its own) sharing its device slots: the
  victim's not-yet-consumed timeline bookings are *released* back to the
  resource pool (:meth:`~repro.gpusim.timeline.Timeline.release`), a
  streamed victim's in-flight compute booking is *truncated* at the next
  chunk boundary (:meth:`~repro.gpusim.timeline.Timeline.truncate` — the
  streamed pipeline's natural checkpoint), and the victim re-queues with
  a resume ledger: its already-computed output, its completed-chunk
  count, and the remaining pipeline re-booked later under
  ``resume:jobN`` labels (plus a factor re-stage).  Outputs are
  bit-identical with or without preemption — the numeric result was
  computed once at dispatch and only *time* is replayed.

* **autoscaling** — an optional :class:`~repro.serve.autoscale.Autoscaler`
  grows and shrinks the active slot pool against queue depth and engine
  idleness; parked slots are excluded from placement exactly like failed
  nodes.

* **dispatch** — a job is dispatched when a copy engine frees *and* the job
  is stage-ready, so its staging overlaps the predecessor's compute.
  Arrivals earlier than the dispatch instant always enter the queue first,
  so a late high-priority job overtakes queued batch work; a job still
  preprocessing never blocks stage-ready ones.

* **batching** — compatible stage-ready jobs (same tensor content,
  operation, mode and rank — i.e. the same F-COO encoding and launch
  geometry) ride one dispatch: the encoding is staged once for the whole
  batch and the members execute back to back on the batch's device.
  Batching changes *when* work runs, never *what* it computes.

All time bookkeeping lives on one shared
:class:`~repro.gpusim.timeline.Timeline`: every device contributes a copy
engine and a compute engine resource (the PR 1 stream-pipeline pair, now
first-class), and a sharded job's partial-output collective books the
execution cluster's intra-node link / per-node NIC resources through
:meth:`~repro.gpusim.cluster.ClusterSpec.book_collective`.  On idle
resources the booked schedule reproduces the pre-refactor closed forms bit
for bit; when concurrent cross-node jobs share a NIC, the later collective
queues behind the earlier one and the job finishes later — shared-NIC
congestion, falling out of the resource model instead of being priced as
idle.  The timeline also powers the per-resource utilisation of
:class:`~repro.serve.engine.ServingReport` and the ``--trace`` Chrome
trace export.

Everything is simulated time derived from the deterministic cost models —
two runs of the same workload produce identical schedules, which is what
lets ``tests/test_serving.py`` assert bit-identical outputs and the CI
regression gate track throughput/latency without timer noise.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.formats.fcoo import FCOOTensor
from repro.gpusim.cluster import (
    ClusterLike,
    MultiNodeClusterSpec,
    NodeFailure,
    collapse_cluster,
)
from repro.gpusim.device import DeviceSpec
from repro.gpusim.timeline import (
    NIC_POLICIES,
    Booking,
    CollectiveRequest,
    NicDiscipline,
    Resource,
    Span,
    Timeline,
    device_compute_key,
    device_copy_key,
    make_nic_discipline,
    schedule_chunks,
)
from repro.gpusim.timing import OutOfDeviceMemory
from repro.obs.attribution import Attribution, attribute
from repro.obs.events import Event, EventLog
from repro.obs.metrics import MetricsRegistry
from repro.serve.autoscale import Autoscaler, AutoscalerSpec, ScaleEvent
from repro.serve.cache import PreprocCache
from repro.serve.execute import ExecutionOutcome, execute_job
from repro.serve.feedback import ObservationStore
from repro.serve.job import Job, JobKind, JobResult, JobStatus
from repro.serve.placement import JobGeometry, Placement, Placer, job_geometry

__all__ = [
    "DeviceTimeline",
    "PreemptionRecord",
    "ScheduleOutcome",
    "Scheduler",
]


@dataclass
class DeviceTimeline:
    """Per-device serving summary — a *view* over the shared timeline.

    .. deprecated::
        The scheduler no longer accumulates per-device horizons here; the
        shared :class:`~repro.gpusim.timeline.Timeline` (see
        :attr:`ScheduleOutcome.timeline`) is the source of truth, and one
        :class:`DeviceTimeline` per device is derived from it after the
        run for backward compatibility.  ``copy_free_s`` /
        ``compute_free_s`` are the final horizons of the device's copy and
        compute engine resources, and ``busy_s`` is the compute engine's
        accumulated busy time (the sum of its busy-marked bookings — what
        the utilisation report divides by the makespan).
    """

    slot: int
    device: DeviceSpec
    copy_free_s: float = 0.0
    compute_free_s: float = 0.0
    busy_s: float = 0.0
    jobs: int = 0


@dataclass(frozen=True)
class PreemptionRecord:
    """One preemption: who was cut, by whom, where, and what it freed.

    ``time_s`` is the *cut point* — the chunk boundary a streamed victim
    was checkpointed at (or the preemption instant for a victim caught
    before compute).  ``released_s`` is the busy time given back to the
    resource pool, and ``resume_stage_s`` the factor re-staging the
    victim pays when it resumes.
    """

    job_id: int
    preempted_by: int
    time_s: float
    completed_chunks: int
    total_chunks: int
    released_s: float
    resume_stage_s: float


@dataclass(frozen=True)
class _ResumeState:
    """A preempted streamed job's resume ledger.

    The output was already computed at the original dispatch (execution
    is pure in ``(job, placement)``), so resuming re-books only *time*:
    the remaining chunks' pipeline on the original placement, plus a
    factor re-stage.
    """

    placement: Placement
    outcome: ExecutionOutcome
    completed_chunks: int
    total_chunks: int
    remaining_exec_s: float
    resume_stage_s: float


@dataclass(eq=False)
class _ReadyEntry:
    """One admitted, preprocessed job waiting in the queue."""

    job: Job
    geometry: JobGeometry
    encoding: Optional[FCOOTensor]
    ready_s: float  # earliest staging start: preprocessing done AND the
    #                 encodings it reuses finished building
    preproc_s: float
    encode_hit: bool
    tuner_hit: Optional[bool]
    launch: Optional[Tuple[int, int]]  # tuned (BLOCK_SIZE, threadlen)
    #: Preemption bookkeeping: times preempted so far, the last cut point,
    #: and — for a checkpointed streamed victim — the resume ledger
    #: (``None`` re-dispatches from scratch).
    preemptions: int = 0
    preempted_from_s: float = 0.0
    resume: Optional[_ResumeState] = None
    #: Whether this entry is a post-failure re-admission — its re-staging
    #: is attributed to the ``recovery`` span phase rather than ``stage``.
    requeued: bool = False


@dataclass
class _CommittedJob:
    """The booking ledger of one committed (dispatched) job.

    What preemption needs: every timeline booking the commit made, in
    booking order, plus the stage/exec bookings singled out so the
    preemptor can tell "caught mid-staging" from "caught mid-compute".
    """

    entry: _ReadyEntry
    placement: Placement
    outcome: ExecutionOutcome
    bookings: List[Booking]
    stage_booking: Optional[Booking]  # single-lane stage (non-sharded)
    exec_booking: Optional[Booking]  # single-lane compute (non-sharded)
    exec_start_s: float
    finish_s: float
    batch_id: Optional[int]
    resumed: bool = False
    # The provisional log events this commitment emitted (timestamps lie in
    # the committed future).  Revoking the commitment — trial re-book,
    # preemption, chaos teardown — must retract the stale ones.
    start_event: Optional[Event] = None  # "dispatch" or "resume"
    complete_event: Optional[Event] = None


@dataclass
class _DisplacedCollective:
    """A queued collective pulled off the timeline by the NIC discipline.

    The incumbent's gang (and the barrier reservations pinned to it) have
    been released; after the overtaking job books its own collective, the
    incumbent is re-booked from this record — same label, span and
    duration, same ``queued_from_s`` (its compute drain instant), so the
    extra delay lands in its ``nic_wait_s`` attribution.
    """

    committed: _CommittedJob
    label: str
    span: Optional[Span]
    duration_s: float
    queued_from_s: float


@dataclass
class _RunState:
    """The shared timeline of one scheduler run plus its device resources."""

    timeline: Timeline
    copy: List[Resource]
    compute: List[Resource]
    jobs: List[int]
    #: Flat slots / node indices currently down (chaos); new placements
    #: exclude them until the node's recovery event (if any) fires.
    failed_slots: set = field(default_factory=set)
    failed_nodes: set = field(default_factory=set)
    #: Slots parked by the autoscaler (empty without one).
    parked_slots: set = field(default_factory=set)
    #: Per-job booking ledgers of committed runs (keyed by job id) — what
    #: the deadline policy preempts from.
    committed: Dict[int, _CommittedJob] = field(default_factory=dict)
    #: Preemptions performed, in firing order.
    preemption_records: List[PreemptionRecord] = field(default_factory=list)
    #: Telemetry sinks of the run (both optional; observation-only).
    metrics: Optional[MetricsRegistry] = None
    events: Optional[EventLog] = None
    #: The run's NIC queue discipline (``None`` under the default FIFO,
    #: which keeps the legacy booking path byte-identical).
    discipline: Optional[NicDiscipline] = None


@dataclass
class ScheduleOutcome:
    """Everything one scheduler run produced."""

    results: List[JobResult]
    timelines: List[DeviceTimeline]
    #: The shared simulated-time timeline of the run: per-device copy and
    #: compute engines plus the link/NIC resources the sharded jobs'
    #: collectives booked.  Export with ``timeline.write_chrome_trace``.
    timeline: Optional[Timeline] = field(default=None, repr=False)
    #: Chaos events that fired during the run, in firing order.
    failures: List[NodeFailure] = field(default_factory=list)
    #: Total job re-queues: every time a node loss tore an in-flight job
    #: off its placement and sent it back to the queue.
    requeued_jobs: int = 0
    #: Preemptions the deadline policy performed, in firing order.
    preemptions: List[PreemptionRecord] = field(default_factory=list)
    #: Autoscaler actions, in firing order (empty without an autoscaler).
    scale_events: List[ScaleEvent] = field(default_factory=list)
    #: The span-folded cost breakdown of the run's timeline (per-job and
    #: per-resource attributed seconds; see :mod:`repro.obs.attribution`).
    attribution: Optional[Attribution] = field(default=None, repr=False)

    @property
    def makespan_s(self) -> float:
        """Completion time of the last job (0 for an all-rejected run)."""
        return max((r.finish_s for r in self.results if r.completed), default=0.0)

    @property
    def recoveries(self) -> List[NodeFailure]:
        """Fired chaos events whose node came back (the
        :class:`~repro.context.TimedResult` recovery ledger)."""
        return [e for e in self.failures if e.recover_s is not None]


class Scheduler:
    """Deterministic simulated-time scheduler for one serving cluster.

    Parameters
    ----------
    cluster:
        The serving cluster.
    cache:
        Shared preprocessing cache (encodings + tuned launch configs).
    policy:
        ``"priority"`` (default), ``"fifo"`` or ``"deadline"``
        (earliest-deadline-first with chunk-boundary preemption; see the
        module docstring).
    max_batch:
        Largest batch of compatible jobs per dispatch (1 disables batching).
    max_queue_depth:
        Queue bound for admission-time load shedding (``None``: unbounded).
    block_size / threadlen:
        Default launch parameters (overridden per job by the tuner cache
        when ``autotune`` is on).
    autotune:
        Look up tuned ``(BLOCK_SIZE, threadlen)`` per kernel-job shape in
        the cache (sweeping on a miss, reusing on a hit); tuning runs on
        the cluster's most capable device.
    num_streams:
        Stream count for the kernels' out-of-core fallback.
    autoscale:
        Optional :class:`~repro.serve.autoscale.AutoscalerSpec`; ``None``
        (the default) keeps the legacy fixed pool byte-identical.
    adaptive:
        Feed the :class:`~repro.serve.feedback.ObservationStore` back into
        placement (congestion-aware blended scores) and the tuner cache
        (observed-time re-ranking).  With no observations recorded yet the
        adaptive paths fall back *exactly* to the static ones, so a cold
        adaptive run is event-for-event identical to a static run.
    observations:
        The cross-run :class:`~repro.serve.feedback.ObservationStore`.
        When set, every run folds its completed jobs' attributed costs in
        (recording is independent of ``adaptive``, which only *consumes*).
    nic_policy:
        NIC queue discipline for queued collectives (one of
        :data:`~repro.gpusim.timeline.NIC_POLICIES`).  ``"fifo"`` (the
        default) keeps arrival order and the legacy booking path;
        ``"fair"`` / ``"priority"`` may let a queued collective overtake
        another *queued* (never in-flight) one, when the swap is feasible
        without disturbing any third job's bookings.
    """

    def __init__(
        self,
        cluster: ClusterLike,
        cache: Optional[PreprocCache] = None,
        *,
        policy: str = "priority",
        max_batch: int = 4,
        max_queue_depth: Optional[int] = None,
        block_size: int = 128,
        threadlen: int = 8,
        autotune: bool = False,
        num_streams: int = 2,
        autoscale: Optional[AutoscalerSpec] = None,
        adaptive: bool = False,
        observations: Optional[ObservationStore] = None,
        nic_policy: str = "fifo",
    ) -> None:
        if policy not in ("priority", "fifo", "deadline"):
            raise ValueError(
                f"policy must be 'priority', 'fifo' or 'deadline', got {policy!r}"
            )
        if max_batch < 1:
            raise ValueError(f"max_batch must be at least 1, got {max_batch}")
        if max_queue_depth is not None and max_queue_depth < 1:
            raise ValueError(
                f"max_queue_depth must be at least 1, got {max_queue_depth}"
            )
        if nic_policy not in NIC_POLICIES:
            raise ValueError(
                f"nic_policy must be one of {NIC_POLICIES}, got {nic_policy!r}"
            )
        # Collapse a one-node multi-node spec (mirroring the placer), so
        # timelines, placements and reports speak the same cluster.
        self.cluster = cluster = collapse_cluster(cluster)
        self.cache = cache if cache is not None else PreprocCache()
        self.policy = policy
        self.max_batch = max_batch
        self.max_queue_depth = max_queue_depth
        self.autotune = autotune
        self.num_streams = num_streams
        self.autoscale = autoscale
        self.adaptive = adaptive
        self.observations = observations
        self.nic_policy = nic_policy
        self.placer = Placer(
            cluster,
            block_size=block_size,
            threadlen=threadlen,
            num_streams=num_streams,
            adaptive=adaptive,
            observations=observations,
        )
        weights = cluster.capability_weights()
        #: Where tuner sweeps run: the most capable member (ties: lowest slot).
        self._tuner_device = cluster.devices[
            max(range(cluster.num_devices), key=lambda s: (weights[s], -s))
        ]

    # ------------------------------------------------------------------ #
    def _queue_key(self, job: Job) -> Tuple:
        if self.policy == "deadline":
            # EDF, then the priority order.  Without SLOs every deadline
            # is inf and this degenerates to the "priority" key exactly.
            return (job.deadline_s, job.priority, job.arrival_s, job.job_id)
        if self.policy == "priority":
            return (job.priority, job.arrival_s, job.job_id)
        return (job.arrival_s, job.job_id)

    def _preprocess(
        self,
        job: Job,
        geometry: JobGeometry,
        availability: Dict[Tuple, float],
    ) -> _ReadyEntry:
        """Run one admitted job's host preprocessing through the cache.

        ``availability`` maps a cache entry's key (encoding or tuner
        config) to the simulated time its build completes: a cache *hit*
        is free but cannot make the job stage-ready before the entry it
        reuses physically exists, so a job arriving just behind the miss
        that builds it waits for that build, not zero.
        """
        encoding = None
        launch = None
        tuner_hit: Optional[bool] = None
        ready_s = job.arrival_s
        if job.kind.is_kernel:
            key = (job.tensor.content_key, job.operation.value, job.mode)
            encoding, encode_hit, preproc_s = self.cache.encoding(
                job.tensor, job.operation, job.mode
            )
            if encode_hit:
                ready_s = max(ready_s, availability.get(key, job.arrival_s))
            else:
                availability[key] = job.arrival_s + preproc_s
                ready_s = availability[key]
            if self.autotune:
                launch, tuner_hit, tune_s = self.cache.tuner_config(
                    job.tensor,
                    job.operation,
                    job.mode,
                    job.rank,
                    device=self._tuner_device,
                )
                preproc_s += tune_s
                tuner_key = (
                    "tuner",
                    job.tensor.content_key,
                    job.operation.value,
                    job.mode,
                    job.rank,
                )
                if tuner_hit:
                    ready_s = max(ready_s, availability.get(tuner_key, job.arrival_s))
                else:
                    # The sweep runs after this job's encode lands.
                    ready_s += tune_s
                    availability[tuner_key] = ready_s
                if tuner_hit and self.adaptive and self.observations is not None:
                    # Feedback half of the tuner: a cached config whose
                    # observed execution time drifted past the tolerance
                    # is re-ranked against the stored prediction surface.
                    # Pure cache bookkeeping — no extra host seconds, no
                    # readiness change.
                    observed = self.observations.expected_exec_any(
                        job.kind.value, job.tensor.content_key
                    )
                    if observed is not None:
                        launch, _ = self.cache.rerank_tuner_config(
                            job.tensor,
                            job.operation,
                            job.mode,
                            job.rank,
                            device=self._tuner_device,
                            observed_s=observed,
                        )
        else:
            # Prime the cache for every mode the decomposition will sweep,
            # so the driver's per-mode lookups hit; the misses are this
            # job's preprocessing bill.
            encode_hit, preproc_s = True, 0.0
            for mode in range(job.tensor.order):
                key = (job.tensor.content_key, job.operation.value, mode)
                _, hit, cost_s = self.cache.encoding(job.tensor, job.operation, mode)
                encode_hit = encode_hit and hit
                preproc_s += cost_s
                if hit:
                    ready_s = max(ready_s, availability.get(key, job.arrival_s))
                else:
                    availability[key] = job.arrival_s + preproc_s
                    ready_s = max(ready_s, availability[key])
        return _ReadyEntry(
            job=job,
            geometry=geometry,
            encoding=encoding,
            ready_s=ready_s,
            preproc_s=preproc_s,
            encode_hit=encode_hit,
            tuner_hit=tuner_hit,
            launch=launch,
        )

    def _admit(
        self,
        pending: deque,
        ready: List[Tuple[Tuple, _ReadyEntry]],
        clock: float,
        results: Dict[int, JobResult],
        availability: Dict[Tuple, float],
        events: Optional[EventLog] = None,
    ) -> None:
        """Process arrivals up to ``clock``: shed, reject or preprocess."""
        while pending and pending[0].arrival_s <= clock:
            job = pending.popleft()
            if self.max_queue_depth is not None and len(ready) >= self.max_queue_depth:
                results[job.job_id] = self._rejected(
                    job,
                    f"queue full ({self.max_queue_depth} jobs waiting) at arrival",
                )
                if events is not None:
                    events.emit(
                        "reject",
                        time_s=job.arrival_s,
                        job_id=f"job{job.job_id}",
                        reason="queue_full",
                    )
                continue
            geometry = job_geometry(job, threadlen=self.placer.threadlen)
            reason = self.placer.admit(job, geometry)
            if reason is not None:
                results[job.job_id] = self._rejected(job, reason)
                if events is not None:
                    events.emit(
                        "reject",
                        time_s=job.arrival_s,
                        job_id=f"job{job.job_id}",
                        reason="admission_control",
                    )
                continue
            entry = self._preprocess(job, geometry, availability)
            ready.append((self._queue_key(job), entry))
            if events is not None:
                events.emit(
                    "admit",
                    time_s=job.arrival_s,
                    job_id=f"job{job.job_id}",
                    job_kind=job.kind.value,
                    tenant=job.tenant,
                    priority=job.priority,
                    ready_s=entry.ready_s,
                )

    @staticmethod
    def _rejected(job: Job, reason: str) -> JobResult:
        return JobResult(
            job=job,
            status=JobStatus.REJECTED,
            reject_reason=reason,
            stage_start_s=job.arrival_s,
            exec_start_s=job.arrival_s,
            finish_s=job.arrival_s,
        )

    def _pop_best_ready(
        self, ready: List[Tuple[Tuple, _ReadyEntry]], t: float
    ) -> Optional[_ReadyEntry]:
        """Pop the best queued job that is stage-ready at ``t`` (work
        conservation: a job still preprocessing never blocks ready ones)."""
        candidates = [entry for entry in ready if entry[1].ready_s <= t]
        if not candidates:
            return None
        best = min(candidates, key=lambda entry: entry[0])[1]
        ready[:] = [e for e in ready if e[1].job.job_id != best.job.job_id]
        return best

    def _pop_batch_mates(
        self, ready: List[Tuple[Tuple, _ReadyEntry]], leader: Job, t: float
    ) -> List[_ReadyEntry]:
        """Extract up to ``max_batch - 1`` stage-ready jobs batchable with
        ``leader``."""
        if self.max_batch <= 1 or not leader.kind.is_kernel:
            return []
        matching = sorted(
            (
                entry
                for entry in ready
                # The mate must itself be a kernel job: a decomposition on
                # the same tensor shares the leader's batch_key (CP-ALS
                # preprocesses the SpMTTKRP encoding) but is not one kernel
                # invocation and must keep its own placement.
                if entry[1].job.kind.is_kernel
                and entry[1].job.batch_key == leader.batch_key
                and entry[1].ready_s <= t
            ),
            key=lambda entry: entry[0],
        )
        take = matching[: self.max_batch - 1]
        if take:
            taken = {entry[1].job.job_id for entry in take}
            ready[:] = [entry for entry in ready if entry[1].job.job_id not in taken]
        return [entry[1] for entry in take]

    # ------------------------------------------------------------------ #
    def _node_slots(self, node_index: int) -> Tuple[int, ...]:
        """Flat serving-cluster slots a chaos event on ``node_index`` kills.

        On a multi-node cluster the event takes out a whole node; on a
        flat cluster the "node" index is read as a single device slot.
        Out-of-range indices map to no slots — the event is inapplicable
        and ignored, mirroring the decomposition drivers.
        """
        cluster = self.cluster
        if isinstance(cluster, MultiNodeClusterSpec):
            if 0 <= node_index < cluster.num_nodes:
                return cluster.node_slots(node_index)
            return ()
        if 0 <= node_index < cluster.num_devices:
            return (node_index,)
        return ()

    def run(
        self,
        jobs: Sequence[Job],
        chaos: Optional[Sequence[NodeFailure]] = None,
        *,
        metrics: Optional[MetricsRegistry] = None,
        events: Optional[EventLog] = None,
    ) -> ScheduleOutcome:
        """Schedule and execute ``jobs``; returns the full ledger.

        ``chaos`` injects seeded node-loss events
        (:class:`~repro.gpusim.cluster.NodeFailure`, e.g. from
        :func:`~repro.serve.workload.generate_chaos`).  When an event
        fires, the node's slots stop accepting new placements, and every
        job whose committed run overlaps the failure instant on a dead
        slot (``finish_s > time_s``) is torn down: its result is dropped,
        its bookings stay on the timeline as wasted work, and the job is
        re-queued (re-preprocessing hits the warm cache) to be re-admitted
        on surviving slots.  An event's ``recover_s`` returns the node's
        slots to the placement pool at that time.  Numeric outputs are
        unaffected — a re-queued job recomputes the same bits on the
        survivor placement — so chaos perturbs only the schedule.

        ``metrics`` and ``events`` are the run's optional telemetry sinks
        (see :mod:`repro.obs`): with ``metrics``, every layer a job
        touches publishes into the registry (kernels included — it is
        threaded through :func:`~repro.serve.execute.execute_job` onto
        the :class:`~repro.context.ExecContext`); with ``events``, the
        event loop appends one structured record per scheduling decision.
        Both are observation-only: bookings and results are bit-identical
        with or without them.
        """
        ids = [job.job_id for job in jobs]
        if len(set(ids)) != len(ids):
            raise ValueError("job ids must be unique within one scheduler run")
        timeline = Timeline()
        state = _RunState(
            timeline=timeline,
            copy=[
                timeline.resource(device_copy_key(i), category="copy")
                for i in range(self.cluster.num_devices)
            ],
            compute=[
                timeline.resource(device_compute_key(i), category="compute")
                for i in range(self.cluster.num_devices)
            ],
            jobs=[0] * self.cluster.num_devices,
            metrics=metrics,
            events=events,
            # FIFO keeps the legacy path: no discipline object at all, so
            # the collective booking arithmetic is untouched line for line.
            discipline=(
                make_nic_discipline(self.nic_policy)
                if self.nic_policy != "fifo"
                else None
            ),
        )
        pending = deque(sorted(jobs, key=lambda j: (j.arrival_s, j.job_id)))
        ready: List[Tuple[Tuple, _ReadyEntry]] = []
        results: Dict[int, JobResult] = {}
        #: encoding key -> simulated time its host build completes, for
        #: this run only (a fresh run restarts the simulated clock).
        availability: Dict[Tuple, float] = {}
        clock = timeline.clock
        batch_seq = 0
        chaos_events = deque(sorted(chaos or (), key=lambda e: (e.time_s, e.node_index)))
        #: (recover_s, node_index, slots) for nodes that will come back.
        pending_recovery: List[Tuple[float, int, Tuple[int, ...]]] = []
        requeue_counts: Dict[int, int] = {}
        fired: List[NodeFailure] = []

        def fire_due(now: float) -> None:
            """Apply every chaos/recovery event due at ``now``.

            Recoveries apply first so a node failing and recovering at the
            same instant nets out failed (the failure is the later event).
            A failure tears down every committed job overlapping it on a
            dead slot and re-queues it; the victim's bookings stay on the
            timeline as wasted work.
            """
            pending_recovery.sort()
            while pending_recovery and pending_recovery[0][0] <= now:
                recover_at, node, slots = pending_recovery.pop(0)
                state.failed_nodes.discard(node)
                state.failed_slots.difference_update(slots)
                if events is not None:
                    events.emit(
                        "node_recovery",
                        time_s=recover_at,
                        node=node,
                        slots=list(slots),
                    )
            while chaos_events and chaos_events[0].time_s <= now:
                event = chaos_events.popleft()
                slots = self._node_slots(event.node_index)
                if not slots:
                    continue  # inapplicable event (node index out of range)
                fired.append(event)
                state.failed_nodes.add(event.node_index)
                state.failed_slots.update(slots)
                if event.recover_s is not None:
                    pending_recovery.append((event.recover_s, event.node_index, slots))
                dead = set(slots)
                victims = [
                    r
                    for r in results.values()
                    if r.status is JobStatus.COMPLETED
                    and r.finish_s > event.time_s
                    and dead & set(r.device_slots)
                ]
                if events is not None:
                    events.emit(
                        "node_failure",
                        time_s=event.time_s,
                        node=event.node_index,
                        slots=list(slots),
                        victims=len(victims),
                    )
                for victim in victims:
                    job = victim.job
                    requeue_counts[job.job_id] = requeue_counts.get(job.job_id, 0) + 1
                    del results[job.job_id]
                    ledger = state.committed.pop(job.job_id, None)
                    if ledger is not None:
                        # A victim that started before the failure ran real
                        # (wasted) work; one committed for a post-failure
                        # start never did — retract its phantom dispatch.
                        self._revoke_events(
                            state,
                            ledger,
                            work_started=victim.stage_start_s < event.time_s,
                        )
                    geometry = job_geometry(job, threadlen=self.placer.threadlen)
                    entry = self._preprocess(job, geometry, availability)
                    # Re-admission cannot predate the failure that caused it.
                    entry.ready_s = max(entry.ready_s, event.time_s)
                    entry.requeued = True
                    ready.append((self._queue_key(job), entry))
                    if events is not None:
                        events.emit(
                            "requeue",
                            time_s=event.time_s,
                            job_id=f"job{job.job_id}",
                            node=event.node_index,
                        )

        scaler = (
            Autoscaler(self.autoscale, self.placer.scores)
            if self.autoscale is not None
            else None
        )
        if scaler is not None:
            state.parked_slots = set(scaler.parked)

        scale_seen = 0
        while pending or ready or chaos_events:
            fire_due(clock.now_s)
            self._admit(pending, ready, clock.now_s, results, availability, events)
            if scaler is not None:
                scaler.step(
                    clock.now_s,
                    len(ready),
                    [lane.free_s for lane in state.copy],
                    [lane.free_s for lane in state.compute],
                )
                state.parked_slots = set(scaler.parked)
                if events is not None:
                    for scale in scaler.events[scale_seen:]:
                        events.emit(
                            "scale",
                            time_s=scale.time_s,
                            action=scale.action,
                            slot=scale.slot,
                            active_devices=scale.active_devices,
                        )
                scale_seen = len(scaler.events)
            upcoming = [
                t
                for t in (
                    pending[0].arrival_s if pending else None,
                    chaos_events[0].time_s if chaos_events else None,
                    min(pending_recovery)[0] if pending_recovery else None,
                )
                if t is not None
            ]
            if not ready:
                if not upcoming:
                    break
                clock.advance_to(max(clock.now_s, min(upcoming)))
                continue
            # The next staging can begin when some active copy engine frees...
            active_copy = [
                lane
                for slot, lane in enumerate(state.copy)
                if slot not in state.parked_slots
            ] or state.copy
            t = max(clock.now_s, min(lane.free_s for lane in active_copy))
            # ...but arrivals and chaos/recovery events before that instant
            # reshape the queue (or the placement pool) first.
            blocker = min(upcoming, default=math.inf)
            if blocker <= t:
                clock.advance_to(max(clock.now_s, blocker))
                continue
            entry = self._pop_best_ready(ready, t)
            if entry is None:
                # Everyone queued is still preprocessing; advance to the
                # earliest readiness (or the next arrival/event).
                next_ready = min(e[1].ready_s for e in ready)
                clock.advance_to(min(next_ready, blocker))
                continue
            clock.advance_to(t)
            batch_seq = self._dispatch(entry, t, ready, results, state, batch_seq)

        ordered = [
            replace(results[job_id], requeues=requeue_counts[job_id])
            if job_id in requeue_counts
            else results[job_id]
            for job_id in sorted(results)
        ]
        # Fold the span-tagged trace into the per-job cost breakdown and
        # backfill the attributed fields on every completed result.  The
        # fold reads the timeline; it never writes, so the schedule is
        # bit-identical with or without telemetry consumers.
        attribution = attribute(timeline)
        for result in ordered:
            cost = attribution.jobs.get(f"job{result.job.job_id}")
            if result.completed and cost is not None:
                result.nic_wait_s = cost.nic_wait_s
                result.compute_s = cost.compute_s
                result.preemption_overhead_s = cost.preemption_overhead_s
        if self.observations is not None:
            # Close the loop: fold every completed job's attributed cost
            # and per-resource waits into the cross-run observation store.
            # Recording happens regardless of ``adaptive`` (which only
            # gates consumption), so a static run still warms the store.
            device_node = getattr(self.cluster, "device_node", None)
            for result in ordered:
                if not result.completed:
                    continue
                slots = result.device_slots
                self.observations.record(
                    kind=result.job.kind.value,
                    content_key=result.job.tensor.content_key,
                    device_names=[self.cluster.devices[s].name for s in slots],
                    slots=slots,
                    nodes=(
                        sorted({device_node[s] for s in slots})
                        if device_node is not None
                        else [0]
                    ),
                    exec_s=result.exec_s,
                    device_wait_s=max(
                        0.0,
                        result.exec_start_s
                        - (result.stage_start_s + result.stage_s),
                    ),
                    nic_wait_s=result.nic_wait_s,
                )
        if metrics is not None:
            attribution.publish(metrics)
            queue_wait = metrics.histogram(
                "repro_job_queue_wait_seconds",
                "Simulated seconds completed jobs waited between arrival "
                "and staging.",
            )
            for result in ordered:
                if result.completed:
                    queue_wait.observe(result.queue_wait_s)
            gangs = {
                e.label
                for e in timeline.events
                if e.busy
                and e.category in ("link", "nic")
                and e.span is not None
                and e.span.phase == "collective"
            }
            metrics.counter(
                "repro_nic_discipline_dispatch_total",
                "Collective gang dispatches through the NIC queue, by "
                "discipline.",
                ("policy",),
            ).inc(float(len(gangs)), policy=self.nic_policy)
        timelines = [
            DeviceTimeline(
                slot=i,
                device=d,
                copy_free_s=state.copy[i].free_s,
                compute_free_s=state.compute[i].free_s,
                busy_s=state.compute[i].busy_s,
                jobs=state.jobs[i],
            )
            for i, d in enumerate(self.cluster.devices)
        ]
        return ScheduleOutcome(
            results=ordered,
            timelines=timelines,
            timeline=timeline,
            failures=fired,
            requeued_jobs=sum(requeue_counts.values()),
            preemptions=list(state.preemption_records),
            scale_events=list(scaler.events) if scaler is not None else [],
            attribution=attribution,
        )

    # ------------------------------------------------------------------ #
    def _dispatch(
        self,
        entry: _ReadyEntry,
        t0: float,
        ready: List[Tuple[Tuple, _ReadyEntry]],
        results: Dict[int, JobResult],
        state: _RunState,
        batch_seq: int,
    ) -> int:
        job = entry.job
        geometry = entry.geometry
        if entry.resume is not None and self._dispatch_resume(
            entry, t0, results, state
        ):
            return batch_seq
        placement = self.placer.place(
            job,
            geometry,
            [lane.free_s for lane in state.compute],
            t0,
            excluded_nodes=frozenset(state.failed_nodes),
            excluded_slots=frozenset(state.failed_slots | state.parked_slots),
        )
        if entry.launch is not None:
            placement = replace(
                placement, block_size=entry.launch[0], threadlen=entry.launch[1]
            )

        mates = [] if placement.sharded else self._pop_batch_mates(ready, job, t0)
        batch_id: Optional[int] = None
        if mates:
            batch_id = batch_seq
            batch_seq += 1

        try:
            outcome = execute_job(
                job,
                placement,
                encoding=entry.encoding,
                cache=self.cache,
                num_streams=self.num_streams,
                metrics=state.metrics,
                nic_policy=self.nic_policy,
            )
        except OutOfDeviceMemory as exc:
            # The admission estimate is first-order (autotune can raise the
            # threadlen after sizing, and geometry is host arithmetic); a
            # kernel-level capacity failure rejects this one job instead of
            # aborting the whole serving run.
            results[job.job_id] = self._rejected(
                job, f"rejected at execution: {exc}"
            )
            if state.events is not None:
                state.events.emit(
                    "reject",
                    time_s=t0,
                    job_id=f"job{job.job_id}",
                    reason="out_of_device_memory",
                )
            for mate in mates:
                ready.append((self._queue_key(mate.job), mate))
            return batch_seq
        result = self._commit(
            entry,
            t0,
            placement,
            geometry,
            outcome,
            state,
            batch_id=batch_id,
            batch_leader=bool(mates),
            encoding_staged=True,
            results=results,
        )
        if (
            self.policy == "deadline"
            and math.isfinite(job.deadline_s)
            and result.finish_s > job.deadline_s
        ):
            # The deadline job would miss as booked: try to free its lanes
            # by preempting a committed batch job, then re-book.
            result = self._repreempt_and_recommit(
                entry,
                t0,
                placement,
                geometry,
                outcome,
                state,
                ready,
                results,
                result,
                batch_id=batch_id,
                batch_leader=bool(mates),
            )
        results[job.job_id] = result

        for mate in mates:
            # The batch shares the leader's encoding (already staged) and
            # device; only the mate's dense operands still move.
            mate_outcome = execute_job(
                mate.job,
                placement,
                encoding=entry.encoding,
                cache=self.cache,
                num_streams=self.num_streams,
                metrics=state.metrics,
                nic_policy=self.nic_policy,
            )
            results[mate.job.job_id] = self._commit(
                mate,
                t0,
                placement,
                geometry,
                mate_outcome,
                state,
                batch_id=batch_id,
                batch_leader=False,
                encoding_staged=False,
                results=results,
            )
        return batch_seq

    # ------------------------------------------------------------------ #
    def _staging_seconds(
        self,
        job: Job,
        placement: Placement,
        geometry: JobGeometry,
        outcome: ExecutionOutcome,
        *,
        encoding_staged: bool,
    ) -> float:
        """Host-to-device staging time of one dispatched job.

        Resident jobs ship the F-COO arrays once plus the dense factor
        matrices (the output is produced on the device — it occupies
        memory there but never crosses PCIe, matching the CP engine's
        transfer accounting); a job that fell back to the streamed path
        re-ships its chunks inside the kernel (charged there), so only the
        factors stage here; batch mates reuse the leader's staged
        encoding.  CP jobs charge their transfer inside the engine setup
        (already part of ``exec_s``); Tucker has no setup accounting, so
        its worst-mode staging is charged here.
        """
        if outcome.execution == "decomposition":
            if job.kind is JobKind.TUCKER:
                return (
                    geometry.fcoo_bytes + geometry.factor_bytes
                ) / placement.primary_device.pcie_bandwidth_bytes_per_s
            return 0.0
        if placement.sharded:
            execution = getattr(outcome.profile, "sharded", None)
            if execution is None:
                return 0.0
            # Every device stages its own shard (plus its replica of the
            # dense factors) over its own host link, concurrently.  The
            # ledgers index the *execution* cluster — one node of the
            # serving cluster for a node-local shard.
            devices = placement.cluster.devices
            return max(
                (
                    (ledger.staged_bytes + geometry.factor_bytes)
                    / devices[ledger.index].pcie_bandwidth_bytes_per_s
                    for ledger in execution.shards
                ),
                default=0.0,
            )
        device = placement.device
        fcoo_bytes = geometry.fcoo_bytes if encoding_staged else 0.0
        if outcome.execution == "streamed":
            fcoo_bytes = 0.0
        return (fcoo_bytes + geometry.factor_bytes) / device.pcie_bandwidth_bytes_per_s

    def _commit(
        self,
        entry: _ReadyEntry,
        t0: float,
        placement: Placement,
        geometry: JobGeometry,
        outcome: ExecutionOutcome,
        state: _RunState,
        *,
        batch_id: Optional[int],
        batch_leader: bool,
        encoding_staged: bool,
        results: Optional[Dict[int, JobResult]] = None,
    ) -> JobResult:
        """Book one executed job onto the shared timeline.

        Staging gang-books the placement's copy engines, execution books
        each device's compute engine for its actual busy seconds, and a
        sharded job's partial-output collective books the execution
        cluster's link/NIC resources after the slowest shard.  On idle
        resources the resolved times equal the pre-refactor closed forms
        bit for bit (``finish == exec_start + exec_s``); a collective that
        queues behind another job's on a shared NIC pushes the finish
        later — never earlier.  Every participating compute engine is held
        (a non-busy reservation) until the job completes, since the
        devices take part in the collective.
        """
        job = entry.job
        tag = f"job{job.job_id}"
        stage_s = self._staging_seconds(
            job, placement, geometry, outcome, encoding_staged=encoding_staged
        )
        slots = placement.device_slots
        copy_lanes = [state.copy[s] for s in slots]
        compute_lanes = [state.compute[s] for s in slots]

        stage = state.timeline.book_together(
            copy_lanes,
            stage_s,
            ready_s=max(t0, entry.ready_s),
            label=f"stage:{tag}",
            # A post-failure re-admission's re-staging is recovery overhead,
            # not first-run staging; the attribution fold keeps them apart.
            span=Span(
                tag,
                kernel=job.kind.value,
                phase="recovery" if entry.requeued else "stage",
            ),
        )
        stage_start, stage_end = stage.start_s, stage.end_s
        tracked: List[Booking] = list(stage.bookings)
        exec_bookings: List[Booking] = []

        execution = getattr(outcome.profile, "sharded", None) if placement.sharded else None
        busy_by_slot: Dict[int, float]
        if placement.sharded:
            # The execution ledgers index the placement's cluster (a node
            # of the serving cluster for a node-local shard); translate the
            # local device indices to the serving cluster's flat slots.
            if execution is not None:
                busy_by_slot = {
                    slots[local]: busy
                    for local, busy in execution.device_times.items()
                }
            else:
                per_device = getattr(outcome.output, "device_time_by_device", None)
                busy_by_slot = (
                    {slots[local]: busy for local, busy in per_device.items()}
                    if per_device
                    else {s: outcome.exec_s for s in slots}
                )
        else:
            busy_by_slot = {slots[0]: outcome.exec_s}

        exec_start = stage_end
        for lane in compute_lanes:
            exec_start = max(exec_start, lane.free_s)
        for lane, slot in zip(compute_lanes, slots):
            busy = busy_by_slot.get(slot, 0.0)
            if busy > 0.0:
                exec_bookings.append(
                    lane.book(
                        busy,
                        ready_s=exec_start,
                        label=f"exec:{tag}",
                        span=Span(tag, kernel=job.kind.value, phase="compute"),
                    )
                )
        tracked.extend(exec_bookings)

        # The idle-resource closed form; link/NIC contention can only delay it.
        finish = exec_start + outcome.exec_s
        if placement.sharded:
            if execution is not None:
                reduction_s = execution.reduction_time_s
                compute_span = execution.max_shard_time_s
                reduction_kind = execution.reduction_kind
            else:
                # A sharded decomposition: its per-mode collectives live on
                # the driver's own timeline (CPResult/TuckerResult carry
                # it); book their aggregate on the serving cluster's
                # link/NIC resources so decomposition jobs contend for a
                # shared NIC exactly like kernel jobs do.  One tail
                # booking is the job-level granularity the scheduler
                # prices everything else at.
                result_timeline = getattr(outcome.output, "timeline", None)
                reduction_s = (
                    sum(
                        e.duration_s
                        for e in result_timeline.events
                        if e.busy and e.category in ("link", "nic")
                    )
                    if result_timeline is not None
                    else 0.0
                )
                compute_span = outcome.exec_s - reduction_s
                reduction_kind = "collectives"
        else:
            reduction_s = 0.0
            compute_span = outcome.exec_s
        if reduction_s > 0.0 and placement.cluster is not None:
            compute_end = exec_start + compute_span
            resources = placement.cluster.collective_resources(state.timeline)
            displaced: Optional[_DisplacedCollective] = None
            request: Optional[CollectiveRequest] = None
            if state.discipline is not None:
                request = CollectiveRequest(
                    job_id=job.job_id,
                    duration_s=reduction_s,
                    priority=job.priority,
                    has_deadline=math.isfinite(job.deadline_s),
                )
                displaced = self._displace_collective(
                    state, resources, compute_end, request
                )
            red_start = compute_end
            for resource in resources:
                red_start = max(red_start, resource.free_s)
            if red_start > compute_end:
                # The collective queued behind another job's on a shared
                # link/NIC: the whole job completes later.
                finish = red_start + reduction_s
            collective = state.timeline.book_together(
                resources,
                finish - red_start,
                ready_s=red_start,
                label=f"{reduction_kind}:{tag}",
                span=Span(tag, kernel=job.kind.value, phase="collective"),
                # The job was NIC-ready the moment its compute drained;
                # ``red_start - compute_end`` is pure shared-NIC queueing and
                # lands in the per-job ``nic_wait_s`` breakdown.
                queued_from_s=compute_end,
            )
            tracked.extend(collective.bookings)
            if state.discipline is not None and request is not None:
                state.discipline.note_dispatch(request)
            if displaced is not None:
                # Put the overtaken collective back, now behind ours.
                self._rebook_displaced(state, results, displaced)
        # Hold every participating compute engine to the job's completion
        # (the devices take part in the collective; nothing else may slot in).
        for lane in compute_lanes:
            if finish > lane.free_s:
                tracked.append(
                    lane.book(
                        finish - lane.free_s,
                        ready_s=lane.free_s,
                        label=f"barrier:{tag}",
                        busy=False,
                    )
                )
        for slot in slots:
            state.jobs[slot] += 1

        start_event = complete_event = None
        if state.events is not None:
            detail: Dict[str, object] = dict(
                time_s=stage_start,
                job_id=tag,
                slots=list(slots),
                execution=outcome.execution,
                batch_id=batch_id,
            )
            rationale = self.placer.last_rationale
            if self.adaptive and rationale is not None:
                # Placement rationale (record-only): the chosen slot's
                # blended score, the static roofline score it would have
                # had, and the observed congestion folded in.  Emitted only
                # on adaptive runs, so static event logs are byte-identical
                # to earlier releases.
                detail["blended_score_s"] = rationale["blended_score_s"]
                detail["static_score_s"] = rationale["static_score_s"]
                detail["observed_congestion_s"] = rationale[
                    "observed_congestion_s"
                ]
            start_event = state.events.emit("dispatch", **detail)
            complete_event = state.events.emit(
                "complete",
                time_s=finish,
                job_id=tag,
                execution=outcome.execution,
                exec_s=outcome.exec_s,
            )
        state.committed[job.job_id] = _CommittedJob(
            entry=entry,
            placement=placement,
            outcome=outcome,
            bookings=tracked,
            stage_booking=stage.bookings[0] if len(stage.bookings) == 1 else None,
            exec_booking=exec_bookings[0] if len(exec_bookings) == 1 else None,
            exec_start_s=exec_start,
            finish_s=finish,
            batch_id=batch_id,
            start_event=start_event,
            complete_event=complete_event,
        )
        return JobResult(
            job=job,
            status=JobStatus.COMPLETED,
            output=outcome.output,
            device_slots=slots,
            execution=outcome.execution,
            encode_cache_hit=entry.encode_hit,
            tuner_cache_hit=entry.tuner_hit,
            batch_id=batch_id,
            batch_leader=batch_leader,
            preproc_s=entry.preproc_s,
            stage_s=stage_s,
            exec_s=outcome.exec_s,
            stage_start_s=stage_start,
            exec_start_s=exec_start,
            finish_s=finish,
            block_size=placement.block_size,
            threadlen=placement.threadlen,
            placement=placement,
            preemptions=entry.preemptions,
            preempted_s=(
                max(0.0, stage_start - entry.preempted_from_s)
                if entry.preemptions
                else 0.0
            ),
        )

    # ------------------------------------------------------------------ #
    # NIC queue disciplines (nic_policy="fair" / "priority")
    # ------------------------------------------------------------------ #
    def _displace_collective(
        self,
        state: _RunState,
        resources: Sequence[Resource],
        compute_end: float,
        request: CollectiveRequest,
    ) -> Optional[_DisplacedCollective]:
        """Pull the queued collective ahead of ours off the NIC, if the
        discipline says we overtake it and the surgery is feasible.

        Strictly best-effort, with every guard erring toward "do nothing"
        (which keeps the FIFO order and is always sound):

        * the newest booking on *every* contended link/NIC resource must
          belong to one gang — one committed job's collective — that has
          not started by the time our compute drains (a collective in
          flight is never reordered);
        * the discipline must rank our request *strictly* ahead of the
          incumbent's (ties keep arrival order, so the schedule stays
          deterministic);
        * the incumbent's gang bookings and the ``barrier:`` reservations
          pinned to its finish must all be tail bookings of their lanes —
          releasing them must not strand any third job's bookings.

        On success the incumbent's gang and barriers are *released* (its
        result/ledger updated by :meth:`_rebook_displaced` after the caller
        books its own collective into the freed window) and the released
        ledger is returned; any failed guard returns ``None``.
        """
        discipline = state.discipline
        if discipline is None:
            return None
        tails = [r.last_booking for r in resources]
        if not tails or any(b is None for b in tails):
            return None
        first = tails[0]
        if (
            first.span is None
            or first.span.phase != "collective"
            or any(b.label != first.label for b in tails)
            or len({(b.start_s, b.end_s) for b in tails}) != 1
        ):
            return None
        if first.start_s < compute_end:
            return None  # already in flight when our collective is ready
        inc_tag = first.span.job_id
        if not inc_tag.startswith("job"):
            return None
        try:
            inc_id = int(inc_tag[3:])
        except ValueError:
            return None
        if inc_id == request.job_id:
            return None
        inc = state.committed.get(inc_id)
        if inc is None:
            return None
        inc_job = inc.entry.job
        incumbent = CollectiveRequest(
            job_id=inc_id,
            duration_s=first.end_s - first.start_s,
            priority=inc_job.priority,
            has_deadline=math.isfinite(inc_job.deadline_s),
        )
        if not discipline.precedes(request, incumbent):
            return None
        gang = [b for b in inc.bookings if b.label == first.label]
        if {id(b) for b in gang} != {id(b) for b in tails}:
            return None  # the tails are not exactly the incumbent's gang
        barriers = [
            b for b in inc.bookings if b.label == f"barrier:{inc_tag}"
        ]
        lanes: Dict[str, Resource] = {r.key: r for r in resources}
        for slot in inc.placement.device_slots:
            lane = state.compute[slot]
            lanes[lane.key] = lane
        to_release = gang + barriers
        by_lane: Dict[str, List[Booking]] = {}
        for booking in to_release:
            by_lane.setdefault(booking.resource, []).append(booking)
        for key, group in by_lane.items():
            lane = lanes.get(key)
            if lane is None or not lane.is_tail(group):
                return None
        state.timeline.release(to_release)
        removed = {id(b) for b in to_release}
        inc.bookings = [b for b in inc.bookings if id(b) not in removed]
        if state.events is not None:
            state.events.emit(
                "nic_reorder",
                time_s=compute_end,
                job_id=f"job{request.job_id}",
                displaced=inc_tag,
                policy=discipline.policy,
            )
        return _DisplacedCollective(
            committed=inc,
            label=first.label,
            span=first.span,
            duration_s=incumbent.duration_s,
            queued_from_s=first.ready_s,
        )

    def _rebook_displaced(
        self,
        state: _RunState,
        results: Optional[Dict[int, JobResult]],
        disp: _DisplacedCollective,
    ) -> None:
        """Re-book a displaced incumbent's collective behind the overtaker.

        Same label, span, duration and ``queued_from_s`` as the released
        gang — only the start moves (to the overtaking collective's end),
        so the added delay lands in the incumbent's ``nic_wait_s``.  The
        barrier reservations holding its compute lanes are re-extended to
        the new finish, and its ledger, result and provisional ``complete``
        event are updated in place.
        """
        inc = disp.committed
        gang = state.timeline.book_together(
            inc.placement.cluster.collective_resources(state.timeline),
            disp.duration_s,
            ready_s=disp.queued_from_s,
            label=disp.label,
            span=disp.span,
            queued_from_s=disp.queued_from_s,
        )
        inc.bookings.extend(gang.bookings)
        finish = gang.end_s
        inc_tag = f"job{inc.entry.job.job_id}"
        for slot in inc.placement.device_slots:
            lane = state.compute[slot]
            if finish > lane.free_s:
                inc.bookings.append(
                    lane.book(
                        finish - lane.free_s,
                        ready_s=lane.free_s,
                        label=f"barrier:{inc_tag}",
                        busy=False,
                    )
                )
        inc.finish_s = finish
        jid = inc.entry.job.job_id
        if results is not None and jid in results:
            results[jid] = replace(results[jid], finish_s=finish)
        if state.events is not None and inc.complete_event is not None:
            state.events.retract(inc.complete_event)
            inc.complete_event = state.events.emit(
                "complete",
                time_s=finish,
                job_id=inc_tag,
                execution=inc.outcome.execution,
                exec_s=inc.outcome.exec_s,
            )

    # ------------------------------------------------------------------ #
    @staticmethod
    def _revoke_events(
        state: _RunState, committed: _CommittedJob, *, work_started: bool
    ) -> None:
        """Retract a revoked commitment's provisional log events.

        The stale ``complete`` always goes (the job did not finish as
        booked); the ``dispatch``/``resume`` start marker stays only when
        device work genuinely began before the revocation — a real partial
        run is history, a never-started booking is not.
        """
        if state.events is None:
            return
        if committed.complete_event is not None:
            state.events.retract(committed.complete_event)
        if not work_started and committed.start_event is not None:
            state.events.retract(committed.start_event)

    # ------------------------------------------------------------------ #
    # Preemption (policy="deadline")
    # ------------------------------------------------------------------ #
    def _repreempt_and_recommit(
        self,
        entry: _ReadyEntry,
        t0: float,
        placement: Placement,
        geometry: JobGeometry,
        outcome: ExecutionOutcome,
        state: _RunState,
        ready: List[Tuple[Tuple, _ReadyEntry]],
        results: Dict[int, JobResult],
        first_result: JobResult,
        *,
        batch_id: Optional[int],
        batch_leader: bool,
    ) -> JobResult:
        """Try to rescue a deadline job that would miss as first booked.

        The job's own (just-made) bookings are released, one committed
        batch victim sharing its device slots is preempted, and the job is
        re-committed onto the freed lanes.  When no victim qualifies (or
        none is releasable) the release/re-commit round-trips to the exact
        original booking — :meth:`~repro.gpusim.timeline.Timeline.release`
        restores every lane horizon, so the re-booked times are identical.
        """
        job = entry.job
        own = state.committed.pop(job.job_id)
        candidates = sorted(
            (
                c
                for jid, c in state.committed.items()
                if jid in results
                and c.finish_s > t0
                and c.batch_id is None
                and not c.resumed
                and c.entry.job.preemptible
                and not math.isfinite(c.entry.job.deadline_s)
                and set(c.placement.device_slots) & set(placement.device_slots)
            ),
            # Latest-finishing victim first: it holds the most future time.
            key=lambda c: (-c.finish_s, c.entry.job.job_id),
        )
        if candidates:
            try:
                state.timeline.release(own.bookings)
            except ValueError:
                # A non-FIFO NIC discipline may have re-booked a displaced
                # incumbent *behind* this job's collective, so the trial
                # booking is no longer the tail of its lanes.  Release
                # verifies before mutating, so nothing moved — keep the
                # first booking instead of attempting the rescue.
                state.committed[job.job_id] = own
                return first_result
            # The trial booking is fully revoked (nothing ran yet — this
            # all happens at dispatch time); the re-commit re-emits.
            self._revoke_events(state, own, work_started=False)
            for cand in candidates:
                if self._preempt_victim(cand, t0, job, state, ready, results):
                    break
            return self._commit(
                entry,
                t0,
                placement,
                geometry,
                outcome,
                state,
                batch_id=batch_id,
                batch_leader=batch_leader,
                encoding_staged=True,
                results=results,
            )
        state.committed[job.job_id] = own
        return first_result

    def _preempt_victim(
        self,
        cand: _CommittedJob,
        t: float,
        by: Job,
        state: _RunState,
        ready: List[Tuple[Tuple, _ReadyEntry]],
        results: Dict[int, JobResult],
    ) -> bool:
        """Preempt one committed job at ``t``; ``False`` leaves it untouched.

        Three shapes are releasable; everything else (a one-shot kernel or
        a sharded shard mid-compute — no checkpoint boundary) is skipped:

        * nothing started yet (all bookings at/after ``t``) — full release
          and a from-scratch re-queue;
        * caught mid-staging — the stage booking is cut at ``t`` (shipped
          bytes are sunk cost), the rest released, from-scratch re-queue;
        * a streamed job caught mid-compute — the compute booking is cut
          at the first chunk boundary past ``t`` and the victim re-queues
          with a resume ledger (completed chunks stand; the remaining
          chunks' pipeline re-books at resume, plus a factor re-stage).

        Every mutation is pre-verified against
        :meth:`~repro.gpusim.timeline.Resource.is_tail`, so a victim whose
        lanes have later bookings (e.g. behind another job's barrier) is
        simply not preemptible rather than corrupting the timeline.
        """
        victim = cand.entry.job
        timeline = state.timeline
        lanes: Dict[str, Resource] = {}
        for slot in cand.placement.device_slots:
            for lane in (state.copy[slot], state.compute[slot]):
                lanes[lane.key] = lane
        if cand.placement.cluster is not None:
            for lane in cand.placement.cluster.collective_resources(timeline):
                lanes[lane.key] = lane
        if any(b.resource not in lanes for b in cand.bookings):
            return False  # defensive: a booking on a lane we cannot verify

        future = [b for b in cand.bookings if b.start_s >= t]
        straddle = [b for b in cand.bookings if b.start_s < t < b.end_s]
        if len(straddle) > 1 or (not future and not straddle):
            return False

        streaming = getattr(cand.outcome.profile, "streaming", None)
        boundary = t
        completed = 0
        total = streaming.num_chunks if streaming is not None else 0
        resume: Optional[_ResumeState] = None
        cut: Optional[Booking] = None
        if straddle:
            cut = straddle[0]
            if (
                cut is cand.exec_booking
                and streaming is not None
                and not cand.placement.sharded
            ):
                sched = streaming.schedule
                exec_start = cand.exec_start_s
                idx = next(
                    (
                        i
                        for i, end in enumerate(sched.compute_ends)
                        if exec_start + end >= t
                    ),
                    None,
                )
                if idx is None or idx + 1 >= streaming.num_chunks:
                    return False  # last chunk in flight: nothing to give back
                completed = idx + 1
                boundary = exec_start + sched.compute_ends[idx]
                if boundary >= cut.end_s:
                    return False
                remaining_s = schedule_chunks(
                    sched.timings[completed:], streaming.num_streams
                ).total_time_s
                resume = _ResumeState(
                    placement=cand.placement,
                    outcome=cand.outcome,
                    completed_chunks=completed,
                    total_chunks=total,
                    remaining_exec_s=remaining_s,
                    resume_stage_s=(
                        cand.entry.geometry.factor_bytes
                        / cand.placement.primary_device.pcie_bandwidth_bytes_per_s
                    ),
                )
            elif cut is cand.stage_booking:
                boundary = t  # staging interrupted: full restart later
            else:
                return False

        # Pre-verify releasability on every touched lane before mutating.
        by_lane: Dict[str, List[Booking]] = {}
        for booking in future:
            by_lane.setdefault(booking.resource, []).append(booking)
        for key, group in by_lane.items():
            check = list(group)
            if cut is not None and cut.resource == key:
                check.append(cut)
            if not lanes[key].is_tail(check):
                return False
        if cut is not None and cut.resource not in by_lane:
            if lanes[cut.resource].last_booking is not cut:
                return False

        released = timeline.release(future) if future else 0.0
        if cut is not None:
            if cut.busy:
                released += cut.end_s - boundary
            timeline.truncate(cut, boundary)

        entry = cand.entry
        entry.ready_s = max(entry.ready_s, boundary)
        entry.preemptions += 1
        entry.preempted_from_s = boundary
        entry.resume = resume
        ready.append((self._queue_key(victim), entry))
        record = PreemptionRecord(
            job_id=victim.job_id,
            preempted_by=by.job_id,
            time_s=boundary,
            completed_chunks=completed,
            total_chunks=total,
            released_s=released,
            resume_stage_s=resume.resume_stage_s if resume is not None else 0.0,
        )
        state.preemption_records.append(record)
        if state.events is not None:
            state.events.emit(
                "preempt",
                time_s=boundary,
                job_id=f"job{victim.job_id}",
                preempted_by=f"job{by.job_id}",
                completed_chunks=completed,
                total_chunks=total,
                released_s=released,
            )
        # ``straddle`` means staging or compute was genuinely cut mid-flight
        # (the dispatch stands as history); a full release never started.
        self._revoke_events(state, cand, work_started=bool(straddle))
        del results[victim.job_id]
        del state.committed[victim.job_id]
        return True

    def _dispatch_resume(
        self,
        entry: _ReadyEntry,
        t0: float,
        results: Dict[int, JobResult],
        state: _RunState,
    ) -> bool:
        """Re-book a preempted streamed job's remaining work.

        The numeric output was computed at the original dispatch; resuming
        books only time — a factor re-stage on the placement's copy lane,
        then the remaining chunks' pipeline on its compute lane.  Returns
        ``False`` (clearing the ledger, so the caller re-dispatches from
        scratch) when the placement's slots have meanwhile failed or been
        parked.
        """
        rs = entry.resume
        assert rs is not None
        job = entry.job
        placement = rs.placement
        slots = placement.device_slots
        if any(
            s in state.failed_slots or s in state.parked_slots for s in slots
        ):
            entry.resume = None
            return False
        tag = f"job{job.job_id}"
        copy_lanes = [state.copy[s] for s in slots]
        compute_lanes = [state.compute[s] for s in slots]
        stage = state.timeline.book_together(
            copy_lanes,
            rs.resume_stage_s,
            ready_s=max(t0, entry.ready_s),
            label=f"resume-stage:{tag}",
            span=Span(tag, kernel=job.kind.value, phase="resume"),
        )
        exec_start = stage.end_s
        for lane in compute_lanes:
            exec_start = max(exec_start, lane.free_s)
        tracked: List[Booking] = list(stage.bookings)
        exec_booking: Optional[Booking] = None
        if rs.remaining_exec_s > 0.0:
            exec_booking = compute_lanes[0].book(
                rs.remaining_exec_s,
                ready_s=exec_start,
                label=f"resume:{tag}",
                span=Span(tag, kernel=job.kind.value, phase="resume"),
            )
            tracked.append(exec_booking)
        finish = exec_start + rs.remaining_exec_s
        start_event = complete_event = None
        if state.events is not None:
            start_event = state.events.emit(
                "resume",
                time_s=stage.start_s,
                job_id=tag,
                completed_chunks=rs.completed_chunks,
                total_chunks=rs.total_chunks,
            )
            complete_event = state.events.emit(
                "complete",
                time_s=finish,
                job_id=tag,
                execution=rs.outcome.execution,
                exec_s=rs.outcome.exec_s,
            )
        state.committed[job.job_id] = _CommittedJob(
            entry=entry,
            placement=placement,
            outcome=rs.outcome,
            bookings=tracked,
            stage_booking=stage.bookings[0] if len(stage.bookings) == 1 else None,
            exec_booking=exec_booking,
            exec_start_s=exec_start,
            finish_s=finish,
            batch_id=None,
            resumed=True,
            start_event=start_event,
            complete_event=complete_event,
        )
        for slot in slots:
            state.jobs[slot] += 1
        results[job.job_id] = JobResult(
            job=job,
            status=JobStatus.COMPLETED,
            output=rs.outcome.output,
            device_slots=slots,
            execution=rs.outcome.execution,
            encode_cache_hit=entry.encode_hit,
            tuner_cache_hit=entry.tuner_hit,
            preproc_s=entry.preproc_s,
            stage_s=rs.resume_stage_s,
            exec_s=rs.outcome.exec_s,
            stage_start_s=stage.start_s,
            exec_start_s=exec_start,
            finish_s=finish,
            block_size=placement.block_size,
            threadlen=placement.threadlen,
            placement=placement,
            preemptions=entry.preemptions,
            preempted_s=max(0.0, exec_start - entry.preempted_from_s),
        )
        return True
