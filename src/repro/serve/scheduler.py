"""Event-driven multi-tenant scheduler over the simulated cluster.

The scheduler turns a stream of :class:`~repro.serve.job.Job` s into a
deterministic simulated-time schedule:

* **admission** — on arrival a job is either shed (optional queue-depth
  bound: a full queue rejects newcomers instead of growing without bound),
  rejected by memory admission control *before* any preprocessing is spent
  (a job whose resident dense operands cannot fit next to two minimal
  streamed chunk buffers on any device — see
  :meth:`~repro.serve.placement.Placer.admit`), or preprocessed: its F-COO
  encoding (and, with ``autotune``, its tuned launch parameters) come from
  the shared :class:`~repro.serve.cache.PreprocCache`.  Preprocessing is
  host work done tenant-side and overlaps freely across jobs; a cache miss
  delays only that job's stage-readiness, never the cluster.

* **queueing** — admitted jobs wait in a priority queue
  (``policy="priority"``: lower priority class first, FIFO within a class;
  ``policy="fifo"``: strict arrival order).

* **dispatch** — a job is dispatched when a copy engine frees *and* the job
  is stage-ready, so its staging overlaps the predecessor's compute — the
  cluster-level analog of the PR 1 stream pipeline, with the same
  two-resource recurrence as :func:`repro.gpusim.streams.schedule_chunks`:
  per device, the copy engine and the compute engine are separate serial
  resources and a job's kernel starts at ``max(staging landed, compute
  engine free)``.  Arrivals earlier than the dispatch instant always enter
  the queue first, so a late high-priority job overtakes queued batch
  work; a job still preprocessing never blocks stage-ready ones.

* **batching** — compatible stage-ready jobs (same tensor content,
  operation, mode and rank — i.e. the same F-COO encoding and launch
  geometry) ride one dispatch: the encoding is staged once for the whole
  batch and the members execute back to back on the batch's device.
  Batching changes *when* work runs, never *what* it computes.

Everything is simulated time derived from the deterministic cost models —
two runs of the same workload produce identical schedules, which is what
lets ``tests/test_serving.py`` assert bit-identical outputs and the CI
regression gate track throughput/latency without timer noise.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.formats.fcoo import FCOOTensor
from repro.gpusim.cluster import ClusterLike, collapse_cluster
from repro.gpusim.device import DeviceSpec
from repro.gpusim.timing import OutOfDeviceMemory
from repro.serve.cache import PreprocCache
from repro.serve.execute import ExecutionOutcome, execute_job
from repro.serve.job import Job, JobKind, JobResult, JobStatus
from repro.serve.placement import JobGeometry, Placement, Placer, job_geometry

__all__ = ["DeviceTimeline", "ScheduleOutcome", "Scheduler"]


@dataclass
class DeviceTimeline:
    """Per-device serving state: the two engine horizons plus usage counters.

    ``copy_free_s`` / ``compute_free_s`` are the absolute simulated times at
    which the device's copy engine (PCIe staging) and compute engine are
    next available — the same two serial resources the stream pipeline
    model uses.  ``busy_s`` accumulates kernel-busy seconds (what the
    utilisation report divides by the makespan) and ``jobs`` counts the
    jobs (or shards) the device executed.
    """

    slot: int
    device: DeviceSpec
    copy_free_s: float = 0.0
    compute_free_s: float = 0.0
    busy_s: float = 0.0
    jobs: int = 0


@dataclass(eq=False)
class _ReadyEntry:
    """One admitted, preprocessed job waiting in the queue."""

    job: Job
    geometry: JobGeometry
    encoding: Optional[FCOOTensor]
    ready_s: float  # earliest staging start: preprocessing done AND the
    #                 encodings it reuses finished building
    preproc_s: float
    encode_hit: bool
    tuner_hit: Optional[bool]
    launch: Optional[Tuple[int, int]]  # tuned (BLOCK_SIZE, threadlen)


@dataclass
class ScheduleOutcome:
    """Everything one scheduler run produced."""

    results: List[JobResult]
    timelines: List[DeviceTimeline]

    @property
    def makespan_s(self) -> float:
        """Completion time of the last job (0 for an all-rejected run)."""
        return max((r.finish_s for r in self.results if r.completed), default=0.0)


class Scheduler:
    """Deterministic simulated-time scheduler for one serving cluster.

    Parameters
    ----------
    cluster:
        The serving cluster.
    cache:
        Shared preprocessing cache (encodings + tuned launch configs).
    policy:
        ``"priority"`` (default) or ``"fifo"``.
    max_batch:
        Largest batch of compatible jobs per dispatch (1 disables batching).
    max_queue_depth:
        Queue bound for admission-time load shedding (``None``: unbounded).
    block_size / threadlen:
        Default launch parameters (overridden per job by the tuner cache
        when ``autotune`` is on).
    autotune:
        Look up tuned ``(BLOCK_SIZE, threadlen)`` per kernel-job shape in
        the cache (sweeping on a miss, reusing on a hit); tuning runs on
        the cluster's most capable device.
    num_streams:
        Stream count for the kernels' out-of-core fallback.
    """

    def __init__(
        self,
        cluster: ClusterLike,
        cache: Optional[PreprocCache] = None,
        *,
        policy: str = "priority",
        max_batch: int = 4,
        max_queue_depth: Optional[int] = None,
        block_size: int = 128,
        threadlen: int = 8,
        autotune: bool = False,
        num_streams: int = 2,
    ) -> None:
        if policy not in ("priority", "fifo"):
            raise ValueError(f"policy must be 'priority' or 'fifo', got {policy!r}")
        if max_batch < 1:
            raise ValueError(f"max_batch must be at least 1, got {max_batch}")
        if max_queue_depth is not None and max_queue_depth < 1:
            raise ValueError(
                f"max_queue_depth must be at least 1, got {max_queue_depth}"
            )
        # Collapse a one-node multi-node spec (mirroring the placer), so
        # timelines, placements and reports speak the same cluster.
        self.cluster = cluster = collapse_cluster(cluster)
        self.cache = cache if cache is not None else PreprocCache()
        self.policy = policy
        self.max_batch = max_batch
        self.max_queue_depth = max_queue_depth
        self.autotune = autotune
        self.num_streams = num_streams
        self.placer = Placer(
            cluster,
            block_size=block_size,
            threadlen=threadlen,
            num_streams=num_streams,
        )
        weights = cluster.capability_weights()
        #: Where tuner sweeps run: the most capable member (ties: lowest slot).
        self._tuner_device = cluster.devices[
            max(range(cluster.num_devices), key=lambda s: (weights[s], -s))
        ]

    # ------------------------------------------------------------------ #
    def _queue_key(self, job: Job) -> Tuple:
        if self.policy == "priority":
            return (job.priority, job.arrival_s, job.job_id)
        return (job.arrival_s, job.job_id)

    def _preprocess(
        self,
        job: Job,
        geometry: JobGeometry,
        availability: Dict[Tuple, float],
    ) -> _ReadyEntry:
        """Run one admitted job's host preprocessing through the cache.

        ``availability`` maps a cache entry's key (encoding or tuner
        config) to the simulated time its build completes: a cache *hit*
        is free but cannot make the job stage-ready before the entry it
        reuses physically exists, so a job arriving just behind the miss
        that builds it waits for that build, not zero.
        """
        encoding = None
        launch = None
        tuner_hit: Optional[bool] = None
        ready_s = job.arrival_s
        if job.kind.is_kernel:
            key = (job.tensor.content_key, job.operation.value, job.mode)
            encoding, encode_hit, preproc_s = self.cache.encoding(
                job.tensor, job.operation, job.mode
            )
            if encode_hit:
                ready_s = max(ready_s, availability.get(key, job.arrival_s))
            else:
                availability[key] = job.arrival_s + preproc_s
                ready_s = availability[key]
            if self.autotune:
                launch, tuner_hit, tune_s = self.cache.tuner_config(
                    job.tensor,
                    job.operation,
                    job.mode,
                    job.rank,
                    device=self._tuner_device,
                )
                preproc_s += tune_s
                tuner_key = (
                    "tuner",
                    job.tensor.content_key,
                    job.operation.value,
                    job.mode,
                    job.rank,
                )
                if tuner_hit:
                    ready_s = max(ready_s, availability.get(tuner_key, job.arrival_s))
                else:
                    # The sweep runs after this job's encode lands.
                    ready_s += tune_s
                    availability[tuner_key] = ready_s
        else:
            # Prime the cache for every mode the decomposition will sweep,
            # so the driver's per-mode lookups hit; the misses are this
            # job's preprocessing bill.
            encode_hit, preproc_s = True, 0.0
            for mode in range(job.tensor.order):
                key = (job.tensor.content_key, job.operation.value, mode)
                _, hit, cost_s = self.cache.encoding(job.tensor, job.operation, mode)
                encode_hit = encode_hit and hit
                preproc_s += cost_s
                if hit:
                    ready_s = max(ready_s, availability.get(key, job.arrival_s))
                else:
                    availability[key] = job.arrival_s + preproc_s
                    ready_s = max(ready_s, availability[key])
        return _ReadyEntry(
            job=job,
            geometry=geometry,
            encoding=encoding,
            ready_s=ready_s,
            preproc_s=preproc_s,
            encode_hit=encode_hit,
            tuner_hit=tuner_hit,
            launch=launch,
        )

    def _admit(
        self,
        pending: deque,
        ready: List[Tuple[Tuple, _ReadyEntry]],
        clock: float,
        results: Dict[int, JobResult],
        availability: Dict[Tuple, float],
    ) -> None:
        """Process arrivals up to ``clock``: shed, reject or preprocess."""
        while pending and pending[0].arrival_s <= clock:
            job = pending.popleft()
            if self.max_queue_depth is not None and len(ready) >= self.max_queue_depth:
                results[job.job_id] = self._rejected(
                    job,
                    f"queue full ({self.max_queue_depth} jobs waiting) at arrival",
                )
                continue
            geometry = job_geometry(job, threadlen=self.placer.threadlen)
            reason = self.placer.admit(job, geometry)
            if reason is not None:
                results[job.job_id] = self._rejected(job, reason)
                continue
            ready.append(
                (self._queue_key(job), self._preprocess(job, geometry, availability))
            )

    @staticmethod
    def _rejected(job: Job, reason: str) -> JobResult:
        return JobResult(
            job=job,
            status=JobStatus.REJECTED,
            reject_reason=reason,
            stage_start_s=job.arrival_s,
            exec_start_s=job.arrival_s,
            finish_s=job.arrival_s,
        )

    def _pop_best_ready(
        self, ready: List[Tuple[Tuple, _ReadyEntry]], t: float
    ) -> Optional[_ReadyEntry]:
        """Pop the best queued job that is stage-ready at ``t`` (work
        conservation: a job still preprocessing never blocks ready ones)."""
        candidates = [entry for entry in ready if entry[1].ready_s <= t]
        if not candidates:
            return None
        best = min(candidates, key=lambda entry: entry[0])[1]
        ready[:] = [e for e in ready if e[1].job.job_id != best.job.job_id]
        return best

    def _pop_batch_mates(
        self, ready: List[Tuple[Tuple, _ReadyEntry]], leader: Job, t: float
    ) -> List[_ReadyEntry]:
        """Extract up to ``max_batch - 1`` stage-ready jobs batchable with
        ``leader``."""
        if self.max_batch <= 1 or not leader.kind.is_kernel:
            return []
        matching = sorted(
            (
                entry
                for entry in ready
                # The mate must itself be a kernel job: a decomposition on
                # the same tensor shares the leader's batch_key (CP-ALS
                # preprocesses the SpMTTKRP encoding) but is not one kernel
                # invocation and must keep its own placement.
                if entry[1].job.kind.is_kernel
                and entry[1].job.batch_key == leader.batch_key
                and entry[1].ready_s <= t
            ),
            key=lambda entry: entry[0],
        )
        take = matching[: self.max_batch - 1]
        if take:
            taken = {entry[1].job.job_id for entry in take}
            ready[:] = [entry for entry in ready if entry[1].job.job_id not in taken]
        return [entry[1] for entry in take]

    # ------------------------------------------------------------------ #
    def run(self, jobs: Sequence[Job]) -> ScheduleOutcome:
        """Schedule and execute ``jobs``; returns the full ledger."""
        ids = [job.job_id for job in jobs]
        if len(set(ids)) != len(ids):
            raise ValueError("job ids must be unique within one scheduler run")
        timelines = [
            DeviceTimeline(slot=i, device=d) for i, d in enumerate(self.cluster.devices)
        ]
        pending = deque(sorted(jobs, key=lambda j: (j.arrival_s, j.job_id)))
        ready: List[Tuple[Tuple, _ReadyEntry]] = []
        results: Dict[int, JobResult] = {}
        #: encoding key -> simulated time its host build completes, for
        #: this run only (a fresh run restarts the simulated clock).
        availability: Dict[Tuple, float] = {}
        clock = 0.0
        batch_seq = 0

        while pending or ready:
            self._admit(pending, ready, clock, results, availability)
            if not ready:
                if not pending:
                    break
                clock = pending[0].arrival_s
                continue
            # The next staging can begin when some copy engine frees...
            t = max(clock, min(lane.copy_free_s for lane in timelines))
            # ...but arrivals before that instant contend for the queue first.
            if pending and pending[0].arrival_s <= t:
                clock = max(clock, pending[0].arrival_s)
                continue
            entry = self._pop_best_ready(ready, t)
            if entry is None:
                # Everyone queued is still preprocessing; advance to the
                # earliest readiness (or the next arrival).
                next_ready = min(e[1].ready_s for e in ready)
                next_arrival = pending[0].arrival_s if pending else math.inf
                clock = min(next_ready, next_arrival)
                continue
            clock = t
            batch_seq = self._dispatch(entry, t, ready, results, timelines, batch_seq)

        ordered = [results[job_id] for job_id in sorted(results)]
        return ScheduleOutcome(results=ordered, timelines=timelines)

    # ------------------------------------------------------------------ #
    def _dispatch(
        self,
        entry: _ReadyEntry,
        t0: float,
        ready: List[Tuple[Tuple, _ReadyEntry]],
        results: Dict[int, JobResult],
        timelines: List[DeviceTimeline],
        batch_seq: int,
    ) -> int:
        job = entry.job
        geometry = entry.geometry
        placement = self.placer.place(
            job, geometry, [t.compute_free_s for t in timelines], t0
        )
        if entry.launch is not None:
            placement = replace(
                placement, block_size=entry.launch[0], threadlen=entry.launch[1]
            )

        mates = [] if placement.sharded else self._pop_batch_mates(ready, job, t0)
        batch_id: Optional[int] = None
        if mates:
            batch_id = batch_seq
            batch_seq += 1

        try:
            outcome = execute_job(
                job,
                placement,
                encoding=entry.encoding,
                cache=self.cache,
                num_streams=self.num_streams,
            )
        except OutOfDeviceMemory as exc:
            # The admission estimate is first-order (autotune can raise the
            # threadlen after sizing, and geometry is host arithmetic); a
            # kernel-level capacity failure rejects this one job instead of
            # aborting the whole serving run.
            results[job.job_id] = self._rejected(
                job, f"rejected at execution: {exc}"
            )
            for mate in mates:
                ready.append((self._queue_key(mate.job), mate))
            return batch_seq
        results[job.job_id] = self._commit(
            entry,
            t0,
            placement,
            geometry,
            outcome,
            timelines,
            batch_id=batch_id,
            batch_leader=bool(mates),
            encoding_staged=True,
        )

        for mate in mates:
            # The batch shares the leader's encoding (already staged) and
            # device; only the mate's dense operands still move.
            mate_outcome = execute_job(
                mate.job,
                placement,
                encoding=entry.encoding,
                cache=self.cache,
                num_streams=self.num_streams,
            )
            results[mate.job.job_id] = self._commit(
                mate,
                t0,
                placement,
                geometry,
                mate_outcome,
                timelines,
                batch_id=batch_id,
                batch_leader=False,
                encoding_staged=False,
            )
        return batch_seq

    # ------------------------------------------------------------------ #
    def _staging_seconds(
        self,
        job: Job,
        placement: Placement,
        geometry: JobGeometry,
        outcome: ExecutionOutcome,
        *,
        encoding_staged: bool,
    ) -> float:
        """Host-to-device staging time of one dispatched job.

        Resident jobs ship the F-COO arrays once plus the dense factor
        matrices (the output is produced on the device — it occupies
        memory there but never crosses PCIe, matching the CP engine's
        transfer accounting); a job that fell back to the streamed path
        re-ships its chunks inside the kernel (charged there), so only the
        factors stage here; batch mates reuse the leader's staged
        encoding.  CP jobs charge their transfer inside the engine setup
        (already part of ``exec_s``); Tucker has no setup accounting, so
        its worst-mode staging is charged here.
        """
        if outcome.execution == "decomposition":
            if job.kind is JobKind.TUCKER:
                return (
                    geometry.fcoo_bytes + geometry.factor_bytes
                ) / placement.primary_device.pcie_bandwidth_bytes_per_s
            return 0.0
        if placement.sharded:
            execution = getattr(outcome.profile, "sharded", None)
            if execution is None:
                return 0.0
            # Every device stages its own shard (plus its replica of the
            # dense factors) over its own host link, concurrently.  The
            # ledgers index the *execution* cluster — one node of the
            # serving cluster for a node-local shard.
            devices = placement.cluster.devices
            return max(
                (
                    (ledger.staged_bytes + geometry.factor_bytes)
                    / devices[ledger.index].pcie_bandwidth_bytes_per_s
                    for ledger in execution.shards
                ),
                default=0.0,
            )
        device = placement.device
        fcoo_bytes = geometry.fcoo_bytes if encoding_staged else 0.0
        if outcome.execution == "streamed":
            fcoo_bytes = 0.0
        return (fcoo_bytes + geometry.factor_bytes) / device.pcie_bandwidth_bytes_per_s

    def _commit(
        self,
        entry: _ReadyEntry,
        t0: float,
        placement: Placement,
        geometry: JobGeometry,
        outcome: ExecutionOutcome,
        timelines: List[DeviceTimeline],
        *,
        batch_id: Optional[int],
        batch_leader: bool,
        encoding_staged: bool,
    ) -> JobResult:
        """Price one executed job onto the device timelines."""
        stage_s = self._staging_seconds(
            entry.job, placement, geometry, outcome, encoding_staged=encoding_staged
        )
        slots = placement.device_slots
        lanes = [timelines[s] for s in slots]
        stage_start = max(t0, entry.ready_s, max(lane.copy_free_s for lane in lanes))
        stage_end = stage_start + stage_s
        exec_start = max(stage_end, max(lane.compute_free_s for lane in lanes))
        exec_end = exec_start + outcome.exec_s

        busy_by_slot: Dict[int, float]
        if placement.sharded:
            # The execution ledgers index the placement's cluster (a node
            # of the serving cluster for a node-local shard); translate the
            # local device indices to the serving cluster's flat slots.
            execution = getattr(outcome.profile, "sharded", None)
            if execution is not None:
                busy_by_slot = {
                    slots[local]: busy
                    for local, busy in execution.device_times.items()
                }
            else:
                per_device = getattr(outcome.output, "device_time_by_device", None)
                busy_by_slot = (
                    {slots[local]: busy for local, busy in per_device.items()}
                    if per_device
                    else {s: outcome.exec_s for s in slots}
                )
        else:
            busy_by_slot = {slots[0]: outcome.exec_s}

        for lane in lanes:
            lane.copy_free_s = stage_end
            lane.compute_free_s = exec_end
            lane.busy_s += busy_by_slot.get(lane.slot, 0.0)
            lane.jobs += 1

        return JobResult(
            job=entry.job,
            status=JobStatus.COMPLETED,
            output=outcome.output,
            device_slots=slots,
            execution=outcome.execution,
            encode_cache_hit=entry.encode_hit,
            tuner_cache_hit=entry.tuner_hit,
            batch_id=batch_id,
            batch_leader=batch_leader,
            preproc_s=entry.preproc_s,
            stage_s=stage_s,
            exec_s=outcome.exec_s,
            stage_start_s=stage_start,
            exec_start_s=exec_start,
            finish_s=exec_end,
            block_size=placement.block_size,
            threadlen=placement.threadlen,
            placement=placement,
        )
